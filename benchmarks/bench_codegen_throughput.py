"""E18 — the specializing code generator vs the fast engine.

The fast engine (E14) removed the per-cycle fetch/decode tax; the
specializing code generator (``repro.machine.codegen``) removes the
residual *generic dispatch* by compiling one flat Python step loop per
program.  This benchmark measures what that buys on the same host:
every workload runs under ``engine="fast"`` and ``engine="specialized"``,
the two results must be bit-identical before any number is recorded,
and the ratio lands as ``specialized_over_fast`` next to
``specialized_kcycles_per_sec`` in the warn-only ``timing`` section of
BENCH_SUMMARY.json / BENCH_HISTORY.jsonl.

Methodology: programs are assembled (or generated) **once** and shared
across repetitions, because the compiled loop is cached on the program
object — re-assembling per repetition would re-pay compilation each
time and measure the generator, not the generated code.  That matches
real use: ``engine="auto"`` compiles on first run and reuses the loop
for every subsequent machine over the same program.  Each measurement
accumulates :data:`MIN_MEASURE_SECONDS` of wall clock on fresh
machines over the shared program.

The hard assertions are same-host ratios, immune to absolute speed:
``specialized_over_fast >= 1.5`` on each paper workload and ``>= 2.0``
on at least one E14 long-runner.  Ratios are still wall-clock
quotients, so a failed floor is re-measured once before failing —
the generous margins (measured 1.8–2.5x) only trip on structural
regressions, not host noise.
"""

import dataclasses
import time

from repro.analysis import render_table
from repro.asm import assemble
from repro.machine import VliwMachine, XimdMachine
from repro.workloads import (
    BITCOUNT_REGS,
    LL12_REGS,
    MINMAX_REGS,
    bitcount_memory,
    bitcount_total_source,
    livermore12_memory,
    livermore12_source,
    longrunner_program,
    longrunner_vliw_program,
    minmax_memory,
    minmax_source,
    random_ints,
    random_words,
)

LONGRUNNER_ITERATIONS = 20_000

#: ISSUE 9 acceptance floors (same-host wall-clock ratios).
MIN_PAPER_RATIO = 1.5
MIN_LONGRUNNER_RATIO = 2.0

MIN_MEASURE_SECONDS = 0.25

# shared programs: assembled/generated once so repetitions reuse the
# per-program compiled loop instead of re-paying codegen
_MINMAX_PROGRAM = assemble(minmax_source("halt"))
_BITCOUNT_PROGRAM = assemble(bitcount_total_source())
_LL12_PROGRAM = assemble(livermore12_source())
_LONG_XIMD = longrunner_program(iterations=LONGRUNNER_ITERATIONS)
_LONG_VLIW = longrunner_vliw_program(iterations=LONGRUNNER_ITERATIONS)

_MINMAX_DATA = random_ints(64, seed=3)[1:]
_BITCOUNT_DATA = random_words(48, seed=4)
_LL12_Y = random_ints(101, seed=5)


def _minmax_machine():
    machine = XimdMachine(_MINMAX_PROGRAM)
    machine.regfile.poke(MINMAX_REGS["n"], len(_MINMAX_DATA))
    for address, value in minmax_memory(_MINMAX_DATA).items():
        machine.memory.poke(address, value)
    return machine, 1_000_000


def _bitcount_machine():
    machine = XimdMachine(_BITCOUNT_PROGRAM)
    machine.regfile.poke(BITCOUNT_REGS["n"], 48)
    for address, value in bitcount_memory(_BITCOUNT_DATA).items():
        machine.memory.poke(address, value)
    return machine, 5_000_000


def _ll12_vliw_machine():
    machine = VliwMachine(_LL12_PROGRAM)
    machine.regfile.poke(LL12_REGS["n"], 100)
    for address, value in livermore12_memory(_LL12_Y).items():
        machine.memory.poke(address, value)
    return machine, 1_000_000


def _longrunner_machine(cls, bundle):
    program, registers = bundle
    machine = cls(program)
    for index, value in registers.items():
        machine.regfile.poke(index, value)
    return machine, 10_000_000


#: (name, factory, long-runner?) — the E14 workload set.
WORKLOADS = (
    ("minmax (ximd)", _minmax_machine, False),
    ("bitcount (ximd)", _bitcount_machine, False),
    ("livermore 12 (vliw)", _ll12_vliw_machine, False),
    ("longrunner (ximd)",
     lambda: _longrunner_machine(XimdMachine, _LONG_XIMD), True),
    ("longrunner (vliw)",
     lambda: _longrunner_machine(VliwMachine, _LONG_VLIW), True),
)


def _fingerprint(result):
    return (
        result.cycles,
        result.halted,
        tuple(result.registers),
        tuple(result.final_pcs),
        dataclasses.asdict(result.stats),
        tuple(result.stats.per_opcode.items()),
        tuple(result.stats.per_fu_ops.items()),
    )


def _measure(factory, engine, min_time=MIN_MEASURE_SECONDS):
    """(result, best simulated-cycles-per-host-second) for one engine.

    The first (untimed) run warms the per-program caches — decode for
    the fast engine, the compiled loop for the specialized one — so
    the recorded rate is the steady state both engines reach from the
    second machine onward.  Best-of-N is the standard defence against
    scheduler noise on a shared host; N grows until *min_time* of
    timed wall clock has accumulated.
    """
    machine, limit = factory()
    result = machine.run(limit, engine=engine)
    assert machine.engine_used == engine
    best_rate = 0.0
    elapsed = 0.0
    while elapsed < min_time:
        machine, limit = factory()
        start = time.perf_counter()
        result = machine.run(limit, engine=engine)
        delta = time.perf_counter() - start
        elapsed += delta
        assert machine.engine_used == engine
        best_rate = max(best_rate, result.cycles / delta)
    return result, best_rate


def _ratio(factory):
    """(fast rate, specialized rate, ratio) with identity asserted."""
    fast_result, fast_rate = _measure(factory, "fast")
    spec_result, spec_rate = _measure(factory, "specialized")
    assert _fingerprint(spec_result) == _fingerprint(fast_result), (
        "specialized engine diverged from fast")
    return fast_rate, spec_rate, (spec_rate / fast_rate
                                  if fast_rate else 0.0)


def _bench_body():
    machine, limit = _minmax_machine()
    return machine.run(limit, engine="specialized").cycles


def test_codegen_throughput(benchmark, record_table, record_json,
                            bench_summary):
    benchmark(_bench_body)

    rows = []
    payload = {}
    ratios = {}
    for name, factory, is_longrunner in WORKLOADS:
        fast_rate, spec_rate, ratio = _ratio(factory)
        floor = (MIN_LONGRUNNER_RATIO if is_longrunner
                 else MIN_PAPER_RATIO)
        if ratio < floor and not is_longrunner:
            # wall-clock quotient: re-measure once before believing it
            fast_rate, spec_rate, ratio = _ratio(factory)
        stats = {
            "fast_kcycles_per_sec": round(fast_rate / 1000, 3),
            "specialized_kcycles_per_sec": round(spec_rate / 1000, 3),
            "specialized_over_fast": round(ratio, 3),
        }
        rows.append([name, stats["fast_kcycles_per_sec"],
                     stats["specialized_kcycles_per_sec"],
                     stats["specialized_over_fast"]])
        payload[name] = stats
        bench_summary(f"codegen: {name}", stats, section="timing")
        ratios[name] = (ratio, is_longrunner)

    table = render_table(
        ["workload", "fast kcy/s", "spec kcy/s", "spec/fast"],
        rows, title="E18: specialized vs fast engine throughput "
                    "(wall clock — warn-only)")
    record_table("codegen_throughput", table)
    record_json("codegen_throughput", payload)

    # paper workloads: every one must clear 1.5x (re-measured above)
    for name, (ratio, is_longrunner) in ratios.items():
        if not is_longrunner:
            assert ratio >= MIN_PAPER_RATIO, (
                f"{name}: specialized only {ratio:.2f}x over fast "
                f"(floor {MIN_PAPER_RATIO}x)")
    # long-runners: at least one must clear 2.0x; re-measure the best
    # candidate once if the first pass missed
    long_ratios = {name: ratio
                   for name, (ratio, is_lr) in ratios.items() if is_lr}
    if max(long_ratios.values()) < MIN_LONGRUNNER_RATIO:
        best = max(long_ratios, key=long_ratios.get)
        factory = dict((n, f) for n, f, _ in WORKLOADS)[best]
        *_rates, long_ratios[best] = _ratio(factory)
    assert max(long_ratios.values()) >= MIN_LONGRUNNER_RATIO, (
        f"no long-runner reached {MIN_LONGRUNNER_RATIO}x "
        f"(best: {max(long_ratios.values()):.2f}x)")
