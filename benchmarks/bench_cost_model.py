"""E13 — section 4.3: the per-opcode energy/area/latency cost model.

Section 4.3 sizes the prototype from its components (register file,
sequencer, FU data paths); :mod:`repro.analysis.cost` extends that
decomposition to energy and area per data operation.  Regenerates the
cost table directly from the executable model and records its headline
shape: coverage (every defined opcode is costed), the cheapest/most
expensive operations, and a reference fold over a known workload so
energy regressions in the model itself are gated like cycle counts.
"""

from repro.analysis import (
    OP_COSTS,
    cost_of,
    cost_table,
    energy_report,
    render_kv,
)
from repro.asm import assemble
from repro.isa import OPCODES
from repro.machine import XimdMachine
from repro.workloads import MINMAX_REGS, minmax_memory, minmax_source, random_ints


def _minmax_energy(n=64):
    data = random_ints(n, seed=3)[1:]
    machine = XimdMachine(assemble(minmax_source("halt")))
    machine.regfile.poke(MINMAX_REGS["n"], len(data))
    for address, value in minmax_memory(data).items():
        machine.memory.poke(address, value)
    result = machine.run(1_000_000)
    return energy_report(result.stats.per_opcode, result.cycles)


def test_cost_model_table(benchmark, record_table, record_json,
                          bench_summary):
    table = benchmark(cost_table)
    costed = {m: c for m, c in OP_COSTS.items() if m != "nop"}
    cheapest = min(costed.values(), key=lambda c: (c.energy_pj, c.mnemonic))
    priciest = max(costed.values(), key=lambda c: (c.energy_pj, c.mnemonic))
    fold = _minmax_energy()

    extra = render_kv("cost model shape", [
        ("costed opcodes", len(OP_COSTS)),
        ("cheapest op", f"{cheapest.mnemonic} ({cheapest.energy_pj:.1f} pJ)"),
        ("priciest op", f"{priciest.mnemonic} ({priciest.energy_pj:.1f} pJ)"),
        ("minmax n=64 energy", f"{fold.total_energy_pj:.1f} pJ"),
        ("minmax pJ/cycle", f"{fold.energy_per_cycle_pj:.2f}"),
    ])
    record_table("cost_model", "E13: per-opcode cost model (section 4.3)\n"
                 + table + "\n\n" + extra + "\n\n" + fold.render_text())
    record_json("cost_model", {
        "costed_opcodes": len(OP_COSTS),
        "table": {m: {"energy_class": c.energy_class,
                      "energy_pj": c.energy_pj,
                      "rel_area": c.rel_area,
                      "latency_class": c.latency_class}
                  for m, c in sorted(OP_COSTS.items())},
        "minmax_n64": fold.to_dict(),
    })

    bench_summary("cost_model", {
        "costed_opcodes": len(OP_COSTS),
        "minmax_n64_energy_pj": round(fold.total_energy_pj, 6),
        "minmax_n64_energy_per_cycle_pj": round(
            fold.energy_per_cycle_pj, 6),
    }, section="models")

    # every defined opcode is costed (and nothing extra)
    assert set(OP_COSTS) == set(OPCODES)
    # the iterative float divider is the hungriest structure; memory
    # and float ops cost more than the integer ALU slice
    assert priciest.mnemonic == "fdiv"
    assert cost_of("load").energy_pj > cost_of("iadd").energy_pj
    assert cost_of("fadd").energy_pj > cost_of("iadd").energy_pj
    assert "store" in table and "alu_int" in table
