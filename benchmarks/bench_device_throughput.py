"""E17 — device-path throughput: memory-mapped I/O on the fast engine.

The fast engine models memory-mapped devices natively (the device
table is pre-resolved into the flat per-FU loop), so Figure-12-style
port-polling workloads no longer fall back to the reference
interpreter.  This benchmark pins that down twice over:

* **identity** — for the Figure-12 exchange and a synthetic port pump,
  a fast run must match a reference run bit-for-bit: architectural
  result, every port's census (``reads`` / ``polls_failed`` /
  ``delivered`` / ``writes``), and the ``RunReport.io`` section;
* **throughput** — the fast engine must sustain >= 3x the reference
  interpreter's simulated-cycles-per-second on the device path, the
  same floor E14 holds on the device-free long-runner.  Same-host
  ratio, so it can never flake on absolute host speed.

Wall-clock rates land in the warn-only ``timing`` section of
BENCH_SUMMARY.json; the bit-identity and speedup-floor assertions are
the hard contract.
"""

import dataclasses
import time

from repro.analysis import render_table
from repro.asm import assemble
from repro.machine import (
    DeviceMap,
    InputPort,
    OutputPort,
    VliwMachine,
    XimdMachine,
)
from repro.obs import Observer, RunReport
from repro.workloads import iosync_sync_source, make_devices

#: ISSUE acceptance floor for the fast engine on device workloads.
MIN_FAST_SPEEDUP = 3.0

#: Accumulate at least this much wall time per measurement (the
#: Figure-12 run is only ~200 simulated cycles, so it repeats a lot).
MIN_MEASURE_SECONDS = 0.25

#: the Figure-12 "interleaved" port-arrival scenario.
IOSYNC_ARRIVALS = ([(2, 11), (18, 12), (34, 13)],
                   [(10, 21), (26, 22), (42, 23)])

#: Synthetic port pump: a width-1 poll/store loop that drains an input
#: port into an output port, five cycles per value, halting on the
#: first empty read.  Every simulated cycle but the branch touches a
#: device, making this the worst case for the device-range guard.
PUMP_VALUES = 2_000

_PUMP_SOURCE = """\
.width 1
.const IN 0x10
.const OUT 0x11
poll:
| -> . ; load #IN,#0,r0 ; done
-
| -> . ; eq r0,#0 ; done
-
| if cc0 drain, . ; nop ; done
-
| -> . ; store r0,#OUT ; done
-
| -> poll ; nop ; done
drain:
| halt ; nop ; done
"""


# Assembled once: machines sharing a Program share one fast-engine
# decode, so the repeat loop times the run, not the lowering.
_IOSYNC_PROGRAM = assemble(iosync_sync_source())
_PUMP_PROGRAM = assemble(_PUMP_SOURCE)


def _iosync_machine(obs=None):
    p1, p2 = IOSYNC_ARRIVALS
    devices, in1, in2, out1, out2 = make_devices(p1, p2)
    machine = XimdMachine(_IOSYNC_PROGRAM, devices=devices,
                          **({"obs": obs} if obs is not None else {}))
    return machine, (in1, in2), (out1, out2), 1_000_000


def _pump_machine(machine_cls, obs=None):
    values = [1 + (i % 997) for i in range(PUMP_VALUES)]
    port = InputPort([(0, value) for value in values])
    out = OutputPort()
    devices = DeviceMap()
    devices.map(0x10, 1, port)
    devices.map(0x11, 1, out)
    machine = machine_cls(_PUMP_PROGRAM, devices=devices,
                          **({"obs": obs} if obs is not None else {}))
    return machine, (port,), (out,), 100_000


WORKLOADS = (
    ("fig12 iosync (ximd)", lambda obs=None: _iosync_machine(obs)),
    ("port pump (ximd)", lambda obs=None: _pump_machine(XimdMachine, obs)),
    ("port pump (vliw)", lambda obs=None: _pump_machine(VliwMachine, obs)),
)


def _fingerprint(result):
    return (
        result.cycles,
        result.halted,
        tuple(result.registers),
        tuple(result.final_pcs),
        dataclasses.asdict(result.stats),
        tuple(result.stats.per_opcode.items()),
        tuple(result.stats.per_fu_ops.items()),
    )


def _port_census(inputs, outs):
    return {
        "port_reads": sum(port.reads for port in inputs),
        "port_polls_failed": sum(port.polls_failed for port in inputs),
        "port_delivered": sum(port.delivered for port in inputs),
        "port_writes": sum(len(port.writes) for port in outs),
    }


def _identity_run(factory, engine):
    """One observed run: (fingerprint, port census, io report section)."""
    machine, inputs, outs, limit = factory(obs=Observer())
    result = machine.run(limit, engine=engine)
    assert machine.engine_used == engine
    return (_fingerprint(result), _port_census(inputs, outs),
            RunReport.from_machine(machine).io)


def _measure(factory, engine, min_time=MIN_MEASURE_SECONDS):
    """(result, cycles/sec) for one device workload + engine."""
    total_cycles = 0
    elapsed = 0.0
    result = None
    while elapsed < min_time:
        machine, _inputs, _outs, limit = factory()
        start = time.perf_counter()
        result = machine.run(limit, engine=engine)
        elapsed += time.perf_counter() - start
        assert machine.engine_used == engine
        total_cycles += result.cycles
    return result, total_cycles / elapsed


def _bench_body():
    machine, _inputs, _outs, limit = _pump_machine(XimdMachine)
    return machine.run(limit, engine="fast").cycles


def test_device_throughput(benchmark, record_table, record_json,
                           bench_summary):
    benchmark(_bench_body)

    rows = []
    payload = {}
    for name, factory in WORKLOADS:
        ref_identity = _identity_run(factory, "reference")
        fast_identity = _identity_run(factory, "fast")
        assert fast_identity == ref_identity, (
            f"{name}: fast engine diverged from reference on the "
            f"device path")
        assert fast_identity[1]["port_reads"] > 0
        assert fast_identity[2]["writes"] > 0

        ref_result, ref_rate = _measure(factory, "reference")
        fast_result, fast_rate = _measure(factory, "fast")
        assert _fingerprint(fast_result) == _fingerprint(ref_result)
        speedup = fast_rate / ref_rate if ref_rate else 0.0
        stats = {
            "sim_cycles": ref_result.cycles,
            "ref_kcycles_per_sec": round(ref_rate / 1000, 3),
            "fast_kcycles_per_sec": round(fast_rate / 1000, 3),
            "fast_over_ref": round(speedup, 3),
            **fast_identity[1],
        }
        rows.append([name, stats["sim_cycles"],
                     stats["ref_kcycles_per_sec"],
                     stats["fast_kcycles_per_sec"],
                     stats["fast_over_ref"]])
        payload[name] = stats
        bench_summary(f"device {name}", stats, section="timing")

    table = render_table(
        ["workload", "sim cycles", "ref kcy/s", "fast kcy/s", "fast/ref"],
        rows, title="E17: device-path throughput, reference vs fast "
                    "engine (wall clock — warn-only)")
    record_table("device_throughput", table)
    record_json("device_throughput", payload)

    # The acceptance floor: devices must not give back the fast
    # engine's win.  Same-host ratio, immune to absolute speed.
    for name, stats in payload.items():
        assert stats["fast_over_ref"] >= MIN_FAST_SPEEDUP, (
            f"{name}: fast engine only {stats['fast_over_ref']:.2f}x "
            f"over reference on the device path "
            f"(floor {MIN_FAST_SPEEDUP}x)")
