"""E1 — Example 1: the TPROC scalar schedule.

The paper's Percolation-Scheduling compiler packs tproc() into 5 wide
instructions on 4 FUs.  Both the verbatim transcription and our own
compiler's output are run; the reproduction claim is that our compiled
schedule matches the paper's 5-cycle length and both compute the C
function exactly.
"""

from repro.analysis import render_table
from repro.asm import assemble
from repro.compiler import compile_xc
from repro.machine import run_ximd
from repro.workloads import TPROC_REGS, tproc_reference, tproc_source

TPROC_XC = """
func tproc(a, b, c, d) {
  var e, f, g;
  e = a + b;
  f = e + c * a;
  g = a - (b + c);
  e = d - e;
  return (a + b + c) + d + e + (f + g);
}
"""

INPUTS = (7, 3, -2, 11)


def _run_paper_schedule():
    program = assemble(tproc_source())
    return run_ximd(program, registers={
        TPROC_REGS[n]: v for n, v in zip("abcd", INPUTS)})


def test_tproc_schedules(benchmark, record_table, record_json,
                         bench_summary):
    result = benchmark(_run_paper_schedule)
    expected = tproc_reference(*INPUTS)
    assert result.register(TPROC_REGS["f"]) == expected

    rows = []
    # paper's hand/percolation schedule: 5 instructions + halt row
    rows.append(["paper listing (Example 1)", 4, 5, result.cycles,
                 result.register(TPROC_REGS["f"])])
    for width in (1, 2, 4, 8):
        cf = compile_xc(TPROC_XC, width=width)
        compiled = run_ximd(cf.program, registers={
            cf.register(n): v for n, v in zip("abcd", INPUTS)})
        assert compiled.register(cf.register("__ret")) == expected
        rows.append([f"repro compiler, width {width}", width,
                     cf.static_rows - 1, compiled.cycles,
                     compiled.register(cf.register("__ret"))])

    table = render_table(
        ["schedule", "FUs", "code rows (excl. halt)", "cycles", "result"],
        rows, title="E1: TPROC (Example 1) — paper vs repro compiler")
    record_table("ex1_tproc", table)
    record_json("ex1_tproc", {
        "inputs": list(INPUTS),
        "expected": expected,
        "schedules": [
            {"schedule": name, "fus": fus, "code_rows": code_rows,
             "cycles": cycles, "result": value}
            for name, fus, code_rows, cycles, value in rows
        ],
    })

    bench_summary("ex1_tproc", {
        "paper_cycles": rows[0][3],
        "width4_code_rows": rows[3][2],
        "width4_cycles": rows[3][3],
    }, section="figures")

    # shape: our width-4 compilation matches (in fact slightly beats:
    # 4 rows vs 5) the paper's percolation-scheduled 5-row schedule
    width4 = rows[3]
    assert width4[2] <= 5, "width-4 compilation should be <= 5 rows"
    # and narrower machines degrade monotonically
    heights = [row[2] for row in rows[1:]]
    assert heights == sorted(heights, reverse=True) or \
        all(heights[i] >= heights[i + 1] for i in range(len(heights) - 1))
