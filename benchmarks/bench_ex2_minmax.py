"""E3 — Example 2: MINMAX fork/join vs single-stream VLIW.

Each loop iteration has two independent conditional updates; XIMD
performs both control operations in parallel (partition {0,1}{2}{3}),
while the VLIW version serializes them through its single branch unit.
Reported: cycles and speedup across array sizes.
"""

from repro.analysis import energy_report, render_table, speedup
from repro.asm import assemble
from repro.machine import VliwMachine, XimdMachine
from repro.workloads import (
    MINMAX_REGS,
    minmax_memory,
    minmax_reference,
    minmax_source,
    minmax_vliw_source,
    random_ints,
)

SIZES = (4, 16, 64, 256)


def _run(machine_cls, source, data):
    machine = machine_cls(assemble(source))
    machine.regfile.poke(MINMAX_REGS["n"], len(data))
    for address, value in minmax_memory(data).items():
        machine.memory.poke(address, value)
    result = machine.run(1_000_000)
    got = (machine.regfile.peek(MINMAX_REGS["min"]),
           machine.regfile.peek(MINMAX_REGS["max"]))
    assert got == minmax_reference(data)
    return result


def _ximd_once(data):
    return _run(XimdMachine, minmax_source("halt"), data)


def test_minmax_ximd_vs_vliw(benchmark, record_table, record_json,
                             bench_summary):
    data_for_benchmark = random_ints(64, seed=7)[1:]
    benchmark(_ximd_once, data_for_benchmark)

    rows = []
    for n in SIZES:
        data = random_ints(n, seed=n)[1:]
        rx = _run(XimdMachine, minmax_source("halt"), data)
        rv = _run(VliwMachine, minmax_vliw_source(), data)
        rows.append([n, rx.cycles, rv.cycles,
                     speedup(rv.cycles, rx.cycles)])
    table = render_table(
        ["n", "XIMD cycles", "VLIW cycles", "speedup"],
        rows, title="E3: MINMAX (Example 2) — xsim vs vsim")
    record_table("ex2_minmax", table)
    record_json("ex2_minmax", [
        {"n": n, "ximd_cycles": xc, "vliw_cycles": vc, "speedup": s}
        for n, xc, vc, s in rows
    ])

    bench_summary("ex2_minmax_n256", {
        "ximd_cycles": rows[-1][1],
        "vliw_cycles": rows[-1][2],
        "speedup": rows[-1][3],
        "ximd_energy_pj": round(energy_report(
            rx.stats.per_opcode, rx.cycles).total_energy_pj, 6),
        "vliw_energy_pj": round(energy_report(
            rv.stats.per_opcode, rv.cycles).total_energy_pj, 6),
    }, section="figures")

    # shape: XIMD wins everywhere, settling around ~1.7x (3-cycle
    # iterations vs the VLIW version's serialized 5-7 cycles)
    assert all(row[3] > 1.3 for row in rows)
    assert rows[-1][3] > 1.6
