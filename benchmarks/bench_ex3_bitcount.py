"""E5 — Example 3: BITCOUNT1 with explicit barrier synchronization.

Four data-dependent inner loops run concurrently, one per FU, joined by
the ALL-sync barrier at address 10:.  The VLIW machine must run the
four loops back to back.  Reported: cycles and speedup across array
sizes, plus the barrier-wait overhead.
"""

from repro.analysis import energy_report, render_table, speedup
from repro.asm import assemble
from repro.machine import VliwMachine, XimdMachine
from repro.workloads import (
    B_BASE,
    BITCOUNT_REGS,
    bitcount1_reference,
    bitcount1_source,
    bitcount_memory,
    bitcount_total_reference,
    bitcount_total_source,
    bitcount_vliw_source,
    random_words,
)

SIZES = (12, 24, 48, 96)


def _run_ximd(data, n, source, reference):
    machine = XimdMachine(assemble(source))
    machine.regfile.poke(BITCOUNT_REGS["n"], n)
    for address, value in bitcount_memory(data).items():
        machine.memory.poke(address, value)
    result = machine.run(5_000_000)
    got = {k: machine.memory.peek(B_BASE + k) for k in range(n + 1)}
    assert got == reference(data, n)
    return result


def _run_vliw(data, n):
    machine = VliwMachine(assemble(bitcount_vliw_source()))
    machine.regfile.poke(BITCOUNT_REGS["n"], n)
    for address, value in bitcount_memory(data).items():
        machine.memory.poke(address, value)
    result = machine.run(5_000_000)
    got = {k: machine.memory.peek(B_BASE + k) for k in range(n + 1)}
    assert got == bitcount_total_reference(data, n)
    return result


def test_bitcount_barrier_sync(benchmark, record_table, record_json,
                               bench_summary):
    bench_data = random_words(24, seed=1)
    benchmark(_run_ximd, bench_data, 24, bitcount1_source(),
              bitcount1_reference)

    rows = []
    for n in SIZES:
        data = random_words(n, seed=n)
        rx = _run_ximd(data, n, bitcount_total_source(),
                       bitcount_total_reference)
        rv = _run_vliw(data, n)
        rows.append([n, rx.cycles, rv.cycles,
                     speedup(rv.cycles, rx.cycles)])
    table = render_table(
        ["n", "XIMD cycles (4 streams)", "VLIW cycles", "speedup"],
        rows,
        title="E5: BITCOUNT1 (Example 3) — barrier-joined streams "
              "vs single stream")
    record_table("ex3_bitcount", table)
    record_json("ex3_bitcount", [
        {"n": n, "ximd_cycles": xc, "vliw_cycles": vc, "speedup": s}
        for n, xc, vc, s in rows
    ])

    bench_summary("ex3_bitcount_n96", {
        "ximd_cycles": rows[-1][1],
        "vliw_cycles": rows[-1][2],
        "speedup": rows[-1][3],
        "ximd_energy_pj": round(energy_report(
            rx.stats.per_opcode, rx.cycles).total_energy_pj, 6),
        "vliw_energy_pj": round(energy_report(
            rv.stats.per_opcode, rv.cycles).total_energy_pj, 6),
    }, section="figures")

    # shape: XIMD wins on every size, and the advantage grows as the
    # 4-wide main loop amortizes the sequential cleanup (1.2x at n=12
    # toward ~2.3x; the asymptote is below 4x because the XIMD inner
    # loop spends 4-5 cycles per bit position vs the VLIW loop's 3)
    assert all(row[3] > 1.1 for row in rows)
    assert rows[-1][3] > 2.0
    speedups = [row[3] for row in rows]
    assert speedups == sorted(speedups)
