"""E19 — what robustness costs when nothing goes wrong.

The run driver executes every program in segments so it can inject
scheduled faults and diagnose hangs at segment boundaries
(``repro.machine.runtime``).  The design claim is that a zero-fault
run pays essentially nothing for that machinery: segment boundaries
fall at geometrically spaced check cycles (O(log cycles) of them), so
the hot loops of all three engines run exactly as before.  This
benchmark prices the claim on the synthetic long-runner:

* ``bare``      — hang detection off (one segment to the limit: the
  pre-robustness driver shape);
* ``watchful``  — the default config, deadlock/livelock checks armed;
* ``faulted``   — a seeded 12-event :class:`~repro.faults.FaultPlan`
  (deterministic advisory numbers, not a timing row).

The hard assertion: the watchful run must stay within
:data:`HANG_MAX_OVERHEAD` of the bare run on the specialized engine.
Wall-clock rates land in the warn-only ``timing`` section; the
deterministic fault-run facts (cycles, faults applied — identical on
every host) land in the advisory ``faults`` section for the diff
engine to track.
"""

import time

from repro.analysis import render_table
from repro.faults import FaultPlan
from repro.machine import XimdMachine, research_config
from repro.workloads import longrunner_program

LONGRUNNER_ITERATIONS = 20_000

#: Accumulate at least this much wall time per configuration.
MIN_MEASURE_SECONDS = 0.25

#: Hard ceiling on the hang monitor's zero-fault overhead over a
#: detection-off run of the same engine.  The checks run O(log cycles)
#: times, so anything above a few percent is a structural regression
#: (e.g. a check sneaking into the per-cycle path).
HANG_MAX_OVERHEAD = 1.05

#: One program shared across repetitions, so the per-program compiled
#: loop is reused instead of re-generated every run.
_PROGRAM, _REGISTERS = longrunner_program(
    iterations=LONGRUNNER_ITERATIONS)

#: The chaos plan: memory and sync faults only.  Register flips are
#: deliberately excluded — one landing on the long-runner's loop
#: counter turns the 60k-cycle run into a billion-cycle one, and this
#: benchmark prices overhead, not recovery (the chaos suites in
#: tests/test_faults.py cover counter-mangling plans).
_PLAN = FaultPlan.seeded(19, 12, mean_gap=400.0,
                         kinds=["mem_corrupt", "ss_glitch",
                                "spurious_wakeup"])


def _longrunner(config=None):
    machine = XimdMachine(_PROGRAM, config=config)
    for index, value in _REGISTERS.items():
        machine.regfile.poke(index, value)
    return machine


def _bare_config():
    return research_config(_PROGRAM.width, hang_detection=False)


def _measure(make, min_time=MIN_MEASURE_SECONDS, faults=None):
    """Simulated cycles per host second for one driver configuration.

    One untimed warm-up run first, so the timed window never includes
    per-program decode or loop compilation."""
    machine = make()
    machine.run(10_000_000, faults=faults)
    assert machine.engine_used == "specialized", (
        f"expected specialized, ran {machine.engine_used}")
    total_cycles = 0
    elapsed = 0.0
    while elapsed < min_time:
        machine = make()
        start = time.perf_counter()
        result = machine.run(10_000_000, faults=faults)
        elapsed += time.perf_counter() - start
        total_cycles += result.cycles
    return total_cycles / elapsed


def _bench_body():
    return _longrunner().run(10_000_000).cycles


def test_fault_overhead(benchmark, record_table, record_json,
                        bench_summary):
    benchmark(_bench_body)

    rates = {
        "bare (hang detection off)": _measure(
            lambda: _longrunner(_bare_config())),
        "watchful (default)": _measure(_longrunner),
        "faulted (12-event plan)": _measure(_longrunner, faults=_PLAN),
    }
    baseline = rates["bare (hang detection off)"]

    rows = []
    payload = {}
    for name, rate in rates.items():
        overhead = baseline / rate if rate else 0.0
        stats = {
            "engine": "specialized",
            "kcycles_per_sec": round(rate / 1000, 3),
            "overhead_vs_bare": round(overhead, 3),
        }
        rows.append([name, stats["kcycles_per_sec"],
                     stats["overhead_vs_bare"]])
        payload[name] = stats
        bench_summary(f"fault overhead: {name}", stats,
                      section="timing")

    # the deterministic face of the same run: identical on every host
    # and every engine, so it can gate via the advisory faults section
    faulted = _longrunner()
    result = faulted.run(10_000_000, faults=_PLAN)
    clean_cycles = _longrunner().run(10_000_000).cycles
    masked = sum(1 for record in faulted.fault_log
                 if "masked" in record)
    facts = {
        "plan_fingerprint": _PLAN.fingerprint(),
        "faults_applied": len(faulted.fault_log),
        "faults_masked": masked,
        "clean_cycles": clean_cycles,
        "faulted_cycles": result.cycles,
        "halted": result.halted,
    }
    record_json("fault_overhead", {"timing": payload, "faults": facts})
    bench_summary("longrunner chaos", facts, section="faults")

    table = render_table(
        ["configuration", "kcy/s", "overhead (x)"],
        rows, title="E19: fault/hang machinery overhead on the "
                    "long-runner (wall clock — warn-only)")
    record_table("fault_overhead",
                 table + "\n\nseeded plan " + facts["plan_fingerprint"]
                 + f": {facts['faults_applied']} faults "
                 f"({facts['faults_masked']} masked), "
                 f"{facts['clean_cycles']} -> "
                 f"{facts['faulted_cycles']} cycles")

    # timing, so re-measure before believing a failure — a noisy host
    # beats the generous bound only transiently, and the budget holds
    # if ANY paired measurement lands inside it
    watchful = payload["watchful (default)"]["overhead_vs_bare"]
    for _ in range(2):
        if watchful <= HANG_MAX_OVERHEAD:
            break
        baseline = _measure(lambda: _longrunner(_bare_config()))
        watchful = baseline / _measure(_longrunner)
    assert watchful <= HANG_MAX_OVERHEAD, (
        f"zero-fault hang-monitor overhead {watchful:.3f}x exceeds "
        f"the {HANG_MAX_OVERHEAD}x budget over a detection-off run")
