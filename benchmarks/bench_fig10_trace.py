"""E4 — Figure 10: the MINMAX address trace, reproduced cell-for-cell.

The one exactly-determined artifact in the paper: for IZ() = (5,3,4,7)
the per-cycle PCs, condition codes, and SSET partitions of the MINMAX
program.  The benchmark times the traced, partition-tracked execution;
the assertions compare every cell against the published figure.
"""

from repro.asm import assemble
from repro.machine import TrackerKind, XimdMachine
from repro.workloads import (
    FIGURE10_DATA,
    FIGURE10_EXPECTED,
    MINMAX_REGS,
    minmax_memory,
    minmax_source,
)


def _traced_run():
    machine = XimdMachine(assemble(minmax_source("loop")), trace=True,
                          tracker=TrackerKind.EXACT)
    machine.regfile.poke(MINMAX_REGS["n"], len(FIGURE10_DATA))
    for address, value in minmax_memory(FIGURE10_DATA).items():
        machine.memory.poke(address, value)
    for _ in range(len(FIGURE10_EXPECTED)):
        machine.step()
    return machine


def test_figure10_trace(benchmark, record_table, record_json,
                        bench_summary):
    machine = benchmark(_traced_run)
    table = machine.trace.format(show_sync=True)
    record_table("fig10_minmax_trace", table)
    record_json("fig10_minmax_trace", [
        {"cycle": record.cycle, "pcs": list(record.pcs),
         "cc": record.condition_codes, "ss": record.sync_signals,
         "partition": record.partition_text()}
        for record in machine.trace
    ])

    bench_summary("fig10_minmax_trace", {
        "trace_cycles": len(machine.trace),
        "max_streams": max(len(record.partition)
                           for record in machine.trace),
    }, section="figures")

    for record, (pcs, cc, partition) in zip(machine.trace,
                                            FIGURE10_EXPECTED):
        assert tuple(record.pcs) == pcs, f"cycle {record.cycle} PCs"
        assert record.condition_codes == cc, f"cycle {record.cycle} CC"
        assert record.partition_text() == partition, \
            f"cycle {record.cycle} partition"
    assert machine.regfile.peek(MINMAX_REGS["min"]) == 3
    assert machine.regfile.peek(MINMAX_REGS["max"]) == 7
