"""E6 — Figure 11: BITCOUNT1's control-flow state transitions.

The figure diagrams the run-time behavior: the program starts as one
SSET, forks into four at the first data-dependent inner-loop branch,
each stream iterates 04:-08: independently, the barrier at 10: holds
BUSY streams, and the join at 11: restores one SSET.  Reported: the
partition timeline and stream statistics extracted from a tracked run.

Note (documented deviation): the paper's text places the first fork at
state 07:; under the formal SSET definition the first branch whose
outcome is per-FU data-dependent is the ``if cci`` at 05:, and the
trackers report the fork there.
"""

from repro.analysis import PartitionStats, energy_report, render_kv
from repro.asm import assemble
from repro.machine import TrackerKind, XimdMachine
from repro.workloads import (
    BITCOUNT_REGS,
    bitcount1_source,
    bitcount_memory,
    random_words,
)

N = 12


def _tracked_run():
    # the heuristic tracker keeps this fast; test_partition.py checks
    # its agreement with the exact tracker on the paper's programs
    machine = XimdMachine(assemble(bitcount1_source()), trace=True,
                          tracker=TrackerKind.HEURISTIC)
    machine.regfile.poke(BITCOUNT_REGS["n"], N)
    data = random_words(N, seed=8)
    for address, value in bitcount_memory(data).items():
        machine.memory.poke(address, value)
    machine.run(1_000_000)
    return machine


def test_bitcount_control_flow(benchmark, record_table, record_json,
                               bench_summary):
    machine = benchmark(_tracked_run)
    trace = machine.trace
    stats = PartitionStats.from_trace(trace)

    sizes = [len(record.partition) for record in trace]
    first_fork = next(i for i, s in enumerate(sizes) if s > 1)
    joins = [i for i in range(1, len(sizes))
             if sizes[i] == 1 and sizes[i - 1] > 1]
    barrier_cycles = sum(
        1 for record in trace
        if any(pc == 0x10 for pc in record.pcs))

    text = render_kv(
        "E6: BITCOUNT1 control flow (Figure 11)",
        [("cycles", stats.cycles),
         ("stream histogram", str(stats.stream_histogram)),
         ("mean streams", round(stats.mean_streams, 2)),
         ("max streams", stats.max_streams),
         ("multi-stream fraction", f"{stats.multi_stream_fraction:.0%}"),
         ("first fork at cycle", first_fork),
         ("PC at first fork", f"{trace[first_fork - 1].pcs}"),
         ("join cycles", str(joins)),
         ("cycles touching barrier 10:", barrier_cycles)])
    record_table("fig11_bitcount_flow", text)
    record_json("fig11_bitcount_flow", {
        "cycles": stats.cycles,
        "stream_histogram": {str(k): v
                             for k, v in stats.stream_histogram.items()},
        "mean_streams": stats.mean_streams,
        "max_streams": stats.max_streams,
        "multi_stream_fraction": stats.multi_stream_fraction,
        "first_fork_cycle": first_fork,
        "join_cycles": joins,
        "barrier_cycles": barrier_cycles,
    })

    bench_summary("fig11_bitcount_flow", {
        "cycles": stats.cycles,
        "max_streams": stats.max_streams,
        "mean_streams": stats.mean_streams,
        "barrier_cycles": barrier_cycles,
        "energy_pj": round(energy_report(
            machine.stats.per_opcode,
            machine.stats.cycles).total_energy_pj, 6),
    }, section="figures")

    # Figure 11 shape assertions
    assert sizes[0] == 1                   # single SSET start
    assert stats.max_streams == 4          # four-way fork
    assert joins, "streams must rejoin after the barrier"
    assert sizes[-1] == 1                  # single SSET at the end
    assert barrier_cycles > 0              # barrier actually exercised
    # the fork happens inside the inner loop region (04:-08:)
    fork_pcs = set(trace[first_fork].pcs)
    assert fork_pcs & set(range(0x04, 0x11))
