"""E7 — Figure 12: multiple non-blocking synchronizations.

Two processes exchange six values through shared registers; variable
availability rides on the sync bits (a->SS0 ... z->SS6).  The paper:
implementing these dependences with sync bits instead of register or
memory flags "will result in increased performance."  Reported: total
cycles for the sync-bit and memory-flag versions over several port
timing scenarios, and the non-blocking handoff latency.
"""

from repro.analysis import render_table, speedup
from repro.asm import assemble
from repro.machine import XimdMachine
from repro.workloads import (
    iosync_memory_source,
    iosync_reference,
    iosync_sync_source,
    make_devices,
)

SCENARIOS = {
    "p1 early, p2 late": ([(2, 11), (4, 12), (6, 13)],
                          [(40, 21), (44, 22), (48, 23)]),
    "interleaved": ([(2, 11), (18, 12), (34, 13)],
                    [(10, 21), (26, 22), (42, 23)]),
    "all instant": ([(0, 11), (0, 12), (0, 13)],
                    [(0, 21), (0, 22), (0, 23)]),
    "p2 early, p1 late": ([(40, 11), (44, 12), (48, 13)],
                          [(2, 21), (4, 22), (6, 23)]),
}


def _run(source, arrivals, engine="auto"):
    p1, p2 = arrivals
    devices, in1, in2, out1, out2 = make_devices(p1, p2)
    machine = XimdMachine(assemble(source), devices=devices)
    result = machine.run(1_000_000, engine=engine)
    # devices block neither accelerated tier: auto must specialize
    assert machine.engine_used == (
        "reference" if engine == "reference" else "specialized")
    expected1, expected2 = iosync_reference(
        [v for _, v in p1], [v for _, v in p2])
    assert out1.values == expected1
    assert out2.values == expected2
    return result, out1, out2, (in1, in2)


def _port_census(inputs, outs):
    return {
        "port_reads": sum(port.reads for port in inputs),
        "port_polls_failed": sum(port.polls_failed for port in inputs),
        "port_delivered": sum(port.delivered for port in inputs),
        "port_writes": sum(len(port.writes) for port in outs),
    }


def test_iosync_sync_vs_memory_flags(benchmark, record_table, record_json,
                                     bench_summary):
    benchmark(_run, iosync_sync_source(),
              SCENARIOS["interleaved"])

    rows = []
    port_stats = {}
    for name, arrivals in SCENARIOS.items():
        sync_result, out1, out2, inputs = _run(iosync_sync_source(),
                                               arrivals)
        flag_result, _, _, _ = _run(iosync_memory_source(), arrivals)
        rows.append([name, sync_result.cycles, flag_result.cycles,
                     speedup(flag_result.cycles, sync_result.cycles)])
        if name == "interleaved":
            # Figure-12 polling visibility: how hard each process
            # hammered its input port before the value arrived
            port_stats = _port_census(inputs, (out1, out2))
            # fast-path identity: a reference rerun must agree on the
            # cycle count and every port counter
            ref_result, ref_out1, ref_out2, ref_inputs = _run(
                iosync_sync_source(), arrivals, engine="reference")
            assert ref_result.cycles == sync_result.cycles
            assert _port_census(ref_inputs,
                                (ref_out1, ref_out2)) == port_stats
    table = render_table(
        ["port scenario", "sync bits (cycles)", "memory flags (cycles)",
         "speedup"],
        rows, title="E7: Figure 12 dual-process exchange — "
                    "sync-bit vs memory-flag synchronization")
    record_table("fig12_iosync", table)
    record_json("fig12_iosync", [
        {"scenario": name, "sync_cycles": sc, "flag_cycles": fc,
         "speedup": s}
        for name, sc, fc, s in rows
    ])

    bench_summary("fig12_iosync", {
        "sync_cycles_total": sum(row[1] for row in rows),
        "flag_cycles_total": sum(row[2] for row in rows),
        "min_speedup": min(row[3] for row in rows),
        **port_stats,
    }, section="figures")

    # the paper's claim: sync bits win in every scenario
    assert all(row[3] > 1.0 for row in rows)

    # non-blocking property: with x very late, a is consumed the moment
    # Process 2 acquires x (producer was never stalled by the consumer)
    p1 = [(2, 11), (4, 12), (6, 13)]
    p2 = [(60, 21), (62, 22), (64, 23)]
    _, _, out2, _ = _run(iosync_sync_source(), (p1, p2))
    first_write_cycle = out2.writes[0][0]
    assert 60 <= first_write_cycle <= 68
