"""E8 — Figure 13: thread tiling and instruction-memory packing.

Six program threads are each compiled at several widths ("each can be
modeled as a rectangle or tile"), a Pareto tile set is kept per thread,
and a packing algorithm schedules one implementation of each thread
into the 8-FU instruction memory.  The figure shows two alternative
packings; we reproduce that comparison with three packers (in-order
shelf, skyline first-fit-decreasing, exhaustive) optimizing static code
density, plus an executable stack packing that actually runs.
"""

from repro.analysis import render_table
from repro.compiler import (
    compile_ir,
    generate_tiles,
    lower_unit,
    pack_exhaustive,
    pack_in_order,
    pack_skyline,
    pack_stacks,
    packed_program,
    pareto_tiles,
    parse_xc,
)
from repro.machine import XimdMachine
from repro.workloads import branchy_loop_sources, random_ints

N_THREADS = 6
WIDTHS = (1, 2, 4)


def _functions():
    sources, oracles, bases = branchy_loop_sources(N_THREADS, seed=13)
    functions = {}
    for index, source in enumerate(sources):
        name = f"loop{index}"
        functions[name] = lower_unit(parse_xc(source))[name]
    return functions, oracles, bases


def _tile_menu():
    functions, oracles, bases = _functions()
    menu = []
    for name, fn in functions.items():
        menu.append(pareto_tiles(generate_tiles(fn, widths=WIDTHS)))
    return menu, oracles, bases


def test_tile_packing(benchmark, record_table, record_json,
                      bench_summary):
    menu, oracles, bases = benchmark(_tile_menu)

    # pick the width-2 tile of each thread for the order-based packers
    two_wide = [next(t for t in tiles if t.width == 2) for tiles in menu]

    packings = {
        "in-order shelf": pack_in_order(two_wide, total_width=8),
        "skyline FFD": pack_skyline(two_wide, total_width=8),
        "exhaustive (menu)": pack_exhaustive(
            menu, total_width=8, max_combinations=100_000),
        "stacks (executable)": pack_stacks(two_wide, total_width=8),
    }
    rows = [
        [name, packing.height, f"{packing.utilization:.0%}",
         len(packing.placements)]
        for name, packing in packings.items()
    ]
    table = render_table(
        ["packing", "static height", "utilization", "tiles"],
        rows, title="E8: Figure 13 — alternative packings of six "
                    "thread tiles (8 FU columns)")
    details = "\n\n".join(
        f"-- {name} --\n{packing.describe()}"
        for name, packing in packings.items())
    record_table("fig13_packing", table + "\n\n" + details)
    record_json("fig13_packing", {
        name: {"height": packing.height,
               "utilization": packing.utilization,
               "tiles": len(packing.placements)}
        for name, packing in packings.items()
    })

    bench_summary("fig13_packing", {
        "skyline_height": packings["skyline FFD"].height,
        "exhaustive_height": packings["exhaustive (menu)"].height,
        "skyline_utilization": packings["skyline FFD"].utilization,
    }, section="figures")

    # shape: the smarter packers dominate the naive shelf order
    assert packings["skyline FFD"].height <= \
        packings["in-order shelf"].height
    assert packings["exhaustive (menu)"].height <= \
        packings["skyline FFD"].height

    # and the executable packing really runs all six threads
    program, by_thread = packed_program(packings["stacks (executable)"])
    machine = XimdMachine(program)
    lengths = [6 + 2 * i for i in range(N_THREADS)]
    datas = []
    for index, base in enumerate(bases):
        values = random_ints(30, seed=90 + index, lo=0, hi=300)
        datas.append(values)
        for k in range(1, 30):
            machine.memory.poke(base + k, values[k])
    for index in range(N_THREADS):
        name = f"loop{index}"
        placement = by_thread[name]
        tile = placement.tile
        machine.regfile.poke(
            tile.compiled.register("n") + placement.register_base,
            lengths[index])
    machine.run(1_000_000)
    for index in range(N_THREADS):
        name = f"loop{index}"
        placement = by_thread[name]
        got = machine.regfile.peek(
            placement.tile.compiled.register("__ret")
            + placement.register_base)
        assert got == oracles[index](datas[index], lengths[index])
