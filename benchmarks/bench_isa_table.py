"""E12 — Figure 7: the instruction-set table.

Regenerates the defined-instructions table (a superset of the figure's
examples) directly from the executable opcode definitions, and checks
the Figure 7 rows are present with the documented semantics.
"""

from repro.analysis import render_kv
from repro.isa import OPCODES, instruction_set_table
from repro.isa.encoding import PARCEL_BITS, PARCEL_BYTES


def test_instruction_set_table(benchmark, record_table, record_json,
                               bench_summary):
    table = benchmark(instruction_set_table)
    extra = render_kv("parcel encoding", [
        ("defined opcodes", len(OPCODES)),
        ("parcel bits", PARCEL_BITS),
        ("parcel bytes", PARCEL_BYTES)])
    record_table("isa_table", "E12: instruction set (Figure 7)\n"
                 + table + "\n\n" + extra)
    record_json("isa_table", {
        "defined_opcodes": len(OPCODES),
        "parcel_bits": PARCEL_BITS,
        "parcel_bytes": PARCEL_BYTES,
        "mnemonics": sorted(OPCODES),
    })

    bench_summary("isa_table", {
        "defined_opcodes": len(OPCODES),
        "parcel_bits": PARCEL_BITS,
    }, section="models")

    # Figure 7's exact rows
    assert "a + b -> d" in table
    assert "a - b -> d" in table
    assert "a * b -> d" in table
    assert "M(a + b) -> d" in table
    assert "a -> M(b)" in table
    for mnemonic in ("iadd", "isub", "imult", "idiv", "load", "store"):
        assert mnemonic in OPCODES
