"""E2 — Livermore Loop 12 under software pipelining (section 3.1).

The paper: "Software Pipelining can be used effectively to schedule
multiple iterations of this loop in parallel."  Reported: cycles per
iteration for the hand-pipelined listing-style program (II = 2) and the
compiler's modulo-scheduled output, against the unpipelined baseline,
across problem sizes.
"""

import pytest

from repro.analysis import render_table
from repro.asm import assemble
from repro.compiler import compile_xc
from repro.machine import XimdMachine
from repro.workloads import (
    LL12_REGS,
    LL12_XC,
    X_BASE,
    livermore12_memory,
    livermore12_reference,
    livermore12_source,
    random_ints,
)

N = 200


def _hand_run(n):
    machine = XimdMachine(assemble(livermore12_source()))
    y = random_ints(n + 1, seed=42)
    machine.regfile.poke(LL12_REGS["n"], n)
    for address, value in livermore12_memory(y).items():
        machine.memory.poke(address, value)
    result = machine.run(1_000_000)
    got = [0] + [machine.memory.peek(X_BASE + k) for k in range(1, n + 1)]
    assert got == livermore12_reference(y, n)
    return result


def _compiled_run(n, pipeline):
    cf = compile_xc(LL12_XC, width=4, pipeline=pipeline)
    machine = XimdMachine(cf.program)
    y = random_ints(n + 1, seed=42)
    machine.regfile.poke(cf.register("n"), n)
    for address, value in livermore12_memory(y).items():
        machine.memory.poke(address, value)
    result = machine.run(1_000_000)
    got = [0] + [machine.memory.peek(X_BASE + k) for k in range(1, n + 1)]
    assert got == livermore12_reference(y, n)
    return result


def test_ll12_hand_pipelined(benchmark, record_table, record_json,
                             bench_summary):
    result = benchmark(_hand_run, N)
    rows = [["hand-pipelined listing (II=2)", N, result.cycles,
             result.cycles / N]]
    for pipeline, label in ((False, "compiler, unpipelined"),
                            (True, "compiler, modulo-scheduled")):
        compiled = _compiled_run(N, pipeline)
        rows.append([label, N, compiled.cycles, compiled.cycles / N])
    table = render_table(
        ["version", "n", "cycles", "cycles/iter"],
        rows, title="E2: Livermore Loop 12 — software pipelining")
    record_table("ll12_pipeline", table)
    record_json("ll12_pipeline", [
        {"version": version, "n": n, "cycles": cycles,
         "cycles_per_iter": per_iter}
        for version, n, cycles, per_iter in rows
    ])

    bench_summary("ll12_pipeline", {
        "hand_cycles": rows[0][2],
        "unpipelined_cycles": rows[1][2],
        "pipelined_cycles": rows[2][2],
    }, section="figures")

    hand, unpiped, piped = rows
    assert hand[3] <= 2.2              # II = 2 steady state
    assert piped[2] < unpiped[2]       # pipelining wins
