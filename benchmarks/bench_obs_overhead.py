"""E15 — what each telemetry tier costs on the accelerated engines.

The tiered-telemetry design claims observability no longer forces the
slow path: tier-0 (counter-only observers) and tier-1 (sampled tracing)
fold into the specialized engine's generated loop, and tier-2 (full
per-cycle event streams) into ring buffers runs on the fast engine via
chunked event buffering — only non-ring tier-2 sinks still fall back
to the reference interpreter.  This benchmark measures the actual
price of each tier on the synthetic long-runner:

* ``bare``            — no observer at all (the baseline);
* ``tier-0 counters`` — ``Observer()`` with no sinks, specialized;
* ``tier-1 sampled``  — ring sink at ``sample_every=64``, specialized;
* ``tier-2 trace``    — unsampled ring-buffer sink, fast engine.

All rates are wall-clock and land in the warn-only ``timing`` section;
the README "Observability" tier table quotes the overhead ratios
measured here.  The hard assertions are the engine-selection facts
(which tier runs on which engine — host-independent policy, not
timing) plus one budget: tier-0 counters, wait matrix included, must
stay within :data:`TIER0_MAX_OVERHEAD` of the bare specialized
engine.  That bound is generous so it only trips on structural
regressions (e.g. a per-cycle allocation sneaking into the counter
path), not host noise; a failed first measurement is re-measured once
before failing.
"""

import time

from repro.analysis import render_table
from repro.machine import XimdMachine
from repro.obs import Observer, recording_observer
from repro.workloads import longrunner_program

LONGRUNNER_ITERATIONS = 20_000

#: Accumulate at least this much wall time per configuration.
MIN_MEASURE_SECONDS = 0.25

#: Hard ceiling on tier-0 (counter-only) overhead over the bare
#: specialized engine — the wait matrix and barrier profiles must
#: stay cheap even folded into the generated loop.
TIER0_MAX_OVERHEAD = 1.35

#: One program shared across repetitions and tiers, so the per-program
#: compiled loops are reused instead of re-generated every run.
_PROGRAM, _REGISTERS = longrunner_program(
    iterations=LONGRUNNER_ITERATIONS)


def _longrunner(obs=None):
    machine = XimdMachine(_PROGRAM, **({"obs": obs} if obs is not None
                                       else {}))
    for index, value in _REGISTERS.items():
        machine.regfile.poke(index, value)
    return machine


TIERS = (
    ("bare", "specialized", lambda: None),
    ("tier-0 counters", "specialized", Observer),
    ("tier-1 sampled (1/64)", "specialized",
     lambda: recording_observer(sample_every=64)),
    ("tier-2 full trace (ring)", "fast", recording_observer),
)


def _measure(make_obs, engine, min_time=MIN_MEASURE_SECONDS):
    """Simulated cycles per host second for one telemetry tier.

    One untimed warm-up run first, so the timed window never includes
    per-program decode or loop compilation."""
    machine = _longrunner(obs=make_obs())
    machine.run(10_000_000)
    assert machine.engine_used == engine, (
        f"expected {engine}, ran {machine.engine_used}")
    total_cycles = 0
    elapsed = 0.0
    while elapsed < min_time:
        machine = _longrunner(obs=make_obs())
        start = time.perf_counter()
        result = machine.run(10_000_000)
        elapsed += time.perf_counter() - start
        total_cycles += result.cycles
    return total_cycles / elapsed


def _bench_body():
    machine = _longrunner(obs=Observer())
    return machine.run(10_000_000).cycles


def test_obs_overhead(benchmark, record_table, record_json, bench_summary):
    benchmark(_bench_body)

    rates = {name: (_measure(make_obs, engine), engine)
             for name, engine, make_obs in TIERS}
    baseline = rates["bare"][0]

    rows = []
    payload = {}
    for name, engine, _ in TIERS:
        rate, _engine = rates[name]
        overhead = baseline / rate if rate else 0.0
        stats = {
            "engine": engine,
            "kcycles_per_sec": round(rate / 1000, 3),
            "overhead_vs_bare": round(overhead, 3),
        }
        rows.append([name, engine, stats["kcycles_per_sec"],
                     stats["overhead_vs_bare"]])
        payload[name] = stats
        bench_summary(f"obs overhead: {name}", stats, section="timing")

    table = render_table(
        ["tier", "engine", "kcy/s", "overhead (x)"],
        rows, title="E15: telemetry tier overhead on the long-runner "
                    "(wall clock — warn-only)")
    record_table("obs_overhead", table)
    record_json("obs_overhead", payload)

    # tier-0 budget: counters (wait matrix included) must stay near
    # the bare specialized engine.  Timing, so re-measure once before
    # believing a failure — a noisy host beats the generous bound only
    # transiently.
    tier0 = payload["tier-0 counters"]["overhead_vs_bare"]
    if tier0 > TIER0_MAX_OVERHEAD:
        baseline = _measure(lambda: None, "specialized")
        tier0 = baseline / _measure(Observer, "specialized")
    assert tier0 <= TIER0_MAX_OVERHEAD, (
        f"tier-0 counter overhead {tier0:.3f}x exceeds the "
        f"{TIER0_MAX_OVERHEAD}x budget over the bare specialized engine")
