"""E10 — section 4.3: the hardware prototype's performance analysis.

"An initial performance analysis predicts a cycle time of 85ns.  This
will result in peak performance in excess of 90 MIPS/90 MFLOPS."
Recomputed from the component-delay model; sustained throughput uses
FU utilizations measured on the workload suite, and the 3-stage-
pipeline machine variant is exercised to confirm compiled code
tolerates the exposed delay slot.
"""

import pytest

from repro.analysis import PrototypeModel, render_kv, render_table
from repro.compiler import compile_xc
from repro.machine import prototype_config, run_ximd
from repro.workloads import LL12_XC, random_ints


def _model_numbers():
    model = PrototypeModel()
    return (model.cycle_time_ns, model.peak_mips(), model.limiting_path)


def test_prototype_performance_model(benchmark, record_table, record_json,
                                     bench_summary):
    cycle_ns, peak, limiter = benchmark(_model_numbers)

    model = PrototypeModel()
    pairs = [("cycle time (ns)", cycle_ns),
             ("limiting structure", limiter),
             ("clock (MHz)", round(model.clock_mhz, 1)),
             ("peak MIPS", round(peak, 1)),
             ("peak MFLOPS", round(model.peak_mflops(), 1))]
    for utilization in (0.25, 0.5, 0.75):
        pairs.append((f"sustained MIPS @ {utilization:.0%} util",
                      round(model.sustained_mips(utilization), 1)))
    text = render_kv("E10: prototype performance model (section 4.3)",
                     pairs)

    # The prototype machine variant actually runs compiled code.  The
    # compiler targets the explicit-two-target sequencer and a shared
    # address space, so only the prototype's data-path pipelining
    # (write latency 2 — the exposed delay slot) is applied here; the
    # incrementing sequencer and distributed banks are exercised by
    # the machine-level unit tests.
    from repro.machine import MemoryStyle, SequencerStyle
    cf = compile_xc(LL12_XC, width=8, write_latency=2)
    config = prototype_config(
        8, sequencer=SequencerStyle.EXPLICIT_TWO_TARGET,
        memory=MemoryStyle.SHARED, memory_words=1 << 16)
    n = 16
    y = random_ints(n + 1, seed=2)
    machine_result = run_ximd(
        cf.program, config=config,
        registers={cf.register("n"): n},
        memory_init={1024 + i: y[i] for i in range(1, n + 2)},
        max_cycles=100_000)
    text += "\n" + render_kv(
        "3-stage-pipeline variant (write latency 2, distributed memory)",
        [("LL12 n=16 cycles", machine_result.cycles),
         ("halted", machine_result.halted)])
    record_table("prototype_model", text)
    record_json("prototype_model", {
        "cycle_time_ns": cycle_ns,
        "limiting_structure": limiter,
        "clock_mhz": model.clock_mhz,
        "peak_mips": peak,
        "peak_mflops": model.peak_mflops(),
        "sustained_mips": {
            f"{u:.0%}": model.sustained_mips(u)
            for u in (0.25, 0.5, 0.75)},
        "ll12_n16_cycles": machine_result.cycles,
        "halted": machine_result.halted,
    })

    bench_summary("prototype_model", {
        "cycle_time_ns": cycle_ns,
        "peak_mips": peak,
        "ll12_n16_cycles": machine_result.cycles,
    }, section="models")

    assert cycle_ns == pytest.approx(85.0)     # the paper's number
    assert peak > 90.0                         # "in excess of 90"
    assert limiter == "control"
    assert machine_result.halted
