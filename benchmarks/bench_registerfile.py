"""E11 — section 4.4: the custom register-file chip arithmetic.

"Each chip supports 8 simultaneous reads and 8 simultaneous writes.
Two chips can be wired in parallel ... to provide 16 reads and 8
writes.  Each chip is two bits wide and contains 256 global registers.
This results in a minimum requirement of 32 register file chips."
Also validates the architectural port budget against a measured run.
"""

from repro.analysis import (
    MachineRequirement,
    chip_table,
    chips_in_parallel_for_reads,
    minimum_chips,
    render_kv,
    total_transistors,
)
from repro.asm import assemble
from repro.machine import XimdMachine
from repro.obs import Observer
from repro.workloads import TPROC_REGS, tproc_source


def _chip_math():
    requirement = MachineRequirement()
    return (requirement.read_ports, requirement.write_ports,
            chips_in_parallel_for_reads(requirement),
            minimum_chips(requirement))


def test_register_file_chip_model(benchmark, record_table, record_json,
                                  bench_summary):
    reads, writes, parallel, chips = benchmark(_chip_math)

    # measured port pressure from a real run (TPROC saturates FU0-3).
    # A counter-only observer is tier-0 telemetry: the fast engine folds
    # the port peaks natively, so no engine pin is needed any more.
    machine = XimdMachine(assemble(tproc_source()), obs=Observer())
    for name, value in zip("abcd", (1, 2, 3, 4)):
        machine.regfile.poke(TPROC_REGS[name], value)
    machine.run(100)
    assert machine.engine_used == "specialized"

    text = render_kv(
        "E11: register-file chip partitioning (section 4.4)",
        [("machine read ports", reads),
         ("machine write ports", writes),
         ("chips in parallel (reads)", parallel),
         ("minimum chips (32-bit x 8 FU)", chips),
         ("total transistors", total_transistors()),
         ("peak reads observed (TPROC)", machine.regfile.peak_reads),
         ("peak writes observed (TPROC)", machine.regfile.peak_writes)])
    text += "\n\nscaling:\n" + chip_table()
    record_table("registerfile_chips", text)
    record_json("registerfile_chips", {
        "machine_read_ports": reads,
        "machine_write_ports": writes,
        "chips_in_parallel_reads": parallel,
        "minimum_chips": chips,
        "total_transistors": total_transistors(),
        "peak_reads_observed": machine.regfile.peak_reads,
        "peak_writes_observed": machine.regfile.peak_writes,
        "engine_used": machine.engine_used,
    })

    bench_summary("registerfile_chips", {
        "minimum_chips": chips,
        "peak_reads_observed": machine.regfile.peak_reads,
        "peak_writes_observed": machine.regfile.peak_writes,
    }, section="models")

    assert (reads, writes) == (16, 8)   # paper's port totals
    assert parallel == 2                # two chips wired in parallel
    assert chips == 32                  # the paper's minimum
    assert machine.regfile.peak_reads <= 16
    assert machine.regfile.peak_writes <= 8
