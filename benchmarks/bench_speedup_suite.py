"""E9 — the section 4.1 claim: xsim vs vsim across a workload suite.

"Preliminary results show a significant performance increase on many
programs."  The suite spans the paper's three regimes:

* control-parallel programs (MINMAX, BITCOUNT, multi-thread fleets)
  where XIMD's concurrent instruction streams win;
* synchronization-bound programs (the Figure 12 exchange) where the
  sync bits win over flag polling;
* fully synchronous code (TPROC, Livermore 12) where XIMD exactly ties
  VLIW — the "no regression" half of the claim.
"""

from repro.analysis import energy_report, render_table, speedup
from repro.asm import assemble
from repro.compiler import compile_ir, compile_xc, compose_threads, lower_unit, parse_xc
from repro.machine import VliwMachine, XimdMachine
from repro.workloads import (
    B_BASE,
    BITCOUNT_REGS,
    MINMAX_REGS,
    TPROC_REGS,
    bitcount_memory,
    bitcount_total_source,
    bitcount_vliw_source,
    branchy_loop_sources,
    livermore12_memory,
    livermore12_source,
    LL12_REGS,
    minmax_memory,
    minmax_source,
    minmax_vliw_source,
    random_ints,
    random_words,
    tproc_source,
)


def _energy_pj(stats, cycles):
    """Section-4.3 model energy for one run (deterministic fold)."""
    return round(energy_report(stats.per_opcode, cycles).total_energy_pj, 6)


def _pair_stats(ximd_result, ximd_fus, vliw_result, vliw_fus):
    """One workload's machine-readable row."""
    return {
        "ximd_cycles": ximd_result.cycles,
        "vliw_cycles": vliw_result.cycles,
        "speedup": speedup(vliw_result.cycles, ximd_result.cycles),
        "ximd_utilization": ximd_result.stats.utilization(ximd_fus),
        "vliw_utilization": vliw_result.stats.utilization(vliw_fus),
        "ximd_energy_pj": _energy_pj(ximd_result.stats,
                                     ximd_result.cycles),
        "vliw_energy_pj": _energy_pj(vliw_result.stats,
                                     vliw_result.cycles),
    }


def _minmax(n=64):
    data = random_ints(n, seed=3)[1:]
    out = []
    for cls, source in ((XimdMachine, minmax_source("halt")),
                        (VliwMachine, minmax_vliw_source())):
        machine = cls(assemble(source))
        machine.regfile.poke(MINMAX_REGS["n"], len(data))
        for address, value in minmax_memory(data).items():
            machine.memory.poke(address, value)
        out.append((machine.run(1_000_000), machine.config.n_fus))
    return _pair_stats(*out[0], *out[1])


def _bitcount(n=48):
    data = random_words(n, seed=4)
    out = []
    for cls, source in ((XimdMachine, bitcount_total_source()),
                        (VliwMachine, bitcount_vliw_source())):
        machine = cls(assemble(source))
        machine.regfile.poke(BITCOUNT_REGS["n"], n)
        for address, value in bitcount_memory(data).items():
            machine.memory.poke(address, value)
        out.append((machine.run(5_000_000), machine.config.n_fus))
    return _pair_stats(*out[0], *out[1])


def _threads(n_threads=4):
    """Independent loops: XIMD runs them concurrently; the VLIW machine
    runs the same compiled threads sequentially."""
    sources, _, bases = branchy_loop_sources(n_threads, seed=6)
    threads = [compile_ir(lower_unit(parse_xc(s))[f"loop{i}"], 2)
               for i, s in enumerate(sources)]
    lengths = [10 + 5 * i for i in range(n_threads)]

    program, placements = compose_threads(threads, total_width=8)
    machine = XimdMachine(program)
    for i, base in enumerate(bases):
        for k in range(1, 30):
            machine.memory.poke(base + k, k * 7 % 101)
        machine.regfile.poke(placements[i].register(threads[i], "n"),
                             lengths[i])
    ximd_result = machine.run(1_000_000)
    ximd_fus = machine.config.n_fus

    from collections import Counter

    from repro.machine import Program

    vliw_cycles = 0
    vliw_data_ops = 0
    vliw_fus = 0
    vliw_op_histogram = Counter()
    for i, thread in enumerate(threads):
        machine = VliwMachine(Program(
            [list(col) for col in thread.program.columns],
            entry=thread.program.entry))
        for k in range(1, 30):
            machine.memory.poke(bases[i] + k, k * 7 % 101)
        machine.regfile.poke(thread.register("n"), lengths[i])
        result = machine.run(1_000_000)
        vliw_cycles += result.cycles
        vliw_data_ops += result.stats.data_ops
        vliw_op_histogram.update(result.stats.per_opcode)
        vliw_fus = machine.config.n_fus
    return {
        "ximd_cycles": ximd_result.cycles,
        "vliw_cycles": vliw_cycles,
        "speedup": speedup(vliw_cycles, ximd_result.cycles),
        "ximd_utilization": ximd_result.stats.utilization(ximd_fus),
        "vliw_utilization": (vliw_data_ops / (vliw_cycles * vliw_fus)
                             if vliw_cycles and vliw_fus else 0.0),
        "ximd_energy_pj": _energy_pj(ximd_result.stats,
                                     ximd_result.cycles),
        "vliw_energy_pj": round(
            energy_report(vliw_op_histogram,
                          vliw_cycles).total_energy_pj, 6),
    }


def _tproc():
    out = []
    for cls in (XimdMachine, VliwMachine):
        machine = cls(assemble(tproc_source()))
        for name, value in zip("abcd", (5, 6, 7, 8)):
            machine.regfile.poke(TPROC_REGS[name], value)
        out.append((machine.run(1_000), machine.config.n_fus))
    return _pair_stats(*out[0], *out[1])


def _ll12(n=100):
    y = random_ints(n + 1, seed=5)
    out = []
    for cls in (XimdMachine, VliwMachine):
        machine = cls(assemble(livermore12_source()))
        machine.regfile.poke(LL12_REGS["n"], n)
        for address, value in livermore12_memory(y).items():
            machine.memory.poke(address, value)
        out.append((machine.run(1_000_000), machine.config.n_fus))
    return _pair_stats(*out[0], *out[1])


WORKLOADS = (
    ("tproc (scalar, VLIW-mode)", _tproc),
    ("livermore 12 (pipelined, VLIW-mode)", _ll12),
    ("minmax (2 control ops/iter)", _minmax),
    ("bitcount (4 streams + barrier)", _bitcount),
    ("4 independent loops (threads)", _threads),
)


def test_speedup_suite(benchmark, record_table, record_json, bench_summary):
    benchmark(_minmax, 32)

    rows = []
    payload = {}
    for name, runner in WORKLOADS:
        stats = runner()
        rows.append([name, stats["ximd_cycles"], stats["vliw_cycles"],
                     stats["speedup"], stats["ximd_energy_pj"],
                     stats["vliw_energy_pj"]])
        payload[name] = stats
        bench_summary(name, stats)
    table = render_table(
        ["workload", "XIMD cycles", "VLIW cycles", "speedup",
         "XIMD pJ", "VLIW pJ"],
        rows, title="E9: xsim vs vsim across the workload suite "
                    "(section 4.1)")
    record_table("speedup_suite", table)
    record_json("speedup_suite", payload)

    # fully synchronous code ties exactly (XIMD emulates VLIW)
    assert rows[0][3] == 1.0
    assert rows[1][3] == 1.0
    # control-parallel workloads win significantly
    assert rows[2][3] > 1.5
    assert rows[3][3] > 1.5
    assert rows[4][3] > 1.5


def test_pass_telemetry(record_json, bench_summary):
    """Per-pass IR-size telemetry for the ROADMAP trend dashboard.

    Compiles one branchy loop under a recording observer and registers
    each pass's ops_in/ops_out in the summary's ``passes`` section —
    deterministic, so it rides into BENCH_HISTORY.jsonl where the
    ``history`` CLI and the HTML dashboard trend it (IR growth is an
    advisory, warn-only signal in the perf gate).  A pass that runs
    more than once keeps its last occurrence: the final pipeline state.
    """
    from repro.obs import RunReport, observed, recording_observer

    source = branchy_loop_sources(1, seed=6)[0][0]
    obs = recording_observer()
    with observed(obs):
        compile_ir(lower_unit(parse_xc(source))["loop0"], 2)
    report = RunReport.from_events(obs.sinks[0].events)
    latest = {}
    for entry in report.passes:
        latest[entry["name"]] = {"ops_in": entry["ops_in"],
                                 "ops_out": entry["ops_out"]}
    assert latest, "compiler emitted no pass telemetry"
    for name, payload in sorted(latest.items()):
        bench_summary(name, payload, section="passes")
    record_json("pass_telemetry", latest)
