"""E16 — synchronization profiles on the paper's sync-built workloads.

The sync-observability layer answers *who waited on whom*: a per-FU
wait matrix (tier-0 counters), per-barrier-site skew profiles, and a
critical-path estimate over the blocker graph.  This benchmark runs the
three workloads whose behavior the paper's Figures 10–12 tabulate —
MINMAX's fork/join partition, BITCOUNT1's four-way ALL-sync barrier,
and the Figure-12 dual-process sync-bit exchange — under a tier-0
observer and records their sync profiles.

The numbers land in the advisory ``sync`` section of
``BENCH_SUMMARY.json`` (structure drifts when workloads change; the
gate reports but never fails on them).  Hard assertions cover the
contract instead: every workload — the device-backed Figure-12
exchange included, now that the fast engine models memory-mapped
ports natively — must produce bit-identical wait matrices and barrier
profiles on both engines, and the barrier workload must actually
observe its four-way join.
"""

from repro.analysis import render_table
from repro.asm import assemble
from repro.machine import XimdMachine
from repro.machine.telemetry import CLS_SYNC
from repro.obs import Observer, critical_path_from_matrix
from repro.workloads import (
    B_BASE,
    BITCOUNT_REGS,
    MINMAX_REGS,
    bitcount_memory,
    bitcount_total_reference,
    bitcount_total_source,
    iosync_reference,
    iosync_sync_source,
    make_devices,
    minmax_memory,
    minmax_reference,
    minmax_source,
    random_ints,
    random_words,
)

BITCOUNT_N = 24
MINMAX_N = 64

#: the Figure-12 "interleaved" port-arrival scenario.
IOSYNC_ARRIVALS = ([(2, 11), (18, 12), (34, 13)],
                   [(10, 21), (26, 22), (42, 23)])


def _minmax(obs):
    data = random_ints(MINMAX_N, seed=7)[1:]
    machine = XimdMachine(assemble(minmax_source("halt")), obs=obs)
    machine.regfile.poke(MINMAX_REGS["n"], len(data))
    for address, value in minmax_memory(data).items():
        machine.memory.poke(address, value)

    def verify():
        got = (machine.regfile.peek(MINMAX_REGS["min"]),
               machine.regfile.peek(MINMAX_REGS["max"]))
        assert got == minmax_reference(data)

    return machine, verify


def _bitcount(obs):
    data = random_words(BITCOUNT_N, seed=BITCOUNT_N)
    machine = XimdMachine(assemble(bitcount_total_source()), obs=obs)
    machine.regfile.poke(BITCOUNT_REGS["n"], BITCOUNT_N)
    for address, value in bitcount_memory(data).items():
        machine.memory.poke(address, value)

    def verify():
        got = {k: machine.memory.peek(B_BASE + k)
               for k in range(BITCOUNT_N + 1)}
        assert got == bitcount_total_reference(data, BITCOUNT_N)

    return machine, verify


def _iosync(obs):
    p1, p2 = IOSYNC_ARRIVALS
    devices, _in1, _in2, out1, out2 = make_devices(p1, p2)
    machine = XimdMachine(assemble(iosync_sync_source()), obs=obs,
                          devices=devices)

    def verify():
        expected1, expected2 = iosync_reference(
            [v for _, v in p1], [v for _, v in p2])
        assert out1.values == expected1
        assert out2.values == expected2

    return machine, verify


#: (summary key, figure label, machine factory)
WORKLOADS = (
    ("fig10_minmax", "Fig 10 MINMAX", _minmax),
    ("fig11_bitcount", "Fig 11 BITCOUNT1", _bitcount),
    ("fig12_iosync", "Fig 12 iosync", _iosync),
)


def _run(factory, engine):
    machine, verify = factory(Observer())
    machine.run(5_000_000, engine=engine)
    verify()
    return machine


def _sync_fingerprint(machine):
    counters = machine.counters
    return (tuple(counters.wait_matrix),
            tuple((site, tuple(cells))
                  for site, cells in counters.barrier_profiles.items()))


def _profile(machine):
    counters = machine.counters
    rows = counters.wait_rows()
    n = counters.n_fus
    column_sums = [sum(rows[i][j] for i in range(n)) for j in range(n)]
    top_blocker = (max(range(n), key=lambda j: (column_sums[j], -j))
                   if any(column_sums) else None)
    barriers = counters.barrier_profile_rows()
    path = critical_path_from_matrix(rows)
    return {
        "wait_edges": counters.wait_total(),
        "sync_wait_cycles": sum(counters.class_counts[CLS_SYNC::5]),
        "barrier_releases": sum(row["count"] for row in barriers),
        "max_barrier_skew": max([row["max_skew"] for row in barriers],
                                default=0),
        "top_blocker_fu": top_blocker,
        "critpath_cycles": path.total_cycles,
        "critpath_links": len(path.links),
    }


def test_sync_profiles(benchmark, record_table, record_json,
                       bench_summary):
    benchmark(_run, _bitcount, "auto")

    rows = []
    payload = {}
    for key, label, factory in WORKLOADS:
        machine = _run(factory, "auto")
        # tier-0 contract: the wait matrix and barrier profiles fold
        # bit-identically on every engine (devices no longer force the
        # reference path, so this now covers the Fig-12 exchange too)
        assert machine.engine_used == "specialized"
        reference = _run(factory, "reference")
        assert (_sync_fingerprint(machine)
                == _sync_fingerprint(reference))
        stats = _profile(machine)
        payload[key] = dict(stats, engine=machine.engine_used)
        bench_summary(key, stats, section="sync")
        rows.append([label, stats["sync_wait_cycles"],
                     stats["wait_edges"], stats["barrier_releases"],
                     stats["max_barrier_skew"],
                     "-" if stats["top_blocker_fu"] is None
                     else f"FU{stats['top_blocker_fu']}",
                     stats["critpath_cycles"]])

    table = render_table(
        ["workload", "sync-wait cy", "wait edges", "barrier rel",
         "max skew", "top blocker", "critpath cy"],
        rows, title="E16: synchronization profiles — wait attribution "
                    "and barrier skew (Figures 10-12 workloads)")
    record_table("sync_profile", table)
    record_json("sync_profile", payload)

    # BITCOUNT1's four-way join: every loop FU releases through the
    # ALL-sync barrier, and the data-dependent loop lengths skew
    bc = payload["fig11_bitcount"]
    assert bc["barrier_releases"] >= 4
    assert bc["wait_edges"] > 0
    assert bc["max_barrier_skew"] > 0
    assert bc["critpath_cycles"] > 0
