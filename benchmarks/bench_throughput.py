"""E14 — host throughput: the pre-decoded engine vs the reference path.

This is the one benchmark about the *simulator*, not the simulated
machines: how many simulated cycles per host second each execution
engine sustains.  Every workload runs twice — ``engine="reference"``
(the readable step() interpreter) and ``engine="fast"`` (the
pre-decoded loop in ``repro.machine.engine``) — and the two results
must be bit-identical before any throughput number is recorded; a fast
engine that drifts from the reference semantics is worthless however
fast it is.

All wall-clock numbers land in the ``timing`` section of
BENCH_SUMMARY.json / BENCH_HISTORY.jsonl, which the perf gate treats as
warn-only: host throughput depends on the host, so it can never block
CI.  The only hard assertions here are (a) bit-identity and (b) the
fast engine's >=3x speedup on the synthetic long-runner, which holds
with wide margin on any host because it is a ratio of two measurements
taken on the same machine back to back.
"""

import dataclasses
import time

from repro.analysis import render_table
from repro.asm import assemble
from repro.machine import VliwMachine, XimdMachine
from repro.workloads import (
    BITCOUNT_REGS,
    LL12_REGS,
    MINMAX_REGS,
    bitcount_memory,
    bitcount_total_source,
    livermore12_memory,
    livermore12_source,
    longrunner_program,
    longrunner_vliw_program,
    minmax_memory,
    minmax_source,
    random_ints,
    random_words,
)

#: Synthetic long-runner size: 3 * (N + 1) simulated cycles per run.
LONGRUNNER_ITERATIONS = 20_000

#: ISSUE acceptance floor for the fast engine on the long-runner.
MIN_FAST_SPEEDUP = 3.0

#: Accumulate at least this much wall time per measurement so the tiny
#: paper workloads (a few thousand cycles, well under a millisecond on
#: the fast path) still produce stable rates.
MIN_MEASURE_SECONDS = 0.25


def _minmax_machine():
    data = random_ints(64, seed=3)[1:]
    machine = XimdMachine(assemble(minmax_source("halt")))
    machine.regfile.poke(MINMAX_REGS["n"], len(data))
    for address, value in minmax_memory(data).items():
        machine.memory.poke(address, value)
    return machine, 1_000_000


def _bitcount_machine():
    data = random_words(48, seed=4)
    machine = XimdMachine(assemble(bitcount_total_source()))
    machine.regfile.poke(BITCOUNT_REGS["n"], 48)
    for address, value in bitcount_memory(data).items():
        machine.memory.poke(address, value)
    return machine, 5_000_000


def _ll12_vliw_machine():
    y = random_ints(101, seed=5)
    machine = VliwMachine(assemble(livermore12_source()))
    machine.regfile.poke(LL12_REGS["n"], 100)
    for address, value in livermore12_memory(y).items():
        machine.memory.poke(address, value)
    return machine, 1_000_000


def _longrunner_ximd_machine(iterations=LONGRUNNER_ITERATIONS, obs=None):
    program, registers = longrunner_program(iterations=iterations)
    machine = XimdMachine(program, **({"obs": obs} if obs is not None
                                      else {}))
    for index, value in registers.items():
        machine.regfile.poke(index, value)
    return machine, 10_000_000


def _longrunner_vliw_machine(iterations=LONGRUNNER_ITERATIONS):
    program, registers = longrunner_vliw_program(iterations=iterations)
    machine = VliwMachine(program)
    for index, value in registers.items():
        machine.regfile.poke(index, value)
    return machine, 10_000_000


WORKLOADS = (
    ("minmax (ximd)", _minmax_machine),
    ("bitcount (ximd)", _bitcount_machine),
    ("livermore 12 (vliw)", _ll12_vliw_machine),
    ("longrunner (ximd)", _longrunner_ximd_machine),
    ("longrunner (vliw)", _longrunner_vliw_machine),
)


def _fingerprint(result):
    """Everything the differential check compares, as one value.

    Covers the committed architectural state *and* the stats fold —
    including the chronological insertion order of the ``per_opcode``
    and ``per_fu_ops`` dicts, which downstream energy reports sum in
    dict order under a zero-tolerance gate.
    """
    return (
        result.cycles,
        result.halted,
        tuple(result.registers),
        tuple(result.final_pcs),
        dataclasses.asdict(result.stats),
        tuple(result.stats.per_opcode.items()),
        tuple(result.stats.per_fu_ops.items()),
    )


def _measure(factory, engine, min_time=MIN_MEASURE_SECONDS):
    """(result, cycles/sec, data-ops/sec) for one workload + engine.

    Repeats the run on a fresh machine until *min_time* of wall clock
    has accumulated; a single long-runner pass already exceeds it.
    """
    total_cycles = 0
    total_ops = 0
    elapsed = 0.0
    result = None
    while elapsed < min_time:
        machine, limit = factory()
        start = time.perf_counter()
        result = machine.run(limit, engine=engine)
        elapsed += time.perf_counter() - start
        assert machine.engine_used == engine
        total_cycles += result.cycles
        total_ops += result.stats.data_ops
    return result, total_cycles / elapsed, total_ops / elapsed


def _bench_body():
    """The unit pytest-benchmark times: one small fast-engine run."""
    machine, limit = _longrunner_ximd_machine(iterations=500)
    return machine.run(limit, engine="fast").cycles


def test_host_throughput(benchmark, record_table, record_json,
                         bench_summary):
    benchmark(_bench_body)

    rows = []
    payload = {}
    longrunner_speedups = {}
    for name, factory in WORKLOADS:
        ref_result, ref_rate, _ = _measure(factory, "reference")
        fast_result, fast_rate, fast_ops = _measure(factory, "fast")
        assert _fingerprint(fast_result) == _fingerprint(ref_result), (
            f"{name}: fast engine diverged from reference")
        speedup = fast_rate / ref_rate if ref_rate else 0.0
        stats = {
            "sim_cycles": ref_result.cycles,
            "ref_kcycles_per_sec": round(ref_rate / 1000, 3),
            "fast_kcycles_per_sec": round(fast_rate / 1000, 3),
            "fast_data_kops_per_sec": round(fast_ops / 1000, 3),
            "fast_over_ref": round(speedup, 3),
        }
        rows.append([name, stats["sim_cycles"],
                     stats["ref_kcycles_per_sec"],
                     stats["fast_kcycles_per_sec"],
                     stats["fast_over_ref"]])
        payload[name] = stats
        bench_summary(name, stats, section="timing")
        if name.startswith("longrunner"):
            longrunner_speedups[name] = speedup

    table = render_table(
        ["workload", "sim cycles", "ref kcy/s", "fast kcy/s", "fast/ref"],
        rows, title="E14: host throughput, reference vs fast engine "
                    "(wall clock — warn-only)")
    record_table("host_throughput", table)
    record_json("host_throughput", payload)

    # The acceptance floor: same-host ratio, immune to absolute speed.
    for name, speedup in longrunner_speedups.items():
        assert speedup >= MIN_FAST_SPEEDUP, (
            f"{name}: fast engine only {speedup:.2f}x over reference "
            f"(floor {MIN_FAST_SPEEDUP}x)")


def test_counter_observed_throughput(record_json, bench_summary):
    """Tier-0 telemetry must not give back the fast engine's win.

    A counter-only observer (no sinks) keeps the fast engine eligible;
    this pins the acceptance floor for that combination: the observed
    fast run still sustains >= 3x the *reference* interpreter's
    throughput on the synthetic long-runner.  Same-host ratio, so it
    holds on any machine; the absolute rates ride into the warn-only
    ``timing`` section.
    """
    from repro.obs import Observer

    _, ref_rate, _ = _measure(_longrunner_ximd_machine, "reference")

    def observed_factory():
        return _longrunner_ximd_machine(obs=Observer())

    result, obs_rate, _ = _measure(observed_factory, "fast")
    assert result.cycles == 3 * (LONGRUNNER_ITERATIONS + 1)
    speedup = obs_rate / ref_rate if ref_rate else 0.0

    stats = {
        "ref_kcycles_per_sec": round(ref_rate / 1000, 3),
        "counter_fast_kcycles_per_sec": round(obs_rate / 1000, 3),
        "counter_fast_over_ref": round(speedup, 3),
    }
    bench_summary("longrunner (ximd, tier-0 counters)", stats,
                  section="timing")
    record_json("counter_observed_throughput", stats)

    assert speedup >= MIN_FAST_SPEEDUP, (
        f"counter-observed fast engine only {speedup:.2f}x over "
        f"reference (floor {MIN_FAST_SPEEDUP}x)")
