"""Shared benchmark fixtures and result recording.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered tables are written to ``benchmarks/results/<name>.txt`` (and
echoed to stdout) so a ``pytest benchmarks/ --benchmark-only`` run
leaves a complete, diffable record; EXPERIMENTS.md quotes these files.

Alongside each table, benchmarks record a machine-readable twin via
``record_json`` (``benchmarks/results/<name>.json``), and register
headline numbers with ``bench_summary``; at session end those merge
into the repo-root ``BENCH_SUMMARY.json`` so the performance
trajectory (cycles, speedups, utilization per workload) is diffable
across PRs without parsing prose.
"""

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SUMMARY_PATH = pathlib.Path(__file__).parent.parent / "BENCH_SUMMARY.json"


@pytest.fixture(scope="session")
def record_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}]\n{text}")

    return record


@pytest.fixture(scope="session")
def record_json():
    """Write ``benchmarks/results/<name>.json`` (the table's data twin)."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def record(name: str, payload) -> pathlib.Path:
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                                   default=str) + "\n")
        return path

    return record


@pytest.fixture(scope="session")
def bench_summary():
    """Register headline numbers for the repo-root BENCH_SUMMARY.json.

    ``summary(name, payload, section="workloads")`` — entries merge
    into any existing summary at session end, so partial benchmark
    runs update their own entries without clobbering the rest.
    """
    collected = {}

    def register(name: str, payload: dict,
                 section: str = "workloads") -> None:
        collected.setdefault(section, {})[name] = payload

    yield register

    if not collected:
        return
    summary = {}
    if SUMMARY_PATH.exists():
        try:
            summary = json.loads(SUMMARY_PATH.read_text())
        except (ValueError, OSError):
            summary = {}
    for section, entries in collected.items():
        summary.setdefault(section, {}).update(entries)
    summary["generated_by"] = "pytest benchmarks/ --benchmark-only"
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True,
                                       default=str) + "\n")
