"""Shared benchmark fixtures and result recording.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered tables are written to ``benchmarks/results/<name>.txt`` (and
echoed to stdout) so a ``pytest benchmarks/ --benchmark-only`` run
leaves a complete, diffable record; EXPERIMENTS.md quotes these files.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}]\n{text}")

    return record
