"""Shared benchmark fixtures and result recording.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered tables are written to ``benchmarks/results/<name>.txt`` (and
echoed to stdout) so a ``pytest benchmarks/ --benchmark-only`` run
leaves a complete, diffable record; EXPERIMENTS.md quotes these files.

Alongside each table, benchmarks record a machine-readable twin via
``record_json`` (``benchmarks/results/<name>.json``) — a
schema-versioned ``bench_result`` artifact the ``python -m repro.obs
diff`` engine can compare — and register headline numbers with
``bench_summary``.  At session end those merge into the repo-root
``BENCH_SUMMARY.json`` (a versioned ``bench_summary`` artifact), and
when the speedup suite ran, one deterministic record is appended to the
``BENCH_HISTORY.jsonl`` ledger (git SHA from ``$REPRO_GIT_SHA``,
deduplicated, no wall-clock fields) for ``python -m repro.obs
history``/``gate`` to consume.

Under the parallel suite driver (``benchmarks/run_suite.py``) each
bench file runs in its own pytest subprocess; the driver sets
``$REPRO_BENCH_PARTIAL`` and this conftest then writes the session's
collected sections to that partial artifact instead of touching the
shared summary or ledger — the driver merges all partials
deterministically and lands them exactly once.
"""

import json
import os
import pathlib

import pytest

from repro.obs.ioutil import atomic_write_text
from repro.obs.schema import SCHEMA_VERSION
from repro.obs.suite import write_partial, write_summary

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent
SUMMARY_PATH = REPO_ROOT / "BENCH_SUMMARY.json"
HISTORY_PATH = REPO_ROOT / "BENCH_HISTORY.jsonl"


@pytest.fixture(scope="session")
def record_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        atomic_write_text(path, text + "\n")
        print(f"\n[{name}]\n{text}")

    return record


@pytest.fixture(scope="session")
def record_json():
    """Write ``benchmarks/results/<name>.json`` (the table's data twin).

    The payload is wrapped as a schema-versioned ``bench_result``
    artifact so ``python -m repro.obs diff`` can compare two of them
    and reject drifted formats cleanly.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def record(name: str, payload) -> pathlib.Path:
        path = RESULTS_DIR / f"{name}.json"
        artifact = {
            "schema_version": SCHEMA_VERSION,
            "kind": "bench_result",
            "name": name,
            "data": payload,
        }
        atomic_write_text(path, json.dumps(artifact, indent=2,
                                           sort_keys=True,
                                           default=str) + "\n")
        return path

    return record


@pytest.fixture(scope="session")
def bench_summary():
    """Register headline numbers for the repo-root BENCH_SUMMARY.json.

    ``summary(name, payload, section="workloads")`` — entries merge
    into any existing summary at session end, so partial benchmark
    runs update their own entries without clobbering the rest.  The
    ``timing`` section is special: it holds wall-clock measurements
    (host throughput, E14), is re-stamped rather than merged (stale
    wall times from another host are meaningless), and rides along in
    history records under a separate key excluded from dedupe.  When
    the ``workloads`` section was refreshed this session (the speedup
    suite ran), a history record is appended to BENCH_HISTORY.jsonl —
    deterministic sections plus any fresh timing.

    When ``$REPRO_BENCH_PARTIAL`` is set (a run_suite.py worker), the
    collected sections go to that partial artifact instead and the
    driver owns the merge + single history append.
    """
    collected = {}

    def register(name: str, payload: dict,
                 section: str = "workloads") -> None:
        collected.setdefault(section, {})[name] = payload

    yield register

    if not collected:
        return
    partial_path = os.environ.get("REPRO_BENCH_PARTIAL")
    if partial_path:
        write_partial(partial_path, collected)
        return
    write_summary(SUMMARY_PATH, collected, history_path=HISTORY_PATH,
                  git_sha=os.environ.get("REPRO_GIT_SHA", "local"))
