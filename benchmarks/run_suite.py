#!/usr/bin/env python3
"""Benchmark-suite driver: run every bench file, land one summary.

``pytest benchmarks/ --benchmark-only`` runs the whole suite in one
process; fine for CI, but the files are independent and a development
host with spare cores can overlap them.  This driver runs each
``bench_*.py`` in its own pytest subprocess:

* ``--jobs N`` overlaps up to N files (default 1 — serial, the CI
  setting, so the default behavior is identical scheduling to the
  plain pytest invocation just with process isolation per file);
* each worker gets ``$REPRO_BENCH_PARTIAL`` pointing at a per-file
  partial artifact, so the benchmark conftest writes its collected
  sections there instead of racing on ``BENCH_SUMMARY.json``;
* after all workers finish the driver merges the partials
  deterministically (sorted by suite and bench id — worker completion
  order cannot change the output; duplicate bench ids across files
  are an error) and writes ``BENCH_SUMMARY.json`` plus at most one
  ``BENCH_HISTORY.jsonl`` record, exactly like a serial session.

If any bench file fails, its output is replayed, no summary or
history is written, and the driver exits non-zero.

Usage::

    python benchmarks/run_suite.py [--jobs N] [--keep-partials]
                                   [pytest args...]

Extra arguments are forwarded to every pytest invocation (e.g.
``-k pattern`` or ``--benchmark-disable`` for a smoke pass).
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
SRC_DIR = REPO_ROOT / "src"

sys.path.insert(0, str(SRC_DIR))

from repro.obs.suite import (  # noqa: E402
    load_partial,
    merge_partials,
    write_summary,
)

SUMMARY_PATH = REPO_ROOT / "BENCH_SUMMARY.json"
HISTORY_PATH = REPO_ROOT / "BENCH_HISTORY.jsonl"


def discover_benchmarks(bench_dir: pathlib.Path = BENCH_DIR):
    """The suite's bench files, in deterministic (sorted) order."""
    return sorted(bench_dir.glob("bench_*.py"))


def _worker_env(partial: pathlib.Path) -> dict:
    env = dict(os.environ)
    env["REPRO_BENCH_PARTIAL"] = str(partial)
    pythonpath = env.get("PYTHONPATH", "")
    if str(SRC_DIR) not in pythonpath.split(os.pathsep):
        env["PYTHONPATH"] = (str(SRC_DIR) + os.pathsep + pythonpath
                             if pythonpath else str(SRC_DIR))
    return env


def _run_one(bench: pathlib.Path, partial_dir: pathlib.Path,
             pytest_args):
    """Run one bench file in a pytest subprocess; returns its report."""
    partial = partial_dir / f"{bench.stem}.json"
    command = [sys.executable, "-m", "pytest", str(bench),
               "--benchmark-only", "-q", *pytest_args]
    proc = subprocess.run(command, cwd=REPO_ROOT,
                          env=_worker_env(partial),
                          capture_output=True, text=True)
    return {
        "bench": bench,
        "returncode": proc.returncode,
        "output": proc.stdout + proc.stderr,
        "partial": partial,
    }


def run_suite(jobs: int = 1, pytest_args=(), keep_partials: bool = False,
              benchmarks=None) -> int:
    benchmarks = list(benchmarks if benchmarks is not None
                      else discover_benchmarks())
    if not benchmarks:
        print("run_suite: no bench_*.py files found", file=sys.stderr)
        return 2

    partial_dir = pathlib.Path(tempfile.mkdtemp(prefix="bench-partials-"))
    try:
        if jobs <= 1:
            reports = [_run_one(bench, partial_dir, pytest_args)
                       for bench in benchmarks]
        else:
            # threads only marshal subprocesses; the parallelism is the
            # per-file pytest processes themselves
            with concurrent.futures.ThreadPoolExecutor(
                    max_workers=jobs) as pool:
                reports = list(pool.map(
                    lambda bench: _run_one(bench, partial_dir,
                                           pytest_args),
                    benchmarks))

        failed = [r for r in reports if r["returncode"] != 0]
        # replay outputs in file order, not completion order
        for report in reports:
            status = ("ok" if report["returncode"] == 0
                      else f"FAILED (exit {report['returncode']})")
            print(f"=== {report['bench'].name}: {status} ===")
            if report["returncode"] != 0:
                print(report["output"])
        if failed:
            names = ", ".join(r["bench"].name for r in failed)
            print(f"run_suite: {len(failed)} file(s) failed ({names}); "
                  f"summary and history left untouched", file=sys.stderr)
            return 1

        partials = [load_partial(r["partial"]) for r in reports
                    if r["partial"].exists()]
        collected = merge_partials(partials)
        if collected:
            write_summary(SUMMARY_PATH, collected,
                          history_path=HISTORY_PATH,
                          git_sha=os.environ.get("REPRO_GIT_SHA",
                                                 "local"))
            print(f"run_suite: merged {len(partials)} partial(s) into "
                  f"{SUMMARY_PATH.name}")
        else:
            print("run_suite: no summary sections collected "
                  "(benchmark-disabled smoke pass?)")
        return 0
    finally:
        if not keep_partials:
            shutil.rmtree(partial_dir, ignore_errors=True)
        else:
            print(f"run_suite: partials kept in {partial_dir}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="run the benchmark suite file-by-file and merge "
                    "one BENCH_SUMMARY.json")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="bench files to overlap (default: 1, "
                             "serial)")
    parser.add_argument("--keep-partials", action="store_true",
                        help="leave the per-file partial artifacts on "
                             "disk for inspection")
    args, pytest_args = parser.parse_known_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    return run_suite(jobs=args.jobs, pytest_args=pytest_args,
                     keep_partials=args.keep_partials)


if __name__ == "__main__":
    sys.exit(main())
