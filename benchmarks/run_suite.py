#!/usr/bin/env python3
"""Benchmark-suite driver: run every bench file, land one summary.

``pytest benchmarks/ --benchmark-only`` runs the whole suite in one
process; fine for CI, but the files are independent and a development
host with spare cores can overlap them.  This driver runs each
``bench_*.py`` in its own pytest subprocess:

* ``--jobs N`` overlaps up to N files (default 1 — serial, the CI
  setting, so the default behavior is identical scheduling to the
  plain pytest invocation just with process isolation per file);
* each worker gets ``$REPRO_BENCH_PARTIAL`` pointing at a per-file
  partial artifact, so the benchmark conftest writes its collected
  sections there instead of racing on ``BENCH_SUMMARY.json``;
* every subprocess runs under a wall-clock ``--timeout`` (default
  900 s) — a hung worker is killed instead of wedging the whole
  suite, which is the driver-level complement to the in-simulator
  hang detection (``RunAbort``);
* failed or timed-out units are retried exactly once (transient
  flakiness — a noisy-host timing assertion, an OOM-killed worker —
  should not cost the whole run), and whatever valid partials a
  failed unit still produced are salvaged into the merge;
* after all workers finish the driver merges the partials
  deterministically (sorted by suite and bench id — worker completion
  order cannot change the output; duplicate bench ids across files
  are an error) and writes ``BENCH_SUMMARY.json`` plus at most one
  ``BENCH_HISTORY.jsonl`` record, exactly like a serial session.
  When any unit failed even after its retry, the summary still lands
  (with a ``suite_health`` section naming the failed / retried /
  salvaged units) but no history record is appended and the driver
  exits non-zero.

``--with-tests`` additionally shards the hypothesis-heavy
differential test suites (``tests/test_engine.py`` and
``tests/test_specialized_engine.py``) across the same worker pool:
their node ids are collected up front and dealt round-robin into
``--jobs`` extra pool units, run without ``--benchmark-only``.  The
serial CI path never does this — plain ``pytest -x -q`` stays the
deterministic reference schedule.

Usage::

    python benchmarks/run_suite.py [--jobs N] [--timeout SECONDS]
                                   [--with-tests] [--keep-partials]
                                   [pytest args...]

Extra arguments are forwarded to every *bench* pytest invocation
(e.g. ``-k pattern`` or ``--benchmark-disable`` for a smoke pass);
test shards run with plain ``-q``.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
SRC_DIR = REPO_ROOT / "src"

sys.path.insert(0, str(SRC_DIR))

from repro.obs.suite import (  # noqa: E402
    load_partial,
    merge_partials,
    write_summary,
)

SUMMARY_PATH = REPO_ROOT / "BENCH_SUMMARY.json"
HISTORY_PATH = REPO_ROOT / "BENCH_HISTORY.jsonl"

#: Per-subprocess wall-clock budget, seconds.  Generous: the slowest
#: bench file finishes in a few minutes even on a cold host; a worker
#: still running after this long is hung, not slow.
DEFAULT_TIMEOUT = 900.0

#: Test files whose hypothesis differential suites are worth sharding
#: across the worker pool under ``--with-tests``.
SHARDED_TEST_FILES = ("tests/test_engine.py",
                      "tests/test_specialized_engine.py")


def discover_benchmarks(bench_dir: pathlib.Path = BENCH_DIR):
    """The suite's bench files, in deterministic (sorted) order."""
    return sorted(bench_dir.glob("bench_*.py"))


def _worker_env(partial: pathlib.Path = None) -> dict:
    env = dict(os.environ)
    if partial is not None:
        env["REPRO_BENCH_PARTIAL"] = str(partial)
    else:
        env.pop("REPRO_BENCH_PARTIAL", None)
    pythonpath = env.get("PYTHONPATH", "")
    if str(SRC_DIR) not in pythonpath.split(os.pathsep):
        env["PYTHONPATH"] = (str(SRC_DIR) + os.pathsep + pythonpath
                             if pythonpath else str(SRC_DIR))
    return env


def _bench_unit(bench: pathlib.Path, pytest_args) -> dict:
    return {
        "name": bench.name,
        "targets": [str(bench)],
        "args": ["--benchmark-only", "-q", *pytest_args],
        "partial_stem": bench.stem,
    }


def collect_test_shards(shards: int, test_files=None,
                        repo_root: pathlib.Path = REPO_ROOT):
    """Deal the differential suites' node ids into *shards* pool units.

    Node ids are collected once up front (``pytest --collect-only -q``)
    and dealt round-robin, so the split is deterministic for a given
    tree and shard count.  Collection failure degrades to no shards
    with a warning rather than failing the bench run.
    """
    files = [str(f) for f in (test_files or SHARDED_TEST_FILES)
             if (repo_root / f).exists()]
    if not files:
        return []
    command = [sys.executable, "-m", "pytest", "--collect-only", "-q",
               *files]
    proc = subprocess.run(command, cwd=repo_root, env=_worker_env(),
                          capture_output=True, text=True)
    if proc.returncode != 0:
        print("run_suite: test collection failed; running without "
              "--with-tests shards", file=sys.stderr)
        print(proc.stdout + proc.stderr, file=sys.stderr)
        return []
    node_ids = [line.strip() for line in proc.stdout.splitlines()
                if "::" in line]
    if not node_ids:
        return []
    shards = max(1, shards)
    dealt = [[] for _ in range(min(shards, len(node_ids)))]
    for index, node_id in enumerate(node_ids):
        dealt[index % len(dealt)].append(node_id)
    return [{
        "name": f"tests-shard-{index + 1}of{len(dealt)}",
        "targets": node_ids,
        "args": ["-q"],
        "partial_stem": None,
    } for index, node_ids in enumerate(dealt)]


def _text(stream) -> str:
    if stream is None:
        return ""
    if isinstance(stream, bytes):
        return stream.decode(errors="replace")
    return stream


def _run_unit(unit: dict, partial_dir: pathlib.Path,
              timeout: float) -> dict:
    """Run one pool unit in a pytest subprocess; returns its report."""
    partial = (partial_dir / f"{unit['partial_stem']}.json"
               if unit["partial_stem"] else None)
    command = [sys.executable, "-m", "pytest", *unit["targets"],
               *unit["args"]]
    try:
        proc = subprocess.run(
            command, cwd=REPO_ROOT, env=_worker_env(partial),
            capture_output=True, text=True,
            timeout=timeout if timeout and timeout > 0 else None)
        returncode = proc.returncode
        output = proc.stdout + proc.stderr
        timed_out = False
    except subprocess.TimeoutExpired as exc:
        returncode = -9
        output = (_text(exc.stdout) + _text(exc.stderr)
                  + f"\nrun_suite: {unit['name']} killed after "
                    f"{timeout:g}s timeout\n")
        timed_out = True
    return {"unit": unit, "returncode": returncode, "output": output,
            "partial": partial, "timed_out": timed_out,
            "retried": False}


def _run_pool(units, partial_dir, timeout, jobs):
    if jobs <= 1 or len(units) <= 1:
        return [_run_unit(unit, partial_dir, timeout) for unit in units]
    # threads only marshal subprocesses; the parallelism is the
    # per-unit pytest processes themselves
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(
            lambda unit: _run_unit(unit, partial_dir, timeout), units))


def run_suite(jobs: int = 1, pytest_args=(), keep_partials: bool = False,
              benchmarks=None, timeout: float = DEFAULT_TIMEOUT,
              with_tests: bool = False,
              summary_path: pathlib.Path = SUMMARY_PATH,
              history_path: pathlib.Path = HISTORY_PATH,
              test_files=None) -> int:
    benchmarks = list(benchmarks if benchmarks is not None
                      else discover_benchmarks())
    if not benchmarks:
        print("run_suite: no bench_*.py files found", file=sys.stderr)
        return 2
    units = [_bench_unit(bench, pytest_args) for bench in benchmarks]
    if with_tests:
        units.extend(collect_test_shards(jobs, test_files=test_files))

    partial_dir = pathlib.Path(tempfile.mkdtemp(prefix="bench-partials-"))
    try:
        reports = _run_pool(units, partial_dir, timeout, jobs)

        # one retry for anything that failed or timed out: transient
        # flakiness must not cost the whole run, and the retry
        # overwrites the unit's partial atomically so a stale one
        # never wins over a fresh success
        retried_names = []
        first_failures = [r for r in reports if r["returncode"] != 0]
        if first_failures:
            retries = _run_pool([r["unit"] for r in first_failures],
                                partial_dir, timeout, jobs)
            by_name = {r["unit"]["name"]: r for r in retries}
            for index, report in enumerate(reports):
                if report["returncode"] != 0:
                    fresh = by_name[report["unit"]["name"]]
                    fresh["retried"] = True
                    reports[index] = fresh
                    retried_names.append(fresh["unit"]["name"])

        failed = [r for r in reports if r["returncode"] != 0]
        # replay outputs in unit order, not completion order
        for report in reports:
            if report["returncode"] == 0:
                status = "ok" + (" (after retry)" if report["retried"]
                                 else "")
            elif report["timed_out"]:
                status = (f"TIMED OUT after {timeout:g}s"
                          + (" (after retry)" if report["retried"]
                             else ""))
            else:
                status = (f"FAILED (exit {report['returncode']})"
                          + (" (after retry)" if report["retried"]
                             else ""))
            print(f"=== {report['unit']['name']}: {status} ===")
            if report["returncode"] != 0:
                print(report["output"])

        # salvage: a failed bench session that reached its session-end
        # hook still wrote a complete partial (writes are atomic, so a
        # partial either parses or does not exist); fold whatever
        # survived into the summary rather than discarding it
        partials, salvaged_names = [], []
        for report in reports:
            partial = report["partial"]
            if partial is None or not partial.exists():
                continue
            try:
                artifact = load_partial(partial)
            except (ValueError, OSError):
                continue  # no valid partial to salvage
            if report["returncode"] != 0:
                salvaged_names.append(report["unit"]["name"])
            partials.append(artifact)
        collected = merge_partials(partials)

        failed_names = sorted(r["unit"]["name"] for r in failed)
        if failed_names or retried_names:
            health = {}
            if failed_names:
                health["failed"] = ", ".join(failed_names)
            if retried_names:
                health["retried"] = ", ".join(sorted(retried_names))
            if salvaged_names:
                health["salvaged"] = ", ".join(sorted(salvaged_names))
            collected.setdefault("suite_health", {})["run"] = health

        if collected:
            # a run with unresolved failures still lands the summary
            # (so salvaged numbers are not lost) but never appends a
            # history record — the ledger only records complete runs
            write_summary(
                summary_path, collected,
                history_path=None if failed_names else history_path,
                git_sha=os.environ.get("REPRO_GIT_SHA", "local"))
            print(f"run_suite: merged {len(partials)} partial(s) into "
                  f"{pathlib.Path(summary_path).name}")
        else:
            print("run_suite: no summary sections collected "
                  "(benchmark-disabled smoke pass?)")

        if failed_names:
            print(f"run_suite: {len(failed_names)} unit(s) failed after "
                  f"retry ({', '.join(failed_names)})", file=sys.stderr)
            return 1
        return 0
    finally:
        if not keep_partials:
            shutil.rmtree(partial_dir, ignore_errors=True)
        else:
            print(f"run_suite: partials kept in {partial_dir}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="run the benchmark suite file-by-file and merge "
                    "one BENCH_SUMMARY.json")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="bench files to overlap (default: 1, "
                             "serial)")
    parser.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT,
                        help="per-subprocess wall-clock limit in "
                             "seconds; 0 disables (default: "
                             f"{DEFAULT_TIMEOUT:g})")
    parser.add_argument("--with-tests", action="store_true",
                        help="also shard the hypothesis differential "
                             "test suites across the worker pool")
    parser.add_argument("--keep-partials", action="store_true",
                        help="leave the per-file partial artifacts on "
                             "disk for inspection")
    args, pytest_args = parser.parse_known_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.timeout < 0:
        parser.error("--timeout must be >= 0")
    return run_suite(jobs=args.jobs, pytest_args=pytest_args,
                     keep_partials=args.keep_partials,
                     timeout=args.timeout, with_tests=args.with_tests)


if __name__ == "__main__":
    sys.exit(main())
