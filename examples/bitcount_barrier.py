#!/usr/bin/env python3
"""Example 3: BITCOUNT1 — explicit barrier synchronization.

Four data-dependent bit-counting loops run concurrently, one per FU;
the ALL-sync barrier at address 10: holds each stream (asserting DONE)
until every stream arrives, then all four join into one SSET for the
software-pipelined stores (Figure 11's control flow).  The same work is
run on the single-stream VLIW machine for comparison.
"""

from repro.analysis import PartitionStats
from repro.asm import assemble
from repro.machine import TrackerKind, VliwMachine, XimdMachine
from repro.workloads import (
    B_BASE,
    BITCOUNT_REGS,
    bitcount_memory,
    bitcount_total_reference,
    bitcount_total_source,
    bitcount_vliw_source,
    random_words,
)

N = 16


def main():
    data = random_words(N, seed=2024)
    reference = bitcount_total_reference(data, N)

    # --- XIMD: four concurrent streams + barrier ------------------------
    machine = XimdMachine(assemble(bitcount_total_source()), trace=True,
                          tracker=TrackerKind.ADAPTIVE)
    machine.regfile.poke(BITCOUNT_REGS["n"], N)
    for address, value in bitcount_memory(data).items():
        machine.memory.poke(address, value)
    ximd = machine.run()
    got = {k: machine.memory.peek(B_BASE + k) for k in range(N + 1)}
    assert got == reference, "XIMD result mismatch"

    stats = PartitionStats.from_trace(machine.trace)
    print(f"XIMD: {ximd.cycles} cycles")
    print(f"  stream behavior: {stats.describe()}")

    # --- VLIW: one element at a time ------------------------------------
    vliw_machine = VliwMachine(assemble(bitcount_vliw_source()))
    vliw_machine.regfile.poke(BITCOUNT_REGS["n"], N)
    for address, value in bitcount_memory(data).items():
        vliw_machine.memory.poke(address, value)
    vliw = vliw_machine.run()
    got = {k: vliw_machine.memory.peek(B_BASE + k) for k in range(N + 1)}
    assert got == reference, "VLIW result mismatch"

    print(f"VLIW: {vliw.cycles} cycles")
    print(f"speedup: {vliw.cycles / ximd.cycles:.2f}x on {N} words")
    print()
    print("B[] =", [reference[k] for k in range(N + 1)])


if __name__ == "__main__":
    main()
