#!/usr/bin/env python3
"""The Figure 13 compilation approach: threads -> tiles -> packing.

Six program threads (independent reduction loops) are each compiled at
widths 1, 2, and 4; each compilation is a *tile* (width x static code
size); the Pareto set per thread feeds the packers, which lay one
implementation of each thread into the 8-FU instruction memory.  Two
alternative packings are printed (the figure's side-by-side
comparison), and the executable stack packing is actually run on the
XIMD with a closing barrier.
"""

from collections import defaultdict

from repro.compiler import (
    generate_tiles,
    lower_unit,
    pack_in_order,
    pack_skyline,
    pack_stacks,
    packed_program,
    pareto_tiles,
    parse_xc,
)
from repro.machine import XimdMachine
from repro.obs import observed, recording_observer
from repro.workloads import branchy_loop_sources, random_ints

N_THREADS = 6


def print_pass_telemetry(obs) -> None:
    """Aggregate PassEvents into a per-pass wall-time/IR-size table."""
    stats = defaultdict(lambda: {"calls": 0, "seconds": 0.0,
                                 "ops_in": 0, "ops_out": 0})
    for event in obs.sinks[0].of_kind("pass"):
        entry = stats[event.name]
        entry["calls"] += 1
        entry["seconds"] += event.seconds
        entry["ops_in"] += event.ops_in
        entry["ops_out"] += event.ops_out
    print("\n=== compiler-pass telemetry (repro.obs) ===")
    print(f"{'pass':<20} {'calls':>5} {'wall ms':>9} "
          f"{'ops in':>7} {'ops out':>8}")
    for name, entry in sorted(stats.items(),
                              key=lambda kv: -kv[1]["seconds"]):
        print(f"{name:<20} {entry['calls']:>5} "
              f"{entry['seconds'] * 1e3:>9.3f} "
              f"{entry['ops_in']:>7} {entry['ops_out']:>8}")


def main():
    obs = recording_observer()
    with observed(obs):
        compile_pack_and_run()
    print_pass_telemetry(obs)


def compile_pack_and_run():
    sources, oracles, bases = branchy_loop_sources(N_THREADS, seed=13)

    print("=== tile generation (compile each thread at several widths) ===")
    menu = []
    two_wide = []
    for index, source in enumerate(sources):
        name = f"loop{index}"
        fn = lower_unit(parse_xc(source))[name]
        tiles = pareto_tiles(generate_tiles(fn, widths=(1, 2, 4)))
        menu.append(tiles)
        two_wide.append(next(t for t in tiles if t.width == 2))
        print(f"  {name}: " + ", ".join(
            f"{t.width}x{t.height}" for t in tiles))

    print("\n=== alternative packings (Figure 13) ===")
    for label, packing in (
            ("solution 1: in-order shelves", pack_in_order(two_wide, 8)),
            ("solution 2: skyline FFD", pack_skyline(two_wide, 8)),
            ("solution 3: executable stacks", pack_stacks(two_wide, 8))):
        print(f"-- {label} --")
        print(packing.describe())
        print()

    print("=== running the executable packing ===")
    packing = pack_stacks(two_wide, 8)
    program, by_thread = packed_program(packing)
    machine = XimdMachine(program)
    lengths = [6 + 2 * i for i in range(N_THREADS)]
    datas = []
    for index, base in enumerate(bases):
        values = random_ints(30, seed=90 + index, lo=0, hi=300)
        datas.append(values)
        for k in range(1, 30):
            machine.memory.poke(base + k, values[k])
    for index in range(N_THREADS):
        placement = by_thread[f"loop{index}"]
        machine.regfile.poke(
            placement.tile.compiled.register("n")
            + placement.register_base, lengths[index])
    result = machine.run()
    print(f"all {N_THREADS} threads finished in {result.cycles} cycles "
          f"(barrier join at the end)")
    for index in range(N_THREADS):
        placement = by_thread[f"loop{index}"]
        got = machine.regfile.peek(
            placement.tile.compiled.register("__ret")
            + placement.register_base)
        expected = oracles[index](datas[index], lengths[index])
        status = "ok" if got == expected else "MISMATCH"
        print(f"  loop{index}: {got} ({status})")


if __name__ == "__main__":
    main()
