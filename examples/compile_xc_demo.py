#!/usr/bin/env python3
"""The compiler pipeline end to end, on a small XC program.

Shows each stage the section 4.2 flow rebuilds: XC source -> IR ->
simplify/percolation -> (optional software pipelining) -> list
scheduling -> registers -> an executable VLIW-mode program, then runs
the result on both machines at several widths.
"""

from repro.asm import format_listing
from repro.compiler import (
    compile_xc,
    lower_unit,
    parse_xc,
    percolate_function,
    simplify_function,
)
from repro.machine import run_vliw, run_ximd

SOURCE = """
func sumsq(n) {
  var i, acc;
  array A @ 0x400;
  i = 1;
  acc = 0;
  while (i <= n) {
    acc = acc + A[i] * A[i];
    i = i + 1;
  }
  return acc;
}
"""

N = 12
DATA = [0] + [k * 3 - 7 for k in range(1, N + 1)]


def main():
    print("=== XC source ===")
    print(SOURCE)

    fn = lower_unit(parse_xc(SOURCE))["sumsq"]
    print("=== IR after lowering ===")
    print(fn)
    simplify_function(fn)
    percolate_function(fn)
    simplify_function(fn)
    print("\n=== IR after simplify + percolation ===")
    print(fn)

    expected = sum(v * v for v in DATA[1:])
    print("\n=== compiled at several widths ===")
    for width in (1, 2, 4, 8):
        for pipeline in (False, True):
            cf = compile_xc(SOURCE, width=width, pipeline=pipeline)
            memory = {0x400 + k: DATA[k] for k in range(1, N + 1)}
            result = run_ximd(cf.program,
                              registers={cf.register("n"): N},
                              memory_init=memory)
            got = result.register(cf.register("__ret"))
            assert got == expected, (width, pipeline, got, expected)
            tag = "modulo-scheduled" if pipeline else "list-scheduled"
            print(f"  width {width}, {tag:>16}: {result.cycles:>4} cycles,"
                  f" {cf.static_rows:>3} rows -> {got}")

    print("\n=== width-4 pipelined program (Figure 9 layout) ===")
    cf = compile_xc(SOURCE, width=4, pipeline=True)
    print(format_listing(cf.program))

    vliw = run_vliw(cf.program, registers={cf.register("n"): N},
                    memory_init={0x400 + k: DATA[k]
                                 for k in range(1, N + 1)})
    print(f"\nsame program on the VLIW machine: {vliw.cycles} cycles "
          f"(identical: compiled code is VLIW-mode)")


if __name__ == "__main__":
    main()
