#!/usr/bin/env python3
"""Figure 12: multiple non-blocking synchronizations between processes.

Two four-FU processes run concurrently on one 8-FU XIMD.  Process 1
polls port IN1 for a, b, c; Process 2 polls IN2 for x, y, z; each
passes its values to the other through shared registers, signaling
availability on one sync bit per variable (a->SS0 ... z->SS6), and
writes what it receives to its output port.  The memory-flag baseline
implements the identical protocol with flag words — the comparison the
paper makes when it says sync bits "will result in increased
performance".
"""

from repro.asm import assemble
from repro.machine import XimdMachine
from repro.workloads import (
    iosync_memory_source,
    iosync_sync_source,
    make_devices,
)

SCENARIO = {
    "a,b,c": [(2, 101), (8, 102), (30, 103)],
    "x,y,z": [(15, 201), (18, 202), (22, 203)],
}


def run(source):
    devices, in1, in2, out1, out2 = make_devices(
        SCENARIO["a,b,c"], SCENARIO["x,y,z"])
    machine = XimdMachine(assemble(source), devices=devices)
    result = machine.run()
    return result, out1, out2


def main():
    print("port schedule:")
    print(f"  IN1 (a,b,c): {SCENARIO['a,b,c']}")
    print(f"  IN2 (x,y,z): {SCENARIO['x,y,z']}")
    print()

    for label, source in (("sync bits (paper design)",
                           iosync_sync_source()),
                          ("memory flags (baseline)",
                           iosync_memory_source())):
        result, out1, out2 = run(source)
        print(f"{label}: {result.cycles} cycles")
        print(f"  OUT1 received (cycle, value): {out1.writes}")
        print(f"  OUT2 received (cycle, value): {out2.writes}")

    sync_cycles = run(iosync_sync_source())[0].cycles
    flag_cycles = run(iosync_memory_source())[0].cycles
    print(f"\nsync-bit advantage: "
          f"{flag_cycles - sync_cycles} cycles "
          f"({flag_cycles / sync_cycles:.2f}x)")


if __name__ == "__main__":
    main()
