#!/usr/bin/env python3
"""Reproduce Figure 10: the MINMAX address trace.

Runs Example 2's program on IZ() = (5, 3, 4, 7) with the exact SSET
tracker and prints the trace next to the published figure, matching it
cell for cell: per-cycle PCs, condition-code registers "as they exist
at the beginning of each cycle", and the dynamic partition that forks
into {0,1}{2}{3} at every conditional-update cycle.
"""

from repro.asm import assemble, format_listing
from repro.machine import TrackerKind, XimdMachine
from repro.workloads import (
    FIGURE10_DATA,
    FIGURE10_EXPECTED,
    MINMAX_REGS,
    minmax_memory,
    minmax_source,
)


def main():
    program = assemble(minmax_source("loop"))

    print("=== MINMAX program (Example 2, Figure 9 layout) ===")
    print(format_listing(program))
    print()

    machine = XimdMachine(program, trace=True, tracker=TrackerKind.EXACT)
    machine.regfile.poke(MINMAX_REGS["n"], len(FIGURE10_DATA))
    for address, value in minmax_memory(FIGURE10_DATA).items():
        machine.memory.poke(address, value)
    for _ in range(len(FIGURE10_EXPECTED)):
        machine.step()

    print(f"=== address trace for IZ() = {FIGURE10_DATA} ===")
    print(machine.trace.format())
    print()

    mismatches = 0
    for record, (pcs, cc, partition) in zip(machine.trace,
                                            FIGURE10_EXPECTED):
        ok = (tuple(record.pcs) == pcs
              and record.condition_codes == cc
              and record.partition_text() == partition)
        if not ok:
            mismatches += 1
            print(f"cycle {record.cycle}: MISMATCH vs Figure 10")
    lo = machine.regfile.peek(MINMAX_REGS["min"])
    hi = machine.regfile.peek(MINMAX_REGS["max"])
    print(f"min = {lo}, max = {hi}")
    print("Figure 10 match:" , "EXACT (all 14 cycles)" if mismatches == 0
          else f"{mismatches} mismatching cycles")
    assert mismatches == 0 and (lo, hi) == (3, 7)


if __name__ == "__main__":
    main()
