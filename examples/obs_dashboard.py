#!/usr/bin/env python3
"""Record an instrumented MINMAX run and export every obs artifact.

Produces, in the chosen output directory (default ``./obs_out``):

* ``minmax_run.jsonl``    — the raw event trace;
* ``minmax_report.json``  — the deterministic run report (schema-
  versioned; wall-clock quarantined under ``timing`` and excluded);
* ``dashboard.html``      — the offline, stdlib-only HTML dashboard
  with per-FU stall attribution and the SSET timeline (pass
  ``--history BENCH_HISTORY.jsonl`` to add the benchmark trend panel).

The same flow is what CI runs to publish its dashboard artifact.
"""

import argparse
import pathlib

from repro.asm import assemble
from repro.machine import TrackerKind, XimdMachine
from repro.obs import JsonlSink, Observer, RunReport, write_dashboard
from repro.obs.history import read_history
from repro.workloads import (
    FIGURE10_DATA,
    MINMAX_REGS,
    minmax_memory,
    minmax_source,
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="obs_out",
                        help="output directory (default: obs_out)")
    parser.add_argument("--history", default=None,
                        help="BENCH_HISTORY.jsonl to chart in the "
                             "dashboard's trend panel")
    args = parser.parse_args()

    out = pathlib.Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = out / "minmax_run.jsonl"

    obs = Observer(JsonlSink(trace_path))
    machine = XimdMachine(assemble(minmax_source("halt")), obs=obs,
                          trace=True, tracker=TrackerKind.EXACT)
    machine.regfile.poke(MINMAX_REGS["n"], len(FIGURE10_DATA))
    for address, value in minmax_memory(FIGURE10_DATA).items():
        machine.memory.poke(address, value)
    result = machine.run(10_000)
    obs.close()
    assert result.halted

    from repro.obs import read_jsonl

    events = read_jsonl(trace_path)
    report = RunReport.from_events(events)
    report_path = report.write_json(out / "minmax_report.json")

    timeline = [(e.cycle, len(e.partition)) for e in events
                if e.kind == "cycle" and e.partition is not None]
    history = read_history(args.history) if args.history else None
    dash_path = write_dashboard(out / "dashboard.html",
                                report.to_dict(include_timing=False),
                                timeline=timeline, history=history,
                                title="XIMD MINMAX — instrumented run")

    print(report.render_text())
    print()
    for path in (trace_path, report_path, dash_path):
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
