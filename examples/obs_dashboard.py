#!/usr/bin/env python3
"""Record instrumented runs and export every obs artifact.

Produces, in the chosen output directory (default
``benchmarks/results/obs_out``, next to the other generated
artifacts and git-ignored):

* ``minmax_run.jsonl``    — the raw Figure-10 event trace;
* ``minmax_report.json``  — the deterministic run report (schema-
  versioned; wall-clock quarantined under ``timing`` and excluded);
* ``dashboard.html``      — the offline, stdlib-only HTML dashboard
  with per-FU stall attribution and the SSET timeline (pass
  ``--history BENCH_HISTORY.jsonl`` to add the benchmark trend panel);
* ``bitcount_run.jsonl`` / ``bitcount_report.json`` /
  ``dashboard_bitcount.html`` — the same artifacts for the BITCOUNT1
  barrier workload, whose report exercises the synchronization panels
  (wait-matrix heatmap, barrier skew) that MINMAX's partition-only
  fork/join never populates.

The same flow is what CI runs to publish its dashboard artifact.
"""

import argparse
import pathlib

from repro.asm import assemble
from repro.machine import TrackerKind, XimdMachine
from repro.obs import JsonlSink, Observer, RunReport, write_dashboard
from repro.obs.history import read_history
from repro.workloads import (
    BITCOUNT_REGS,
    FIGURE10_DATA,
    MINMAX_REGS,
    bitcount_memory,
    bitcount_total_source,
    minmax_memory,
    minmax_source,
    random_words,
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output",
                        default="benchmarks/results/obs_out",
                        help="output directory (default: "
                             "benchmarks/results/obs_out)")
    parser.add_argument("--history", default=None,
                        help="BENCH_HISTORY.jsonl to chart in the "
                             "dashboard's trend panel")
    args = parser.parse_args()

    out = pathlib.Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = out / "minmax_run.jsonl"

    obs = Observer(JsonlSink(trace_path))
    machine = XimdMachine(assemble(minmax_source("halt")), obs=obs,
                          trace=True, tracker=TrackerKind.EXACT)
    machine.regfile.poke(MINMAX_REGS["n"], len(FIGURE10_DATA))
    for address, value in minmax_memory(FIGURE10_DATA).items():
        machine.memory.poke(address, value)
    result = machine.run(10_000)
    obs.close()
    assert result.halted

    from repro.obs import read_jsonl

    events = read_jsonl(trace_path)
    report = RunReport.from_events(events)
    report_path = report.write_json(out / "minmax_report.json")

    timeline = [(e.cycle, len(e.partition)) for e in events
                if e.kind == "cycle" and e.partition is not None]
    history = read_history(args.history) if args.history else None
    dash_path = write_dashboard(out / "dashboard.html",
                                report.to_dict(include_timing=False),
                                timeline=timeline, history=history,
                                title="XIMD MINMAX — instrumented run")

    # second artifact set: the barrier workload, for the sync panels
    bc_trace = out / "bitcount_run.jsonl"
    obs = Observer(JsonlSink(bc_trace))
    machine = XimdMachine(assemble(bitcount_total_source()), obs=obs)
    machine.regfile.poke(BITCOUNT_REGS["n"], 24)
    for address, value in bitcount_memory(
            random_words(24, seed=4)).items():
        machine.memory.poke(address, value)
    assert machine.run(1_000_000).halted
    obs.close()

    bc_events = read_jsonl(bc_trace)
    bc_report = RunReport.from_events(bc_events)
    assert bc_report.sync, "barrier workload must populate sync panels"
    bc_report_path = bc_report.write_json(out / "bitcount_report.json")
    bc_dash_path = write_dashboard(
        out / "dashboard_bitcount.html",
        bc_report.to_dict(include_timing=False), history=history,
        title="XIMD BITCOUNT1 — barrier synchronization")

    print(report.render_text())
    print()
    for path in (trace_path, report_path, dash_path,
                 bc_trace, bc_report_path, bc_dash_path):
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
