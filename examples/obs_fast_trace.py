#!/usr/bin/env python3
"""Tiered telemetry on the specialized engine: counters + sampling.

Demonstrates (and, in CI, smoke-tests) the telemetry tier policy:

* a counter-only observer (tier-0) keeps ``run(engine="auto")`` on the
  specialized code-generated engine while folding op censuses, per-FU
  cycle-class attribution, and register-file port peaks bit-identically
  to the reference interpreter;
* a sampled ring-buffer sink (tier-1, ``sample_every=N``) still
  specializes — the generated loop emits the full typed-event
  vocabulary every Nth cycle.

Both runs assert ``engine_used == "specialized"`` — if a future change
demotes either tier to a slower path, this script fails loudly.
"""

from repro.asm import assemble
from repro.machine import XimdMachine
from repro.obs import (
    CycleEvent,
    Observer,
    RunReport,
    recording_observer,
)
from repro.workloads import (
    BITCOUNT_REGS,
    bitcount_memory,
    bitcount_total_source,
    random_words,
)


def _machine(obs):
    data = random_words(48, seed=4)
    machine = XimdMachine(assemble(bitcount_total_source()), obs=obs)
    machine.regfile.poke(BITCOUNT_REGS["n"], 48)
    for address, value in bitcount_memory(data).items():
        machine.memory.poke(address, value)
    return machine


def main():
    # tier-0: counters only — folded into the generated loop
    obs = Observer()
    machine = _machine(obs)
    machine.run(1_000_000)
    assert machine.engine_used == "specialized", machine.engine_used

    print("=== tier-0 counter report (specialized engine) ===")
    report = RunReport.from_machine(machine, registry=obs.registry)
    print(report.render_text())
    print()

    # tier-1: sampled tracing — full events every 32nd cycle, still
    # specialized (the modulo guard is generated into the loop)
    sampled = recording_observer(sample_every=32)
    machine = _machine(sampled)
    machine.run(1_000_000)
    assert machine.engine_used == "specialized", machine.engine_used

    events = sampled.sinks[0].events
    cycles = [e.cycle for e in events if isinstance(e, CycleEvent)]
    assert cycles and all(c % 32 == 0 for c in cycles)
    print(f"=== tier-1 sampled trace (specialized engine) ===")
    print(f"{len(events)} events across {len(cycles)} sampled cycles "
          f"of {machine.cycle} simulated")
    print(f"engine_used = {machine.engine_used}")


if __name__ == "__main__":
    main()
