#!/usr/bin/env python3
"""Synchronization profiling: who waited on whom, and for how long.

Runs the BITCOUNT1 fork/join workload (Example 3 — four data-dependent
loops joined by an ALL-sync barrier) twice:

* tier-0: a counter-only observer on the specialized engine
  accumulates the per-FU wait matrix and per-barrier-site skew
  profiles natively; the aggregate critical path is estimated from
  the matrix;
* tier-2: a full typed-event ring-buffer trace on the fast engine
  yields cycle-resolved ``SyncEdgeEvent``s, so the critical wait
  chain is a proven temporal ordering rather than a weight argument.

Both tiers must agree on the sync section of the run report — the
script asserts it, then prints the wait matrix, the barrier skew
table, and both critical paths.
"""

from repro.asm import assemble
from repro.machine import XimdMachine
from repro.obs import (
    Observer,
    RunReport,
    critical_path_from_events,
    critical_path_from_matrix,
    format_wait_matrix,
    recording_observer,
)
from repro.workloads import (
    BITCOUNT_REGS,
    bitcount_memory,
    bitcount_total_source,
    random_words,
)


def _machine(obs):
    data = random_words(48, seed=4)
    machine = XimdMachine(assemble(bitcount_total_source()), obs=obs)
    machine.regfile.poke(BITCOUNT_REGS["n"], 48)
    for address, value in bitcount_memory(data).items():
        machine.memory.poke(address, value)
    return machine


def main():
    # tier-0: the wait matrix folds natively in the generated loop
    counted = _machine(Observer())
    counted.run(1_000_000)
    assert counted.engine_used == "specialized", counted.engine_used
    tier0 = RunReport.from_machine(counted)

    # tier-2: full ring-buffer trace on the fast engine (unsampled
    # tracing is the one tier the specialized loop does not generate)
    obs = recording_observer()
    traced = _machine(obs)
    traced.run(1_000_000)
    assert traced.engine_used == "fast", traced.engine_used
    events = obs.sinks[0].events
    tier2 = RunReport.from_events(events)

    # the cross-tier contract: counters and events tell the same story
    assert tier0.sync == tier2.sync, "sync sections diverged"
    sync = tier0.sync
    assert sync, "expected sync activity from the barrier workload"

    print("=== wait matrix (FU-cycles blocked, tier-0 counters) ===")
    print(format_wait_matrix(sync["wait_matrix"]))
    print()

    print("=== barrier skew (first arrival -> release) ===")
    for row in sync["barriers"]:
        print(f"  pc {row['pc']:#04x} FU{row['fu']}: "
              f"{row['count']} releases, mean {row['mean_skew']:.1f} cy, "
              f"max {row['max_skew']} cy")
    print()

    aggregate = critical_path_from_matrix(sync["wait_matrix"])
    resolved = critical_path_from_events(events)
    print("=== critical wait chain ===")
    print(f"aggregate (matrix) : {aggregate.total_cycles} cycles over "
          f"{len(aggregate.links)} links")
    print(f"cycle-resolved     : {resolved.total_cycles} cycles over "
          f"{len(resolved.links)} links")
    print()
    print(resolved.render())
    assert resolved.links, "expected a non-empty critical path"


if __name__ == "__main__":
    main()
