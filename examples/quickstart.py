#!/usr/bin/env python3
"""Quickstart: assemble a small XIMD program, run it, read the trace.

Demonstrates the core loop of the library:

1. write assembly in the paper's Figure 9 format,
2. assemble it into per-FU instruction-memory columns,
3. run it on the XIMD machine (``xsim``) with SSET tracking,
4. inspect the Figure 10 style address trace and the results.

The program forks two streams: FU0 counts to 5 while FU1 doubles a
seed value 3 times; an ALL-sync barrier joins them, and a final
VLIW-mode row combines both results.
"""

from repro.asm import assemble
from repro.machine import TrackerKind, XimdMachine

SOURCE = """
.width 2
.reg count r0
.reg value r1
.reg total r2

// both FUs start at 00: and immediately split into two streams
start:
| -> count_loop ; iadd #0,#0,count
| -> double_loop ; iadd #1,#0,value

count_loop:
| -> . ; iadd count,#1,count
-
| -> . ; ge count,#5
-
| if cc0 barrier, count_loop ; nop

.org @10
double_loop:
| empty
| -> . ; iadd value,value,value
-
| empty
| -> . ; ge value,#8
-
| empty
| if cc1 barrier, double_loop ; nop

// 4-way... here 2-way barrier: spin until both streams are DONE
.org @20
barrier:
| if all join, barrier ; nop ; done
| if all join, barrier ; nop ; done

join:
=> halt
| iadd count,value,total
| nop
"""


def main():
    program = assemble(SOURCE)
    machine = XimdMachine(program, trace=True,
                          tracker=TrackerKind.ADAPTIVE)
    result = machine.run()

    print("=== address trace (Figure 10 style) ===")
    print(result.trace.format(show_sync=True))
    print()
    print(f"cycles:       {result.cycles}")
    print(f"count (FU0):  {machine.regfile.peek(0)}")
    print(f"value (FU1):  {machine.regfile.peek(1)}")
    print(f"total:        {machine.regfile.peek(2)}")
    print(f"utilization:  {result.stats.utilization(2):.0%}")

    assert machine.regfile.peek(0) == 5
    assert machine.regfile.peek(1) == 8
    assert machine.regfile.peek(2) == 13
    print("\nok: both streams computed correctly and joined.")


if __name__ == "__main__":
    main()
