#!/usr/bin/env python3
"""The section 4.1 comparison: xsim vs vsim on the workload suite.

Compiles/loads each workload, runs it on both machines, and prints the
cycle counts and speedups.  The shape to observe:

* straight-line and software-pipelined code ties exactly — XIMD with
  duplicated control fields *is* a VLIW;
* programs with independent conditional updates (MINMAX) or multiple
  data-dependent loops (BITCOUNT, thread fleets) win on XIMD because
  the machine executes several control operations per cycle.

With ``--obs DIR`` the MINMAX run is re-executed under a
:mod:`repro.obs` observer, leaving three artifacts in DIR: a JSONL
event stream, a Chrome trace (one Perfetto track per FU), and a JSON
run report — then cross-checks the report against the post-hoc
``RunMetrics``/``PartitionStats`` aggregates.
"""

import argparse
import pathlib

from repro.analysis import PartitionStats, RunMetrics, render_table, speedup
from repro.asm import assemble
from repro.machine import TrackerKind, VliwMachine, XimdMachine
from repro.obs import (
    JsonlSink,
    Observer,
    RingBufferSink,
    RunReport,
    write_chrome_trace,
)
from repro.workloads import (
    BITCOUNT_REGS,
    MINMAX_REGS,
    TPROC_REGS,
    LL12_REGS,
    bitcount_memory,
    bitcount_total_source,
    bitcount_vliw_source,
    livermore12_memory,
    livermore12_source,
    minmax_memory,
    minmax_source,
    minmax_vliw_source,
    random_ints,
    random_words,
    tproc_source,
)


def run_pair(ximd_source, vliw_source, pokes, memory):
    cycles = []
    for cls, source in ((XimdMachine, ximd_source),
                        (VliwMachine, vliw_source)):
        machine = cls(assemble(source))
        for register, value in pokes.items():
            machine.regfile.poke(register, value)
        for address, value in memory.items():
            machine.memory.poke(address, value)
        cycles.append(machine.run(5_000_000).cycles)
    return cycles


def observe_minmax(out_dir: pathlib.Path) -> None:
    """Re-run MINMAX traced; write JSONL + Chrome trace + run report."""
    out_dir.mkdir(parents=True, exist_ok=True)
    jsonl_path = out_dir / "minmax_ximd.jsonl"
    buffer = RingBufferSink()
    obs = Observer([buffer, JsonlSink(jsonl_path)])

    data = random_ints(64, seed=2)[1:]
    machine = XimdMachine(assemble(minmax_source("halt")), trace=True,
                          tracker=TrackerKind.HEURISTIC, obs=obs)
    machine.regfile.poke(MINMAX_REGS["n"], len(data))
    for address, value in minmax_memory(data).items():
        machine.memory.poke(address, value)
    result = machine.run(5_000_000)
    obs.close()

    chrome_path = write_chrome_trace(out_dir / "minmax_ximd.chrome.json",
                                     buffer.events)
    report = RunReport.from_events(buffer.events, obs.registry)
    report_path = report.write_json(out_dir / "minmax_ximd.report.json")

    print(f"\n=== observability artifacts ({out_dir}) ===")
    print(f"  events : {jsonl_path}")
    print(f"  chrome : {chrome_path}  (load in chrome://tracing / Perfetto)")
    print(f"  report : {report_path}")
    print()
    print(report.render_text())

    # the report must agree with the post-hoc aggregates
    metrics = RunMetrics.from_result(result, machine.config.n_fus)
    partition_stats = PartitionStats.from_trace(result.trace)
    assert report.cycles == metrics.cycles, "cycle count mismatch"
    assert abs(report.utilization - metrics.utilization) < 1e-12, \
        "utilization mismatch"
    assert report.sset_histogram == partition_stats.stream_histogram, \
        "SSET histogram mismatch"
    print("\nreport agrees with RunMetrics/PartitionStats "
          f"(cycles={report.cycles}, utilization={report.utilization:.3f}, "
          f"ssets={report.sset_histogram})")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--obs", metavar="DIR", nargs="?",
                        default=None,
                        const="benchmarks/results/vliw_vs_ximd",
                        help="write JSONL/Chrome/report artifacts for a "
                             "traced MINMAX run into DIR (default when "
                             "the flag is given bare: "
                             "benchmarks/results/vliw_vs_ximd)")
    args = parser.parse_args()

    rows = []

    pokes = {TPROC_REGS[n]: v for n, v in zip("abcd", (5, 6, 7, 8))}
    x, v = run_pair(tproc_source(), tproc_source(), pokes, {})
    rows.append(["tproc (Example 1, scalar)", x, v, speedup(v, x)])

    n = 100
    y = random_ints(n + 1, seed=1)
    x, v = run_pair(livermore12_source(), livermore12_source(),
                    {LL12_REGS["n"]: n}, livermore12_memory(y))
    rows.append(["livermore 12 (pipelined)", x, v, speedup(v, x)])

    data = random_ints(64, seed=2)[1:]
    x, v = run_pair(minmax_source("halt"), minmax_vliw_source(),
                    {MINMAX_REGS["n"]: len(data)}, minmax_memory(data))
    rows.append(["minmax (Example 2)", x, v, speedup(v, x)])

    words = random_words(48, seed=3)
    x, v = run_pair(bitcount_total_source(), bitcount_vliw_source(),
                    {BITCOUNT_REGS["n"]: 48}, bitcount_memory(words))
    rows.append(["bitcount (Example 3)", x, v, speedup(v, x)])

    print(render_table(
        ["workload", "XIMD cycles", "VLIW cycles", "speedup"],
        rows, title="xsim vs vsim (section 4.1)"))

    if args.obs:
        observe_minmax(pathlib.Path(args.obs))


if __name__ == "__main__":
    main()
