#!/usr/bin/env python3
"""The section 4.1 comparison: xsim vs vsim on the workload suite.

Compiles/loads each workload, runs it on both machines, and prints the
cycle counts and speedups.  The shape to observe:

* straight-line and software-pipelined code ties exactly — XIMD with
  duplicated control fields *is* a VLIW;
* programs with independent conditional updates (MINMAX) or multiple
  data-dependent loops (BITCOUNT, thread fleets) win on XIMD because
  the machine executes several control operations per cycle.
"""

from repro.analysis import render_table, speedup
from repro.asm import assemble
from repro.machine import VliwMachine, XimdMachine
from repro.workloads import (
    BITCOUNT_REGS,
    MINMAX_REGS,
    TPROC_REGS,
    LL12_REGS,
    bitcount_memory,
    bitcount_total_source,
    bitcount_vliw_source,
    livermore12_memory,
    livermore12_source,
    minmax_memory,
    minmax_source,
    minmax_vliw_source,
    random_ints,
    random_words,
    tproc_source,
)


def run_pair(ximd_source, vliw_source, pokes, memory):
    cycles = []
    for cls, source in ((XimdMachine, ximd_source),
                        (VliwMachine, vliw_source)):
        machine = cls(assemble(source))
        for register, value in pokes.items():
            machine.regfile.poke(register, value)
        for address, value in memory.items():
            machine.memory.poke(address, value)
        cycles.append(machine.run(5_000_000).cycles)
    return cycles


def main():
    rows = []

    pokes = {TPROC_REGS[n]: v for n, v in zip("abcd", (5, 6, 7, 8))}
    x, v = run_pair(tproc_source(), tproc_source(), pokes, {})
    rows.append(["tproc (Example 1, scalar)", x, v, speedup(v, x)])

    n = 100
    y = random_ints(n + 1, seed=1)
    x, v = run_pair(livermore12_source(), livermore12_source(),
                    {LL12_REGS["n"]: n}, livermore12_memory(y))
    rows.append(["livermore 12 (pipelined)", x, v, speedup(v, x)])

    data = random_ints(64, seed=2)[1:]
    x, v = run_pair(minmax_source("halt"), minmax_vliw_source(),
                    {MINMAX_REGS["n"]: len(data)}, minmax_memory(data))
    rows.append(["minmax (Example 2)", x, v, speedup(v, x)])

    words = random_words(48, seed=3)
    x, v = run_pair(bitcount_total_source(), bitcount_vliw_source(),
                    {BITCOUNT_REGS["n"]: 48}, bitcount_memory(words))
    rows.append(["bitcount (Example 3)", x, v, speedup(v, x)])

    print(render_table(
        ["workload", "XIMD cycles", "VLIW cycles", "speedup"],
        rows, title="xsim vs vsim (section 4.1)"))


if __name__ == "__main__":
    main()
