"""repro — a reproduction of the XIMD architecture (Wolfe & Shen, ASPLOS 1991).

"A Variable Instruction Stream Extension to the VLIW Architecture"
proposed XIMD: a VLIW-structured processor whose per-functional-unit
sequencers let the machine split into a dynamically varying number of
instruction streams.  This package rebuilds the paper's research
artifacts from scratch:

* :mod:`repro.isa` — the XIMD-1 instruction set (parcels, condition
  codes, sync signals, binary encoding);
* :mod:`repro.asm` — an assembler/disassembler for the paper's code
  format;
* :mod:`repro.machine` — ``xsim`` (the XIMD simulator), ``vsim`` (the
  companion VLIW simulator), and the SSET/partition analysis;
* :mod:`repro.models` — the section 2 state-machine architecture models
  and their emulation relationships;
* :mod:`repro.compiler` — the VLIW compilation substrate (IR, list /
  percolation / trace scheduling, software pipelining) and the XIMD
  thread-tiling/packing approach of Figure 13;
* :mod:`repro.workloads` — the paper's example programs and synthetic
  workload generators;
* :mod:`repro.analysis` — metrics, the prototype performance model, and
  the register-file chip model.

Quickstart::

    from repro.asm import assemble
    from repro.machine import run_ximd, TrackerKind

    program = assemble(open("prog.x").read())
    result = run_ximd(program, trace=True, tracker=TrackerKind.ADAPTIVE)
    print(result.trace.format())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
