"""Metrics, reporting, and the paper's analytical models.

* :mod:`~repro.analysis.metrics` — speedups, utilization, SSET
  partition statistics over simulator runs (section 4.1).
* :mod:`~repro.analysis.cost` — the per-opcode energy/area/latency
  cost table and :class:`~repro.analysis.cost.EnergyReport` fold
  (section 4.3's component model, extended from time to energy).
* :mod:`~repro.analysis.prototype` — the 85 ns / ~90 MIPS prototype
  performance model (section 4.3).
* :mod:`~repro.analysis.registerfile` — the 24-port register-file chip
  partitioning arithmetic (section 4.4).
"""

from .cost import (
    COMPONENT_ENERGY_PJ,
    EnergyReport,
    OP_COSTS,
    OpCost,
    cost_of,
    cost_table,
    energy_report,
)
from .metrics import PartitionStats, RunMetrics, compare_runs, speedup
from .prototype import DEFAULT_DELAYS_NS, PrototypeModel
from .registerfile import (
    MachineRequirement,
    RegisterFileChip,
    chip_table,
    chips_in_parallel_for_reads,
    minimum_chips,
    total_transistors,
)
from .report import render_kv, render_table

__all__ = [
    "COMPONENT_ENERGY_PJ",
    "DEFAULT_DELAYS_NS",
    "EnergyReport",
    "MachineRequirement",
    "OP_COSTS",
    "OpCost",
    "PartitionStats",
    "PrototypeModel",
    "RegisterFileChip",
    "RunMetrics",
    "chip_table",
    "chips_in_parallel_for_reads",
    "compare_runs",
    "cost_of",
    "cost_table",
    "energy_report",
    "minimum_chips",
    "render_kv",
    "render_table",
    "speedup",
    "total_transistors",
]
