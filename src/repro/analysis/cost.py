"""Per-opcode energy/area/latency cost model (paper section 4.3).

Section 4.3 sizes the XIMD-1 prototype from its components — the
24-port register file, the per-FU sequencers, and the functional-unit
data paths — and argues cost/speed trade-offs from that component
model.  This module extends the same decomposition from *time*
(:mod:`~repro.analysis.prototype`) to *energy and area*: every data
operation in :mod:`repro.isa.opcodes` is assigned the components it
exercises (instruction fetch, operand-port reads, one functional-unit
structure, one write-back path), and folding that table over a dynamic
opcode census (``RunReport.op_histogram`` / ``DatapathStats.per_opcode``)
yields energy-per-workload numbers the diff/gate pipeline can track
next to cycle counts.

As with the prototype delay model, the per-component energies are
*parameters* representative of the paper's technology point (MOSIS
2 micron scalable CMOS, standard MSI parts), not measurements; the
reproducible content is the *structure* — which operations are
expensive, and how workload energy decomposes across units.  All folds
iterate in sorted order so reports are byte-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..isa.errors import UnknownOpcodeError
from ..isa.opcodes import OPCODES, OpKind

#: Picojoules per activation for the prototype's building blocks
#: (ca. 1990 2-micron CMOS; same technology point as
#: :data:`~repro.analysis.prototype.DEFAULT_DELAYS_NS`).
COMPONENT_ENERGY_PJ: Dict[str, float] = {
    "instruction_fetch": 6.0,   # one parcel slot from instruction SRAM
    "register_read": 2.5,       # one port of the 24-port register file
    "register_write": 3.5,      # one write-back port
    "cc_write": 0.8,            # condition-code register update
    "memory_read": 20.0,        # shared-memory load
    "memory_write": 22.0,       # shared-memory store
}

#: Functional-unit structures: energy per activation (pJ) and area
#: relative to the 32-bit integer ALU slice.
_UNITS: Dict[str, Tuple[float, float]] = {
    "alu_int": (4.0, 1.0),       # add/sub/min/max/logical slice
    "alu_shift": (3.0, 0.6),     # barrel shifter
    "alu_compare": (2.0, 0.4),   # integer comparator
    "fpu_compare": (3.0, 0.8),   # float comparator
    "fpu_add": (9.0, 2.0),       # float adder/subtractor
    "fpu_convert": (7.0, 1.5),   # int<->float conversion
    "int_multiply": (12.0, 2.5),
    "int_divide": (18.0, 3.0),   # iterative divider (also remainder)
    "fpu_multiply": (16.0, 4.0),
    "fpu_divide": (24.0, 5.0),
    "memory_port": (0.0, 1.8),   # port logic; access energy is separate
    "none": (0.0, 0.0),          # nop exercises no functional unit
}

#: Latency classes: ``short`` fits the 55 ns execute stage, ``long``
#: marks structures that would be iterative/multi-cycle on the
#: prototype's MSI parts, ``memory`` marks shared-memory access.
_UNIT_LATENCY: Dict[str, str] = {
    "alu_int": "short",
    "alu_shift": "short",
    "alu_compare": "short",
    "fpu_compare": "short",
    "fpu_add": "long",
    "fpu_convert": "long",
    "int_multiply": "long",
    "int_divide": "long",
    "fpu_multiply": "long",
    "fpu_divide": "long",
    "memory_port": "memory",
    "none": "short",
}

#: Mnemonic -> functional-unit structure it exercises.  Every opcode in
#: :data:`repro.isa.opcodes.OPCODES` must appear here — enforced by
#: tests, so a new opcode cannot ship uncosted.
_OP_UNIT: Dict[str, str] = {
    # integer arithmetic
    "iadd": "alu_int", "isub": "alu_int", "imin": "alu_int",
    "imax": "alu_int",
    "imult": "int_multiply", "idiv": "int_divide", "imod": "int_divide",
    # floating point
    "fadd": "fpu_add", "fsub": "fpu_add",
    "fmult": "fpu_multiply", "fdiv": "fpu_divide",
    # logical / shift
    "and": "alu_int", "or": "alu_int", "xor": "alu_int",
    "andn": "alu_int",
    "shl": "alu_shift", "shr": "alu_shift", "sar": "alu_shift",
    # conversions
    "itof": "fpu_convert", "ftoi": "fpu_convert",
    # compares
    "eq": "alu_compare", "ne": "alu_compare", "lt": "alu_compare",
    "le": "alu_compare", "gt": "alu_compare", "ge": "alu_compare",
    "feq": "fpu_compare", "fne": "fpu_compare", "flt": "fpu_compare",
    "fle": "fpu_compare", "fgt": "fpu_compare", "fge": "fpu_compare",
    # memory
    "load": "memory_port", "store": "memory_port",
    # nop
    "nop": "none",
}


@dataclass(frozen=True)
class OpCost:
    """The section-4.3 cost figures for one data operation.

    Attributes:
        mnemonic: assembly spelling, e.g. ``"iadd"``.
        energy_class: the functional-unit structure exercised (a key of
            the unit table; drives the per-class energy breakdown).
        energy_pj: total energy per execution — instruction fetch +
            operand-port reads + functional unit + write-back.
        rel_area: datapath area of the unit exercised, relative to the
            integer ALU slice.
        latency_class: ``short`` / ``long`` / ``memory`` (see module
            docs; the behavioral simulators execute everything in one
            cycle, so this is a hardware-model annotation, not a
            simulated latency).
    """

    mnemonic: str
    energy_class: str
    energy_pj: float
    rel_area: float
    latency_class: str


def _writeback_pj(kind: OpKind) -> float:
    e = COMPONENT_ENERGY_PJ
    if kind in (OpKind.ARITH, OpKind.LOAD):
        return e["register_write"]
    if kind is OpKind.COMPARE:
        return e["cc_write"]
    return 0.0


def _build_table() -> Dict[str, OpCost]:
    e = COMPONENT_ENERGY_PJ
    table: Dict[str, OpCost] = {}
    for mnemonic, opcode in OPCODES.items():
        unit = _OP_UNIT.get(mnemonic)
        if unit is None:
            # reached only when an opcode is added without a cost
            # entry; the coverage test catches it earlier and louder.
            raise UnknownOpcodeError(mnemonic)
        unit_pj, rel_area = _UNITS[unit]
        energy = e["instruction_fetch"] + unit_pj + _writeback_pj(opcode.kind)
        if opcode.kind is not OpKind.NOP:
            energy += opcode.num_sources * e["register_read"]
        if opcode.kind is OpKind.LOAD:
            energy += e["memory_read"]
        elif opcode.kind is OpKind.STORE:
            energy += e["memory_write"]
        table[mnemonic] = OpCost(
            mnemonic=mnemonic,
            energy_class=unit,
            energy_pj=energy,
            rel_area=rel_area,
            latency_class=_UNIT_LATENCY[unit],
        )
    return table


#: Mnemonic -> :class:`OpCost` for every defined data operation.
OP_COSTS: Dict[str, OpCost] = _build_table()


def cost_of(mnemonic: str) -> OpCost:
    """The :class:`OpCost` for *mnemonic*.

    Raises :class:`~repro.isa.errors.UnknownOpcodeError` for opcodes
    with no cost entry, so an uncosted opcode cannot fold silently.
    """
    try:
        return OP_COSTS[mnemonic]
    except KeyError:
        raise UnknownOpcodeError(mnemonic) from None


def cost_table() -> str:
    """Render the cost model as a fixed-width text table."""
    rows = [f"{'Opcode':<8} {'Unit':<13} {'Energy pJ':>10} "
            f"{'Rel area':>9}  Latency"]
    rows.append("-" * 52)
    for mnemonic in OPCODES:
        c = OP_COSTS[mnemonic]
        rows.append(f"{c.mnemonic:<8} {c.energy_class:<13} "
                    f"{c.energy_pj:>10.1f} {c.rel_area:>9.1f}  "
                    f"{c.latency_class}")
    return "\n".join(rows)


@dataclass(frozen=True)
class EnergyReport:
    """The cost table folded over one run's dynamic opcode census."""

    cycles: int
    ops: int                               #: executed non-nop data ops
    total_energy_pj: float
    energy_per_cycle_pj: float
    energy_per_op_pj: float
    per_opcode_pj: Dict[str, float]        #: mnemonic -> total pJ
    per_class_pj: Dict[str, float]         #: unit structure -> total pJ
    per_fu_pj: Tuple[float, ...] = ()      #: per-FU totals (when known)

    @classmethod
    def from_histogram(cls, histogram: Mapping[str, int], cycles: int,
                       per_fu_histograms: Optional[
                           Sequence[Mapping[str, int]]] = None,
                       ) -> "EnergyReport":
        """Fold the cost table over ``mnemonic -> execution count``.

        *histogram* is a ``RunReport.op_histogram`` /
        ``DatapathStats.per_opcode`` census (non-nop executions only);
        *per_fu_histograms* optionally gives the same census per FU for
        the per-FU breakdown.  Iteration is in sorted-mnemonic order so
        equal inputs produce bit-identical floats.  Raises
        :class:`~repro.isa.errors.UnknownOpcodeError` on a mnemonic
        with no cost entry.
        """
        per_opcode: Dict[str, float] = {}
        per_class: Dict[str, float] = {}
        total = 0.0
        ops = 0
        for mnemonic in sorted(histogram):
            count = int(histogram[mnemonic])
            if count <= 0:
                continue
            cost = cost_of(mnemonic)
            energy = cost.energy_pj * count
            per_opcode[mnemonic] = energy
            per_class[cost.energy_class] = (
                per_class.get(cost.energy_class, 0.0) + energy)
            total += energy
            ops += count
        per_fu: Tuple[float, ...] = ()
        if per_fu_histograms is not None:
            per_fu = tuple(
                sum(cost_of(m).energy_pj * int(c)
                    for m, c in sorted(fu_histogram.items()) if int(c) > 0)
                for fu_histogram in per_fu_histograms)
        return cls(
            cycles=cycles,
            ops=ops,
            total_energy_pj=total,
            energy_per_cycle_pj=total / cycles if cycles > 0 else 0.0,
            energy_per_op_pj=total / ops if ops > 0 else 0.0,
            per_opcode_pj=per_opcode,
            per_class_pj=dict(sorted(per_class.items())),
            per_fu_pj=per_fu,
        )

    def to_dict(self) -> dict:
        """JSON-ready, with values rounded for stable artifacts."""
        return {
            "cycles": self.cycles,
            "ops": self.ops,
            "total_energy_pj": round(self.total_energy_pj, 6),
            "energy_per_cycle_pj": round(self.energy_per_cycle_pj, 6),
            "energy_per_op_pj": round(self.energy_per_op_pj, 6),
            "per_opcode_pj": {m: round(v, 6)
                              for m, v in sorted(self.per_opcode_pj.items())},
            "per_class_pj": {c: round(v, 6)
                             for c, v in sorted(self.per_class_pj.items())},
            "per_fu_pj": [round(v, 6) for v in self.per_fu_pj],
        }

    def render_text(self) -> str:
        lines = [
            f"energy report — {self.ops} ops over {self.cycles} cycles",
            f"  total energy      : {self.total_energy_pj:.1f} pJ",
            f"  per cycle         : {self.energy_per_cycle_pj:.2f} pJ/cy",
            f"  per op            : {self.energy_per_op_pj:.2f} pJ/op",
        ]
        if self.per_class_pj:
            top = sorted(self.per_class_pj.items(),
                         key=lambda kv: (-kv[1], kv[0]))
            parts = ", ".join(f"{name}={pj:.0f}pJ" for name, pj in top)
            lines.append(f"  by unit           : {parts}")
        if self.per_fu_pj:
            parts = "  ".join(f"FU{fu}={pj:.0f}" for fu, pj
                              in enumerate(self.per_fu_pj))
            lines.append(f"  by FU (pJ)        : {parts}")
        return "\n".join(lines)


def energy_report(histogram: Mapping[str, int], cycles: int,
                  per_fu_histograms: Optional[
                      Sequence[Mapping[str, int]]] = None) -> EnergyReport:
    """Convenience alias for :meth:`EnergyReport.from_histogram`."""
    return EnergyReport.from_histogram(
        histogram, cycles, per_fu_histograms=per_fu_histograms)
