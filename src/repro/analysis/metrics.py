"""Derived metrics over simulation results.

The paper's evaluation compares xsim and vsim cycle counts (section
4.1); these helpers compute the quantities the benchmark harness
reports: speedups, utilization, dynamic operation mixes, and partition
statistics (how the machine's SSET count varied over a run — the
quantity that makes an execution "XIMD-like" rather than VLIW-like).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..machine.trace import AddressTrace
from ..machine.ximd import ExecutionResult


def speedup(baseline_cycles: int, improved_cycles: int) -> float:
    """Classic speedup: baseline time over improved time."""
    if improved_cycles <= 0:
        raise ValueError("cycle counts must be positive")
    return baseline_cycles / improved_cycles


@dataclass(frozen=True)
class PartitionStats:
    """Summary of a run's SSET behavior."""

    cycles: int
    stream_histogram: Dict[int, int]   # #SSETs -> cycles spent there
    max_streams: int
    mean_streams: float
    multi_stream_fraction: float       # cycles with > 1 stream

    @classmethod
    def from_trace(cls, trace: AddressTrace) -> "PartitionStats":
        histogram: Counter = Counter()
        for record in trace:
            if record.partition is None:
                continue
            histogram[len(record.partition)] += 1
        total = sum(histogram.values())
        if total == 0:
            return cls(0, {}, 0, 0.0, 0.0)
        weighted = sum(k * v for k, v in histogram.items())
        multi = sum(v for k, v in histogram.items() if k > 1)
        return cls(
            cycles=total,
            stream_histogram=dict(sorted(histogram.items())),
            max_streams=max(histogram),
            mean_streams=weighted / total,
            multi_stream_fraction=multi / total,
        )

    def describe(self) -> str:
        bars = ", ".join(f"{k} streams: {v}cy"
                         for k, v in self.stream_histogram.items())
        return (f"{self.cycles} cycles; mean {self.mean_streams:.2f} "
                f"streams, max {self.max_streams}; "
                f"{self.multi_stream_fraction:.0%} multi-stream [{bars}]")


@dataclass(frozen=True)
class RunMetrics:
    """One run's headline numbers."""

    cycles: int
    data_ops: int
    utilization: float
    branches: int

    @classmethod
    def from_result(cls, result: ExecutionResult,
                    n_fus: int) -> "RunMetrics":
        stats = result.stats
        return cls(
            cycles=result.cycles,
            data_ops=stats.data_ops,
            utilization=stats.utilization(n_fus),
            branches=(stats.branches_conditional
                      + stats.branches_unconditional),
        )


def compare_runs(ximd: ExecutionResult, vliw: ExecutionResult,
                 n_fus: int) -> Dict[str, float]:
    """The xsim-vs-vsim comparison row for one workload."""
    return {
        "ximd_cycles": ximd.cycles,
        "vliw_cycles": vliw.cycles,
        "speedup": speedup(vliw.cycles, ximd.cycles),
        "ximd_utilization": ximd.stats.utilization(n_fus),
        "vliw_utilization": vliw.stats.utilization(n_fus),
    }
