"""The hardware-prototype performance model (paper section 4.3).

The paper reports: *"An initial performance analysis predicts a cycle
time of 85ns.  This will result in peak performance in excess of 90
MIPS/90 MFLOPS."*  This module recomputes those figures from a
component-delay model of the prototype's critical path (operand fetch -
execute - write back data path, non-pipelined control path, 24-ported
register file) so the numbers are derived, not quoted.

Component delays are representative of the paper's technology point
(MOSIS 2 micron scalable CMOS, standard MSI parts, PALs) and are
parameters, not measurements; the *structure* — which path limits the
cycle — is the reproducible content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: nanosecond delays for the prototype's building blocks (ca. 1990
#: parts: register-file chip access, ALU, PAL condition evaluation,
#: instruction SRAM, latches/skew).
DEFAULT_DELAYS_NS: Dict[str, float] = {
    "instruction_memory": 30.0,   # SRAM fetch of the parcel
    "register_read": 25.0,        # custom 24-port register file chip
    "alu": 55.0,                  # 32-bit integer/float slice
    "register_write": 15.0,       # write-back setup
    "pal_condition": 20.0,        # condition-code selection PAL (Fig 8)
    "target_mux": 8.0,            # two-target branch multiplexer
    "sequencer_latch": 12.0,      # PC register setup + clock skew
    "sync_distribution": 15.0,    # SS broadcast across the backplane
}


@dataclass(frozen=True)
class PrototypeModel:
    """Delay/throughput model of the 8-FU prototype."""

    n_fus: int = 8
    pipeline_stages: Tuple[str, ...] = (
        "operand_fetch", "execute", "write_back")
    delays_ns: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_DELAYS_NS))

    def stage_delays(self) -> Dict[str, float]:
        """Critical-path delay of each structure that must fit in one
        cycle."""
        d = self.delays_ns
        return {
            # 3-stage data path: each stage must fit in a cycle
            "operand_fetch": d["instruction_memory"] + d["register_read"],
            "execute": d["alu"],
            "write_back": d["register_write"],
            # non-pipelined control path: fetch -> condition -> next PC
            "control": (d["instruction_memory"] + d["sync_distribution"]
                        + d["pal_condition"] + d["target_mux"]
                        + d["sequencer_latch"]),
        }

    @property
    def cycle_time_ns(self) -> float:
        """The slowest structure sets the cycle (paper: 85 ns)."""
        return max(self.stage_delays().values())

    @property
    def limiting_path(self) -> str:
        delays = self.stage_delays()
        return max(delays, key=delays.get)

    @property
    def clock_mhz(self) -> float:
        return 1000.0 / self.cycle_time_ns

    def peak_mips(self) -> float:
        """One data op per FU per cycle (paper: 'in excess of 90')."""
        return self.n_fus * self.clock_mhz

    def peak_mflops(self) -> float:
        """Every FU is universal, so float peak equals integer peak."""
        return self.peak_mips()

    def sustained_mips(self, utilization: float) -> float:
        """Throughput at a measured FU utilization (from xsim runs)."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        return self.peak_mips() * utilization

    def describe(self) -> str:
        lines = [
            f"prototype model: {self.n_fus} FUs",
            f"  stage delays (ns): " + ", ".join(
                f"{k}={v:.0f}" for k, v in self.stage_delays().items()),
            f"  cycle time: {self.cycle_time_ns:.0f} ns "
            f"(limited by {self.limiting_path})",
            f"  clock: {self.clock_mhz:.1f} MHz",
            f"  peak: {self.peak_mips():.0f} MIPS / "
            f"{self.peak_mflops():.0f} MFLOPS",
        ]
        return "\n".join(lines)
