"""The custom register-file chip model (paper section 4.4).

The paper's chip: *"Each chip supports 8 simultaneous reads and 8
simultaneous writes.  Two chips can be wired in parallel ... to provide
16 reads and 8 writes.  Each chip is two bits wide and contains 256
global registers.  This results in a minimum requirement of 32 register
file chips for the proposed prototype architecture."*  (70,000
transistors, 7.9 x 9.2 mm, 132-pin PGA, MOSIS 2 micron.)

This module recomputes the chip-count arithmetic for arbitrary machine
shapes: given FU count and word width, how many 2-bit 8R/8W slices are
needed, and how read-port pairing scales.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RegisterFileChip:
    """Parameters of one register-file chip (defaults: the Maly chip)."""

    bits_per_chip: int = 2
    registers: int = 256
    read_ports: int = 8
    write_ports: int = 8
    transistors: int = 70_000
    die_mm: tuple = (7.9, 9.2)
    package_pins: int = 132


@dataclass(frozen=True)
class MachineRequirement:
    """Register-file demand of a machine configuration."""

    n_fus: int = 8
    word_bits: int = 32
    reads_per_fu: int = 2
    writes_per_fu: int = 1

    @property
    def read_ports(self) -> int:
        return self.n_fus * self.reads_per_fu      # paper: 16

    @property
    def write_ports(self) -> int:
        return self.n_fus * self.writes_per_fu     # paper: 8


def chips_in_parallel_for_reads(requirement: MachineRequirement,
                                chip: RegisterFileChip = RegisterFileChip(),
                                ) -> int:
    """Chips wired in parallel per bit-slice to meet the read ports.

    Writes go to every parallel chip (keeping copies coherent), so the
    write ports must cover the machine's writes on *each* chip; reads
    split across the copies.  Paper: 2 chips -> 16 reads + 8 writes.
    """
    if requirement.write_ports > chip.write_ports:
        raise ValueError(
            f"{requirement.write_ports} writes/cycle exceed one chip's "
            f"{chip.write_ports} write ports; wider write banking is "
            f"outside the paper's design")
    return math.ceil(requirement.read_ports / chip.read_ports)


def minimum_chips(requirement: MachineRequirement = MachineRequirement(),
                  chip: RegisterFileChip = RegisterFileChip()) -> int:
    """Total chips for the machine (paper: 32 for the 8-FU prototype)."""
    slices = math.ceil(requirement.word_bits / chip.bits_per_chip)
    return slices * chips_in_parallel_for_reads(requirement, chip)


def total_transistors(requirement: MachineRequirement = MachineRequirement(),
                      chip: RegisterFileChip = RegisterFileChip()) -> int:
    """Silicon cost of the full register file in transistors."""
    return minimum_chips(requirement, chip) * chip.transistors


def chip_table(max_fus: int = 16,
               chip: RegisterFileChip = RegisterFileChip()) -> str:
    """Chip counts as the machine scales — the cost curve that
    motivated the paper's multi-chip partitioning."""
    lines = [f"{'FUs':>4} {'read ports':>11} {'write ports':>12} "
             f"{'parallel':>9} {'chips':>6}"]
    fus = 1
    while fus <= max_fus:
        req = MachineRequirement(n_fus=fus)
        try:
            parallel = chips_in_parallel_for_reads(req, chip)
            chips = minimum_chips(req, chip)
            lines.append(f"{fus:>4} {req.read_ports:>11} "
                         f"{req.write_ports:>12} {parallel:>9} {chips:>6}")
        except ValueError:
            lines.append(f"{fus:>4} {req.read_ports:>11} "
                         f"{req.write_ports:>12} {'—':>9} {'—':>6}")
        fus *= 2
    return "\n".join(lines)
