"""Plain-text table rendering for the benchmark harness.

All benchmarks print their results through :func:`render_table`, so
every experiment's output has the same fixed-width, diff-friendly
shape (EXPERIMENTS.md records these tables verbatim).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence],
                 title: Optional[str] = None) -> str:
    """Render a fixed-width text table."""
    text_rows: List[List[str]] = [[_format_cell(c) for c in row]
                                  for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-" * max(len(out[-1]), 8))
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def render_kv(title: str, pairs: Sequence[Sequence]) -> str:
    """Render key/value findings (for the analytical experiments)."""
    width = max(len(str(k)) for k, _ in pairs)
    lines = [title]
    lines += [f"  {str(k).ljust(width)} : {_format_cell(v)}"
              for k, v in pairs]
    return "\n".join(lines)
