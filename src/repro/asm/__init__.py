"""Assembler and disassembler for the XIMD-1 assembly language.

The textual format linearizes the paper's Figure 9 listing layout; see
:mod:`repro.asm.parser` for the grammar.
"""

from .assembler import BUILTIN_CONSTANTS, assemble, register_index
from .disasm import (
    disassemble,
    format_control_op,
    format_data_op,
    format_listing,
)
from .errors import AsmError, AsmLayoutError, AsmSymbolError, AsmSyntaxError
from .lexer import Token, TokenKind, TokenStream, tokenize
from .parser import parse_program

__all__ = [
    "AsmError",
    "AsmLayoutError",
    "AsmSymbolError",
    "AsmSyntaxError",
    "BUILTIN_CONSTANTS",
    "Token",
    "TokenKind",
    "TokenStream",
    "assemble",
    "disassemble",
    "format_control_op",
    "format_data_op",
    "format_listing",
    "parse_program",
    "register_index",
    "tokenize",
]
