"""Two-pass assembler: assembly text -> executable :class:`Program`.

Pass 1 assigns an instruction-memory address to every row and binds
labels; pass 2 resolves branch targets, symbolic constants, and symbolic
registers, and builds the per-FU parcel columns.

Symbolic registers (bare identifiers such as ``k``, ``tz``, ``min``) may
be bound explicitly with ``.reg name rN``; unbound names are
auto-allocated to the lowest free physical registers in first-appearance
order, which keeps listings as readable as the paper's examples without
hand-numbering every temporary.

Builtin constants: ``#minint`` and ``#maxint`` (the smallest/largest
representable 32-bit integers, used by Example 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa import (
    Condition,
    Const,
    ControlOp,
    DataOp,
    MAXINT,
    MININT,
    OpKind,
    Parcel,
    Reg,
    SyncValue,
    UnknownOpcodeError,
    lookup,
)
from ..machine.program import Program
from .errors import AsmLayoutError, AsmSymbolError, AsmSyntaxError
from .parser import (
    ControlSpec,
    DataSpec,
    OperandRef,
    ParcelSpec,
    ProgramSpec,
    RowSpec,
    TargetRef,
    parse_program,
)

#: Constants every program may reference without declaring.
BUILTIN_CONSTANTS = {"minint": MININT, "maxint": MAXINT}


class _SymbolTable:
    """Labels, constants, and register bindings for one assembly unit."""

    def __init__(self, spec: ProgramSpec):
        self.width = spec.width
        self.labels: Dict[str, int] = {}
        self.constants: Dict[str, object] = dict(BUILTIN_CONSTANTS)
        self.registers: Dict[str, int] = {}
        self._used_indices = set()

        for name, value, line in spec.const_bindings:
            if name in self.constants and name not in BUILTIN_CONSTANTS:
                raise AsmSymbolError(f"duplicate constant {name!r}", line)
            self.constants[name] = value
        for name, index, line in spec.reg_bindings:
            if name in self.registers:
                raise AsmSymbolError(f"duplicate register name {name!r}", line)
            if index >= 256:
                raise AsmSymbolError(
                    f"register index out of range: r{index}", line)
            self.registers[name] = index
            self._used_indices.add(index)

    def bind_label(self, name: str, address: int, line: int) -> None:
        if name in self.labels:
            raise AsmSymbolError(f"duplicate label {name!r}", line)
        self.labels[name] = address

    def resolve_register(self, name: str, line: int) -> int:
        index = self.registers.get(name)
        if index is not None:
            return index
        index = 0
        while index in self._used_indices:
            index += 1
        if index >= 256:
            raise AsmSymbolError(
                f"out of registers auto-allocating {name!r}", line)
        self.registers[name] = index
        self._used_indices.add(index)
        return index

    def resolve_constant(self, name: str, line: int):
        try:
            return self.constants[name]
        except KeyError:
            raise AsmSymbolError(f"undefined constant {name!r}", line) from None

    def resolve_target(self, target: TargetRef, own_address: int,
                       line: int) -> int:
        if target.kind == "next":
            return own_address + 1
        if target.kind == "addr":
            return int(target.value)
        address = self.labels.get(target.value)
        if address is None:
            raise AsmSymbolError(f"undefined label {target.value!r}", line)
        return address


def _expected_arity(kind: OpKind) -> int:
    if kind is OpKind.NOP:
        return 0
    if kind in (OpKind.COMPARE, OpKind.STORE):
        return 2
    return 3  # ARITH, LOAD: a, b, dest


def _build_operand(ref: OperandRef, symbols: _SymbolTable, line: int):
    if ref.kind == "reg":
        return Reg(int(ref.value))
    if ref.kind == "const":
        return Const(ref.value)
    if ref.kind == "sym_const":
        return Const(symbols.resolve_constant(ref.value, line))
    if ref.kind == "sym_reg":
        return Reg(symbols.resolve_register(ref.value, line))
    raise AsmSyntaxError(f"bad operand reference {ref!r}", line)


def _build_data_op(spec: DataSpec, symbols: _SymbolTable) -> DataOp:
    try:
        opcode = lookup(spec.mnemonic)
    except UnknownOpcodeError:
        raise AsmSyntaxError(
            f"unknown opcode {spec.mnemonic!r}", spec.line) from None
    expected = _expected_arity(opcode.kind)
    if len(spec.operands) != expected:
        raise AsmSyntaxError(
            f"{spec.mnemonic} takes {expected} operands, "
            f"got {len(spec.operands)}", spec.line)
    operands = [_build_operand(ref, symbols, spec.line)
                for ref in spec.operands]
    if opcode.kind is OpKind.NOP:
        return DataOp(opcode)
    if opcode.kind in (OpKind.COMPARE, OpKind.STORE):
        return DataOp(opcode, operands[0], operands[1])
    dest = operands[2]
    if not isinstance(dest, Reg):
        raise AsmSyntaxError(
            f"{spec.mnemonic} destination must be a register", spec.line)
    return DataOp(opcode, operands[0], operands[1], dest)


def _build_control(spec: ControlSpec, symbols: _SymbolTable,
                   address: int, width: int,
                   line: int) -> Optional[ControlOp]:
    if spec.condition is None:
        return None  # halt
    if spec.index is not None and spec.index >= width:
        raise AsmLayoutError(
            f"condition references FU {spec.index} but width is {width}",
            line)
    if spec.mask is not None:
        for member in spec.mask:
            if member >= width:
                raise AsmLayoutError(
                    f"sync mask references FU {member} but width is {width}",
                    line)
    target1 = symbols.resolve_target(spec.target1, address, line)
    target2 = (symbols.resolve_target(spec.target2, address, line)
               if spec.target2 is not None else None)
    return ControlOp(spec.condition, target1, target2, spec.index, spec.mask)


def assemble(text: str) -> Program:
    """Assemble *text* into an executable :class:`Program`."""
    spec = parse_program(text)
    symbols = _SymbolTable(spec)

    # ---- pass 1: assign addresses, bind labels -------------------------
    addressed: List[Tuple[int, RowSpec]] = []
    next_address = 0
    used_addresses: Dict[int, int] = {}
    for row in spec.rows:
        address = (row.explicit_addr if row.explicit_addr is not None
                   else next_address)
        if row.parcels or row.row_control is not None:
            if address in used_addresses:
                raise AsmLayoutError(
                    f"address {address:#04x} defined twice (lines "
                    f"{used_addresses[address]} and {row.line})", row.line)
            used_addresses[address] = row.line
            addressed.append((address, row))
        for label in row.labels:
            symbols.bind_label(label, address, row.line)
        next_address = address + (1 if (row.parcels or
                                        row.row_control is not None) else 0)

    if not addressed:
        raise AsmLayoutError("program has no instruction rows")

    length = max(address for address, _ in addressed) + 1
    width = spec.width
    columns: List[List[Optional[Parcel]]] = [
        [None] * length for _ in range(width)
    ]

    # ---- pass 2: resolve and place parcels -----------------------------
    for address, row in addressed:
        for fu, parcel_spec in enumerate(row.parcels):
            if parcel_spec.empty:
                continue
            data = _build_data_op(parcel_spec.data, symbols)
            control_spec = (parcel_spec.control
                            if parcel_spec.control is not None
                            else row.row_control)
            if control_spec is None:
                raise AsmSyntaxError(
                    "parcel has no control op and its row has no '=>' "
                    "control", parcel_spec.line)
            control = _build_control(control_spec, symbols, address,
                                     width, parcel_spec.line)
            sync = (SyncValue.DONE if parcel_spec.sync == "done"
                    else SyncValue.BUSY)
            columns[fu][address] = Parcel(data, control, sync)

    entry = 0
    if spec.entry is not None:
        if spec.entry.kind == "next":
            raise AsmSyntaxError(".entry cannot be '.'")
        entry = symbols.resolve_target(spec.entry, 0, 0)

    register_names = {index: name for name, index in symbols.registers.items()}
    return Program(columns, entry=entry, labels=dict(symbols.labels),
                   register_names=register_names, source=text)


def register_index(program: Program, name: str) -> int:
    """Look up the physical register bound to symbolic *name*.

    Convenience for tests and examples: lets callers set inputs and read
    results of assembled programs by the names used in the source.
    """
    for index, bound in program.register_names.items():
        if bound == name:
            return index
    raise AsmSymbolError(f"program binds no register named {name!r}")
