"""Disassembler and listing formatter.

:func:`disassemble` emits canonical assembly text that
:func:`~repro.asm.assembler.assemble` parses back into an equivalent
program (round-trip tested).  :func:`format_listing` renders the boxed,
column-per-FU layout of the paper's Figure 9 for human inspection.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..isa import Condition, Const, ControlOp, DataOp, Parcel, SyncValue
from ..machine.program import Program


def _format_operand(operand, register_names: Dict[int, str]) -> str:
    if isinstance(operand, Const):
        value = operand.value
        if isinstance(value, float) and value.is_integer():
            return f"#{value}"
        return f"#{value}"
    name = register_names.get(operand.index)
    return name if name is not None else f"r{operand.index}"


def format_data_op(op: DataOp,
                   register_names: Optional[Dict[int, str]] = None) -> str:
    """Render a data op in assembly syntax (``iadd a,b,e``)."""
    names = register_names or {}
    if op.is_nop:
        return "nop"
    parts = [_format_operand(op.srca, names), _format_operand(op.srcb, names)]
    if op.dest is not None:
        parts.append(_format_operand(op.dest, names))
    return f"{op.opcode} " + ",".join(parts)


def format_control_op(control: Optional[ControlOp]) -> str:
    """Render a control op in assembly syntax (``if cc2 @08, @02``)."""
    if control is None:
        return "halt"
    condition = control.condition
    if condition is Condition.ALWAYS_T1:
        return f"-> @{control.target1:02x}"
    if condition is Condition.ALWAYS_T2:
        target = (control.target2 if control.target2 is not None
                  else control.target1)
        return f"-> @{target:02x}"
    if condition is Condition.CC_TRUE:
        word = f"cc{control.index}"
    elif condition is Condition.SS_DONE:
        word = f"ss{control.index}"
    elif condition is Condition.ALL_SS_DONE:
        word = "all" + _mask(control)
    else:
        word = "any" + _mask(control)
    return f"if {word} @{control.target1:02x}, @{control.target2:02x}"


def _mask(control: ControlOp) -> str:
    if control.mask is None:
        return ""
    return "(" + ",".join(str(i) for i in control.mask) + ")"


def _assembly_safe_names(names: Dict[int, str]) -> Dict[int, str]:
    """Map register names into the assembler's identifier grammar.

    Compiler-generated temporaries (``iadd.1``) contain dots; they are
    rewritten with underscores, uniquified, and names that would parse
    as something else (``r12``, keywords) get a prefix.
    """
    import re

    out: Dict[int, str] = {}
    used = set()
    for index in sorted(names):
        name = re.sub(r"[^A-Za-z0-9_]", "_", names[index])
        if not name or not (name[0].isalpha() or name[0] == "_"):
            name = "v_" + name
        if re.fullmatch(r"r\d+", name) or name in ("if", "halt", "empty",
                                                   "busy", "done", "all",
                                                   "any", "nop"):
            name = name + "_"
        base = name
        suffix = 2
        while name in used:
            name = f"{base}{suffix}"
            suffix += 1
        used.add(name)
        out[index] = name
    return out


def disassemble(program: Program) -> str:
    """Emit round-trippable assembly text for *program*.

    Register operands are rendered with the program's symbolic names
    when available; labels are re-emitted at their addresses.
    """
    lines: List[str] = [f".width {program.width}"]
    if program.entry != 0:
        lines.append(f".entry @{program.entry:02x}")
    names = _assembly_safe_names(program.register_names)
    # Bind names explicitly so reassembly maps them to the same indices.
    for index in sorted(names):
        lines.append(f".reg {names[index]} r{index}")

    last_emitted: Optional[int] = None
    for address, parcels in program.rows():
        if all(p is None for p in parcels):
            continue
        if last_emitted is None or address != last_emitted + 1:
            lines.append(f".org @{address:02x}")
        last_emitted = address
        label = program.label_at(address)
        if label is not None:
            lines.append(f"{label}:")
        else:
            lines.append("-")
        trailing_empty = len(parcels)
        while trailing_empty and parcels[trailing_empty - 1] is None:
            trailing_empty -= 1
        for parcel in parcels[:trailing_empty]:
            if parcel is None:
                lines.append("| empty")
                continue
            fields = [format_control_op(parcel.control),
                      format_data_op(parcel.data, names)]
            if parcel.sync is SyncValue.DONE:
                fields.append("done")
            lines.append("| " + " ; ".join(fields))
    return "\n".join(lines) + "\n"


def format_listing(program: Program, start: int = 0,
                   end: Optional[int] = None,
                   show_sync: bool = False) -> str:
    """Render the boxed column listing of the paper's Figure 9.

    Each row of boxes shows, per FU: the control op on top, the data op
    below it, and (optionally) the sync field, exactly as Examples 1-3
    are typeset in the paper.
    """
    names = program.register_names
    end = program.length if end is None else end
    col_width = 24
    header = "addr " + "".join(
        f"FU{fu}".ljust(col_width) for fu in range(program.width))
    rule = "-" * len(header)
    lines = [header, rule]
    for address in range(start, min(end, program.length)):
        parcels = [program.fetch(fu, address) for fu in range(program.width)]
        if all(p is None for p in parcels):
            continue
        label = program.label_at(address)
        if label:
            lines.append(f"{label}:")
        control_row = f"{address:02x}:  "
        data_row = "     "
        sync_row = "     "
        for parcel in parcels:
            if parcel is None:
                control_row += "".ljust(col_width)
                data_row += "".ljust(col_width)
                sync_row += "".ljust(col_width)
                continue
            control_row += format_control_op(parcel.control)[:col_width - 1] \
                .ljust(col_width)
            data_row += format_data_op(parcel.data, names)[:col_width - 1] \
                .ljust(col_width)
            sync_row += str(parcel.sync).ljust(col_width)
        lines.append(control_row.rstrip())
        lines.append(data_row.rstrip())
        if show_sync:
            lines.append(sync_row.rstrip())
        lines.append(rule)
    return "\n".join(lines)
