"""Assembler error types, carrying source positions."""


class AsmError(Exception):
    """Base class for assembler errors."""

    def __init__(self, message: str, line: int = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class AsmSyntaxError(AsmError):
    """Malformed assembly text."""


class AsmSymbolError(AsmError):
    """Undefined or conflicting labels, registers, or constants."""


class AsmLayoutError(AsmError):
    """Rows that do not fit the declared machine width or addresses."""
