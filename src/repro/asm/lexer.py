"""Tokenizer for XIMD assembly field text.

The assembly format is line-structured (see :mod:`repro.asm.parser`);
this lexer handles the token-level syntax *within* a field: mnemonics,
register names, ``#``-prefixed constants (numeric or symbolic), ``@``-
prefixed hex addresses, ``.`` (the next-row target), punctuation, and
identifiers.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List, Optional

from .errors import AsmSyntaxError


class TokenKind(enum.Enum):
    IDENT = "ident"          # mnemonic, label, symbolic register
    REGISTER = "register"    # rN
    CONST_NUM = "const_num"  # #123, #-5, #1.5, #0x1f
    CONST_SYM = "const_sym"  # #name
    ADDRESS = "address"      # @1a (hex)
    DOT = "dot"              # . (the fall-through target)
    COMMA = "comma"
    LPAREN = "lparen"
    RPAREN = "rparen"
    ARROW = "arrow"          # ->
    END = "end"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: object = None
    column: int = 0

    def __str__(self):
        return self.text or self.kind.value


_REGISTER_RE = re.compile(r"r(\d+)$")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUMBER_RE = re.compile(
    r"-?(0[xX][0-9a-fA-F]+|\d+\.\d+([eE][+-]?\d+)?|\d+([eE][+-]?\d+)?)")
_HEX_RE = re.compile(r"[0-9a-fA-F]+")


def _parse_number(text: str):
    if re.fullmatch(r"-?0[xX][0-9a-fA-F]+", text):
        return int(text, 16)
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text, 10)


def tokenize(text: str, line: Optional[int] = None) -> List[Token]:
    """Tokenize one field of assembly text.

    Raises :class:`AsmSyntaxError` on unrecognized characters.
    """
    tokens: List[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch in " \t":
            pos += 1
            continue
        if text.startswith("->", pos):
            tokens.append(Token(TokenKind.ARROW, "->", column=pos))
            pos += 2
            continue
        if ch == ",":
            tokens.append(Token(TokenKind.COMMA, ",", column=pos))
            pos += 1
            continue
        if ch == "(":
            tokens.append(Token(TokenKind.LPAREN, "(", column=pos))
            pos += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenKind.RPAREN, ")", column=pos))
            pos += 1
            continue
        if ch == ".":
            tokens.append(Token(TokenKind.DOT, ".", column=pos))
            pos += 1
            continue
        if ch == "@":
            match = _HEX_RE.match(text, pos + 1)
            if not match:
                raise AsmSyntaxError(
                    f"malformed address at column {pos}: {text!r}", line)
            tokens.append(Token(TokenKind.ADDRESS, match.group(0),
                                int(match.group(0), 16), pos))
            pos = match.end()
            continue
        if ch == "#":
            match = _NUMBER_RE.match(text, pos + 1)
            if match:
                tokens.append(Token(TokenKind.CONST_NUM, match.group(0),
                                    _parse_number(match.group(0)), pos))
                pos = match.end()
                continue
            match = _IDENT_RE.match(text, pos + 1)
            if match:
                tokens.append(Token(TokenKind.CONST_SYM, match.group(0),
                                    match.group(0), pos))
                pos = match.end()
                continue
            raise AsmSyntaxError(
                f"malformed constant at column {pos}: {text!r}", line)
        match = _NUMBER_RE.match(text, pos)
        if match and (ch.isdigit() or ch == "-"):
            tokens.append(Token(TokenKind.CONST_NUM, match.group(0),
                                _parse_number(match.group(0)), pos))
            pos = match.end()
            continue
        match = _IDENT_RE.match(text, pos)
        if match:
            word = match.group(0)
            reg = _REGISTER_RE.fullmatch(word)
            if reg:
                tokens.append(Token(TokenKind.REGISTER, word,
                                    int(reg.group(1)), pos))
            else:
                tokens.append(Token(TokenKind.IDENT, word, word, pos))
            pos = match.end()
            continue
        raise AsmSyntaxError(
            f"unexpected character {ch!r} at column {pos} in {text!r}", line)
    tokens.append(Token(TokenKind.END, "", column=length))
    return tokens


class TokenStream:
    """A cursor over a token list with one-token lookahead."""

    def __init__(self, tokens: List[Token], line: Optional[int] = None):
        self._tokens = tokens
        self._index = 0
        self.line = line

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.END:
            self._index += 1
        return token

    def accept(self, kind: TokenKind) -> Optional[Token]:
        if self.current.kind is kind:
            return self.advance()
        return None

    def expect(self, kind: TokenKind, what: str) -> Token:
        token = self.accept(kind)
        if token is None:
            raise AsmSyntaxError(
                f"expected {what}, found {self.current}", self.line)
        return token

    def expect_end(self) -> None:
        if self.current.kind is not TokenKind.END:
            raise AsmSyntaxError(
                f"unexpected trailing input: {self.current}", self.line)

    @property
    def at_end(self) -> bool:
        return self.current.kind is TokenKind.END
