"""Line-structured parser for XIMD assembly.

The textual format is a linearization of the paper's Figure 9 listing
format: a program is a sequence of *rows*, one per instruction-memory
address; each row holds one *parcel* per functional unit.  The paper's
examples translate almost verbatim.

Grammar::

    program    := line*
    line       := directive | labeldef | rowsep | rowctl | parcel | blank
    directive  := '.width' N        -- number of FU columns (default 8)
                | '.entry' target   -- start address (default 0)
                | '.reg' NAME rN    -- bind a symbolic register
                | '.const' NAME NUM -- bind a symbolic constant
                | '.org' @HEX       -- address of the next row
    labeldef   := NAME ':'          -- starts a new row, binds the label
    rowsep     := '-'               -- starts a new unlabeled row
    rowctl     := '=>' controlspec  -- row-wide control, applied to every
                                       parcel of this row (VLIW style:
                                       "the control path instruction
                                       fields must be duplicated in each
                                       instruction parcel")
    parcel     := '|' 'empty'
                | '|' controlspec ';' dataop [';' sync]   -- no rowctl
                | '|' dataop [';' sync]                   -- with rowctl
    controlspec:= '->' target
                | 'if' cond target ',' target
                | 'halt'
    cond       := 'cc'N | 'ss'N
                | 'all' [ '(' N (',' N)* ')' ]
                | 'any' [ '(' N (',' N)* ')' ]
    target     := '.'               -- fall through: current address + 1
                | @HEX | NAME
    dataop     := 'nop' | MNEMONIC operand (',' operand)*
    operand    := rN | '#'NUM | '#'NAME | NAME   -- bare NAME: symbolic
                                                    register (auto-bound)
    sync       := 'busy' | 'done'

Comments run from ``//`` to end of line.  Parcels within a row fill FUs
0, 1, 2, ... in order; FUs beyond the last parcel get empty slots.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..isa import Condition
from .errors import AsmLayoutError, AsmSyntaxError
from .lexer import Token, TokenKind, TokenStream, tokenize

# ---------------------------------------------------------------------------
# intermediate representation produced by the parser


@dataclass(frozen=True)
class TargetRef:
    """An unresolved branch target."""

    kind: str  # "next" | "addr" | "label"
    value: Union[int, str, None] = None


@dataclass(frozen=True)
class ControlSpec:
    """An unresolved control operation ("halt" has condition None)."""

    condition: Optional[Condition]
    target1: Optional[TargetRef] = None
    target2: Optional[TargetRef] = None
    index: Optional[int] = None
    mask: Optional[Tuple[int, ...]] = None


HALT_SPEC = ControlSpec(condition=None)


@dataclass(frozen=True)
class OperandRef:
    """An unresolved data operand."""

    kind: str  # "reg" | "const" | "sym_const" | "sym_reg"
    value: Union[int, float, str]


@dataclass(frozen=True)
class DataSpec:
    """An unresolved data operation."""

    mnemonic: str
    operands: Tuple[OperandRef, ...]
    line: int


@dataclass
class ParcelSpec:
    """One parsed parcel (control may be inherited from the row)."""

    data: DataSpec
    control: Optional[ControlSpec]  # None = inherit row control
    sync: str  # "busy" | "done"
    line: int
    empty: bool = False


@dataclass
class RowSpec:
    """One parsed instruction row."""

    labels: List[str] = field(default_factory=list)
    explicit_addr: Optional[int] = None
    row_control: Optional[ControlSpec] = None
    parcels: List[ParcelSpec] = field(default_factory=list)
    line: int = 0


@dataclass
class ProgramSpec:
    """A fully parsed (but unresolved) assembly unit."""

    rows: List[RowSpec]
    width: int
    entry: Optional[TargetRef]
    reg_bindings: List[Tuple[str, int, int]]      # (name, index, line)
    const_bindings: List[Tuple[str, object, int]]  # (name, value, line)


# ---------------------------------------------------------------------------

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*:\s*$")
_COND_RE = re.compile(r"^(cc|ss)(\d+)$")

_NOP_SPEC = None  # placeholder, DataSpec requires a line number


def _strip_comment(line: str) -> str:
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


def parse_target(stream: TokenStream) -> TargetRef:
    token = stream.current
    if token.kind is TokenKind.DOT:
        stream.advance()
        return TargetRef("next")
    if token.kind is TokenKind.ADDRESS:
        stream.advance()
        return TargetRef("addr", token.value)
    if token.kind is TokenKind.IDENT:
        stream.advance()
        return TargetRef("label", token.value)
    raise AsmSyntaxError(f"expected branch target, found {token}", stream.line)


def parse_control(stream: TokenStream) -> ControlSpec:
    """Parse a control spec from the stream (must consume it fully)."""
    token = stream.current
    if token.kind is TokenKind.ARROW:
        stream.advance()
        target = parse_target(stream)
        return ControlSpec(Condition.ALWAYS_T1, target)
    if token.kind is TokenKind.IDENT and token.value == "halt":
        stream.advance()
        return HALT_SPEC
    if token.kind is TokenKind.IDENT and token.value == "if":
        stream.advance()
        return _parse_conditional(stream)
    raise AsmSyntaxError(f"expected control op, found {token}", stream.line)


def _parse_conditional(stream: TokenStream) -> ControlSpec:
    token = stream.expect(TokenKind.IDENT, "branch condition")
    word = token.value
    match = _COND_RE.match(word)
    index = None
    mask = None
    if match:
        condition = (Condition.CC_TRUE if match.group(1) == "cc"
                     else Condition.SS_DONE)
        index = int(match.group(2))
    elif word in ("all", "any"):
        condition = (Condition.ALL_SS_DONE if word == "all"
                     else Condition.ANY_SS_DONE)
        if stream.accept(TokenKind.LPAREN):
            members = []
            while True:
                num = stream.expect(TokenKind.CONST_NUM, "FU number")
                members.append(int(num.value))
                if not stream.accept(TokenKind.COMMA):
                    break
            stream.expect(TokenKind.RPAREN, "')'")
            mask = tuple(members)
    else:
        raise AsmSyntaxError(
            f"unknown branch condition {word!r}", stream.line)
    target1 = parse_target(stream)
    stream.expect(TokenKind.COMMA, "',' between branch targets")
    target2 = parse_target(stream)
    return ControlSpec(condition, target1, target2, index, mask)


def parse_operand(stream: TokenStream) -> OperandRef:
    token = stream.current
    if token.kind is TokenKind.REGISTER:
        stream.advance()
        return OperandRef("reg", token.value)
    if token.kind is TokenKind.CONST_NUM:
        stream.advance()
        return OperandRef("const", token.value)
    if token.kind is TokenKind.CONST_SYM:
        stream.advance()
        return OperandRef("sym_const", token.value)
    if token.kind is TokenKind.IDENT:
        stream.advance()
        return OperandRef("sym_reg", token.value)
    raise AsmSyntaxError(f"expected operand, found {token}", stream.line)


def parse_data_op(stream: TokenStream, line: int) -> DataSpec:
    token = stream.expect(TokenKind.IDENT, "opcode mnemonic")
    mnemonic = token.value
    operands: List[OperandRef] = []
    if not stream.at_end:
        operands.append(parse_operand(stream))
        while stream.accept(TokenKind.COMMA):
            operands.append(parse_operand(stream))
    return DataSpec(mnemonic, tuple(operands), line)


def _parse_parcel(body: str, has_row_control: bool, line: int) -> ParcelSpec:
    fields = [part.strip() for part in body.split(";")]
    if len(fields) == 1 and fields[0] == "empty":
        nop = DataSpec("nop", (), line)
        return ParcelSpec(nop, None, "busy", line, empty=True)

    sync = "busy"
    if fields and fields[-1].lower() in ("busy", "done"):
        sync = fields[-1].lower()
        fields = fields[:-1]

    if has_row_control:
        if len(fields) != 1:
            raise AsmSyntaxError(
                "parcel in a row with '=>' control takes a single data op "
                f"field (got {len(fields)} fields)", line)
        control: Optional[ControlSpec] = None
        data_text = fields[0]
    else:
        if len(fields) != 2:
            raise AsmSyntaxError(
                "parcel needs 'control ; dataop' fields "
                f"(got {len(fields)})", line)
        control_stream = TokenStream(tokenize(fields[0], line), line)
        control = parse_control(control_stream)
        control_stream.expect_end()
        data_text = fields[1]

    data_stream = TokenStream(tokenize(data_text, line), line)
    data = parse_data_op(data_stream, line)
    data_stream.expect_end()
    return ParcelSpec(data, control, sync, line)


def parse_program(text: str) -> ProgramSpec:
    """Parse assembly *text* into an unresolved :class:`ProgramSpec`."""
    rows: List[RowSpec] = []
    width = 8
    width_line: Optional[int] = None
    entry: Optional[TargetRef] = None
    reg_bindings: List[Tuple[str, int, int]] = []
    const_bindings: List[Tuple[str, object, int]] = []
    pending_org: Optional[int] = None
    pending_labels: List[str] = []
    current: Optional[RowSpec] = None

    def start_row(line: int) -> RowSpec:
        nonlocal current, pending_org, pending_labels
        row = RowSpec(labels=list(pending_labels),
                      explicit_addr=pending_org, line=line)
        rows.append(row)
        current = row
        pending_org = None
        pending_labels = []
        return row

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue

        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".width":
                if len(parts) != 2 or not parts[1].isdigit():
                    raise AsmSyntaxError(".width takes a number", lineno)
                if rows:
                    raise AsmLayoutError(
                        ".width must precede all rows", lineno)
                width = int(parts[1])
                width_line = lineno
            elif directive == ".entry":
                if len(parts) != 2:
                    raise AsmSyntaxError(".entry takes one target", lineno)
                stream = TokenStream(tokenize(parts[1], lineno), lineno)
                entry = parse_target(stream)
                stream.expect_end()
            elif directive == ".reg":
                if len(parts) != 3:
                    raise AsmSyntaxError(".reg takes NAME rN", lineno)
                stream = TokenStream(tokenize(parts[2], lineno), lineno)
                reg = stream.expect(TokenKind.REGISTER, "register")
                stream.expect_end()
                reg_bindings.append((parts[1], reg.value, lineno))
            elif directive == ".const":
                if len(parts) != 3:
                    raise AsmSyntaxError(".const takes NAME VALUE", lineno)
                stream = TokenStream(tokenize(parts[2], lineno), lineno)
                token = stream.current
                if token.kind is TokenKind.CONST_NUM:
                    stream.advance()
                    value: object = token.value
                elif token.kind is TokenKind.ADDRESS:
                    stream.advance()
                    value = token.value
                else:
                    raise AsmSyntaxError(
                        f".const value must be a number, got {token}", lineno)
                stream.expect_end()
                const_bindings.append((parts[1], value, lineno))
            elif directive == ".org":
                if len(parts) != 2:
                    raise AsmSyntaxError(".org takes @HEX", lineno)
                stream = TokenStream(tokenize(parts[1], lineno), lineno)
                addr = stream.expect(TokenKind.ADDRESS, "@HEX address")
                stream.expect_end()
                pending_org = addr.value
                current = None
            else:
                raise AsmSyntaxError(
                    f"unknown directive {directive!r}", lineno)
            continue

        label_match = _LABEL_RE.match(line)
        if label_match:
            pending_labels.append(label_match.group(1))
            current = None
            continue

        if line == "-":
            start_row(lineno)
            continue

        if line.startswith("=>"):
            if current is None or current.parcels or current.row_control:
                row = start_row(lineno)
            else:
                row = current
            stream = TokenStream(tokenize(line[2:].strip(), lineno), lineno)
            row.row_control = parse_control(stream)
            stream.expect_end()
            continue

        if line.startswith("|"):
            if current is None:
                start_row(lineno)
            row = current
            parcel = _parse_parcel(line[1:].strip(),
                                   row.row_control is not None, lineno)
            row.parcels.append(parcel)
            if len(row.parcels) > width:
                raise AsmLayoutError(
                    f"row has more than {width} parcels "
                    f"(declared .width {width}"
                    f"{' at line ' + str(width_line) if width_line else ''})",
                    lineno)
            continue

        raise AsmSyntaxError(f"unrecognized line: {raw.strip()!r}", lineno)

    if pending_labels:
        # trailing labels bind to the address after the last row
        row = RowSpec(labels=list(pending_labels), line=len(text.splitlines()))
        rows.append(row)

    return ProgramSpec(rows, width, entry, reg_bindings, const_bindings)
