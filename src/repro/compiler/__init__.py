"""The VLIW/XIMD compilation substrate (paper section 4.2).

Pipeline: XC source -> AST -> IR -> (simplify, percolation, optional
trace scheduling / software pipelining) -> list scheduling -> register
allocation -> VLIW-mode code generation.  XIMD-specific multi-stream
composition (threads, barriers, tiles, Figure 13 packing) layers on top
of independently compiled thread programs.
"""

from .codegen import (
    CompiledFunction,
    Segment,
    compile_ir,
    compile_xc,
    convert_slot,
    emit_segments,
    function_op_count,
)
from .dataflow import (
    liveness,
    merge_all_chains,
    predecessors,
    reachable_blocks,
    remove_unreachable,
    successors,
)
from .ddg import BlockDDG, DepEdge, build_block_ddg, loop_carried_edges
from .errors import (
    AllocationError,
    CompilerError,
    IRError,
    PipelineError,
    SchedulingError,
    XcSemanticError,
    XcSyntaxError,
)
from .ir import (
    BasicBlock,
    Branch,
    COPY,
    Function,
    FunctionBuilder,
    Halt,
    IRConst,
    IROp,
    Jump,
    VReg,
    negate_compare,
)
from .list_scheduler import (
    BlockSchedule,
    CompareSlot,
    is_compare_slot,
    schedule_block,
)
from .lowering import RETURN_VREG, lower_function, lower_unit
from .packing import (
    Packing,
    Placement,
    is_executable_packing,
    pack_exhaustive,
    pack_in_order,
    pack_skyline,
    pack_stacks,
    packed_program,
)
from .percolation import percolate_function
from .regalloc import RegisterAssignment, allocate_registers
from .simplify import (
    coalesce_single_use_temps,
    eliminate_dead_ops,
    propagate_copies,
    simplify_function,
)
from .software_pipeline import (
    LoopPipelineArtifact,
    ModuloSchedule,
    modulo_schedule,
    pipeline_function,
    rotate_while_loops,
)
from .threads import ThreadPlacement, compose_threads, registers_used
from .tiles import Tile, generate_tiles, pareto_tiles, tile_menu
from .trace_scheduling import (
    estimate_profile,
    pick_trace,
    tail_duplicate,
    trace_schedule,
)
from .xc_parser import parse_xc

__all__ = [
    "AllocationError",
    "BasicBlock",
    "BlockDDG",
    "BlockSchedule",
    "Branch",
    "COPY",
    "CompareSlot",
    "CompiledFunction",
    "CompilerError",
    "DepEdge",
    "Function",
    "FunctionBuilder",
    "Halt",
    "IRConst",
    "IRError",
    "IROp",
    "Jump",
    "LoopPipelineArtifact",
    "ModuloSchedule",
    "Packing",
    "PipelineError",
    "Placement",
    "RETURN_VREG",
    "RegisterAssignment",
    "SchedulingError",
    "Segment",
    "ThreadPlacement",
    "Tile",
    "VReg",
    "XcSemanticError",
    "XcSyntaxError",
    "allocate_registers",
    "build_block_ddg",
    "coalesce_single_use_temps",
    "compile_ir",
    "compile_xc",
    "compose_threads",
    "convert_slot",
    "eliminate_dead_ops",
    "emit_segments",
    "estimate_profile",
    "function_op_count",
    "generate_tiles",
    "is_compare_slot",
    "is_executable_packing",
    "liveness",
    "loop_carried_edges",
    "lower_function",
    "lower_unit",
    "merge_all_chains",
    "modulo_schedule",
    "negate_compare",
    "pack_exhaustive",
    "pack_in_order",
    "pack_skyline",
    "pack_stacks",
    "packed_program",
    "pareto_tiles",
    "parse_xc",
    "percolate_function",
    "pick_trace",
    "pipeline_function",
    "predecessors",
    "propagate_copies",
    "reachable_blocks",
    "registers_used",
    "remove_unreachable",
    "rotate_while_loops",
    "schedule_block",
    "simplify_function",
    "successors",
    "tail_duplicate",
    "tile_menu",
    "trace_schedule",
]
