"""Code generation: scheduled IR -> executable XIMD/VLIW programs.

Programs are emitted in *VLIW mode*: every parcel of a row carries the
same control fields (the paper's recipe for running compiled code on an
XIMD, Example 1), so one emitted :class:`~repro.machine.program.Program`
runs identically on :class:`~repro.machine.ximd.XimdMachine` and
:class:`~repro.machine.vliw.VliwMachine`.  The XIMD-specific multi-
stream composition (threads, barriers, tiles) builds on top of this in
:mod:`repro.compiler.threads`.

Layout: blocks in function order, one instruction-memory row per
schedule row; intra-block rows chain with explicit ``goto next`` (the
XIMD-1 sequencer has no incrementer); the final row of a block carries
the terminator's control operation.  A conditional branch tests the
condition code of whichever FU the scheduler placed the compare on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..isa import (
    Condition,
    Const,
    ControlOp,
    DATA_NOP,
    DataOp,
    Parcel,
    Reg,
    SyncValue,
    lookup,
)
from ..machine.program import Program
from ..obs.core import current_observer
from .errors import CompilerError, SchedulingError
from .ir import (
    Branch,
    COPY,
    Function,
    Halt,
    IRConst,
    IROp,
    Jump,
    VReg,
    Value,
)
from .dataflow import remove_unreachable
from .list_scheduler import (
    BlockSchedule,
    CompareSlot,
    is_compare_slot,
    schedule_block,
)
from .regalloc import RegisterAssignment, allocate_registers

#: a schedule slot: an op, a branch compare, or empty.
Slot = Union[IROp, CompareSlot, None]


def function_op_count(function: Function) -> int:
    """IR size: ops across all blocks, terminators included (for the
    per-pass telemetry's ops-in/ops-out accounting)."""
    return sum(len(block.ops) + 1 for block in function.blocks.values())


@dataclass
class Segment:
    """A run of instruction rows plus its final-row control transfer.

    ``terminator`` forms:
        ("jump", key)             unconditional to segment *key*
        ("branch", fu, key1, key2)  on CC of *fu*
        ("halt",)
    Keys name other segments (block names or pipeline-region keys).
    ``row_controls`` optionally overrides the default goto-next chain
    for interior rows (used by pipelined kernels).
    """

    key: str
    rows: List[List[Slot]]
    terminator: Tuple
    row_controls: Dict[int, Tuple] = field(default_factory=dict)


@dataclass
class CompiledFunction:
    """An IR function lowered to an executable program."""

    program: Program
    assignment: RegisterAssignment
    function: Function
    width: int
    segment_addresses: Dict[str, int]
    schedules: Dict[str, BlockSchedule]

    def register(self, name: str) -> int:
        """Physical register holding variable *name* (for poking inputs
        and peeking results)."""
        return self.assignment.physical(VReg(name))

    @property
    def static_rows(self) -> int:
        return self.program.length


def _convert_value(value: Value, assignment: RegisterAssignment):
    if isinstance(value, IRConst):
        return Const(value.value)
    if isinstance(value, VReg):
        return Reg(assignment.physical(value))
    raise CompilerError(f"bad IR value {value!r}")


def convert_slot(slot: Slot, assignment: RegisterAssignment) -> DataOp:
    """Turn a schedule slot into a machine data operation."""
    if slot is None:
        return DATA_NOP
    if is_compare_slot(slot):
        return DataOp(lookup(slot.cmp),
                      _convert_value(slot.a, assignment),
                      _convert_value(slot.b, assignment))
    op = slot
    if op.opcode == COPY:
        return DataOp(lookup("iadd"),
                      _convert_value(op.a, assignment),
                      Const(0),
                      Reg(assignment.physical(op.dest)))
    opcode = lookup(op.opcode)
    dest = (Reg(assignment.physical(op.dest))
            if op.dest is not None else None)
    return DataOp(opcode,
                  _convert_value(op.a, assignment),
                  _convert_value(op.b, assignment),
                  dest)


def _schedule_to_segment(name: str, schedule: BlockSchedule) -> Segment:
    terminator = schedule.block.terminator
    if isinstance(terminator, Halt):
        spec: Tuple = ("halt",)
    elif isinstance(terminator, Jump):
        spec = ("jump", terminator.target)
    elif isinstance(terminator, Branch):
        if schedule.compare_fu is None:
            raise SchedulingError(
                f"block {name!r}: branch without a scheduled compare")
        spec = ("branch", schedule.compare_fu,
                terminator.if_true, terminator.if_false)
    else:
        raise CompilerError(f"unknown terminator {terminator!r}")
    return Segment(name, [list(row) for row in schedule.rows], spec)


def emit_segments(segments: Sequence[Segment],
                  assignment: RegisterAssignment,
                  width: int,
                  entry_key: str,
                  sync: SyncValue = SyncValue.BUSY) -> Tuple[Program, Dict[str, int]]:
    """Lay out segments sequentially and resolve control transfers."""
    addresses: Dict[str, int] = {}
    offset = 0
    for segment in segments:
        if segment.key in addresses:
            raise CompilerError(f"duplicate segment key {segment.key!r}")
        addresses[segment.key] = offset
        offset += max(1, len(segment.rows))
    total = offset

    def resolve(spec: Tuple, own_address: int) -> Optional[ControlOp]:
        kind = spec[0]
        if kind == "halt":
            return None
        if kind == "jump":
            return ControlOp(Condition.ALWAYS_T1, _lookup(spec[1]))
        if kind == "branch":
            _, fu, key1, key2 = spec
            return ControlOp(Condition.CC_TRUE, _lookup(key1),
                             _lookup(key2), index=fu)
        if kind == "next":
            return ControlOp(Condition.ALWAYS_T1, own_address + 1)
        raise CompilerError(f"bad terminator spec {spec!r}")

    def _lookup(key: str) -> int:
        try:
            return addresses[key]
        except KeyError:
            raise CompilerError(
                f"control transfer to unknown segment {key!r}") from None

    columns: List[List[Optional[Parcel]]] = [
        [None] * total for _ in range(width)
    ]
    for segment in segments:
        base = addresses[segment.key]
        rows = segment.rows if segment.rows else [[None] * width]
        last = len(rows) - 1
        for row_index, row in enumerate(rows):
            address = base + row_index
            if row_index == last:
                spec = segment.terminator
            else:
                spec = segment.row_controls.get(row_index, ("next",))
            control = resolve(spec, address)
            for fu in range(width):
                slot = row[fu] if fu < len(row) else None
                data = convert_slot(slot, assignment)
                columns[fu][address] = Parcel(data, control, sync)

    program = Program(columns, entry=addresses[entry_key],
                      labels=dict(addresses),
                      register_names=assignment.register_names())
    return program, addresses


def compile_ir(function: Function, width: int,
               write_latency: int = 1,
               n_registers: int = 256,
               coalesce: bool = False,
               percolate: bool = True,
               simplify: bool = True,
               pipeline: bool = False) -> CompiledFunction:
    """Compile an IR function to a VLIW-mode program.

    Args:
        width: functional units the code may use.
        write_latency: 1 for the research model, 2 for the prototype
            pipeline (one exposed delay slot).
        percolate: run the percolation pre-pass (chain merging +
            speculative hoisting) before scheduling.
        pipeline: modulo-schedule eligible self-loop blocks (loop
            versioning guards fall back to the list-scheduled body).
    """
    obs = current_observer()
    function.validate()
    remove_unreachable(function)
    if simplify:
        from .simplify import simplify_function
        with obs.pass_span("simplify",
                           ops_in=function_op_count(function)) as span:
            simplify_function(function)
            span.ops_out = function_op_count(function)
    if percolate:
        from .percolation import percolate_function
        with obs.pass_span("percolation",
                           ops_in=function_op_count(function)) as span:
            percolate_function(function)
            span.ops_out = function_op_count(function)
        if simplify:
            from .simplify import simplify_function
            with obs.pass_span("simplify",
                               ops_in=function_op_count(function)) as span:
                simplify_function(function)
                span.ops_out = function_op_count(function)
    pipeline_artifacts: Dict[str, "object"] = {}
    if pipeline:
        from .software_pipeline import pipeline_function
        with obs.pass_span("software_pipeline",
                           ops_in=function_op_count(function)) as span:
            pipeline_artifacts = pipeline_function(function, width,
                                                   write_latency)
            span.ops_out = function_op_count(function)
            span.extra["pipelined_loops"] = len(pipeline_artifacts)

    with obs.pass_span("regalloc",
                       ops_in=function_op_count(function)) as span:
        assignment = allocate_registers(function, n_registers,
                                        coalesce=coalesce)
        span.extra["registers"] = len(assignment.register_names())

    segments: List[Segment] = []
    schedules: Dict[str, BlockSchedule] = {}
    with obs.pass_span("list_schedule",
                       ops_in=function_op_count(function)) as span:
        for name in function.block_order():
            if name not in function.blocks:
                continue
            artifact = pipeline_artifacts.get(name)
            if artifact is not None:
                # the placeholder block exists for liveness/allocation; its
                # executable form is the prologue/kernel/epilogue region.
                segments.extend(artifact.segments(width))
                continue
            block = function.blocks[name]
            schedule = schedule_block(block, width, write_latency)
            schedules[name] = schedule
            segments.append(_schedule_to_segment(name, schedule))
        span.ops_out = sum(len(segment.rows) for segment in segments)

    with obs.pass_span("emit", ops_in=function_op_count(function)) as span:
        program, addresses = emit_segments(segments, assignment, width,
                                           function.entry)
        span.ops_out = program.length
    return CompiledFunction(program, assignment, function, width,
                            addresses, schedules)


def compile_xc(source: str, width: int = 8, name: Optional[str] = None,
               **options) -> CompiledFunction:
    """Parse, lower, and compile one XC function from *source*.

    When the unit defines several functions, *name* selects one.
    """
    from .lowering import lower_unit
    from .xc_parser import parse_xc
    functions = lower_unit(parse_xc(source))
    if name is None:
        if len(functions) != 1:
            raise CompilerError(
                f"unit defines {sorted(functions)}; pass name=")
        name = next(iter(functions))
    if name not in functions:
        raise CompilerError(f"no function named {name!r}")
    return compile_ir(functions[name], width, **options)
