"""Control-flow and liveness analysis over the IR.

Standard iterative dataflow: block-level successor/predecessor maps,
upward-exposed uses / kills, and live-in / live-out sets.  Liveness
feeds register allocation and the trace scheduler's speculation-safety
check (an op may move above a branch only if its destination is dead on
the off-trace path).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from .ir import Branch, Function, Halt, Jump, VReg
from .lowering import RETURN_VREG


def successors(function: Function) -> Dict[str, Tuple[str, ...]]:
    """Block name -> successor block names."""
    return {
        name: function.blocks[name].terminator.successors()
        for name in function.blocks
    }


def predecessors(function: Function) -> Dict[str, Tuple[str, ...]]:
    """Block name -> predecessor block names."""
    preds: Dict[str, List[str]] = {name: [] for name in function.blocks}
    for name, succs in successors(function).items():
        for succ in succs:
            preds[succ].append(name)
    return {name: tuple(values) for name, values in preds.items()}


def block_uses_defs(function: Function,
                    name: str) -> Tuple[Set[VReg], Set[VReg]]:
    """(upward-exposed uses, defs) of one block."""
    block = function.blocks[name]
    uses: Set[VReg] = set()
    defs: Set[VReg] = set()
    for op in block.ops:
        for vreg in op.uses():
            if vreg not in defs:
                uses.add(vreg)
        defs.update(op.defs())
    for vreg in block.terminator.uses():
        if vreg not in defs:
            uses.add(vreg)
    return uses, defs


def liveness(function: Function,
             live_at_exit: FrozenSet[VReg] = frozenset(),
             ) -> Tuple[Dict[str, Set[VReg]], Dict[str, Set[VReg]]]:
    """Iterative live-variable analysis.

    Args:
        live_at_exit: registers considered live when the program halts
            (by default nothing; pass ``{RETURN_VREG}`` plus any output
            variables the caller will read back from the register file).

    Returns:
        (live_in, live_out) keyed by block name.
    """
    succs = successors(function)
    use_def = {name: block_uses_defs(function, name)
               for name in function.blocks}
    live_in: Dict[str, Set[VReg]] = {name: set() for name in function.blocks}
    live_out: Dict[str, Set[VReg]] = {name: set() for name in function.blocks}

    changed = True
    while changed:
        changed = False
        for name in function.blocks:
            out: Set[VReg] = set()
            if not succs[name]:
                out |= live_at_exit
            for succ in succs[name]:
                out |= live_in[succ]
            uses, defs = use_def[name]
            new_in = uses | (out - defs)
            if out != live_out[name] or new_in != live_in[name]:
                live_out[name] = out
                live_in[name] = new_in
                changed = True
    return live_in, live_out


def reachable_blocks(function: Function) -> Set[str]:
    """Blocks reachable from the entry."""
    succs = successors(function)
    seen = {function.entry}
    stack = [function.entry]
    while stack:
        name = stack.pop()
        for succ in succs[name]:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def remove_unreachable(function: Function) -> int:
    """Delete unreachable blocks; returns how many were removed."""
    keep = reachable_blocks(function)
    dead = [name for name in function.blocks if name not in keep]
    for name in dead:
        del function.blocks[name]
    return len(dead)


def linear_chains(function: Function) -> List[List[str]]:
    """Maximal straight-line chains: runs of blocks where each link is
    an unconditional jump to a block with exactly one predecessor.

    The percolation pass compacts each chain as one scheduling region
    (the IR-level analogue of scheduling "beyond basic blocks" for
    branch-free stretches).
    """
    preds = predecessors(function)
    chains: List[List[str]] = []
    in_chain: Set[str] = set()
    for name in function.block_order():
        if name in in_chain:
            continue
        # only start a chain at a block that is not mid-chain
        prev = preds[name]
        starts = not (
            len(prev) == 1
            and isinstance(function.blocks[prev[0]].terminator, Jump)
            and len(preds[name]) == 1
        )
        if not starts:
            continue
        chain = [name]
        in_chain.add(name)
        current = name
        while True:
            terminator = function.blocks[current].terminator
            if not isinstance(terminator, Jump):
                break
            nxt = terminator.target
            if len(preds[nxt]) != 1 or nxt in in_chain:
                break
            chain.append(nxt)
            in_chain.add(nxt)
            current = nxt
        chains.append(chain)
    return chains


def merge_chain(function: Function, chain: List[str]) -> str:
    """Merge a straight-line chain into its head block (in place).

    Returns the head block's name.  The merged blocks are removed from
    the function.
    """
    head = function.blocks[chain[0]]
    for name in chain[1:]:
        block = function.blocks[name]
        head.ops.extend(block.ops)
        head.terminator = block.terminator
        del function.blocks[name]
    return chain[0]


def merge_all_chains(function: Function) -> int:
    """Merge every straight-line chain; returns merged-block count."""
    merged = 0
    for chain in linear_chains(function):
        if len(chain) > 1:
            merge_chain(function, chain)
            merged += len(chain) - 1
    return merged
