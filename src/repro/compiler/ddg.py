"""Data-dependence graphs for basic blocks.

Edge kinds and minimum latencies reflect the machine's end-of-cycle
commit semantics:

* **flow** (read-after-write): the consumer must issue at least
  ``write_latency`` cycles after the producer (1 for the single-cycle
  research model, 2 for the pipelined prototype).
* **anti** (write-after-read): latency 0 — a register write commits at
  end of cycle, so the reader may share the writer's cycle.
* **output** (write-after-write): latency 1 — later write must win.
* **memory**: a conservative store barrier, relaxed by a small
  address-key disambiguator: two accesses whose addresses are
  ``constant base + known distinct constants`` cannot alias (this is
  the static equivalent of the run-time disambiguation the paper's
  compiler used).

Loop-carried dependences (for the software pipeliner) are produced by
:func:`loop_carried_edges` with a distance attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .ir import Branch, BasicBlock, IRConst, IROp, VReg, Value


@dataclass(frozen=True)
class DepEdge:
    """A dependence: ``dst`` must issue >= ``latency`` cycles after
    ``src`` (plus ``distance`` loop iterations, when cyclic)."""

    src: int
    dst: int
    latency: int
    kind: str  # "flow" | "anti" | "output" | "mem"
    distance: int = 0


def _address_key(op: IROp) -> Optional[Tuple[str, object]]:
    """A disambiguation key for a memory op's address, if statically known.

    Loads address ``a + b``; stores address ``b``.  Returns a hashable
    key such that two ops with *different* keys of the same base cannot
    alias; ``None`` when the address is opaque.
    """
    if op.is_load:
        parts = (op.a, op.b)
        consts = [p.value for p in parts if isinstance(p, IRConst)]
        vregs = [p for p in parts if isinstance(p, VReg)]
        if len(consts) == 2:
            return ("const", consts[0] + consts[1])
        if len(consts) == 1 and len(vregs) == 1:
            return ("base+reg", vregs[0], consts[0])
        return None
    if op.is_store:
        if isinstance(op.b, IRConst):
            return ("const", op.b.value)
        return None
    return None


def _may_alias(op_a: IROp, op_b: IROp) -> bool:
    """Conservative alias test between two memory operations."""
    key_a, key_b = _address_key(op_a), _address_key(op_b)
    if key_a is None or key_b is None:
        return True
    if key_a[0] == "const" and key_b[0] == "const":
        return key_a[1] == key_b[1]
    if key_a[0] == "base+reg" and key_b[0] == "base+reg":
        # same register + same offset alias; same register + different
        # offsets cannot; different registers are unknown.
        if key_a[1] == key_b[1]:
            return key_a[2] == key_b[2]
        return True
    # const vs base+reg: unknown
    return True


@dataclass
class BlockDDG:
    """Dependence graph over a block's ops (node = op index).

    When the block ends in a :class:`Branch`, a synthetic final node
    (index ``len(ops)``) represents the terminator's compare operation,
    so schedulers place it like any other op.
    """

    ops: List[IROp]
    edges: List[DepEdge] = field(default_factory=list)
    compare_node: Optional[int] = None

    @property
    def n_nodes(self) -> int:
        return len(self.ops) + (1 if self.compare_node is not None else 0)

    def preds(self) -> Dict[int, List[DepEdge]]:
        out: Dict[int, List[DepEdge]] = {i: [] for i in range(self.n_nodes)}
        for edge in self.edges:
            out[edge.dst].append(edge)
        return out

    def succs(self) -> Dict[int, List[DepEdge]]:
        out: Dict[int, List[DepEdge]] = {i: [] for i in range(self.n_nodes)}
        for edge in self.edges:
            out[edge.src].append(edge)
        return out

    def critical_heights(self) -> List[int]:
        """Longest-path height of each node to any sink (priority for
        list scheduling).  Only intra-iteration (distance 0) edges count."""
        succs = self.succs()
        heights = [0] * self.n_nodes
        # nodes are in program order; dependences with distance 0 always
        # point forward, so a reverse sweep suffices.
        for node in range(self.n_nodes - 1, -1, -1):
            best = 0
            for edge in succs[node]:
                if edge.distance == 0:
                    best = max(best, heights[edge.dst] + edge.latency)
            heights[node] = best
        return heights


def _terminator_compare_uses(block: BasicBlock) -> Tuple[Value, ...]:
    terminator = block.terminator
    if isinstance(terminator, Branch):
        return (terminator.a, terminator.b)
    return ()


def build_block_ddg(block: BasicBlock, write_latency: int = 1) -> BlockDDG:
    """Dependence graph for one block (acyclic, program-order edges)."""
    ops = list(block.ops)
    ddg = BlockDDG(ops)
    n = len(ops)

    # uses/defs per node, including the synthetic compare node
    node_uses: List[Tuple[VReg, ...]] = [op.uses() for op in ops]
    node_defs: List[Tuple[VReg, ...]] = [op.defs() for op in ops]
    compare_values = _terminator_compare_uses(block)
    if compare_values:
        ddg.compare_node = n
        node_uses.append(tuple(v for v in compare_values
                               if isinstance(v, VReg)))
        node_defs.append(())

    total = len(node_uses)
    last_def: Dict[VReg, int] = {}
    readers_since_def: Dict[VReg, List[int]] = {}
    memory_nodes: List[int] = []

    for node in range(total):
        op = ops[node] if node < n else None
        # flow edges
        for vreg in node_uses[node]:
            if vreg in last_def:
                ddg.edges.append(DepEdge(last_def[vreg], node,
                                         write_latency, "flow"))
            readers_since_def.setdefault(vreg, []).append(node)
        # anti / output edges
        for vreg in node_defs[node]:
            for reader in readers_since_def.get(vreg, ()):
                if reader != node:
                    ddg.edges.append(DepEdge(reader, node, 0, "anti"))
            if vreg in last_def:
                ddg.edges.append(DepEdge(last_def[vreg], node, 1, "output"))
            last_def[vreg] = node
            readers_since_def[vreg] = []
        # memory edges
        if op is not None and op.is_memory:
            for other in memory_nodes:
                other_op = ops[other]
                if other_op.is_load and op.is_load:
                    continue  # loads commute
                if not _may_alias(other_op, op):
                    continue
                if other_op.is_store and op.is_load:
                    latency = 1  # load sees the committed store
                elif other_op.is_load and op.is_store:
                    latency = 0  # same-cycle store is fine (load reads old)
                else:
                    latency = 1  # store-store ordering
                ddg.edges.append(DepEdge(other, node, latency, "mem"))
            memory_nodes.append(node)
    return ddg


def loop_carried_edges(block: BasicBlock,
                       write_latency: int = 1) -> List[DepEdge]:
    """Distance-1 dependences of a single-block loop (for modulo
    scheduling): a def in iteration *i* feeding a use in iteration
    *i+1*, plus conservative cross-iteration memory and output edges.
    """
    ops = list(block.ops)
    n = len(ops)
    node_uses: List[Tuple[VReg, ...]] = [op.uses() for op in ops]
    node_defs: List[Tuple[VReg, ...]] = [op.defs() for op in ops]
    compare_values = _terminator_compare_uses(block)
    if compare_values:
        node_uses.append(tuple(v for v in compare_values
                               if isinstance(v, VReg)))
        node_defs.append(())

    total = len(node_uses)
    edges: List[DepEdge] = []
    last_def: Dict[VReg, int] = {}
    first_def: Dict[VReg, int] = {}
    uses_of: Dict[VReg, List[int]] = {}
    for node in range(total):
        for vreg in node_uses[node]:
            uses_of.setdefault(vreg, []).append(node)
        for vreg in node_defs[node]:
            first_def.setdefault(vreg, node)
            last_def[vreg] = node

    # With distance-1 edges the modulo-scheduling constraint is
    # sigma(dst) >= sigma(src) + latency - II.
    for vreg, def_node in last_def.items():
        first = first_def[vreg]
        for use in uses_of.get(vreg, ()):
            # carried flow: iteration i's last def reaches iteration
            # i+1's upward-exposed uses (reads at or before the first
            # def; a node that both reads and writes v reads the old
            # value, so <= is correct).
            if use <= first:
                edges.append(DepEdge(def_node, use, write_latency,
                                     "flow", distance=1))
            # carried anti: any read of v in iteration i must precede
            # the first (re)definition in iteration i+1.
            edges.append(DepEdge(use, first, 0, "anti", distance=1))
        # carried output: iteration order of the two writes.
        edges.append(DepEdge(def_node, first, 1, "output", distance=1))

    memory_nodes = [i for i, op in enumerate(ops) if op.is_memory]
    for a in memory_nodes:
        for b in memory_nodes:
            op_a, op_b = ops[a], ops[b]
            if op_a.is_load and op_b.is_load:
                continue
            if not _may_alias(op_a, op_b):
                continue
            if b <= a:
                edges.append(DepEdge(a, b, 1, "mem", distance=1))
    return edges
