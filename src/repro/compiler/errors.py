"""Compiler error types."""


class CompilerError(Exception):
    """Base class for all compiler errors."""


class XcSyntaxError(CompilerError):
    """Malformed XC source text."""

    def __init__(self, message, line=None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class XcSemanticError(CompilerError):
    """Undefined names, arity errors, and other semantic problems."""


class IRError(CompilerError):
    """Structurally invalid IR."""


class SchedulingError(CompilerError):
    """A scheduler could not honor the dependence/resource constraints."""


class AllocationError(CompilerError):
    """Register allocation ran out of physical registers."""


class PipelineError(SchedulingError):
    """A loop does not fit the software pipeliner's supported shape."""
