"""Three-address intermediate representation.

The IR mirrors the XIMD-1 data path: register-to-register three-address
operations over virtual registers, explicit ``load``/``store`` memory
ops, and block terminators whose compare is part of the terminator
(XIMD branches read a condition code that a compare operation must have
set in an earlier cycle; keeping the compare attached to the branch
lets the scheduler place it freely while the code generator wires the
right ``CC_i`` into the branch).

The IR is *not* SSA: a virtual register is a mutable storage location,
which matches both the source language's variables and the machine's
registers; anti/output dependences are handled by the dependence graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..isa import OPCODES, OpKind
from .errors import IRError


@dataclass(frozen=True)
class VReg:
    """A virtual register (a named storage location)."""

    name: str

    def __str__(self):
        return f"%{self.name}"


@dataclass(frozen=True)
class IRConst:
    """An immediate constant."""

    value: Union[int, float]

    def __str__(self):
        return f"${self.value}"


Value = Union[VReg, IRConst]

#: IR opcodes are ISA mnemonics plus ``copy`` (lowered to ``iadd x,#0``).
COPY = "copy"

#: Relational mnemonics legal in terminators (they set a CC).
COMPARE_OPS = tuple(
    op.mnemonic for op in OPCODES.values() if op.kind is OpKind.COMPARE)

_NEGATED = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
            "gt": "le", "le": "gt",
            "feq": "fne", "fne": "feq", "flt": "fge", "fge": "flt",
            "fgt": "fle", "fle": "fgt"}


def negate_compare(mnemonic: str) -> str:
    """The relational op computing the logical negation."""
    try:
        return _NEGATED[mnemonic]
    except KeyError:
        raise IRError(f"not a compare op: {mnemonic}") from None


@dataclass
class IROp:
    """One three-address operation.

    ``opcode`` is an ISA arithmetic/memory mnemonic or :data:`COPY`.
    Loads use ``a`` + ``b`` as base + offset; stores put the value in
    ``a`` and the address in ``b`` (exactly the Figure 7 conventions).
    """

    opcode: str
    a: Optional[Value] = None
    b: Optional[Value] = None
    dest: Optional[VReg] = None

    def __post_init__(self):
        if self.opcode == COPY:
            if self.a is None or self.dest is None:
                raise IRError("copy needs a source and a destination")
            return
        info = OPCODES.get(self.opcode)
        if info is None:
            raise IRError(f"unknown IR opcode {self.opcode!r}")
        if info.kind is OpKind.COMPARE:
            raise IRError(
                "compares belong in Branch terminators, not block bodies")
        if info.kind is OpKind.NOP:
            raise IRError("nop has no place in the IR")
        if self.a is None or self.b is None:
            raise IRError(f"{self.opcode} needs two sources")
        if info.writes_register and self.dest is None:
            raise IRError(f"{self.opcode} needs a destination")
        if not info.writes_register and self.dest is not None:
            raise IRError(f"{self.opcode} writes no destination")

    @property
    def is_store(self) -> bool:
        return self.opcode == "store"

    @property
    def is_load(self) -> bool:
        return self.opcode == "load"

    @property
    def is_memory(self) -> bool:
        return self.opcode in ("load", "store")

    def uses(self) -> Tuple[VReg, ...]:
        """Virtual registers read by this op."""
        out = []
        for value in (self.a, self.b):
            if isinstance(value, VReg):
                out.append(value)
        return tuple(out)

    def defs(self) -> Tuple[VReg, ...]:
        """Virtual registers written by this op."""
        return (self.dest,) if self.dest is not None else ()

    def __str__(self):
        if self.opcode == COPY:
            return f"{self.dest} = {self.a}"
        if self.is_store:
            return f"store {self.a} -> M[{self.b}]"
        srcs = f"{self.a}, {self.b}"
        if self.dest is None:
            return f"{self.opcode} {srcs}"
        return f"{self.dest} = {self.opcode} {srcs}"


# --- terminators -----------------------------------------------------------


@dataclass
class Jump:
    """Unconditional transfer to another block."""

    target: str

    def successors(self) -> Tuple[str, ...]:
        return (self.target,)

    def uses(self) -> Tuple[VReg, ...]:
        return ()

    def __str__(self):
        return f"jump {self.target}"


@dataclass
class Branch:
    """Conditional transfer: ``if (a <cmp> b) then if_true else if_false``.

    The compare is materialized by the scheduler as a machine compare
    op on some FU; the emitted branch then tests that FU's CC.
    """

    cmp: str
    a: Value
    b: Value
    if_true: str
    if_false: str

    def __post_init__(self):
        if self.cmp not in COMPARE_OPS:
            raise IRError(f"not a compare op: {self.cmp}")

    def successors(self) -> Tuple[str, ...]:
        return (self.if_true, self.if_false)

    def uses(self) -> Tuple[VReg, ...]:
        return tuple(v for v in (self.a, self.b) if isinstance(v, VReg))

    def __str__(self):
        return (f"branch {self.cmp} {self.a}, {self.b} "
                f"? {self.if_true} : {self.if_false}")


@dataclass
class Halt:
    """End of the program."""

    def successors(self) -> Tuple[str, ...]:
        return ()

    def uses(self) -> Tuple[VReg, ...]:
        return ()

    def __str__(self):
        return "halt"


Terminator = Union[Jump, Branch, Halt]


@dataclass
class BasicBlock:
    """A straight-line op sequence ended by one terminator."""

    name: str
    ops: List[IROp] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    def append(self, op: IROp) -> IROp:
        self.ops.append(op)
        return op

    def __str__(self):
        lines = [f"{self.name}:"]
        lines += [f"  {op}" for op in self.ops]
        lines.append(f"  {self.terminator}")
        return "\n".join(lines)


@dataclass
class Function:
    """A compilation unit: named blocks plus entry designation.

    ``params`` are virtual registers assumed live on entry (the runner
    pokes their values before starting the machine); ``pinned`` maps
    selected virtual registers to required physical registers so tests
    and callers can find inputs/outputs.
    """

    name: str
    params: List[VReg] = field(default_factory=list)
    blocks: Dict[str, BasicBlock] = field(default_factory=dict)
    entry: str = "entry"
    pinned: Dict[VReg, int] = field(default_factory=dict)

    def block(self, name: str) -> BasicBlock:
        try:
            return self.blocks[name]
        except KeyError:
            raise IRError(f"no block named {name!r}") from None

    def add_block(self, name: str) -> BasicBlock:
        if name in self.blocks:
            raise IRError(f"duplicate block {name!r}")
        block = BasicBlock(name)
        self.blocks[name] = block
        return block

    def block_order(self) -> List[str]:
        """Layout order: entry first, then insertion order."""
        names = [self.entry]
        names += [n for n in self.blocks if n != self.entry]
        return names

    def validate(self) -> None:
        """Check structural invariants; raises :class:`IRError`."""
        if self.entry not in self.blocks:
            raise IRError(f"entry block {self.entry!r} missing")
        for name, block in self.blocks.items():
            if block.terminator is None:
                raise IRError(f"block {name!r} lacks a terminator")
            for successor in block.terminator.successors():
                if successor not in self.blocks:
                    raise IRError(
                        f"block {name!r} targets unknown block "
                        f"{successor!r}")

    def vregs(self) -> List[VReg]:
        """Every virtual register mentioned, in first-appearance order."""
        seen: Dict[VReg, None] = {}
        for param in self.params:
            seen.setdefault(param, None)
        for name in self.block_order():
            block = self.blocks[name]
            for op in block.ops:
                for v in (*op.uses(), *op.defs()):
                    seen.setdefault(v, None)
            if block.terminator is not None:
                for v in block.terminator.uses():
                    seen.setdefault(v, None)
        return list(seen)

    def __str__(self):
        parts = [f"func {self.name}({', '.join(map(str, self.params))}):"]
        for name in self.block_order():
            parts.append(str(self.blocks[name]))
        return "\n".join(parts)


class FunctionBuilder:
    """Incremental construction helper with fresh-name generation."""

    def __init__(self, name: str):
        self.function = Function(name)
        self._temp = 0
        self._block = 0

    def fresh_vreg(self, hint: str = "t") -> VReg:
        self._temp += 1
        return VReg(f"{hint}.{self._temp}")

    def fresh_block(self, hint: str = "bb") -> BasicBlock:
        self._block += 1
        return self.function.add_block(f"{hint}.{self._block}")
