"""Resource-constrained list scheduling for basic blocks.

The classic greedy algorithm: nodes become *ready* once every
predecessor in the dependence graph has been scheduled and its latency
has elapsed; each cycle, up to *width* ready nodes issue (the XIMD-1
data path accepts one data operation per FU per cycle with no further
restrictions), highest critical-path height first.

The terminator's compare (if any) is an ordinary node; the emitted
branch then occupies the control fields of the block's final row, which
must lie at least one cycle after the compare so the condition code is
committed (the code generator pads with an empty row when needed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .ddg import BlockDDG, build_block_ddg
from .errors import SchedulingError
from .ir import BasicBlock, Branch, IROp


@dataclass
class BlockSchedule:
    """A block's ops placed into (cycle, fu) slots.

    ``rows[cycle][fu]`` is an :class:`IROp` or None.  ``branch_row`` is
    the row whose control fields carry the terminator (always the last
    row).  ``compare_fu`` names the FU whose condition code the branch
    must test (None for jumps/halts).
    """

    block: BasicBlock
    width: int
    rows: List[List[Optional[IROp]]] = field(default_factory=list)
    compare_fu: Optional[int] = None
    compare_cycle: Optional[int] = None
    node_placement: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def branch_row(self) -> int:
        return len(self.rows) - 1

    def op_count(self) -> int:
        return sum(1 for row in self.rows for op in row if op is not None)


def schedule_block(block: BasicBlock, width: int,
                   write_latency: int = 1,
                   ddg: Optional[BlockDDG] = None) -> BlockSchedule:
    """List-schedule *block* onto *width* functional units."""
    if width < 1:
        raise SchedulingError("width must be >= 1")
    if ddg is None:
        ddg = build_block_ddg(block, write_latency)
    n_nodes = ddg.n_nodes
    schedule = BlockSchedule(block, width)

    if n_nodes == 0:
        schedule.rows.append([None] * width)
        return schedule

    heights = ddg.critical_heights()
    preds = ddg.preds()
    unscheduled = set(range(n_nodes))
    earliest = [0] * n_nodes
    placed_cycle: Dict[int, int] = {}

    cycle = 0
    guard = 0
    while unscheduled:
        guard += 1
        if guard > 4 * n_nodes + 64:
            raise SchedulingError(
                f"scheduler failed to converge on block {block.name!r}")
        ready = []
        for node in unscheduled:
            bound = 0
            ok = True
            for edge in preds[node]:
                if edge.distance != 0:
                    continue
                if edge.src not in placed_cycle:
                    ok = False
                    break
                bound = max(bound, placed_cycle[edge.src] + edge.latency)
            if ok and bound <= cycle:
                ready.append(node)
        ready.sort(key=lambda n: (-heights[n], n))

        if len(schedule.rows) <= cycle:
            schedule.rows.append([None] * width)
        row = schedule.rows[cycle]
        free_fus = [fu for fu in range(width) if row[fu] is None]
        for node in ready[:len(free_fus)]:
            fu = free_fus.pop(0)
            placed_cycle[node] = cycle
            schedule.node_placement[node] = (cycle, fu)
            unscheduled.discard(node)
            if ddg.compare_node is not None and node == ddg.compare_node:
                schedule.compare_fu = fu
                schedule.compare_cycle = cycle
                terminator = block.terminator
                row[fu] = CompareSlot(terminator.cmp, terminator.a,
                                      terminator.b)
            else:
                row[fu] = ddg.ops[node]
        cycle += 1

    # The branch must issue strictly after the compare commits.
    if schedule.compare_cycle is not None:
        while schedule.branch_row <= schedule.compare_cycle:
            schedule.rows.append([None] * width)
    if not schedule.rows:
        schedule.rows.append([None] * width)
    return schedule


@dataclass(frozen=True)
class CompareSlot:
    """The FU slot where a branch's compare issues.

    The code generator turns it into the machine compare op that sets
    the condition code the branch will test.  The software pipeliner
    also emits these (with a retargeted loop bound).
    """

    cmp: str
    a: object
    b: object

    def __str__(self):
        return f"<{self.cmp} {self.a}, {self.b}>"


def is_compare_slot(entry) -> bool:
    """Whether a schedule slot holds a terminator-compare."""
    return isinstance(entry, CompareSlot)
