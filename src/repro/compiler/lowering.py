"""Lowering: XC abstract syntax -> three-address IR.

Straightforward syntax-directed translation with local constant
folding.  Variables map 1:1 to virtual registers (the IR is not SSA);
array accesses lower to ``load base, index`` / ``store value, addr``
with the base address as an immediate, matching the paper's examples
where array bases are assembler constants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..isa import OPCODES, wrap_int
from .errors import XcSemanticError
from .ir import (
    Branch,
    COPY,
    Function,
    FunctionBuilder,
    Halt,
    IRConst,
    IROp,
    Jump,
    VReg,
    Value,
)
from .xc_ast import (
    AssignStmt,
    BinaryExpr,
    Condition,
    Expr,
    FuncDecl,
    IfStmt,
    IndexExpr,
    NumberExpr,
    ReturnStmt,
    Stmt,
    StoreStmt,
    UnaryExpr,
    VarExpr,
    WhileStmt,
)

#: the virtual register that receives ``return`` values.
RETURN_VREG = VReg("__ret")

_BINOP = {"+": "iadd", "-": "isub", "*": "imult", "/": "idiv",
          "%": "imod", "&": "and", "|": "or", "^": "xor",
          "<<": "shl", ">>": "shr"}
_RELOP = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge",
          "==": "eq", "!=": "ne"}


class _Lowerer:
    def __init__(self, decl: FuncDecl):
        self.decl = decl
        self.builder = FunctionBuilder(decl.name)
        self.function = self.builder.function
        self.variables: Dict[str, VReg] = {}
        self.arrays: Dict[str, int] = {}
        self.current = self.function.add_block("entry")
        self.exit_block = self.function.add_block("exit")
        self.exit_block.terminator = Halt()

    def lower(self) -> Function:
        for param in self.decl.params:
            self._declare(param)
            self.function.params.append(self.variables[param])
        for name in self.decl.variables:
            self._declare(name)
        for name, base in self.decl.arrays:
            if name in self.arrays or name in self.variables:
                raise XcSemanticError(
                    f"{self.decl.name}: duplicate name {name!r}")
            self.arrays[name] = base
        self._lower_stmts(self.decl.body)
        if self.current is not None and self.current.terminator is None:
            self.current.terminator = Jump(self.exit_block.name)
        self.function.validate()
        return self.function

    def _declare(self, name: str) -> None:
        if name in self.variables:
            raise XcSemanticError(
                f"{self.decl.name}: duplicate variable {name!r}")
        self.variables[name] = VReg(name)

    def _variable(self, name: str, line: int) -> VReg:
        vreg = self.variables.get(name)
        if vreg is None:
            raise XcSemanticError(
                f"{self.decl.name}: undefined variable {name!r} "
                f"(line {line})")
        return vreg

    def _array_base(self, name: str, line: int) -> int:
        base = self.arrays.get(name)
        if base is None:
            raise XcSemanticError(
                f"{self.decl.name}: undefined array {name!r} (line {line})")
        return base

    # -- expressions --------------------------------------------------------

    def _emit(self, op: IROp) -> IROp:
        return self.current.append(op)

    def _lower_expr(self, expr: Expr, line: int) -> Value:
        if isinstance(expr, NumberExpr):
            return IRConst(wrap_int(expr.value))
        if isinstance(expr, VarExpr):
            return self._variable(expr.name, line)
        if isinstance(expr, UnaryExpr):
            operand = self._lower_expr(expr.operand, line)
            if isinstance(operand, IRConst):
                return IRConst(wrap_int(-operand.value))
            dest = self.builder.fresh_vreg("neg")
            self._emit(IROp("isub", IRConst(0), operand, dest))
            return dest
        if isinstance(expr, BinaryExpr):
            mnemonic = _BINOP.get(expr.op)
            if mnemonic is None:
                raise XcSemanticError(f"unsupported operator {expr.op!r}")
            left = self._lower_expr(expr.left, line)
            right = self._lower_expr(expr.right, line)
            if isinstance(left, IRConst) and isinstance(right, IRConst):
                folded = OPCODES[mnemonic].semantics(left.value, right.value)
                return IRConst(folded)
            dest = self.builder.fresh_vreg(mnemonic)
            self._emit(IROp(mnemonic, left, right, dest))
            return dest
        if isinstance(expr, IndexExpr):
            base = self._array_base(expr.array, line)
            index = self._lower_expr(expr.index, line)
            dest = self.builder.fresh_vreg("ld")
            self._emit(IROp("load", IRConst(base), index, dest))
            return dest
        raise XcSemanticError(f"unhandled expression {expr!r}")

    def _lower_address(self, base: int, index: Expr, line: int) -> Value:
        value = self._lower_expr(index, line)
        if isinstance(value, IRConst):
            return IRConst(wrap_int(base + value.value))
        dest = self.builder.fresh_vreg("addr")
        self._emit(IROp("iadd", IRConst(base), value, dest))
        return dest

    # -- statements ----------------------------------------------------------

    def _lower_stmts(self, stmts: List[Stmt]) -> None:
        for stmt in stmts:
            if self.current is None:
                # Code after a return is unreachable; keep lowering into
                # a fresh block so errors still surface, but nothing
                # jumps to it.
                self.current = self.builder.fresh_block("dead")
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, AssignStmt):
            dest = self._variable(stmt.name, stmt.line)
            value = self._lower_expr(stmt.value, stmt.line)
            self._emit(IROp(COPY, value, None, dest))
            return
        if isinstance(stmt, StoreStmt):
            base = self._array_base(stmt.array, stmt.line)
            value = self._lower_expr(stmt.value, stmt.line)
            address = self._lower_address(base, stmt.index, stmt.line)
            self._emit(IROp("store", value, address))
            return
        if isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                value = self._lower_expr(stmt.value, stmt.line)
                self._emit(IROp(COPY, value, None, RETURN_VREG))
            self.current.terminator = Jump(self.exit_block.name)
            self.current = None
            return
        if isinstance(stmt, IfStmt):
            self._lower_if(stmt)
            return
        if isinstance(stmt, WhileStmt):
            self._lower_while(stmt)
            return
        raise XcSemanticError(f"unhandled statement {stmt!r}")

    def _lower_condition(self, condition: Condition, line: int,
                         if_true: str, if_false: str) -> Branch:
        left = self._lower_expr(condition.left, line)
        right = self._lower_expr(condition.right, line)
        return Branch(_RELOP[condition.relop], left, right,
                      if_true, if_false)

    def _lower_if(self, stmt: IfStmt) -> None:
        then_block = self.builder.fresh_block("then")
        join_block = self.builder.fresh_block("join")
        if stmt.else_body:
            else_block = self.builder.fresh_block("else")
            false_target = else_block.name
        else:
            else_block = None
            false_target = join_block.name
        self.current.terminator = self._lower_condition(
            stmt.condition, stmt.line, then_block.name, false_target)

        self.current = then_block
        self._lower_stmts(stmt.then_body)
        if self.current is not None and self.current.terminator is None:
            self.current.terminator = Jump(join_block.name)

        if else_block is not None:
            self.current = else_block
            self._lower_stmts(stmt.else_body)
            if self.current is not None and self.current.terminator is None:
                self.current.terminator = Jump(join_block.name)

        self.current = join_block

    def _lower_while(self, stmt: WhileStmt) -> None:
        head = self.builder.fresh_block("loop_head")
        body = self.builder.fresh_block("loop_body")
        done = self.builder.fresh_block("loop_done")
        self.current.terminator = Jump(head.name)

        self.current = head
        head.terminator = self._lower_condition(
            stmt.condition, stmt.line, body.name, done.name)
        # the condition's operand computations live in the head block
        # (they were emitted into self.current == head)

        self.current = body
        self._lower_stmts(stmt.body)
        if self.current is not None and self.current.terminator is None:
            self.current.terminator = Jump(head.name)

        self.current = done


def lower_function(decl: FuncDecl) -> Function:
    """Lower one XC function declaration to IR."""
    return _Lowerer(decl).lower()


def lower_unit(decls: List[FuncDecl]) -> Dict[str, Function]:
    """Lower a parsed compilation unit; returns name -> Function."""
    functions: Dict[str, Function] = {}
    for decl in decls:
        if decl.name in functions:
            raise XcSemanticError(f"duplicate function {decl.name!r}")
        functions[decl.name] = lower_function(decl)
    return functions
