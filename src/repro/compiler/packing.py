"""Tile packing: laying threads out in the 8-wide instruction memory.

Figure 13: *"Once a set of tiles is produced for each code thread, a
packing algorithm is used to schedule one implementation of each thread
within a larger space representing the entire instruction memory. ...
This problem is quite similar to the problem of standard cell placement
in VLSI CAD."*

Each functional unit owns a private column of instruction memory, so
two tiles may share addresses iff their column ranges are disjoint —
2-D strip packing with strip width = the machine's FU count.  Three
packers are provided (the paper leaves the algorithm choice open):

* :func:`pack_in_order` — place threads left-to-right in given order,
  starting a new "shelf" when the row is full (the naive baseline).
* :func:`pack_skyline` — first-fit decreasing height onto a skyline.
* :func:`pack_exhaustive` — for small thread counts, try every
  combination of tile choices and column offsets under the skyline
  placer and keep the best.

:func:`packed_program` turns a packing into an executable program:
tiles stacked on overlapping columns chain sequentially (the upper
tile's exit jumps to the lower tile's base), every tile's final exit
joins a global barrier, and register windows are disjoint.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa import Condition, ControlOp, Parcel, SyncValue
from ..machine.program import Program
from ..obs.core import current_observer
from .errors import CompilerError
from .threads import registers_used, relocate_parcel
from .tiles import Tile


def _observed_packer(fn):
    """Report a packer's wall time (tiles in, packed rows out)."""
    @functools.wraps(fn)
    def packed(tiles, total_width: int = 8, **kwargs):
        obs = current_observer()
        if not obs.enabled:
            return fn(tiles, total_width, **kwargs)
        with obs.pass_span(fn.__name__, ops_in=len(tiles)) as span:
            packing = fn(tiles, total_width, **kwargs)
            span.ops_out = packing.height
            span.extra["total_width"] = total_width
        return packing
    return packed


@dataclass
class Placement:
    """One tile's position: column offset and base address."""

    tile: Tile
    fu_offset: int
    base_address: int
    #: filled in by :func:`packed_program`: the tile's register window.
    register_base: int = 0

    @property
    def top(self) -> int:
        return self.base_address + self.tile.height

    def columns(self) -> range:
        return range(self.fu_offset, self.fu_offset + self.tile.width)


@dataclass
class Packing:
    """A complete layout of one tile per thread."""

    placements: List[Placement]
    total_width: int

    @property
    def height(self) -> int:
        """Static code size: the tallest column (the paper's metric)."""
        return max((p.top for p in self.placements), default=0)

    @property
    def area_used(self) -> int:
        return sum(p.tile.area for p in self.placements)

    @property
    def utilization(self) -> float:
        """Fraction of the occupied instruction-memory rectangle filled."""
        total = self.height * self.total_width
        return self.area_used / total if total else 0.0

    def describe(self) -> str:
        lines = [f"packing: height {self.height}, "
                 f"utilization {self.utilization:.0%}"]
        for p in sorted(self.placements,
                        key=lambda p: (p.base_address, p.fu_offset)):
            lines.append(
                f"  {p.tile.thread:<12} FUs {p.fu_offset}-"
                f"{p.fu_offset + p.tile.width - 1} rows "
                f"{p.base_address}-{p.top - 1}")
        return "\n".join(lines)


def _skyline_place(tiles: Sequence[Tile], total_width: int,
                   offsets: Optional[Sequence[int]] = None) -> Packing:
    """Place tiles in order onto a per-column skyline.

    Each tile goes at the column window (given, or chosen to minimize
    the resulting top edge) at the lowest address where its whole width
    is clear.
    """
    skyline = [0] * total_width
    placements: List[Placement] = []
    for index, tile in enumerate(tiles):
        if tile.width > total_width:
            raise CompilerError(
                f"tile {tile.thread} wider than the machine")
        if offsets is not None:
            candidates = [offsets[index]]
        else:
            candidates = range(total_width - tile.width + 1)
        best_offset, best_base = None, None
        for offset in candidates:
            base = max(skyline[offset:offset + tile.width])
            if best_base is None or base + tile.height < best_base:
                best_offset, best_base = offset, base + tile.height
        base = best_base - tile.height
        for column in range(best_offset, best_offset + tile.width):
            skyline[column] = base + tile.height
        placements.append(Placement(tile, best_offset, base))
    return Packing(placements, total_width)


@_observed_packer
def pack_in_order(tiles: Sequence[Tile], total_width: int = 8) -> Packing:
    """Naive shelf packing in the given thread order."""
    shelf_base = 0
    shelf_height = 0
    cursor = 0
    placements: List[Placement] = []
    for tile in tiles:
        if cursor + tile.width > total_width:
            shelf_base += shelf_height
            shelf_height = 0
            cursor = 0
        placements.append(Placement(tile, cursor, shelf_base))
        cursor += tile.width
        shelf_height = max(shelf_height, tile.height)
    return Packing(placements, total_width)


@_observed_packer
def pack_skyline(tiles: Sequence[Tile], total_width: int = 8) -> Packing:
    """First-fit decreasing height onto a skyline."""
    ordered = sorted(tiles, key=lambda t: (-t.height, -t.width))
    return _skyline_place(ordered, total_width)


@_observed_packer
def pack_exhaustive(menu: Sequence[Sequence[Tile]],
                    total_width: int = 8,
                    max_combinations: int = 200_000) -> Packing:
    """Best packing over every tile choice and placement order.

    *menu* holds the candidate tiles per thread (the Pareto sets of
    :func:`~repro.compiler.tiles.tile_menu`).  Exhaustive over tile
    choices and insertion orders with the skyline placer; intended for
    the paper's six-thread scale.
    """
    best: Optional[Packing] = None
    combos = 0
    for choice in itertools.product(*menu):
        for order in itertools.permutations(range(len(choice))):
            combos += 1
            if combos > max_combinations:
                if best is None:
                    raise CompilerError("combination budget exhausted")
                return best
            packing = _skyline_place([choice[i] for i in order],
                                     total_width)
            if best is None or packing.height < best.height:
                best = packing
    if best is None:
        raise CompilerError("empty tile menu")
    return best


def is_executable_packing(packing: Packing) -> bool:
    """Whether a packing can run directly on the machine.

    Tiles that share instruction-memory columns must occupy *equal*
    column ranges: such stacks keep their FUs in lock step (one SSET)
    across chained tiles, so no entry synchronization is needed.
    Partial column overlaps would let one FU reach a tile while a
    sibling is still inside an earlier one — with single-bit sync
    signals there is no safe entry barrier for that case, and the paper
    leaves the inter-tile runtime protocol open (section 4.2).  Every
    stack must also start at address 0 (all FUs begin there).
    """
    for a in packing.placements:
        for b in packing.placements:
            if a is b:
                continue
            cols_a, cols_b = set(a.columns()), set(b.columns())
            if cols_a & cols_b and cols_a != cols_b:
                return False
    bottoms: Dict[Tuple[int, int], int] = {}
    for p in packing.placements:
        key = (p.fu_offset, p.tile.width)
        bottoms[key] = min(bottoms.get(key, p.base_address),
                           p.base_address)
    return all(base == 0 for base in bottoms.values())


@_observed_packer
def pack_stacks(tiles: Sequence[Tile], total_width: int = 8) -> Packing:
    """An always-executable packer: equal-width column stacks.

    All tiles must share one width *w*; the machine is split into
    ``total_width // w`` stacks and tiles are assigned longest-first to
    the currently shortest stack (LPT), a 2-approximation of the
    optimal stack height.
    """
    widths = {t.width for t in tiles}
    if len(widths) != 1:
        raise CompilerError("pack_stacks needs equal-width tiles")
    width = widths.pop()
    n_stacks = total_width // width
    if n_stacks == 0:
        raise CompilerError("tiles wider than the machine")
    heights = [0] * n_stacks
    placements: List[Placement] = []
    for tile in sorted(tiles, key=lambda t: -t.height):
        stack = min(range(n_stacks), key=lambda s: heights[s])
        placements.append(
            Placement(tile, stack * width, heights[stack]))
        heights[stack] += tile.height
    return Packing(placements, total_width)


def packed_program(packing: Packing,
                   n_registers: int = 256,
                   barrier: bool = True) -> Tuple[Program, Dict[str, Placement]]:
    """Materialize an executable packing as one program.

    Tiles stacked on one column range chain bottom-up (each tile's exit
    jumps to the next tile's base; the stack's FUs stay one SSET
    throughout).  Every stack's final exit becomes an ALL-sync barrier
    over the occupied FUs so the machine halts as one, mirroring the
    section 3.3 join.  Raises for packings that fail
    :func:`is_executable_packing`.
    """
    if not is_executable_packing(packing):
        raise CompilerError(
            "packing is not executable: stacked tiles must occupy "
            "equal column ranges starting at address 0 "
            "(see is_executable_packing)")
    total_width = packing.total_width
    length = packing.height + (2 if barrier else 0)
    columns: List[List[Optional[Parcel]]] = [
        [None] * length for _ in range(total_width)
    ]
    register_names: Dict[int, str] = {}
    by_thread: Dict[str, Placement] = {}
    occupied = sorted({c for p in packing.placements for c in p.columns()})
    barrier_mask = tuple(occupied) if barrier else None

    register_base = 0
    ordered = sorted(packing.placements,
                     key=lambda p: (p.base_address, p.fu_offset))
    for placement in ordered:
        tile = placement.tile
        by_thread[tile.thread] = placement
        used = registers_used(tile.compiled)
        if register_base + used > n_registers:
            raise CompilerError("packed threads exceed the register file")
        successor = _next_above(packing, placement)
        program = tile.compiled.program
        for fu in range(program.width):
            out = columns[placement.fu_offset + fu]
            for address, parcel in enumerate(program.columns[fu]):
                if parcel is None:
                    continue
                moved = relocate_parcel(parcel, placement.base_address,
                                        placement.fu_offset, register_base)
                target = placement.base_address + address
                if moved.control is None:
                    if successor is not None:
                        moved = Parcel(moved.data, ControlOp(
                            Condition.ALWAYS_T1,
                            successor.base_address), moved.sync)
                    elif barrier:
                        moved = Parcel(moved.data, ControlOp(
                            Condition.ALL_SS_DONE, target + 1, target,
                            mask=barrier_mask), SyncValue.DONE)
                        out[target + 1] = Parcel(sync=SyncValue.DONE)
                out[target] = moved
        for index, name in tile.compiled.program.register_names.items():
            register_names[index + register_base] = \
                f"{tile.thread}.{name}"
        placement.register_base = register_base
        register_base += used

    # columns that host no final tile still need to reach the barrier:
    # unoccupied columns simply stay empty (halted FUs report DONE).
    return Program(columns, entry=0,
                   register_names=register_names), by_thread


def _next_above(packing: Packing,
                placement: Placement) -> Optional[Placement]:
    """The next tile stacked above *placement* on any shared column."""
    best: Optional[Placement] = None
    for other in packing.placements:
        if other is placement:
            continue
        if set(other.columns()) & set(placement.columns()):
            if other.base_address >= placement.top:
                if best is None or other.base_address < best.base_address:
                    best = other
    return best
