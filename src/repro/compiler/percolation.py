"""Percolation-style global code motion.

Percolation Scheduling [Nicolau85] defines a small set of semantics-
preserving core transformations (move-op, move-cond, unify, delete)
that migrate operations upward through the program graph.  This pass
implements the two motions that matter for XIMD-1's workloads, applied
to the IR before list scheduling:

* **chain merging** — move-op across unconditional block boundaries:
  a block and its unique-predecessor unconditional successor fuse, so
  the list scheduler compacts the whole straight-line region at once
  (this is what produces Example 1's 5-cycle TPROC schedule).
* **speculative hoisting** — move-op above a conditional jump: an op at
  the head of a branch target moves into the branching block when it is
  safe to execute on both paths: no memory side effects (loads from the
  idealized memory are safe; stores are not), the destination is dead
  on the other path, it does not clobber the branch's own operands, and
  the target block has no other predecessors.  This mirrors how the
  paper's MINMAX schedule executes both conditional updates' work in
  parallel with the fall-through path.

Both run to a fixed point.  The pass is conservative: anything it
cannot prove safe stays put.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from .dataflow import liveness, merge_all_chains, predecessors
from .ir import Branch, Function, IROp, VReg
from .lowering import RETURN_VREG

#: safety cap on hoisting sweeps (each sweep moves at least one op).
_MAX_SWEEPS = 64


def percolate_function(function: Function) -> int:
    """Run percolation to a fixed point; returns ops moved."""
    moved_total = 0
    for _ in range(_MAX_SWEEPS):
        merge_all_chains(function)
        moved = _hoist_sweep(function)
        moved_total += moved
        if moved == 0:
            break
    merge_all_chains(function)
    return moved_total


def _hoist_sweep(function: Function) -> int:
    """One pass of speculative hoisting over every conditional branch."""
    moved = 0
    preds = predecessors(function)
    live_in, _ = liveness(function, frozenset({RETURN_VREG}))

    for name in list(function.block_order()):
        block = function.blocks.get(name)
        if block is None or not isinstance(block.terminator, Branch):
            continue
        branch = block.terminator
        if branch.if_true == branch.if_false:
            continue
        for taken, other in ((branch.if_true, branch.if_false),
                             (branch.if_false, branch.if_true)):
            if taken == name or other == name:
                continue  # self loops: hoisting would replay the op
            target = function.blocks[taken]
            if len(preds[taken]) != 1:
                continue  # join block: the op belongs to several paths
            op = _first_hoistable(target, branch,
                                  live_in[other] if other in live_in
                                  else set())
            if op is None:
                continue
            target.ops.remove(op)
            block.ops.append(op)
            moved += 1
            # liveness and preds are stale now; recompute next sweep
            return moved + _hoist_sweep(function)
    return moved


def _first_hoistable(target, branch: Branch,
                     live_other: Set[VReg]) -> Optional[IROp]:
    """The first op of *target* that may move above *branch*.

    Ops before it must not define its sources (it must be movable past
    nothing — only the *leading* ops are candidates, considering that
    preceding hoist candidates may move first in later sweeps; to stay
    simple and clearly safe, only the first op is examined).
    """
    if not target.ops:
        return None
    op = target.ops[0]
    if op.is_store:
        return None  # a store on the wrong path is observable
    if op.dest is None:
        return None
    if op.dest in live_other:
        return None  # would clobber a value the other path reads
    if op.dest in branch.uses():
        return None  # would change this branch's own condition
    # Self-overwriting ops (dest also a source) are still safe to
    # speculate: the other path never reads dest (checked above).
    return op
