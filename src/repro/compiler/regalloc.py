"""Register allocation onto the 256-register global file.

The XIMD-1 register file is large relative to the paper's workloads, so
the allocator is deliberately simple and safe: every virtual register
receives its own physical register, honoring pinned assignments
(function parameters / outputs that tests read back by number).  An
optional coalescing pass shrinks the footprint by sharing physical
registers between virtual registers whose live ranges never overlap —
the classic interference-graph coloring restricted to what the large
file actually needs.

No spilling is implemented: with 256 registers, exhausting the file
indicates a workload outside the paper's scope, and the allocator
raises :class:`~repro.compiler.errors.AllocationError`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from .dataflow import liveness
from .errors import AllocationError
from .ir import Function, VReg
from .lowering import RETURN_VREG


class RegisterAssignment:
    """The result of allocation: virtual -> physical register map."""

    def __init__(self, mapping: Dict[VReg, int]):
        self.mapping = dict(mapping)

    def physical(self, vreg: VReg) -> int:
        try:
            return self.mapping[vreg]
        except KeyError:
            raise AllocationError(f"unallocated vreg {vreg}") from None

    def register_names(self) -> Dict[int, str]:
        """Physical index -> a symbolic name (for program metadata).

        When coalescing shares one physical register among several
        virtual registers, the first-assigned name wins.
        """
        names: Dict[int, str] = {}
        for vreg, index in self.mapping.items():
            names.setdefault(index, vreg.name)
        return names

    @property
    def used_registers(self) -> int:
        return len(set(self.mapping.values()))


def allocate_registers(function: Function,
                       n_registers: int = 256,
                       live_at_exit: FrozenSet[VReg] = frozenset(),
                       coalesce: bool = False) -> RegisterAssignment:
    """Allocate physical registers for every virtual register.

    Args:
        function: the IR function (validated).
        n_registers: size of the physical file.
        live_at_exit: vregs whose final values callers will read; they
            are excluded from coalescing-by-death.
        coalesce: share physical registers between non-interfering
            vregs (off by default: unique assignment aids debugging and
            matches the paper's hand-allocated listings).
    """
    vregs = function.vregs()
    pinned = dict(function.pinned)
    for vreg, index in pinned.items():
        if index >= n_registers:
            raise AllocationError(
                f"pinned register out of range: {vreg} -> r{index}")
    taken: Set[int] = set(pinned.values())
    if len(taken) != len(pinned):
        raise AllocationError("two vregs pinned to one physical register")

    if not coalesce:
        mapping: Dict[VReg, int] = dict(pinned)
        next_free = 0
        for vreg in vregs:
            if vreg in mapping:
                continue
            while next_free in taken:
                next_free += 1
            if next_free >= n_registers:
                raise AllocationError(
                    f"{function.name}: needs more than {n_registers} "
                    f"registers")
            mapping[vreg] = next_free
            taken.add(next_free)
        return RegisterAssignment(mapping)

    interference = _build_interference(function, vregs,
                                       live_at_exit | {RETURN_VREG})
    mapping = dict(pinned)
    for vreg in vregs:
        if vreg in mapping:
            continue
        forbidden = {mapping[other] for other in interference.get(vreg, ())
                     if other in mapping}
        # first color not used by an interfering neighbor and not
        # reserved by a pinned vreg (pinned registers are never shared:
        # callers poke/peek them by number).
        pinned_colors = set(pinned.values())
        index = 0
        while index in forbidden or index in pinned_colors:
            index += 1
        if index >= n_registers:
            raise AllocationError(
                f"{function.name}: coloring needs more than "
                f"{n_registers} registers")
        mapping[vreg] = index
    return RegisterAssignment(mapping)


def _build_interference(function: Function, vregs: List[VReg],
                        live_at_exit: FrozenSet[VReg],
                        ) -> Dict[VReg, Set[VReg]]:
    """Interference by simultaneous liveness, walked per block.

    Conservative with respect to scheduling: two vregs live anywhere in
    the same block region interfere, so any later intra-block
    reordering by the schedulers remains safe.
    """
    live_in, live_out = liveness(function, live_at_exit)
    interference: Dict[VReg, Set[VReg]] = {v: set() for v in vregs}

    def mark(group: Set[VReg]) -> None:
        for a in group:
            for b in group:
                if a != b:
                    interference[a].add(b)

    for name, block in function.blocks.items():
        live: Set[VReg] = set(live_in[name]) | set(live_out[name])
        for op in block.ops:
            live.update(op.uses())
            live.update(op.defs())
        live.update(block.terminator.uses())
        mark(live)
    return interference
