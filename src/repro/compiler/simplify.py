"""IR clean-up passes: copy coalescing, propagation, dead-op removal.

The lowerer is deliberately naive (every expression lands in a fresh
temporary, every assignment is a copy); these passes restore the
compact forms the rest of the compiler pattern-matches on — most
importantly turning ``t = k + 1; k = t`` into ``k = iadd k, #1`` so the
software pipeliner can recognize induction variables.

Temporaries are recognized by the builder's ``name.N`` convention;
user-named variables are never deleted (callers peek them in the
register file after a run).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .ir import COPY, Function, IRConst, IROp, VReg


def _is_temp(vreg: VReg) -> bool:
    return "." in vreg.name


def _use_counts(function: Function) -> Dict[VReg, int]:
    counts: Dict[VReg, int] = {}
    for block in function.blocks.values():
        for op in block.ops:
            for vreg in op.uses():
                counts[vreg] = counts.get(vreg, 0) + 1
        for vreg in block.terminator.uses():
            counts[vreg] = counts.get(vreg, 0) + 1
    return counts


def _def_counts(function: Function) -> Dict[VReg, int]:
    counts: Dict[VReg, int] = {}
    for block in function.blocks.values():
        for op in block.ops:
            for vreg in op.defs():
                counts[vreg] = counts.get(vreg, 0) + 1
    return counts


def coalesce_single_use_temps(function: Function) -> int:
    """Rewrite ``t = <op>; d = copy t`` into ``d = <op>``.

    Applies when *t* is a temporary defined once and used exactly once
    (by that copy), both in the same block, and *d* is neither read nor
    written between the defining op and the copy (reads within the
    defining op itself are fine: the machine reads before it writes).
    """
    uses = _use_counts(function)
    defs = _def_counts(function)
    rewritten = 0
    for block in function.blocks.values():
        changed = True
        while changed:
            changed = False
            for index, op in enumerate(block.ops):
                if op.opcode != COPY or not isinstance(op.a, VReg):
                    continue
                temp = op.a
                if not _is_temp(temp):
                    continue
                if uses.get(temp, 0) != 1 or defs.get(temp, 0) != 1:
                    continue
                target = op.dest
                producer_index = None
                for j in range(index - 1, -1, -1):
                    between = block.ops[j]
                    if temp in between.defs():
                        producer_index = j
                        break
                    if target in between.uses() or target in between.defs():
                        break  # target touched between producer and copy
                if producer_index is None:
                    continue
                producer = block.ops[producer_index]
                if producer.opcode == "store":
                    continue
                producer.dest = target
                del block.ops[index]
                uses[temp] = 0
                defs[temp] = 0
                rewritten += 1
                changed = True
                break
    return rewritten


def propagate_copies(function: Function) -> int:
    """Local copy/constant propagation within each block.

    After ``d = copy s``, later reads of *d* become reads of *s* until
    either register is redefined.  Terminator operands participate.
    """
    replaced = 0
    for block in function.blocks.values():
        available: Dict[VReg, object] = {}

        def substitute(value):
            nonlocal replaced
            while isinstance(value, VReg) and value in available:
                value = available[value]
                replaced += 1
            return value

        for op in block.ops:
            if op.a is not None:
                op.a = substitute(op.a)
            if op.b is not None:
                op.b = substitute(op.b)
            # kill mappings invalidated by this def
            for defined in op.defs():
                available.pop(defined, None)
                for key in [k for k, v in available.items() if v == defined]:
                    available.pop(key)
            if op.opcode == COPY and op.dest is not None:
                source = op.a
                if isinstance(source, (VReg, IRConst)) and source != op.dest:
                    available[op.dest] = source
        terminator = block.terminator
        if hasattr(terminator, "a"):
            terminator.a = substitute(terminator.a)
            terminator.b = substitute(terminator.b)
    return replaced


def eliminate_dead_ops(function: Function) -> int:
    """Delete ops defining never-read temporaries (no side effects).

    Only builder temporaries are candidates; user variables stay, since
    callers observe them in the register file after the run.  Runs to a
    fixed point (removing one dead op can orphan another).
    """
    removed = 0
    while True:
        uses = _use_counts(function)
        progress = False
        for block in function.blocks.values():
            keep: List[IROp] = []
            for op in block.ops:
                dead = (op.dest is not None
                        and _is_temp(op.dest)
                        and uses.get(op.dest, 0) == 0
                        and not op.is_store)
                if dead:
                    removed += 1
                    progress = True
                else:
                    keep.append(op)
            block.ops = keep
        if not progress:
            return removed


def simplify_function(function: Function) -> Dict[str, int]:
    """Run the clean-up passes to a combined fixed point."""
    stats = {"coalesced": 0, "propagated": 0, "removed": 0}
    for _ in range(8):
        c = coalesce_single_use_temps(function)
        p = propagate_copies(function)
        r = eliminate_dead_ops(function)
        stats["coalesced"] += c
        stats["propagated"] += p
        stats["removed"] += r
        if c == p == r == 0:
            break
    return stats
