"""Software pipelining (modulo scheduling) for counted self-loops.

Section 3.1 schedules Livermore Loop 12 with software pipelining; this
module implements the technique for the compiler:

1. **Loop rotation** — the lowerer's while-loops (test block + body
   block) rotate into do-while form: a preheader tests entry, and a
   single self-loop block holds body + test.  Rotation makes the
   terminator's compare test *next-iteration* validity, which is
   exactly the kernel-exit condition a pipelined loop needs.
2. **Eligibility** — the self-loop must have a loop-invariant bound, an
   induction variable updated once by a constant step, and a monotone
   relational compare (``lt/le/gt/ge``).
3. **Modulo scheduling** — iterative: for II from the resource minimum
   upward, place nodes in program order at the earliest slot satisfying
   the placed dependence constraints and the modulo reservation table,
   then verify every (possibly loop-carried) edge, the register
   lifetime bound (no value may live longer than II, since the
   allocator does not rotate registers), and the kernel-exit timing
   (the compare must sit in stage 0, early enough for its condition
   code to commit before the kernel's final row).
4. **Loop versioning** — a guard block dispatches to the pipelined
   region only when at least S (= stage count) iterations remain;
   otherwise the original, list-scheduled loop body runs.  Prologue
   rows fill the pipeline, the II-row kernel iterates, and epilogue
   rows drain in-flight iterations before joining the loop exit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .dataflow import predecessors
from .ddg import DepEdge, build_block_ddg, loop_carried_edges
from .errors import PipelineError
from .ir import (
    BasicBlock,
    Branch,
    Function,
    IRConst,
    IROp,
    Jump,
    VReg,
    Value,
)
from .list_scheduler import CompareSlot

_SWAPPED = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le"}
_NEGATED = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt"}
_MONOTONE = ("lt", "le", "gt", "ge")

#: II values above this are pointless (no overlap remains).
_MAX_II_SLACK = 4


def rotate_while_loops(function: Function) -> int:
    """Rotate head/body while-loops into preheader + self-loop form.

    Pattern: head H with ``Branch(c, B, E)``; body B whose only
    terminator is ``Jump(H)`` and whose only predecessor is H; H's other
    predecessors are the loop entries.  After rotation H (keeping its
    name, so entry edges are untouched) is the preheader holding the
    entry test, and a new block holds body + test with a self loop.

    Returns the number of loops rotated.
    """
    rotated = 0
    for name in list(function.block_order()):
        head = function.blocks.get(name)
        if head is None or not isinstance(head.terminator, Branch):
            continue
        branch = head.terminator
        preds = predecessors(function)
        for body_name, exit_name in ((branch.if_true, branch.if_false),
                                     (branch.if_false, branch.if_true)):
            if body_name == name or exit_name == body_name:
                continue
            body = function.blocks.get(body_name)
            if body is None:
                continue
            if not isinstance(body.terminator, Jump):
                continue
            if body.terminator.target != name:
                continue
            if preds[body_name] != (name,):
                continue
            # rotate: new self-loop block = body.ops + head.ops + test
            loop_name = f"{name}.loop"
            if loop_name in function.blocks:
                continue
            loop = function.add_block(loop_name)
            loop.ops = list(body.ops) + [
                IROp(op.opcode, op.a, op.b, op.dest) for op in head.ops
            ]
            continue_first = branch.if_true == body_name
            loop.terminator = Branch(
                branch.cmp, branch.a, branch.b,
                loop_name if continue_first else exit_name,
                exit_name if continue_first else loop_name)
            # the head becomes the preheader: same ops, same test, but
            # the taken edge enters the new loop block
            head.terminator = Branch(
                branch.cmp, branch.a, branch.b,
                loop_name if continue_first else exit_name,
                exit_name if continue_first else loop_name)
            del function.blocks[body_name]
            rotated += 1
            break
    return rotated


@dataclass
class ModuloSchedule:
    """Result of modulo scheduling one self-loop block."""

    ii: int
    stages: int
    sigma: List[int]               # per node (ops + compare last)
    compare_node: int
    node_fu: Dict[int, int] = field(default_factory=dict)

    @property
    def max_sigma(self) -> int:
        return max(self.sigma)


def modulo_schedule(block: BasicBlock, width: int,
                    write_latency: int = 1,
                    max_ii: Optional[int] = None,
                    increment_node: Optional[int] = None,
                    ) -> Optional[ModuloSchedule]:
    """Find a modulo schedule, or None if no profitable II exists.

    When *increment_node* is given (the induction update's index), the
    terminator compare is retargeted to read the **pre-increment**
    induction value against a step-adjusted bound: the intra-iteration
    flow edge increment→compare is replaced by an anti edge
    compare→increment plus a distance-1 flow edge.  This breaks the
    increment/compare serial chain that otherwise forces II up to the
    full recurrence height.  The caller must then emit the kernel
    compare with ``bound - step`` (see :func:`pipeline_function`) and
    both the compare and the increment must sit in stage 0 so the
    kernel-exit decision stays exact — enforced here via per-node
    placement ceilings.
    """
    ddg = build_block_ddg(block, write_latency)
    if ddg.compare_node is None:
        return None
    edges: List[DepEdge] = list(ddg.edges) + loop_carried_edges(
        block, write_latency)
    n_nodes = ddg.n_nodes
    compare_node = ddg.compare_node

    if increment_node is not None:
        edges = [edge for edge in edges
                 if not (edge.src == increment_node
                         and edge.dst == compare_node
                         and edge.kind == "flow")]
        edges.append(DepEdge(compare_node, increment_node, 0, "anti", 0))
        edges.append(DepEdge(increment_node, compare_node,
                             write_latency, "flow", 1))

    res_mii = max(1, math.ceil(n_nodes / width))
    sequential_len = _sequential_length(ddg)
    if max_ii is None:
        max_ii = sequential_len + _MAX_II_SLACK

    preds_by_dst: Dict[int, List[DepEdge]] = {}
    for edge in edges:
        preds_by_dst.setdefault(edge.dst, []).append(edge)

    for ii in range(max(res_mii, 2), max_ii + 1):
        ceilings = {compare_node: ii - 2}
        if increment_node is not None:
            ceilings[increment_node] = ii - 1
        sigma = _iterative_place(n_nodes, ceilings, edges, ii, width)
        if sigma is None:
            continue
        if not _verify(sigma, edges, ii):
            continue
        stages = sigma and (max(sigma) // ii + 1) or 1
        if stages < 2:
            return None  # no overlap: pipelining buys nothing
        schedule = ModuloSchedule(ii, stages, sigma, compare_node)
        _assign_fus(schedule, n_nodes, ii, width)
        return schedule
    return None


def _sequential_length(ddg) -> int:
    heights = ddg.critical_heights()
    return (max(heights) if heights else 0) + ddg.n_nodes + 1


def _priorities(n_nodes: int, edges: List[DepEdge], ii: int,
                ) -> Optional[List[int]]:
    """Height-based priority (Rau): longest path to any sink using edge
    weight ``latency - II * distance``.  Diverging heights mean the II
    is below the recurrence minimum; returns None in that case."""
    height = [0] * n_nodes
    for _ in range(n_nodes + 1):
        changed = False
        for edge in edges:
            weight = edge.latency - ii * edge.distance
            candidate = height[edge.dst] + weight
            if candidate > height[edge.src]:
                height[edge.src] = candidate
                changed = True
        if not changed:
            return height
    return None  # positive cycle: II infeasible


def _iterative_place(n_nodes: int, ceilings: Dict[int, int],
                     edges: List[DepEdge], ii: int, width: int,
                     budget_ratio: int = 8) -> Optional[List[int]]:
    """Rau's iterative modulo scheduling with ejection.

    Nodes are placed highest-priority first at the earliest slot
    satisfying the *currently placed* predecessors and the modulo
    reservation table; when no slot in the II-wide window is free, the
    node is forced in and a conflicting occupant is ejected; placements
    that violate an edge to an already-placed node eject that node.
    ``ceilings`` caps selected nodes' sigma (compare: ``II - 2`` so its
    condition code commits before the kernel's branch row; induction
    increment: ``II - 1`` = stage 0, keeping the exit test exact).
    """
    priority = _priorities(n_nodes, edges, ii)
    if priority is None:
        return None
    preds_by_dst: Dict[int, List[DepEdge]] = {}
    succs_by_src: Dict[int, List[DepEdge]] = {}
    for edge in edges:
        preds_by_dst.setdefault(edge.dst, []).append(edge)
        succs_by_src.setdefault(edge.src, []).append(edge)

    sigma: List[Optional[int]] = [None] * n_nodes
    prev_sigma: List[Optional[int]] = [None] * n_nodes
    rows: List[List[int]] = [[] for _ in range(ii)]  # occupants per row
    unplaced = set(range(n_nodes))
    budget = budget_ratio * n_nodes

    def unplace(node: int) -> None:
        row = rows[sigma[node] % ii]
        row.remove(node)
        prev_sigma[node] = sigma[node]
        sigma[node] = None
        unplaced.add(node)

    while unplaced:
        budget -= 1
        if budget < 0:
            return None
        node = max(unplaced, key=lambda n: (priority[n], -n))
        unplaced.discard(node)
        est = 0
        for edge in preds_by_dst.get(node, ()):
            src_sigma = sigma[edge.src]
            if src_sigma is None:
                continue
            est = max(est, src_sigma + edge.latency - ii * edge.distance)
        if prev_sigma[node] is not None:
            est = max(est, prev_sigma[node] + 1)
        ceiling = ceilings.get(node)
        if ceiling is not None and est > ceiling:
            return None
        slot = None
        limit = est + ii - 1 if ceiling is None else min(est + ii - 1,
                                                         ceiling)
        for s in range(est, limit + 1):
            if len(rows[s % ii]) < width:
                slot = s
                break
        if slot is None:
            slot = est  # force; eject the lowest-priority occupant
            row = rows[slot % ii]
            victim = min(row, key=lambda n: (priority[n], -n))
            unplace(victim)
        sigma[node] = slot
        rows[slot % ii].append(node)
        # eject placed nodes whose edges this placement violates
        # (self edges are satisfied for any feasible II; skip them)
        for edge in succs_by_src.get(node, ()):
            if edge.dst == node:
                continue
            dst_sigma = sigma[edge.dst]
            if dst_sigma is not None and dst_sigma < \
                    slot + edge.latency - ii * edge.distance:
                unplace(edge.dst)
        for edge in preds_by_dst.get(node, ()):
            if edge.src == node:
                continue
            src_sigma = sigma[edge.src]
            if src_sigma is not None and slot < \
                    src_sigma + edge.latency - ii * edge.distance:
                unplace(edge.src)
    return [s for s in sigma]  # type: ignore[misc]


def _verify(sigma: List[int], edges: List[DepEdge], ii: int) -> bool:
    for edge in edges:
        if sigma[edge.dst] < sigma[edge.src] + edge.latency \
                - ii * edge.distance:
            return False
        if edge.kind == "flow":
            # register lifetime: the next iteration's instance of the
            # defining op rewrites the register at sigma(src) + II; the
            # value must be consumed by then (same-cycle read still
            # sees the old value, so equality is fine).
            if sigma[edge.dst] + ii * edge.distance > sigma[edge.src] + ii:
                return False
    return True


def _assign_fus(schedule: ModuloSchedule, n_nodes: int, ii: int,
                width: int) -> None:
    per_row: Dict[int, int] = {}
    for node in range(n_nodes):
        row = schedule.sigma[node] % ii
        fu = per_row.get(row, 0)
        if fu >= width:
            raise PipelineError("modulo reservation table overflow")
        schedule.node_fu[node] = fu
        per_row[row] = fu + 1


@dataclass
class LoopPipelineArtifact:
    """Everything codegen needs to emit one pipelined loop region."""

    placeholder: str          # block name the artifact replaces
    loop_block: BasicBlock    # rotated loop body (ops + test)
    schedule: ModuloSchedule
    exit_target: str
    #: the kernel-exit compare (pre-increment induction value against a
    #: step-adjusted bound); TRUE means "run another kernel round".
    kernel_compare: CompareSlot

    def segments(self, width: int):
        """Build the prologue / kernel / epilogue segments."""
        from .codegen import Segment  # local import to avoid a cycle

        sched = self.schedule
        ii, stages = sched.ii, sched.stages
        ops = self.loop_block.ops
        compare_node = sched.compare_node

        def node_slot(node: int):
            if node == compare_node:
                return self.kernel_compare
            return ops[node]

        def pack(nodes: List[int]) -> List[object]:
            row: List[object] = [None] * width
            free = 0
            for node in nodes:
                while free < width and row[free] is not None:
                    free += 1
                if free >= width:
                    raise PipelineError("row overflow during emission")
                row[free] = node_slot(node)
            return row

        prologue_rows: List[List[object]] = []
        for t in range((stages - 1) * ii):
            nodes = [n for n in range(len(ops))
                     if sched.sigma[n] <= t
                     and (t - sched.sigma[n]) % ii == 0]
            prologue_rows.append(pack(nodes))

        kernel_rows: List[List[object]] = []
        kernel_fu_of_compare = None
        for r in range(ii):
            nodes = [n for n in range(len(ops) + 1)
                     if sched.sigma[n] % ii == r]
            row: List[object] = [None] * width
            for n in nodes:
                fu = sched.node_fu[n]
                row[fu] = node_slot(n)
                if n == compare_node:
                    kernel_fu_of_compare = fu
            kernel_rows.append(row)

        epilogue_rows: List[List[object]] = []
        max_sigma = sched.max_sigma
        for t in range((stages - 1) * ii):
            nodes = [n for n in range(len(ops))
                     for d in range(1, stages)
                     if sched.sigma[n] == t + d * ii]
            if t > max_sigma and not nodes:
                break
            epilogue_rows.append(pack(nodes))

        kernel_key = f"{self.placeholder}.kernel"
        epilog_key = f"{self.placeholder}.epilog"
        # the kernel compare is normalized to continue-on-true
        branch = ("branch", kernel_fu_of_compare, kernel_key, epilog_key)
        return [
            Segment(self.placeholder, prologue_rows or [[None] * width],
                    ("jump", kernel_key)),
            Segment(kernel_key, kernel_rows, branch),
            Segment(epilog_key, epilogue_rows or [[None] * width],
                    ("jump", self.exit_target)),
        ]


def _find_induction(block: BasicBlock) -> Optional[Tuple[VReg, int, int]]:
    """The loop's induction (vreg, step, op index), if unique."""
    candidates: List[Tuple[VReg, int, int]] = []
    for index, op in enumerate(block.ops):
        if op.dest is None:
            continue
        if op.opcode == "iadd":
            if op.a == op.dest and isinstance(op.b, IRConst):
                candidates.append((op.dest, op.b.value, index))
            elif op.b == op.dest and isinstance(op.a, IRConst):
                candidates.append((op.dest, op.a.value, index))
        elif op.opcode == "isub":
            if op.a == op.dest and isinstance(op.b, IRConst):
                candidates.append((op.dest, -op.b.value, index))
    return candidates[0] if len(candidates) == 1 else None


def _loop_invariant(value: Value, block: BasicBlock) -> bool:
    if isinstance(value, IRConst):
        return True
    return all(value not in op.defs() for op in block.ops)


def pipeline_function(function: Function, width: int,
                      write_latency: int = 1) -> Dict[str, LoopPipelineArtifact]:
    """Pipeline every eligible self-loop; returns placeholder-keyed
    artifacts (codegen emits them in place of their placeholder block).

    The function is modified: each pipelined loop L gains a guard block
    (reusing L's name, so predecessors are untouched), a ``L.simple``
    fallback copy, and a ``L.pipe`` placeholder block carrying the same
    ops for liveness/allocation purposes.
    """
    rotate_while_loops(function)
    artifacts: Dict[str, LoopPipelineArtifact] = {}
    for name in list(function.block_order()):
        block = function.blocks.get(name)
        if block is None or not isinstance(block.terminator, Branch):
            continue
        branch = block.terminator
        if name not in branch.successors():
            continue  # not a self loop
        continue_on_true = branch.if_true == name
        exit_target = branch.if_false if continue_on_true else branch.if_true
        if exit_target == name:
            continue  # infinite loop
        if branch.cmp not in _MONOTONE:
            continue
        induction = _find_induction(block)
        if induction is None:
            continue
        iv, step, increment_index = induction
        if step == 0:
            continue
        # normalize the compare to "continue iff rel(iv, bound)"
        if branch.a == iv and _loop_invariant(branch.b, block):
            rel, bound = branch.cmp, branch.b
        elif branch.b == iv and _loop_invariant(branch.a, block):
            rel, bound = _SWAPPED[branch.cmp], branch.a
        else:
            continue
        if not continue_on_true:
            rel = _NEGATED[rel]
        if rel not in _MONOTONE:
            continue

        schedule = modulo_schedule(block, width, write_latency,
                                   increment_node=increment_index)
        if schedule is None:
            continue
        stages = schedule.stages

        # --- rewrite the CFG -------------------------------------------
        simple_name = f"{name}.simple"
        pipe_name = f"{name}.pipe"
        if simple_name in function.blocks or pipe_name in function.blocks:
            continue
        simple = function.add_block(simple_name)
        simple.ops = list(block.ops)
        simple.terminator = Branch(
            branch.cmp, branch.a, branch.b,
            simple_name if continue_on_true else exit_target,
            exit_target if continue_on_true else simple_name)

        # Bounds: the kernel compare reads the PRE-increment induction
        # value, so "iteration i+1 valid" is rel(iv_pre, bound - step);
        # the guard requires `stages` iterations: rel(iv0,
        # bound - (stages-1)*step).
        guard_ops: List[IROp] = []

        def adjusted(shift: int, tag: str) -> Value:
            if shift == 0:
                return bound
            if isinstance(bound, IRConst):
                return IRConst(bound.value - shift)
            vreg = VReg(f"{name}.{tag}")
            guard_ops.append(IROp("isub", bound, IRConst(shift), vreg))
            return vreg

        kernel_bound = adjusted(step, "kb")
        guard_bound = adjusted((stages - 1) * step, "gb")

        # placeholder block: same ops, and a terminator that keeps the
        # kernel bound live for the allocator.
        pipe = function.add_block(pipe_name)
        pipe.ops = list(block.ops)
        pipe.terminator = Branch(rel, iv, kernel_bound,
                                 pipe_name, exit_target)

        loop_block = BasicBlock(name, list(block.ops), branch)
        block.ops = guard_ops
        block.terminator = Branch(rel, iv, guard_bound,
                                  pipe_name, simple_name)

        artifacts[pipe_name] = LoopPipelineArtifact(
            placeholder=pipe_name,
            loop_block=loop_block,
            schedule=schedule,
            exit_target=exit_target,
            kernel_compare=CompareSlot(rel, iv, kernel_bound),
        )
    return artifacts
