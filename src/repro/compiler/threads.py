"""Multi-stream composition: placing compiled threads on FU subsets.

An XIMD runs one instruction stream per SSET.  This module takes
independently compiled (VLIW-mode) thread programs and composes them
onto one machine: thread *i* occupies a contiguous range of FU columns,
executes from address 0 of its own columns (each FU has private
instruction memory, so different threads' addresses never collide), and
optionally joins the others through an ALL-sync barrier at its exit —
the section 3.3 mechanism.

Register pressure is handled by relocation: each thread's register
numbers shift into a private window of the 256-register global file
(threads that *want* to share registers — e.g. Figure 12 style
producer/consumer pairs — can pass explicit windows that overlap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa import (
    Condition,
    Const,
    ControlOp,
    DataOp,
    Parcel,
    Reg,
    SyncValue,
)
from ..machine.program import Program
from .codegen import CompiledFunction
from .errors import CompilerError


@dataclass
class ThreadPlacement:
    """Where one compiled thread landed in the composed machine."""

    name: str
    fu_offset: int
    width: int
    register_base: int
    registers_used: int

    def register(self, compiled: CompiledFunction, var: str) -> int:
        """Physical register of *var* in the composed program."""
        return compiled.register(var) + self.register_base


def _shift_data_op(op: DataOp, reg_delta: int) -> DataOp:
    def shift(value):
        if isinstance(value, Reg):
            return Reg(value.index + reg_delta)
        return value

    if op.is_nop:
        return op
    return DataOp(op.opcode, shift(op.srca), shift(op.srcb),
                  shift(op.dest) if op.dest is not None else None)


def _shift_control(control: Optional[ControlOp], addr_delta: int,
                   fu_delta: int) -> Optional[ControlOp]:
    if control is None:
        return None
    index = control.index
    if control.condition.needs_index and index is not None:
        index += fu_delta
    mask = control.mask
    if mask is not None:
        mask = tuple(m + fu_delta for m in mask)
    target2 = control.target2
    return ControlOp(control.condition,
                     control.target1 + addr_delta,
                     target2 + addr_delta if target2 is not None else None,
                     index, mask)


def relocate_parcel(parcel: Parcel, addr_delta: int, fu_delta: int,
                    reg_delta: int) -> Parcel:
    """Shift a parcel's registers, branch targets, and FU references."""
    return Parcel(
        _shift_data_op(parcel.data, reg_delta),
        _shift_control(parcel.control, addr_delta, fu_delta),
        parcel.sync,
    )


def registers_used(compiled: CompiledFunction) -> int:
    """Highest physical register index used, plus one."""
    highest = -1
    for index in compiled.assignment.mapping.values():
        highest = max(highest, index)
    return highest + 1


def compose_threads(threads: Sequence[CompiledFunction],
                    total_width: int = 8,
                    barrier: bool = True,
                    n_registers: int = 256,
                    ) -> Tuple[Program, List[ThreadPlacement]]:
    """Compose compiled threads side by side on one XIMD.

    Threads are assigned FU columns left to right in order; each
    thread's exit row optionally becomes an ALL-sync barrier over the
    participating FUs, after which every thread halts together (the
    fork at machine start is implicit: all FUs begin at address 0 of
    their own columns, already running their own streams).
    """
    if not threads:
        raise CompilerError("no threads to compose")
    widths = [t.width for t in threads]
    if sum(widths) > total_width:
        raise CompilerError(
            f"threads need {sum(widths)} FUs, machine has {total_width}")

    placements: List[ThreadPlacement] = []
    fu_offset = 0
    register_base = 0
    for thread in threads:
        used = registers_used(thread)
        if register_base + used > n_registers:
            raise CompilerError("composed threads exceed the register file")
        placements.append(ThreadPlacement(
            thread.function.name, fu_offset, thread.width,
            register_base, used))
        fu_offset += thread.width
        register_base += used

    barrier_mask = tuple(range(sum(widths))) if barrier else None
    length = max(t.program.length for t in threads) + (2 if barrier else 0)
    columns: List[List[Optional[Parcel]]] = [
        [None] * length for _ in range(total_width)
    ]
    register_names: Dict[int, str] = {}
    labels: Dict[str, int] = {}

    for thread, placement in zip(threads, placements):
        program = thread.program
        halt_addresses = set()
        for fu in range(program.width):
            column = program.columns[fu]
            out = columns[placement.fu_offset + fu]
            for address, parcel in enumerate(column):
                if parcel is None:
                    continue
                moved = relocate_parcel(parcel, 0, placement.fu_offset,
                                        placement.register_base)
                if barrier and moved.control is None:
                    # exit row -> barrier spin, then halt one row later
                    halt_addresses.add(address)
                    moved = Parcel(
                        moved.data,
                        ControlOp(Condition.ALL_SS_DONE, address + 1,
                                  address, mask=barrier_mask),
                        SyncValue.DONE,
                    )
                    out[address + 1] = Parcel(sync=SyncValue.DONE)
                out[address] = moved
        for label, address in program.labels.items():
            labels[f"{placement.name}.{label}"] = address
        for index, name in program.register_names.items():
            register_names[index + placement.register_base] = \
                f"{placement.name}.{name}"

    return Program(columns, entry=0, labels=labels,
                   register_names=register_names), placements
