"""Tile generation: compiling each thread at several machine widths.

Figure 13: *"Each thread is compiled several times with varying
resource constraints ... Each can be modeled as a rectangle or tile
whose width is the required number of functional units and whose length
is the static code size.  The best set of tiles for each thread is
saved."*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .codegen import CompiledFunction, compile_ir
from .errors import CompilerError
from .ir import Function


@dataclass
class Tile:
    """One compilation of one thread at one width."""

    thread: str
    width: int
    height: int                 # static code size in rows
    compiled: CompiledFunction
    est_cycles: Optional[int] = None  # dynamic estimate, if measured

    @property
    def area(self) -> int:
        return self.width * self.height

    def __str__(self):
        cycles = f", ~{self.est_cycles}cy" if self.est_cycles else ""
        return (f"Tile({self.thread}, {self.width}x{self.height}"
                f"{cycles})")


def generate_tiles(function: Function,
                   widths: Sequence[int] = (1, 2, 4, 8),
                   measure: Optional[Callable[[CompiledFunction], int]] = None,
                   **compile_options) -> List[Tile]:
    """Compile *function* once per width and wrap the results as tiles.

    Args:
        measure: optional callback returning a dynamic cycle count for
            a compiled function (e.g. a simulator run on a reference
            input); stored as the tile's ``est_cycles``.
    """
    import copy

    tiles: List[Tile] = []
    for width in widths:
        if width < 1:
            raise CompilerError(f"bad tile width {width}")
        # compilation mutates the IR (percolation, pipelining), so each
        # width gets a private copy
        instance = copy.deepcopy(function)
        compiled = compile_ir(instance, width, **compile_options)
        tile = Tile(function.name, width, compiled.program.length, compiled)
        if measure is not None:
            tile.est_cycles = measure(compiled)
        tiles.append(tile)
    return tiles


def pareto_tiles(tiles: Sequence[Tile]) -> List[Tile]:
    """The best set: tiles not dominated in both width and height.

    A tile dominates another if it is no wider *and* no taller; the
    paper keeps exactly this frontier per thread.
    """
    kept: List[Tile] = []
    for tile in tiles:
        dominated = any(
            other is not tile
            and other.width <= tile.width
            and other.height <= tile.height
            and (other.width < tile.width or other.height < tile.height)
            for other in tiles
        )
        if not dominated:
            kept.append(tile)
    kept.sort(key=lambda t: t.width)
    return kept


def tile_menu(functions: Dict[str, Function],
              widths: Sequence[int] = (1, 2, 4, 8),
              **options) -> Dict[str, List[Tile]]:
    """Per-thread Pareto tile sets for a whole compilation unit."""
    return {
        name: pareto_tiles(generate_tiles(fn, widths, **options))
        for name, fn in functions.items()
    }
