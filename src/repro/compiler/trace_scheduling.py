"""Trace scheduling: superblock formation along likely paths.

Trace Scheduling [Fisher81] picks the likeliest path through the CFG
and schedules it as one long block, patching the off-trace entries and
exits with compensation code.  This module implements the modern
formulation via *superblocks*: the trace is made single-entry by tail
duplication (side entrances get private copies of the downstream trace
blocks), after which the percolation pass's chain merging and
speculative hoisting compact the trace with no side-entrance bookkeeping
at all — duplication *is* the compensation code.

Profiles are block-weight dictionaries; :func:`estimate_profile` gives
a static guess (loop nesting via back-edge heuristics), or callers pass
measured weights from a simulator run.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Set, Tuple

from .dataflow import predecessors, reachable_blocks, successors
from .ir import Branch, Function, Halt, IROp, Jump


def estimate_profile(function: Function) -> Dict[str, float]:
    """A static block-weight estimate.

    Every block starts at 1.0; blocks reachable from a conditional get
    the classic 50/50 split; loop membership (a block that can reach
    itself) multiplies weight by 10 — a crude stand-in for measured
    profiles, adequate for choosing traces in small programs.
    """
    succs = successors(function)
    weights = {name: 1.0 for name in function.blocks}

    # crude loop detection: block reaches itself
    for name in function.blocks:
        seen: Set[str] = set()
        stack = list(succs[name])
        while stack:
            node = stack.pop()
            if node == name:
                weights[name] *= 10.0
                break
            if node in seen:
                continue
            seen.add(node)
            stack.extend(succs[node])
    return weights


def pick_trace(function: Function, profile: Dict[str, float],
               start: Optional[str] = None,
               max_length: int = 16) -> List[str]:
    """Follow the heaviest successor from *start* (default: entry).

    The trace stops at halts, back edges (already-visited blocks), and
    the length cap — Fisher's mutual-most-likely criterion simplified
    to forward most-likely.
    """
    succs = successors(function)
    current = start if start is not None else function.entry
    trace = [current]
    seen = {current}
    while len(trace) < max_length:
        options = [s for s in succs[current] if s not in seen]
        if not options:
            break
        current = max(options, key=lambda s: profile.get(s, 0.0))
        trace.append(current)
        seen.add(current)
    return trace


def tail_duplicate(function: Function, trace: List[str]) -> int:
    """Make *trace* single-entry by duplicating side-entered tails.

    For each trace block (after the first) with predecessors outside
    the trace, the block and the rest of the trace after it are cloned;
    the off-trace predecessors are redirected to the clones.  Returns
    the number of blocks duplicated.
    """
    duplicated = 0
    for position in range(1, len(trace)):
        name = trace[position]
        if name not in function.blocks:
            continue
        preds = predecessors(function)
        on_trace_pred = trace[position - 1]
        side_entries = [p for p in preds.get(name, ())
                        if p != on_trace_pred]
        if not side_entries:
            continue
        # clone the tail of the trace from this block onward
        clones: Dict[str, str] = {}
        for tail_name in trace[position:]:
            if tail_name not in function.blocks:
                continue
            clone_name = _fresh_name(function, f"{tail_name}.dup")
            block = function.blocks[tail_name]
            clone = function.add_block(clone_name)
            clone.ops = [IROp(op.opcode, op.a, op.b, op.dest)
                         for op in block.ops]
            clone.terminator = copy.copy(block.terminator)
            clones[tail_name] = clone_name
            duplicated += 1
        # clone terminators follow the cloned tail where possible
        for original, clone_name in clones.items():
            clone = function.blocks[clone_name]
            clone.terminator = _retarget(clone.terminator, clones)
        # side entrances enter the clones
        for pred_name in side_entries:
            pred = function.blocks[pred_name]
            pred.terminator = _retarget(pred.terminator,
                                        {name: clones[name]})
    return duplicated


def _retarget(terminator, mapping: Dict[str, str]):
    if isinstance(terminator, Jump):
        return Jump(mapping.get(terminator.target, terminator.target))
    if isinstance(terminator, Branch):
        return Branch(terminator.cmp, terminator.a, terminator.b,
                      mapping.get(terminator.if_true, terminator.if_true),
                      mapping.get(terminator.if_false, terminator.if_false))
    return terminator


def _fresh_name(function: Function, base: str) -> str:
    name = base
    counter = 1
    while name in function.blocks:
        counter += 1
        name = f"{base}{counter}"
    return name


def trace_schedule(function: Function,
                   profile: Optional[Dict[str, float]] = None,
                   max_traces: int = 4) -> Tuple[int, int]:
    """Form superblocks along the heaviest traces (in place).

    Repeatedly picks the heaviest untouched trace, tail-duplicates it,
    and lets the percolation pass (run afterwards by ``compile_ir``)
    merge and compact it.  Returns (traces formed, blocks duplicated).
    """
    from ..obs.core import current_observer
    from .codegen import function_op_count
    from .percolation import percolate_function

    if profile is None:
        profile = estimate_profile(function)
    with current_observer().pass_span(
            "trace_schedule", ops_in=function_op_count(function)) as span:
        covered: Set[str] = set()
        formed = 0
        duplicated = 0
        for _ in range(max_traces):
            candidates = [n for n in function.blocks if n not in covered]
            if not candidates:
                break
            start = max(candidates, key=lambda n: profile.get(n, 0.0))
            trace = pick_trace(function, profile, start)
            if len(trace) < 2:
                covered.update(trace)
                continue
            duplicated += tail_duplicate(function, trace)
            covered.update(trace)
            formed += 1
        percolate_function(function)
        span.ops_out = function_op_count(function)
        span.extra["traces"] = formed
        span.extra["duplicated_blocks"] = duplicated
    return formed, duplicated
