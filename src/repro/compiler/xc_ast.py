"""Abstract syntax tree for the XC language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# --- expressions ------------------------------------------------------------


@dataclass(frozen=True)
class NumberExpr:
    value: int


@dataclass(frozen=True)
class VarExpr:
    name: str


@dataclass(frozen=True)
class BinaryExpr:
    op: str  # + - * / % & | ^ << >>
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnaryExpr:
    op: str  # -
    operand: "Expr"


@dataclass(frozen=True)
class IndexExpr:
    """Array element read: ``A[index]``."""

    array: str
    index: "Expr"


Expr = Union[NumberExpr, VarExpr, BinaryExpr, UnaryExpr, IndexExpr]


@dataclass(frozen=True)
class Condition:
    """A single relational comparison: ``left <relop> right``."""

    relop: str  # < <= > >= == !=
    left: Expr
    right: Expr


# --- statements -------------------------------------------------------------


@dataclass
class AssignStmt:
    name: str
    value: Expr
    line: int = 0


@dataclass
class StoreStmt:
    """Array element write: ``A[index] = value``."""

    array: str
    index: Expr
    value: Expr
    line: int = 0


@dataclass
class IfStmt:
    condition: Condition
    then_body: List["Stmt"]
    else_body: List["Stmt"] = field(default_factory=list)
    line: int = 0


@dataclass
class WhileStmt:
    condition: Condition
    body: List["Stmt"]
    line: int = 0


@dataclass
class ReturnStmt:
    value: Optional[Expr]
    line: int = 0


Stmt = Union[AssignStmt, StoreStmt, IfStmt, WhileStmt, ReturnStmt]


# --- declarations -----------------------------------------------------------


@dataclass
class FuncDecl:
    """One XC function.

    ``arrays`` map names to fixed base addresses (XC has no allocator:
    arrays live at addresses the program declares, matching the paper's
    examples where ``z``, ``D0``, ``B0`` are link-time constants).
    """

    name: str
    params: List[str]
    variables: List[str]
    arrays: List[Tuple[str, int]]
    body: List[Stmt]
    line: int = 0
