"""Lexer for XC, the small C-like source language.

XC exists because the paper's compilation flow (section 4.2) starts
from C via a retargetable GNU-C-based VLIW compiler; XC is the minimal
language that expresses the paper's example programs (TPROC, MINMAX,
BITCOUNT, the Livermore kernels): integer variables, arrays at fixed
base addresses, arithmetic/logical expressions, ``if``/``while``
control flow, and ``return``.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import List, Optional

from .errors import XcSyntaxError

KEYWORDS = frozenset({"func", "var", "array", "if", "else", "while",
                      "return"})

#: multi-character operators, longest first.
_OPERATORS = ("<<", ">>", "<=", ">=", "==", "!=",
              "+", "-", "*", "/", "%", "&", "|", "^", "<", ">",
              "=", "(", ")", "{", "}", "[", "]", ",", ";", "@")

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUMBER_RE = re.compile(r"0[xX][0-9a-fA-F]+|\d+")


class XcTokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    OP = "op"
    END = "end"


@dataclass(frozen=True)
class XcToken:
    kind: XcTokenKind
    text: str
    value: object = None
    line: int = 0

    def __str__(self):
        return self.text or "<end>"


def tokenize_xc(source: str) -> List[XcToken]:
    """Tokenize XC source; ``//`` comments run to end of line."""
    tokens: List[XcToken] = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        cut = raw.find("//")
        line = raw if cut < 0 else raw[:cut]
        pos = 0
        while pos < len(line):
            ch = line[pos]
            if ch in " \t\r":
                pos += 1
                continue
            match = _NUMBER_RE.match(line, pos)
            if match:
                text = match.group(0)
                base = 16 if text.lower().startswith("0x") else 10
                tokens.append(XcToken(XcTokenKind.NUMBER, text,
                                      int(text, base), lineno))
                pos = match.end()
                continue
            match = _IDENT_RE.match(line, pos)
            if match:
                text = match.group(0)
                kind = (XcTokenKind.KEYWORD if text in KEYWORDS
                        else XcTokenKind.IDENT)
                tokens.append(XcToken(kind, text, text, lineno))
                pos = match.end()
                continue
            for op in _OPERATORS:
                if line.startswith(op, pos):
                    tokens.append(XcToken(XcTokenKind.OP, op, op, lineno))
                    pos += len(op)
                    break
            else:
                raise XcSyntaxError(
                    f"unexpected character {ch!r}", lineno)
    tokens.append(XcToken(XcTokenKind.END, "",
                          line=source.count("\n") + 1))
    return tokens


class XcTokenStream:
    """Cursor with lookahead over an XC token list."""

    def __init__(self, tokens: List[XcToken]):
        self._tokens = tokens
        self._index = 0

    @property
    def current(self) -> XcToken:
        return self._tokens[self._index]

    def advance(self) -> XcToken:
        token = self.current
        if token.kind is not XcTokenKind.END:
            self._index += 1
        return token

    def accept_op(self, text: str) -> Optional[XcToken]:
        token = self.current
        if token.kind is XcTokenKind.OP and token.text == text:
            return self.advance()
        return None

    def accept_keyword(self, word: str) -> Optional[XcToken]:
        token = self.current
        if token.kind is XcTokenKind.KEYWORD and token.text == word:
            return self.advance()
        return None

    def expect_op(self, text: str) -> XcToken:
        token = self.accept_op(text)
        if token is None:
            raise XcSyntaxError(
                f"expected {text!r}, found {self.current}",
                self.current.line)
        return token

    def expect_ident(self) -> XcToken:
        token = self.current
        if token.kind is not XcTokenKind.IDENT:
            raise XcSyntaxError(
                f"expected identifier, found {token}", token.line)
        return self.advance()

    def expect_number(self) -> XcToken:
        token = self.current
        if token.kind is not XcTokenKind.NUMBER:
            raise XcSyntaxError(
                f"expected number, found {token}", token.line)
        return self.advance()

    @property
    def at_end(self) -> bool:
        return self.current.kind is XcTokenKind.END
