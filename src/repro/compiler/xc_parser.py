"""Recursive-descent parser for XC.

Grammar::

    unit      := func*
    func      := 'func' IDENT '(' [IDENT (',' IDENT)*] ')' '{' decl* stmt* '}'
    decl      := 'var' IDENT (',' IDENT)* ';'
               | 'array' IDENT '@' NUMBER ';'
    stmt      := IDENT '=' expr ';'
               | IDENT '[' expr ']' '=' expr ';'
               | 'if' '(' cond ')' block ['else' block]
               | 'while' '(' cond ')' block
               | 'return' [expr] ';'
    block     := '{' stmt* '}'
    cond      := expr RELOP expr
    expr      := bitor
    bitor     := bitxor ('|' bitxor)*
    bitxor    := bitand ('^' bitand)*
    bitand    := shift ('&' shift)*
    shift     := additive (('<<'|'>>') additive)*
    additive  := term (('+'|'-') term)*
    term      := unary (('*'|'/'|'%') unary)*
    unary     := '-' unary | primary
    primary   := NUMBER | IDENT | IDENT '[' expr ']' | '(' expr ')'

Declarations must precede statements, C89 style.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .errors import XcSyntaxError
from .xc_ast import (
    AssignStmt,
    BinaryExpr,
    Condition,
    Expr,
    FuncDecl,
    IfStmt,
    IndexExpr,
    NumberExpr,
    ReturnStmt,
    Stmt,
    StoreStmt,
    UnaryExpr,
    VarExpr,
    WhileStmt,
)
from .xc_lexer import XcTokenKind, XcTokenStream, tokenize_xc

_RELOPS = ("<=", ">=", "==", "!=", "<", ">")
_BINARY_LEVELS = (
    ("|",),
    ("^",),
    ("&",),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)


class _Parser:
    def __init__(self, source: str):
        self.stream = XcTokenStream(tokenize_xc(source))

    # -- declarations -----------------------------------------------------

    def parse_unit(self) -> List[FuncDecl]:
        functions = []
        while not self.stream.at_end:
            functions.append(self.parse_func())
        if not functions:
            raise XcSyntaxError("empty compilation unit")
        return functions

    def parse_func(self) -> FuncDecl:
        token = self.stream.current
        if not self.stream.accept_keyword("func"):
            raise XcSyntaxError(f"expected 'func', found {token}", token.line)
        name = self.stream.expect_ident().text
        self.stream.expect_op("(")
        params: List[str] = []
        if not self.stream.accept_op(")"):
            while True:
                params.append(self.stream.expect_ident().text)
                if self.stream.accept_op(")"):
                    break
                self.stream.expect_op(",")
        self.stream.expect_op("{")
        variables: List[str] = []
        arrays: List[Tuple[str, int]] = []
        while True:
            if self.stream.accept_keyword("var"):
                while True:
                    variables.append(self.stream.expect_ident().text)
                    if not self.stream.accept_op(","):
                        break
                self.stream.expect_op(";")
            elif self.stream.accept_keyword("array"):
                array_name = self.stream.expect_ident().text
                self.stream.expect_op("@")
                base = self.stream.expect_number().value
                arrays.append((array_name, base))
                self.stream.expect_op(";")
            else:
                break
        body = self.parse_stmts_until_brace()
        return FuncDecl(name, params, variables, arrays, body,
                        line=token.line)

    # -- statements ----------------------------------------------------------

    def parse_stmts_until_brace(self) -> List[Stmt]:
        stmts: List[Stmt] = []
        while not self.stream.accept_op("}"):
            if self.stream.at_end:
                raise XcSyntaxError("unexpected end of input (missing '}')")
            stmts.append(self.parse_stmt())
        return stmts

    def parse_block(self) -> List[Stmt]:
        self.stream.expect_op("{")
        return self.parse_stmts_until_brace()

    def parse_stmt(self) -> Stmt:
        token = self.stream.current
        if self.stream.accept_keyword("if"):
            self.stream.expect_op("(")
            condition = self.parse_condition()
            self.stream.expect_op(")")
            then_body = self.parse_block()
            else_body: List[Stmt] = []
            if self.stream.accept_keyword("else"):
                else_body = self.parse_block()
            return IfStmt(condition, then_body, else_body, line=token.line)
        if self.stream.accept_keyword("while"):
            self.stream.expect_op("(")
            condition = self.parse_condition()
            self.stream.expect_op(")")
            body = self.parse_block()
            return WhileStmt(condition, body, line=token.line)
        if self.stream.accept_keyword("return"):
            value: Optional[Expr] = None
            if not self.stream.accept_op(";"):
                value = self.parse_expr()
                self.stream.expect_op(";")
            return ReturnStmt(value, line=token.line)
        if token.kind is XcTokenKind.IDENT:
            name = self.stream.advance().text
            if self.stream.accept_op("["):
                index = self.parse_expr()
                self.stream.expect_op("]")
                self.stream.expect_op("=")
                value = self.parse_expr()
                self.stream.expect_op(";")
                return StoreStmt(name, index, value, line=token.line)
            self.stream.expect_op("=")
            value = self.parse_expr()
            self.stream.expect_op(";")
            return AssignStmt(name, value, line=token.line)
        raise XcSyntaxError(f"expected statement, found {token}", token.line)

    # -- expressions -----------------------------------------------------------

    def parse_condition(self) -> Condition:
        left = self.parse_expr()
        token = self.stream.current
        if token.kind is not XcTokenKind.OP or token.text not in _RELOPS:
            raise XcSyntaxError(
                f"expected relational operator, found {token}", token.line)
        self.stream.advance()
        right = self.parse_expr()
        return Condition(token.text, left, right)

    def parse_expr(self, level: int = 0) -> Expr:
        if level == len(_BINARY_LEVELS):
            return self.parse_unary()
        ops = _BINARY_LEVELS[level]
        node = self.parse_expr(level + 1)
        while True:
            token = self.stream.current
            if token.kind is XcTokenKind.OP and token.text in ops:
                self.stream.advance()
                right = self.parse_expr(level + 1)
                node = BinaryExpr(token.text, node, right)
            else:
                return node

    def parse_unary(self) -> Expr:
        if self.stream.accept_op("-"):
            return UnaryExpr("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.stream.current
        if token.kind is XcTokenKind.NUMBER:
            self.stream.advance()
            return NumberExpr(token.value)
        if token.kind is XcTokenKind.IDENT:
            self.stream.advance()
            if self.stream.accept_op("["):
                index = self.parse_expr()
                self.stream.expect_op("]")
                return IndexExpr(token.text, index)
            return VarExpr(token.text)
        if self.stream.accept_op("("):
            node = self.parse_expr()
            self.stream.expect_op(")")
            return node
        raise XcSyntaxError(f"expected expression, found {token}",
                            token.line)


def parse_xc(source: str) -> List[FuncDecl]:
    """Parse XC source into a list of function declarations."""
    return _Parser(source).parse_unit()
