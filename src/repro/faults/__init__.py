"""Deterministic fault injection for the XIMD/VLIW simulators.

The paper's section 1.3 motivates XIMD with workloads whose timing
*"is not known"* at compile time — exactly the workloads where a flaky
peripheral, a flipped bit, or a glitched sync signal turns into a hang
or a wrong answer that is miserable to reproduce.  This package makes
such misbehavior a first-class, replayable input: a :class:`FaultPlan`
is an immutable schedule of :class:`FaultEvent`\\ s pinned to exact
cycles, and the run driver (:mod:`repro.machine.runtime`) applies each
event at the boundary *before* its cycle executes, on every engine —
reference, fast, and specialized — so a seeded fault run is
bit-identical no matter which execution tier ran it.

Fault kinds:

``reg_flip``
    XOR one bit of a register's committed value (soft error in the
    global register file).
``mem_corrupt``
    XOR one bit of a data-memory word (DRAM upset).  Addresses claimed
    by a memory-mapped device are left alone (the event is *masked*):
    device reads are generated, not stored.
``port_drop``
    An :class:`~repro.machine.devices.InputPort` loses its next
    undelivered value in flight.
``port_delay``
    Every undelivered arrival of an input port slips *delay* cycles
    (a stalled peripheral).
``ss_glitch``
    Flip one FU's registered sync signal (XIMD only): a spurious
    BUSY/DONE observed by registered-SS branches the next cycle.
``spurious_wakeup``
    Force one FU's pending sync-conditioned branch to act taken: the
    FU's PC jumps to the branch's taken target as if its wait
    completed (XIMD only).

Events that cannot land (halted FU, dry port, VLIW machine for sync
faults, non-integer register value) are recorded as ``masked`` with a
reason rather than dropped silently — the fault log stays identical
across engines either way.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..machine.devices import InputPort

#: Every fault kind, in the order :meth:`FaultPlan.seeded` cycles
#: through them when no explicit subset is requested.
ALL_KINDS: Tuple[str, ...] = (
    "reg_flip",
    "mem_corrupt",
    "port_drop",
    "port_delay",
    "ss_glitch",
    "spurious_wakeup",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``cycle`` is the machine cycle *before* which the fault applies:
    an event at cycle *c* mutates state after cycle ``c - 1`` commits
    and before cycle *c* executes.  Only the fields relevant to
    ``kind`` are meaningful; the rest keep their defaults.  Index-like
    fields (``fu``, ``reg``, ``address``, ``port``, ``bit``) are
    reduced modulo the machine's actual dimensions at apply time, so
    one plan is portable across configurations.
    """

    cycle: int
    kind: str
    fu: int = 0
    reg: int = 0
    bit: int = 0
    address: int = 0
    port: int = 0
    delay: int = 0

    def __post_init__(self):
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r} "
                             f"(expected one of {ALL_KINDS})")
        if self.cycle < 0:
            raise ValueError("fault cycle must be >= 0")
        if self.delay < 0:
            raise ValueError("fault delay must be >= 0")

    def to_dict(self) -> Dict[str, int]:
        return asdict(self)


class FaultPlan:
    """An immutable, deterministic schedule of fault events.

    The plan itself is stateless during execution — the run driver
    keeps its own cursor — so a single plan object can drive the
    reference, fast, and specialized engines of a differential test
    without any cross-contamination.
    """

    def __init__(self, events: Sequence[FaultEvent] = ()):
        # stable sort: events sharing a cycle keep their listed order,
        # which is part of the deterministic contract (fault_log order
        # must match across engines).
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda event: event.cycle))

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self):
        return f"FaultPlan({list(self.events)!r})"

    def __eq__(self, other):
        return (isinstance(other, FaultPlan)
                and self.events == other.events)

    def __hash__(self):
        return hash(self.events)

    def fingerprint(self) -> str:
        """A short stable digest identifying this plan exactly."""
        payload = repr([event.to_dict() for event in self.events])
        return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        return cls([FaultEvent(**event) for event in data["events"]])

    @classmethod
    def seeded(cls, seed: int, n_faults: int, mean_gap: float = 50.0, *,
               n_fus: int = 8, n_registers: int = 256,
               memory_words: int = 1 << 16, ports: int = 0,
               kinds: Optional[Sequence[str]] = None,
               first_cycle: int = 1) -> "FaultPlan":
        """A reproducible random plan (the chaos-testing front door).

        Inter-fault gaps are exponentially distributed with mean
        *mean_gap* (at least one cycle), mirroring
        :func:`repro.machine.devices.random_input_port`'s arrival
        model.  Port kinds are drawn only when *ports* > 0.
        """
        if n_faults < 0:
            raise ValueError("n_faults must be >= 0")
        if first_cycle < 0:
            raise ValueError("first_cycle must be >= 0")
        pool = tuple(kinds) if kinds is not None else ALL_KINDS
        for kind in pool:
            if kind not in ALL_KINDS:
                raise ValueError(f"unknown fault kind: {kind!r}")
        if ports == 0:
            pool = tuple(kind for kind in pool
                         if not kind.startswith("port_"))
        if not pool:
            raise ValueError("no fault kinds left to draw from")
        rng = random.Random(seed)
        events = []
        cycle = first_cycle
        for index in range(n_faults):
            if index:
                cycle += max(1, int(rng.expovariate(
                    1.0 / max(mean_gap, 1e-9))))
            events.append(FaultEvent(
                cycle=cycle,
                kind=rng.choice(pool),
                fu=rng.randrange(n_fus),
                reg=rng.randrange(n_registers),
                bit=rng.randrange(32),
                address=rng.randrange(memory_words),
                port=rng.randrange(ports) if ports else 0,
                delay=rng.randrange(1, 32),
            ))
        return cls(events)

    # -- application (called by repro.machine.runtime) -------------------

    @staticmethod
    def apply(machine, event: FaultEvent) -> Dict[str, object]:
        """Mutate *machine* per *event*; return the fault-log record.

        Pure function of (machine state, event): no plan state is read
        or written, so the same plan can drive several machines.  The
        returned record is JSON-ready and, for a given program +
        initial state + plan, identical across engines.
        """
        record: Dict[str, object] = {"cycle": event.cycle,
                                     "kind": event.kind}
        handler = _HANDLERS[event.kind]
        handler(machine, event, record)
        return record


def _input_ports(machine) -> List[InputPort]:
    """The machine's input ports in device-map (address) order."""
    return [device for device in machine.memory.devices.devices()
            if isinstance(device, InputPort)]


def _mask(record: Dict[str, object], reason: str) -> None:
    record["masked"] = reason


def _apply_reg_flip(machine, event: FaultEvent, record) -> None:
    reg = event.reg % machine.config.n_registers
    bit = event.bit % 64
    record["reg"] = reg
    record["bit"] = bit
    old = machine.regfile.peek(reg)
    if not isinstance(old, int) or isinstance(old, bool):
        _mask(record, f"register r{reg} holds a non-integer value")
        return
    machine.regfile.poke(reg, old ^ (1 << bit))
    record["old"] = old
    record["new"] = old ^ (1 << bit)


def _apply_mem_corrupt(machine, event: FaultEvent, record) -> None:
    address = event.address % machine.memory.words
    bit = event.bit % 64
    record["address"] = address
    record["bit"] = bit
    if machine.memory.devices.lookup(address) is not None:
        _mask(record, f"address {address} is claimed by a device")
        return
    if isinstance(machine.memory, _distributed_type()):
        bank = event.fu % machine.config.n_fus
        record["bank"] = bank
        old = machine.memory.peek(address, bank)
        if not isinstance(old, int) or isinstance(old, bool):
            _mask(record, f"word {address} holds a non-integer value")
            return
        machine.memory.poke(address, old ^ (1 << bit), bank)
    else:
        old = machine.memory.peek(address)
        if not isinstance(old, int) or isinstance(old, bool):
            _mask(record, f"word {address} holds a non-integer value")
            return
        machine.memory.poke(address, old ^ (1 << bit))
    record["old"] = old
    record["new"] = old ^ (1 << bit)


def _distributed_type():
    from ..machine.memory import DistributedMemory
    return DistributedMemory


def _apply_port_drop(machine, event: FaultEvent, record) -> None:
    ports = _input_ports(machine)
    if not ports:
        _mask(record, "machine has no input ports")
        return
    index = event.port % len(ports)
    record["port"] = index
    dropped = ports[index].drop_next()
    if dropped is None:
        _mask(record, f"input port {index} has no undelivered values")
        return
    record["dropped_ready"] = dropped[0]
    record["dropped_value"] = dropped[1]


def _apply_port_delay(machine, event: FaultEvent, record) -> None:
    ports = _input_ports(machine)
    if not ports:
        _mask(record, "machine has no input ports")
        return
    index = event.port % len(ports)
    record["port"] = index
    record["delay"] = event.delay
    shifted = ports[index].delay_pending(event.delay)
    if not shifted:
        _mask(record, f"input port {index} has no undelivered values")
        return
    record["shifted"] = shifted


def _apply_ss_glitch(machine, event: FaultEvent, record) -> None:
    if not hasattr(machine, "_prev_ss"):
        _mask(record, "machine has no synchronization signals")
        return
    fu = event.fu % machine.config.n_fus
    record["fu"] = fu
    old = machine._prev_ss[fu]
    glitched = list(machine._prev_ss)
    glitched[fu] = not old
    machine._prev_ss = tuple(glitched)
    record["old"] = bool(old)
    record["new"] = not old


def _apply_spurious_wakeup(machine, event: FaultEvent, record) -> None:
    if not hasattr(machine, "pcs"):
        _mask(record, "machine has no per-FU sequencers")
        return
    fu = event.fu % machine.config.n_fus
    record["fu"] = fu
    pc = machine.pcs[fu]
    if pc is None:
        _mask(record, f"FU {fu} has halted")
        return
    parcel = machine.program.fetch(fu, pc)
    if parcel is None or parcel.control is None:
        _mask(record, f"FU {fu} is not at a branch")
        return
    control = parcel.control
    if not control.condition.uses_sync:
        _mask(record, f"FU {fu} is not waiting on a sync condition")
        return
    target = machine.sequencer.preview(pc, control, True)
    machine.pcs[fu] = target
    record["pc"] = pc
    record["target"] = target


_HANDLERS = {
    "reg_flip": _apply_reg_flip,
    "mem_corrupt": _apply_mem_corrupt,
    "port_drop": _apply_port_drop,
    "port_delay": _apply_port_delay,
    "ss_glitch": _apply_ss_glitch,
    "spurious_wakeup": _apply_spurious_wakeup,
}

__all__ = ["ALL_KINDS", "FaultEvent", "FaultPlan"]
