"""The XIMD-1 instruction-set architecture.

This package defines the data operations (Figure 7), the control-path
operations and synchronization field (Figure 8 / section 2.2), the
instruction-parcel structure (section 2.4), and a concrete binary
encoding for parcels.
"""

from .errors import EncodingError, IsaError, OperandError, UnknownOpcodeError
from .instruction import (
    Condition,
    ControlOp,
    DATA_NOP,
    DataOp,
    EMPTY_PARCEL,
    Parcel,
    SyncValue,
    WideInstruction,
    goto,
)
from .opcodes import (
    ALL_MNEMONICS,
    NOP,
    OPCODES,
    OpKind,
    Opcode,
    instruction_set_table,
    lookup,
    opcodes_of_kind,
)
from .operands import Const, Operand, Reg, is_constant, is_register
from .registers import (
    INT_BITS,
    MAXINT,
    MININT,
    NUM_REGISTERS,
    to_unsigned,
    wrap_int,
)

__all__ = [
    "ALL_MNEMONICS",
    "Condition",
    "Const",
    "ControlOp",
    "DATA_NOP",
    "DataOp",
    "EMPTY_PARCEL",
    "EncodingError",
    "INT_BITS",
    "IsaError",
    "lookup",
    "MAXINT",
    "MININT",
    "NOP",
    "NUM_REGISTERS",
    "OPCODES",
    "OpKind",
    "Opcode",
    "Operand",
    "OperandError",
    "Parcel",
    "Reg",
    "SyncValue",
    "UnknownOpcodeError",
    "WideInstruction",
    "goto",
    "instruction_set_table",
    "is_constant",
    "is_register",
    "opcodes_of_kind",
    "to_unsigned",
    "wrap_int",
]
