"""Binary encoding of instruction parcels.

The paper's machine stores each functional unit's parcels in a private
column of instruction memory ("the control signals for each functional
unit are supplied by a unique portion of the instruction memory").  This
module defines a concrete bit-level layout for a parcel so the repository
can round-trip programs through a binary form, measure realistic
instruction-memory sizes (used by the Figure 13 code-density experiment),
and property-test the ISA layer.

The layout is a reconstruction — the paper does not publish field widths
beyond the structural description of Figure 8 — and is documented field
by field in :data:`LAYOUT`.

Parcel layout (LSB first)::

    sync          1 bit    BUSY=0 / DONE=1
    has_control   1 bit    0 marks an empty (halt) slot
    condition     3 bits   Condition enum ordinal
    index         4 bits   FU index for CC/SS conditions
    has_mask      1 bit
    mask          8 bits   FU bitmap for masked ALL/ANY sync
    target1      16 bits
    target2      16 bits
    opcode        6 bits   index into the opcode table
    a_mode        1 bit    0=register, 1=constant
    a_value      32 bits   register index or raw constant bits
    b_mode        1 bit
    b_value      32 bits
    dest          9 bits   register index + 1 "present" bit

Constants are stored as two's-complement 32-bit integers or IEEE-754
single-precision bit patterns (for float opcodes).  Round-tripping a
float constant therefore quantizes it to float32 — exactly what the
32-bit hardware would hold.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Tuple

from .errors import EncodingError
from .instruction import Condition, ControlOp, DataOp, Parcel, SyncValue
from .opcodes import ALL_MNEMONICS, OPCODES
from .operands import Const, Reg
from .registers import wrap_int

#: (name, width-in-bits) for every field, LSB first.
LAYOUT: Tuple[Tuple[str, int], ...] = (
    ("sync", 1),
    ("has_control", 1),
    ("condition", 3),
    ("index", 4),
    ("has_mask", 1),
    ("mask", 8),
    ("target1", 16),
    ("target2", 16),
    ("opcode", 6),
    ("a_mode", 1),
    ("a_value", 32),
    ("b_mode", 1),
    ("b_value", 32),
    ("has_dest", 1),
    ("dest", 8),
)

#: Total encoded size of one parcel.
PARCEL_BITS = sum(width for _, width in LAYOUT)
PARCEL_BYTES = (PARCEL_BITS + 7) // 8

_CONDITION_ORDER = tuple(Condition)
_CONDITION_INDEX = {c: i for i, c in enumerate(_CONDITION_ORDER)}
_OPCODE_INDEX = {m: i for i, m in enumerate(ALL_MNEMONICS)}

_MAX_TARGET = (1 << 16) - 1
_MAX_FU_INDEX = (1 << 4) - 1


def _float_bits(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", value))[0]


def _bits_float(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits))[0]


def _encode_operand(operand, is_float: bool) -> Tuple[int, int]:
    """Return (mode, value_bits) for a source operand."""
    if operand is None:
        return 0, 0
    if isinstance(operand, Reg):
        return 0, operand.index
    if isinstance(operand, Const):
        if isinstance(operand.value, float) or is_float:
            return 1, _float_bits(float(operand.value))
        value = wrap_int(operand.value)
        return 1, value & 0xFFFFFFFF
    raise EncodingError(f"cannot encode operand {operand!r}")


def _decode_operand(mode: int, value: int, is_float: bool, present: bool):
    if not present:
        return None
    if mode == 0:
        return Reg(value & 0xFF)
    if is_float:
        return Const(_bits_float(value))
    signed = value if value < 0x80000000 else value - 0x100000000
    return Const(signed)


def encode_parcel(parcel: Parcel) -> int:
    """Encode *parcel* into a :data:`PARCEL_BITS`-bit integer."""
    fields = dict.fromkeys((name for name, _ in LAYOUT), 0)
    fields["sync"] = 1 if parcel.sync is SyncValue.DONE else 0

    control = parcel.control
    if control is not None:
        fields["has_control"] = 1
        fields["condition"] = _CONDITION_INDEX[control.condition]
        if control.index is not None:
            if control.index > _MAX_FU_INDEX:
                raise EncodingError(f"FU index too large: {control.index}")
            fields["index"] = control.index
        if control.mask is not None:
            fields["has_mask"] = 1
            bitmap = 0
            for fu in control.mask:
                if fu > 7:
                    raise EncodingError(f"mask FU out of range: {fu}")
                bitmap |= 1 << fu
            fields["mask"] = bitmap
        for name, target in (("target1", control.target1),
                             ("target2", control.target2)):
            if target is None:
                continue
            if not 0 <= target <= _MAX_TARGET:
                raise EncodingError(f"branch target out of range: {target}")
            fields[name] = target

    data = parcel.data
    fields["opcode"] = _OPCODE_INDEX[data.opcode.mnemonic]
    is_float = data.opcode.is_float
    fields["a_mode"], fields["a_value"] = _encode_operand(data.srca, is_float)
    fields["b_mode"], fields["b_value"] = _encode_operand(data.srcb, is_float)
    if data.dest is not None:
        fields["has_dest"] = 1
        fields["dest"] = data.dest.index

    word = 0
    shift = 0
    for name, width in LAYOUT:
        value = fields[name]
        if value >> width:
            raise EncodingError(f"field {name} overflows {width} bits: {value}")
        word |= value << shift
        shift += width
    return word


def decode_parcel(word: int) -> Parcel:
    """Decode an integer produced by :func:`encode_parcel`."""
    if word < 0 or word >> PARCEL_BITS:
        raise EncodingError(f"not a {PARCEL_BITS}-bit parcel word: {word}")
    fields = {}
    shift = 0
    for name, width in LAYOUT:
        fields[name] = (word >> shift) & ((1 << width) - 1)
        shift += width

    mnemonic = ALL_MNEMONICS[fields["opcode"]] \
        if fields["opcode"] < len(ALL_MNEMONICS) else None
    if mnemonic is None:
        raise EncodingError(f"undefined opcode index {fields['opcode']}")
    opcode = OPCODES[mnemonic]
    has_sources = opcode.num_sources > 0
    data = DataOp(
        opcode,
        _decode_operand(fields["a_mode"], fields["a_value"],
                        opcode.is_float, has_sources),
        _decode_operand(fields["b_mode"], fields["b_value"],
                        opcode.is_float, has_sources),
        Reg(fields["dest"]) if fields["has_dest"] else None,
    )

    control = None
    if fields["has_control"]:
        condition = _CONDITION_ORDER[fields["condition"]]
        mask = None
        if fields["has_mask"]:
            mask = tuple(fu for fu in range(8) if fields["mask"] >> fu & 1)
        control = ControlOp(
            condition,
            fields["target1"],
            fields["target2"] if not condition.is_unconditional else None,
            fields["index"] if condition.needs_index else None,
            mask,
        )

    sync = SyncValue.DONE if fields["sync"] else SyncValue.BUSY
    return Parcel(data, control, sync)


def encode_parcel_bytes(parcel: Parcel) -> bytes:
    """Encode *parcel* into :data:`PARCEL_BYTES` little-endian bytes."""
    return encode_parcel(parcel).to_bytes(PARCEL_BYTES, "little")


def decode_parcel_bytes(blob: bytes) -> Parcel:
    """Inverse of :func:`encode_parcel_bytes`."""
    if len(blob) != PARCEL_BYTES:
        raise EncodingError(
            f"expected {PARCEL_BYTES} bytes, got {len(blob)}")
    return decode_parcel(int.from_bytes(blob, "little"))


def encode_column(parcels: Iterable[Parcel]) -> bytes:
    """Encode one FU's instruction-memory column as a byte string."""
    return b"".join(encode_parcel_bytes(p) for p in parcels)


def decode_column(blob: bytes) -> List[Parcel]:
    """Inverse of :func:`encode_column`."""
    if len(blob) % PARCEL_BYTES:
        raise EncodingError("column length is not a multiple of parcel size")
    return [decode_parcel_bytes(blob[i:i + PARCEL_BYTES])
            for i in range(0, len(blob), PARCEL_BYTES)]
