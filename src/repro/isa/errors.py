"""Exception types raised by the ISA layer."""


class IsaError(Exception):
    """Base class for all ISA-level errors."""


class UnknownOpcodeError(IsaError):
    """Raised when a mnemonic does not name a defined operation."""

    def __init__(self, mnemonic):
        super().__init__(f"unknown opcode: {mnemonic!r}")
        self.mnemonic = mnemonic


class OperandError(IsaError):
    """Raised when an operation is built with malformed operands."""


class EncodingError(IsaError):
    """Raised when a parcel cannot be encoded into or decoded from bits."""
