"""Instruction parcels: the unit of control for one functional unit.

Paper section 2.4: *"Instruction Parcel: The set of instruction fields
which control each FU.  This includes the fields for the control path,
data path, and synchronization signals for each FU.  Each instruction
parcel is independent.  Eight instruction parcels comprise one
instruction, whether or not they were issued from the same physical
address."*

A :class:`Parcel` therefore bundles

* a :class:`DataOp` (the data-path control fields, Figure 7),
* a :class:`ControlOp` (the control-path control fields, Figure 8:
  two explicit branch targets plus a condition-selection criterion), and
* a synchronization-signal field (:class:`SyncValue`, BUSY or DONE).

The XIMD-1 sequencer has **no PC incrementer**: every parcel names its
successor(s) explicitly through ``target1`` / ``target2``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from .errors import OperandError
from .opcodes import NOP, Opcode, OpKind
from .operands import Const, Operand, Reg, require_register, require_source


class SyncValue(enum.Enum):
    """The two values of a functional unit's synchronization signal.

    Paper section 2.2: *"It is a two valued signal.  The values are
    arbitrarily named BUSY and DONE."*
    """

    BUSY = "BUSY"
    DONE = "DONE"

    def __str__(self):
        return self.value


class Condition(enum.Enum):
    """Condition-selection criteria for branch-target selection.

    These are exactly the control operations defined for XIMD-1
    (section 2.2 "Control Path"): two unconditional operations and four
    conditional ones.  A conditional operation selects ``target1`` when
    the condition holds and ``target2`` otherwise.
    """

    #: next PC = target1, unconditionally.
    ALWAYS_T1 = "always_t1"
    #: next PC = target2, unconditionally.
    ALWAYS_T2 = "always_t2"
    #: branch on one condition code: ``CC_j == TRUE``.
    CC_TRUE = "cc_true"
    #: branch on one sync signal: ``SS_j == DONE``.
    SS_DONE = "ss_done"
    #: branch on ALL sync signals: ``prod_i (SS_i == DONE)``.
    ALL_SS_DONE = "all_ss_done"
    #: branch on ANY sync signal: ``sum_i (SS_i == DONE)``.
    ANY_SS_DONE = "any_ss_done"

    @property
    def is_unconditional(self) -> bool:
        return self in (Condition.ALWAYS_T1, Condition.ALWAYS_T2)

    @property
    def needs_index(self) -> bool:
        """Whether the condition references a specific FU's CC/SS."""
        return self in (Condition.CC_TRUE, Condition.SS_DONE)

    @property
    def uses_sync(self) -> bool:
        """Whether the condition reads synchronization signals."""
        return self in (Condition.SS_DONE, Condition.ALL_SS_DONE,
                        Condition.ANY_SS_DONE)


@dataclass(frozen=True)
class DataOp:
    """One data-path operation: ``opcode srca, srcb, dest``.

    The operand roles follow the paper's table in section 2.2:
    ``srca`` (a), ``srcb`` (b), and ``dest`` (d).  Compare operations
    take no destination (they set the executing FU's condition code);
    ``store`` uses ``srca`` as the value and ``srcb`` as the address.
    """

    opcode: Opcode
    srca: Optional[Operand] = None
    srcb: Optional[Operand] = None
    dest: Optional[Reg] = None

    def __post_init__(self):
        kind = self.opcode.kind
        if kind is OpKind.NOP:
            if self.srca is not None or self.srcb is not None or self.dest is not None:
                raise OperandError("nop takes no operands")
            return
        require_source(self.srca, f"{self.opcode} srca")
        require_source(self.srcb, f"{self.opcode} srcb")
        if self.opcode.writes_register:
            require_register(self.dest, f"{self.opcode} dest")
        elif self.dest is not None:
            raise OperandError(f"{self.opcode} does not write a destination")

    @property
    def is_nop(self) -> bool:
        return self.opcode.kind is OpKind.NOP

    def sources(self) -> Tuple[Operand, ...]:
        """The source operands actually present, in (srca, srcb) order."""
        if self.is_nop:
            return ()
        return (self.srca, self.srcb)

    def source_registers(self) -> Tuple[Reg, ...]:
        """Register sources only (constants filtered out)."""
        return tuple(s for s in self.sources() if isinstance(s, Reg))

    def __str__(self):
        if self.is_nop:
            return "nop"
        parts = [str(self.srca), str(self.srcb)]
        if self.dest is not None:
            parts.append(str(self.dest))
        return f"{self.opcode} " + ",".join(parts)


#: The canonical data-path no-op.
DATA_NOP = DataOp(NOP)


@dataclass(frozen=True)
class ControlOp:
    """One control-path operation: condition + two branch targets.

    ``index`` selects which FU's CC or SS a ``CC_TRUE`` / ``SS_DONE``
    condition examines; ``mask`` optionally restricts the ALL/ANY sync
    conditions to a subset of FUs (the paper, section 3.3, notes the
    barrier mechanism *"can be generalized to include synchronizations
    between only some of the program threads"*).  ``mask=None`` means
    all FUs.
    """

    condition: Condition
    target1: int
    target2: Optional[int] = None
    index: Optional[int] = None
    mask: Optional[Tuple[int, ...]] = None

    def __post_init__(self):
        if self.condition.needs_index:
            if self.index is None:
                raise OperandError(f"{self.condition} requires an FU index")
        elif self.index is not None:
            raise OperandError(f"{self.condition} takes no FU index")
        if self.condition.is_unconditional:
            if self.target2 is not None:
                raise OperandError("unconditional control ops take one target")
        else:
            if self.target2 is None:
                raise OperandError(f"{self.condition} requires two targets")
        if self.mask is not None:
            if self.condition not in (Condition.ALL_SS_DONE, Condition.ANY_SS_DONE):
                raise OperandError("mask only applies to ALL/ANY sync conditions")
            object.__setattr__(self, "mask", tuple(sorted(set(self.mask))))

    @property
    def is_unconditional(self) -> bool:
        return self.condition.is_unconditional

    @property
    def taken_target(self) -> int:
        """The target used when the condition holds (or always, if
        unconditional)."""
        if self.condition is Condition.ALWAYS_T2:
            return self.target2 if self.target2 is not None else self.target1
        return self.target1

    def possible_targets(self) -> Tuple[int, ...]:
        """All addresses control may transfer to (deduplicated)."""
        if self.is_unconditional:
            return (self.target1,)
        if self.target1 == self.target2:
            return (self.target1,)
        return (self.target1, self.target2)

    def branch_key(self):
        """A hashable identity of the *behavior* of this control op.

        Two parcels with equal branch keys always transfer control to the
        same next address in the same cycle (conditions are globally
        visible state, so equal specs evaluate equally).  Used by the
        SSET trackers.
        """
        return (self.condition, self.index, self.mask, self.target1, self.target2)

    def __str__(self):
        if self.condition is Condition.ALWAYS_T1:
            return f"-> {self.target1:02x}:"
        if self.condition is Condition.ALWAYS_T2:
            return f"=> {self.target1:02x}:"
        if self.condition is Condition.CC_TRUE:
            cond = f"cc{self.index}"
        elif self.condition is Condition.SS_DONE:
            cond = f"ss{self.index}"
        elif self.condition is Condition.ALL_SS_DONE:
            cond = "alldn" if self.mask is None else "alldn" + _mask_str(self.mask)
        else:
            cond = "anydn" if self.mask is None else "anydn" + _mask_str(self.mask)
        return f"if {cond} {self.target1:02x}: | {self.target2:02x}:"


def _mask_str(mask: Tuple[int, ...]) -> str:
    return "{" + ",".join(str(i) for i in mask) + "}"


def goto(target: int) -> ControlOp:
    """Convenience constructor for an unconditional branch."""
    return ControlOp(Condition.ALWAYS_T1, target)


@dataclass(frozen=True)
class Parcel:
    """One instruction parcel: everything controlling one FU for one cycle."""

    data: DataOp = DATA_NOP
    control: Optional[ControlOp] = None
    sync: SyncValue = SyncValue.BUSY

    def with_control(self, control: ControlOp) -> "Parcel":
        """Return a copy with the control fields replaced."""
        return Parcel(self.data, control, self.sync)

    def __str__(self):
        ctl = str(self.control) if self.control is not None else "(halt)"
        return f"[{ctl} ; {self.data} ; {self.sync}]"


#: A parcel that performs nothing and names no successor (machine halt
#: marker for unoccupied instruction-memory slots).
EMPTY_PARCEL = Parcel()


@dataclass(frozen=True)
class WideInstruction:
    """One full XIMD instruction: a tuple of parcels, one per FU.

    This mirrors the paper's note that *"eight instruction parcels
    comprise one instruction, whether or not they were issued from the
    same physical address"* — a wide instruction is simply what the
    machine executes in one cycle, and this type is mainly used by the
    assembler (rows of the listing format, Figure 9) and the VLIW
    simulator (which always issues all parcels from one address).
    """

    parcels: Tuple[Parcel, ...]

    def __post_init__(self):
        object.__setattr__(self, "parcels", tuple(self.parcels))

    @property
    def width(self) -> int:
        return len(self.parcels)

    def __getitem__(self, fu: int) -> Parcel:
        return self.parcels[fu]

    def __iter__(self):
        return iter(self.parcels)

    def __str__(self):
        return " | ".join(str(p) for p in self.parcels)
