"""The XIMD-1 data-operation set.

Figure 7 of the paper gives example instructions (``iadd``, ``isub``,
``imult``, ``idiv``, ``load``, ``store``) and states that *"the common
integer and floating point arithmetic, logical, and compare instructions
are available"*; the complete set was documented in the (internal) xsim
reference manual [Wolfe89].  This module defines a faithful,
self-contained reconstruction of that set:

* integer arithmetic (two's-complement, 32-bit wrapping),
* floating-point arithmetic,
* logical / shift operations (operating on the raw 32-bit pattern),
* integer and floating compare operations, which set the executing
  functional unit's condition-code register ``CC_i`` instead of writing a
  destination register,
* memory operations ``load`` / ``store``,
* type conversions, and
* ``nop``.

Every opcode carries an executable semantics function so both the XIMD
and VLIW simulators and the compiler's constant folder share a single
source of truth.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from .errors import UnknownOpcodeError
from .registers import wrap_int, to_unsigned


class OpKind(enum.Enum):
    """Structural classification of a data operation."""

    #: Three-operand register/constant computation writing ``dest``.
    ARITH = "arith"
    #: Two-operand comparison writing the FU's condition code.
    COMPARE = "compare"
    #: ``load a, b, d``: ``M(a + b) -> d``.
    LOAD = "load"
    #: ``store a, b``: ``a -> M(b)``.
    STORE = "store"
    #: No operation.
    NOP = "nop"


def _int2(fn):
    """Wrap a binary integer function with 32-bit coercion and wrapping."""

    def apply(a, b):
        return wrap_int(fn(int(a), int(b)))

    return apply


def _flt2(fn):
    """Wrap a binary float function with float coercion."""

    def apply(a, b):
        return float(fn(float(a), float(b)))

    return apply


def _idiv(a, b):
    """C-style truncating division; division by zero yields zero.

    The paper's idealized model leaves the exceptional case unspecified
    (exception handling is explicitly out of scope, section 2.3);
    returning zero keeps the simulator total and deterministic.
    """
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _imod(a, b):
    if b == 0:
        return 0
    return a - _idiv(a, b) * b


def _fdiv(a, b):
    if b == 0.0:
        return math.copysign(math.inf, a) if a else math.nan
    return a / b


def _shl(a, b):
    return to_unsigned(a) << (b & 31)


def _shr(a, b):
    """Logical right shift on the 32-bit pattern (used by BITCOUNT1)."""
    return to_unsigned(a) >> (b & 31)


def _sar(a, b):
    """Arithmetic right shift preserving the sign bit."""
    return a >> (b & 31)


@dataclass(frozen=True)
class Opcode:
    """Descriptor for one data operation.

    Attributes:
        mnemonic: assembly spelling, e.g. ``"iadd"``.
        kind: structural class (:class:`OpKind`).
        semantics: for ARITH, ``f(a, b) -> value``; for COMPARE,
            ``f(a, b) -> bool``; ``None`` for memory ops and ``nop``
            (their behavior lives in the machine's memory system).
        commutative: whether ``f(a, b) == f(b, a)``; exploited by the
            compiler's common-subexpression and scheduling passes.
        is_float: whether operands are interpreted as 32-bit floats.
        description: a one-line, human-readable contract.
    """

    mnemonic: str
    kind: OpKind
    semantics: Optional[Callable] = field(default=None, compare=False)
    commutative: bool = False
    is_float: bool = False
    description: str = ""

    @property
    def sets_condition_code(self) -> bool:
        """True for compare operations, which write ``CC_i``."""
        return self.kind is OpKind.COMPARE

    @property
    def writes_register(self) -> bool:
        """True when the operation writes a destination register."""
        return self.kind in (OpKind.ARITH, OpKind.LOAD)

    @property
    def num_sources(self) -> int:
        """Number of source operands the assembler must supply."""
        if self.kind is OpKind.NOP:
            return 0
        return 2

    def __str__(self):
        return self.mnemonic


def _table() -> Dict[str, Opcode]:
    ops = [
        # --- integer arithmetic (Figure 7) -------------------------------
        Opcode("iadd", OpKind.ARITH, _int2(lambda a, b: a + b), True,
               description="a + b -> d"),
        Opcode("isub", OpKind.ARITH, _int2(lambda a, b: a - b),
               description="a - b -> d"),
        Opcode("imult", OpKind.ARITH, _int2(lambda a, b: a * b), True,
               description="a * b -> d"),
        Opcode("idiv", OpKind.ARITH, _int2(_idiv),
               description="a / b -> d (truncating)"),
        Opcode("imod", OpKind.ARITH, _int2(_imod),
               description="a mod b -> d (C remainder)"),
        Opcode("imin", OpKind.ARITH, _int2(min), True,
               description="min(a, b) -> d"),
        Opcode("imax", OpKind.ARITH, _int2(max), True,
               description="max(a, b) -> d"),
        # --- floating-point arithmetic ------------------------------------
        Opcode("fadd", OpKind.ARITH, _flt2(lambda a, b: a + b), True,
               is_float=True, description="a + b -> d (float)"),
        Opcode("fsub", OpKind.ARITH, _flt2(lambda a, b: a - b),
               is_float=True, description="a - b -> d (float)"),
        Opcode("fmult", OpKind.ARITH, _flt2(lambda a, b: a * b), True,
               is_float=True, description="a * b -> d (float)"),
        Opcode("fdiv", OpKind.ARITH, _flt2(_fdiv),
               is_float=True, description="a / b -> d (float)"),
        # --- logical / shift ----------------------------------------------
        Opcode("and", OpKind.ARITH, _int2(lambda a, b: to_unsigned(a) & to_unsigned(b)),
               True, description="a & b -> d"),
        Opcode("or", OpKind.ARITH, _int2(lambda a, b: to_unsigned(a) | to_unsigned(b)),
               True, description="a | b -> d"),
        Opcode("xor", OpKind.ARITH, _int2(lambda a, b: to_unsigned(a) ^ to_unsigned(b)),
               True, description="a ^ b -> d"),
        Opcode("andn", OpKind.ARITH, _int2(lambda a, b: to_unsigned(a) & ~to_unsigned(b)),
               description="a & ~b -> d"),
        Opcode("shl", OpKind.ARITH, _int2(_shl),
               description="a << (b & 31) -> d"),
        Opcode("shr", OpKind.ARITH, _int2(_shr),
               description="a >> (b & 31) -> d (logical)"),
        Opcode("sar", OpKind.ARITH, _int2(_sar),
               description="a >> (b & 31) -> d (arithmetic)"),
        # --- conversions ---------------------------------------------------
        Opcode("itof", OpKind.ARITH, lambda a, b: float(int(a)),
               description="float(a) -> d (b ignored)"),
        Opcode("ftoi", OpKind.ARITH, lambda a, b: wrap_int(int(float(a))),
               description="int(a) -> d, truncating (b ignored)"),
        # --- integer compares (set CC_i) -----------------------------------
        Opcode("eq", OpKind.COMPARE, lambda a, b: int(a) == int(b), True,
               description="CC_i <- (a == b)"),
        Opcode("ne", OpKind.COMPARE, lambda a, b: int(a) != int(b), True,
               description="CC_i <- (a != b)"),
        Opcode("lt", OpKind.COMPARE, lambda a, b: int(a) < int(b),
               description="CC_i <- (a < b)"),
        Opcode("le", OpKind.COMPARE, lambda a, b: int(a) <= int(b),
               description="CC_i <- (a <= b)"),
        Opcode("gt", OpKind.COMPARE, lambda a, b: int(a) > int(b),
               description="CC_i <- (a > b)"),
        Opcode("ge", OpKind.COMPARE, lambda a, b: int(a) >= int(b),
               description="CC_i <- (a >= b)"),
        # --- floating compares ----------------------------------------------
        Opcode("feq", OpKind.COMPARE, lambda a, b: float(a) == float(b), True,
               is_float=True, description="CC_i <- (a == b) (float)"),
        Opcode("fne", OpKind.COMPARE, lambda a, b: float(a) != float(b), True,
               is_float=True, description="CC_i <- (a != b) (float)"),
        Opcode("flt", OpKind.COMPARE, lambda a, b: float(a) < float(b),
               is_float=True, description="CC_i <- (a < b) (float)"),
        Opcode("fle", OpKind.COMPARE, lambda a, b: float(a) <= float(b),
               is_float=True, description="CC_i <- (a <= b) (float)"),
        Opcode("fgt", OpKind.COMPARE, lambda a, b: float(a) > float(b),
               is_float=True, description="CC_i <- (a > b) (float)"),
        Opcode("fge", OpKind.COMPARE, lambda a, b: float(a) >= float(b),
               is_float=True, description="CC_i <- (a >= b) (float)"),
        # --- memory (Figure 7) ----------------------------------------------
        Opcode("load", OpKind.LOAD, description="M(a + b) -> d"),
        Opcode("store", OpKind.STORE, description="a -> M(b)"),
        # --- nop -------------------------------------------------------------
        Opcode("nop", OpKind.NOP, description="no operation"),
    ]
    return {op.mnemonic: op for op in ops}


#: Mnemonic -> :class:`Opcode` for every defined data operation.
OPCODES: Dict[str, Opcode] = _table()

#: Stable, documentation-friendly ordering of all mnemonics.
ALL_MNEMONICS: Tuple[str, ...] = tuple(OPCODES)

#: The distinguished no-operation opcode.
NOP = OPCODES["nop"]


def lookup(mnemonic: str) -> Opcode:
    """Return the :class:`Opcode` for *mnemonic*.

    Raises :class:`~repro.isa.errors.UnknownOpcodeError` if undefined.
    """
    try:
        return OPCODES[mnemonic]
    except KeyError:
        raise UnknownOpcodeError(mnemonic) from None


def opcodes_of_kind(kind: OpKind) -> Tuple[Opcode, ...]:
    """All opcodes of a given structural kind, in table order."""
    return tuple(op for op in OPCODES.values() if op.kind is kind)


def instruction_set_table() -> str:
    """Render the instruction set as a fixed-width text table.

    This regenerates (a superset of) the paper's Figure 7.
    """
    rows = [f"{'Opcode':<8} {'Kind':<8} Function"]
    rows.append("-" * 48)
    for op in OPCODES.values():
        rows.append(f"{op.mnemonic:<8} {op.kind.value:<8} {op.description}")
    return "\n".join(rows)
