"""Operand types for XIMD-1 data operations.

Paper section 2.2: *"Each data operation consists of an opcode and three
operands. ... The three operands may be registers or constants."*

Two operand kinds exist:

* :class:`Reg` — a global register file index (``srca``/``srcb``/``dest``).
* :class:`Const` — an immediate constant (only legal as a source).

Both are immutable value types so they can be shared freely between
parcels, used as dict keys, and compared structurally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .errors import OperandError
from .registers import NUM_REGISTERS


@dataclass(frozen=True)
class Reg:
    """A reference to one of the 256 global registers."""

    index: int

    def __post_init__(self):
        if not isinstance(self.index, int) or isinstance(self.index, bool):
            raise OperandError(f"register index must be an int: {self.index!r}")
        if not 0 <= self.index < NUM_REGISTERS:
            raise OperandError(f"register index out of range: {self.index}")

    def __str__(self):
        return f"r{self.index}"


@dataclass(frozen=True)
class Const:
    """An immediate constant operand (written ``#value`` in assembly)."""

    value: Union[int, float]

    def __post_init__(self):
        if isinstance(self.value, bool) or not isinstance(self.value, (int, float)):
            raise OperandError(f"constant must be int or float: {self.value!r}")

    def __str__(self):
        return f"#{self.value}"


#: Any legal source operand.
Operand = Union[Reg, Const]


def is_register(operand) -> bool:
    """Return True if *operand* is a register reference."""
    return isinstance(operand, Reg)


def is_constant(operand) -> bool:
    """Return True if *operand* is an immediate constant."""
    return isinstance(operand, Const)


def require_register(operand, role: str) -> Reg:
    """Validate that *operand* is a :class:`Reg`, for destination slots."""
    if not isinstance(operand, Reg):
        raise OperandError(f"{role} must be a register, got {operand!r}")
    return operand


def require_source(operand, role: str) -> Operand:
    """Validate that *operand* is a legal source (register or constant)."""
    if not isinstance(operand, (Reg, Const)):
        raise OperandError(f"{role} must be a register or constant, got {operand!r}")
    return operand
