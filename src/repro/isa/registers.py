"""Register-file name space for the XIMD-1 research model.

The XIMD-1 model (paper section 2.2) has a single global register file of
256 registers shared by all functional units.  Registers are referred to
as ``r0`` ... ``r255``.  The assembler additionally supports symbolic
names bound to physical registers with a ``.reg`` directive; that mapping
lives in :mod:`repro.asm`, not here.

32-bit data types
-----------------
XIMD-1 supports two data types, 32-bit integer and 32-bit float.  The
behavioral simulator stores Python ``int`` and ``float`` objects in
registers; integer results are wrapped to signed 32-bit two's-complement
range by the helpers below so that arithmetic matches the hardware.
"""

from __future__ import annotations

#: Number of registers in the XIMD-1 global register file.
NUM_REGISTERS = 256

#: 32-bit two's-complement extrema, used as the paper's ``minint`` /
#: ``maxint`` assembler constants (Example 2).
INT_BITS = 32
MININT = -(1 << (INT_BITS - 1))
MAXINT = (1 << (INT_BITS - 1)) - 1

_UMASK = (1 << INT_BITS) - 1


def wrap_int(value: int) -> int:
    """Wrap *value* into signed 32-bit two's-complement range.

    >>> wrap_int(MAXINT + 1) == MININT
    True
    >>> wrap_int(-1)
    -1
    """
    value &= _UMASK
    if value > MAXINT:
        value -= 1 << INT_BITS
    return value


def to_unsigned(value: int) -> int:
    """Return the unsigned 32-bit representation of *value*.

    Used by logical shifts and bit operations (e.g. BITCOUNT1's ``shr``),
    which operate on the raw bit pattern.
    """
    return value & _UMASK


def register_name(index: int) -> str:
    """Return the canonical name of register *index* (``r0``..``r255``)."""
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register index out of range: {index}")
    return f"r{index}"


def parse_register_name(name: str) -> int:
    """Parse a canonical register name back into an index.

    Raises :class:`ValueError` for anything that is not ``r<0..255>``.
    """
    if not name.startswith("r"):
        raise ValueError(f"not a register name: {name!r}")
    try:
        index = int(name[1:], 10)
    except ValueError:
        raise ValueError(f"not a register name: {name!r}") from None
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register index out of range: {name!r}")
    return index
