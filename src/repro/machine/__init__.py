"""The XIMD-1 machine: simulators, memory system, and SSET analysis.

Public surface:

* :class:`XimdMachine` / :func:`run_ximd` — the paper's ``xsim``.
* :class:`VliwMachine` / :func:`run_vliw` — the paper's ``vsim``.
* :func:`research_config` / :func:`prototype_config` — section 2.2 and
  section 4.3 machine parameterizations.
* the SSET trackers and partition utilities of section 2.4.
"""

from .condition import ConditionCodes, evaluate_condition, sync_done_vector
from .config import (
    MachineConfig,
    MemoryStyle,
    PROTOTYPE_BANK_WORDS,
    SequencerStyle,
    prototype_config,
    research_config,
)
from .codegen import (
    MAX_SPECIALIZED_SLOTS,
    resolve_engine,
    specialized_eligible,
    specialized_path_blockers,
    specialized_source,
)
from .datapath import DatapathStats
from .engine import (
    DecodedProgram,
    decode_vliw_program,
    decode_ximd_program,
    fast_path_blockers,
    fast_path_eligible,
)
from .devices import (
    Device,
    DeviceMap,
    InputPort,
    OutputPort,
    random_input_port,
)
from .errors import (
    MachineError,
    MemoryConflictError,
    MemoryError_,
    PortOverflowError,
    ProgramError,
    RegisterConflictError,
    RunAbort,
    SimulationLimitError,
)
from .memory import DistributedMemory, SharedMemory
from .partition import (
    AdaptiveSSETTracker,
    ExactSSETTracker,
    HeuristicSSETTracker,
    Partition,
    WorldExplosionError,
    format_partition,
    is_valid_partition,
    normalize_partition,
    parse_partition,
    refines,
)
from .program import Program
from .register_file import RegisterFile
from .sequencer import Sequencer
from .trace import AddressTrace, TraceRecord
from .vliw import VliwMachine, run_vliw
from .ximd import ExecutionResult, TrackerKind, XimdMachine, run_ximd

__all__ = [
    "AdaptiveSSETTracker",
    "AddressTrace",
    "ConditionCodes",
    "DatapathStats",
    "DecodedProgram",
    "Device",
    "DeviceMap",
    "DistributedMemory",
    "ExactSSETTracker",
    "ExecutionResult",
    "HeuristicSSETTracker",
    "InputPort",
    "MAX_SPECIALIZED_SLOTS",
    "MachineConfig",
    "MachineError",
    "MemoryConflictError",
    "MemoryError_",
    "MemoryStyle",
    "OutputPort",
    "PROTOTYPE_BANK_WORDS",
    "Partition",
    "PortOverflowError",
    "Program",
    "ProgramError",
    "RegisterConflictError",
    "RegisterFile",
    "RunAbort",
    "Sequencer",
    "SequencerStyle",
    "SharedMemory",
    "SimulationLimitError",
    "TraceRecord",
    "TrackerKind",
    "VliwMachine",
    "WorldExplosionError",
    "XimdMachine",
    "decode_vliw_program",
    "decode_ximd_program",
    "evaluate_condition",
    "fast_path_blockers",
    "fast_path_eligible",
    "format_partition",
    "is_valid_partition",
    "normalize_partition",
    "parse_partition",
    "prototype_config",
    "random_input_port",
    "refines",
    "research_config",
    "resolve_engine",
    "run_vliw",
    "run_ximd",
    "specialized_eligible",
    "specialized_path_blockers",
    "specialized_source",
    "sync_done_vector",
]
