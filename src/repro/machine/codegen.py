"""The specializing code generator: per-program compiled step loops.

The fast engine (:mod:`.engine`) removed the reference interpreter's
fetch/decode tax but still pays *generic dispatch* on every cycle of
every FU: slot-kind branching, operand-shape tests (``regv[i] if reg
else const``), observer-tier checks, and tuple indexing into the
decoded slot.  The paper's prototype wins by moving exactly this class
of work out of the per-cycle control path and into decode time; SLAP
(PAPERS.md) shows the same lesson for software pipelines.

This module finishes the move: it takes the pre-decoded program (the
per-:class:`~.program.Program` decode-cache entry) plus the machine
and observer configuration and **emits Python source for a flat step
loop specialized to exactly that program**, then ``compile()``\\ s it
once and caches the resulting runner on the program object:

* every FU gets straight-line fetch/execute/control code — no per-FU
  loop, no slot tuples, no ``cur`` scratch list;
* constant operands are folded to literals at generation time, and the
  35 opcode semantics are inlined as expressions (``wrap_int(a + b)``)
  instead of nested closure calls;
* per-FU control flow dispatches on the PC through an ``if/elif``
  chain (small columns) or a binary decision tree (large ones), with
  branch targets baked in as literals;
* dead slot kinds and unused FU columns generate no code at all;
* the telemetry tier is folded in at generation time: tier-0 counter
  increments are emitted inline as plain local-int bumps, tier-1
  sampling is emitted as a single modulo guard per cycle, and tier-2
  (unsampled tracing) is not generated at all — it stays a blocker.

Correctness contract — identical to the fast engine's: a specialized
run produces **bit-identical** architectural state, statistics (dict
insertion order included), telemetry counters, sync/wait-matrix and
barrier-skew folds, device state, and exception type/message/ordering.
The generated loops preserve the reference phase order (all data ops,
then all control ops, then commit) so even error cycles unwind with
the same partially-accounted state, and they delegate the entire
post-run fold to the same :func:`~.engine._finish_ximd` /
:func:`~.engine._finish_vliw` helpers the hand-written fast loops use,
making the fold identical across engines by construction.

Cache key: runners live in the per-program codegen cache
(:func:`~.engine.refresh_program_caches`, invalidated whenever the
program's columns are mutated) keyed on every knob the generated
source bakes in — engine kind, FU count, sequencer style, sync/halt
semantics, conflict detection, write latency, memory shape, device
presence, and the telemetry tier.  Everything else (register values,
memory contents, device tables, conflict-detection *of memory*, the
watchdog limit) is read from the live machine at call time, so one
compiled runner serves mid-run resumes and fresh-machine-per-rep
benchmarking alike.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

from ..isa.opcodes import (
    OPCODES,
    _fdiv,
    _idiv,
    _imod,
    _sar,
    _shl,
    _shr,
)
from ..isa.registers import to_unsigned, wrap_int
from ..obs.events import BranchEvent, CycleEvent, SyncEdgeEvent, SyncEvent
from ..obs.sinks import RingBufferSink
from .engine import (
    _B_KIND_NAMES,
    _C_ALL,
    _C_ALWAYS,
    _C_ANY,
    _C_CC,
    _C_RAISE,
    _C_SS,
    _D_ARITH,
    _D_COMPARE,
    _D_LOAD,
    _D_NOP,
    _D_STORE,
    _decoded_for,
    _device_table,
    _drain_epilogue,
    _finish_ximd,
    _finish_vliw,
    decode_ximd_program,
    decode_vliw_program,
    fast_path_blockers,
    refresh_program_caches,
    run_ximd_fast,
    run_vliw_fast,
)
from .errors import (
    MachineError,
    MemoryConflictError,
    MemoryError_,
    RegisterConflictError,
    SimulationLimitError,
)
from .memory import SharedMemory
from .telemetry import CLASS_CHARS, CLS_HALTED, CLS_SYNC

#: Occupied-slot ceiling above which specialization is refused.  The
#: generated source grows linearly with the program (roughly 20 lines
#: per occupied slot) and ``compile()`` time with it; beyond this the
#: one-time cost stops amortizing and the fast engine is the right
#: tier.  Far above every paper workload and the E14 long-runners.
MAX_SPECIALIZED_SLOTS = 1024

#: linear ``if/elif`` dispatch up to this many live cases; binary
#: decision tree beyond (leaves are exhaustive over the occupied
#: addresses, so they execute without a final equality check)
_LINEAR_MAX = 4

# Inline expression templates for the canonical opcode semantics
# (:mod:`repro.isa.opcodes`).  ``{ia}``/``{ib}`` are the int-coerced
# operands, ``{fa}``/``{fb}`` the float-coerced ones; each template is
# the corresponding semantics closure unfolded by hand.  A parcel
# whose opcode is not in the table (or whose semantics callable is not
# the canonical one) falls back to calling the bound callable, so the
# generator never changes behavior — it only removes call overhead.
_ARITH_TEMPLATES: Dict[str, str] = {
    "iadd": "wrap_int({ia} + {ib})",
    "isub": "wrap_int({ia} - {ib})",
    "imult": "wrap_int({ia} * {ib})",
    "idiv": "wrap_int(_idiv({ia}, {ib}))",
    "imod": "wrap_int(_imod({ia}, {ib}))",
    "imin": "wrap_int(min({ia}, {ib}))",
    "imax": "wrap_int(max({ia}, {ib}))",
    "fadd": "float({fa} + {fb})",
    "fsub": "float({fa} - {fb})",
    "fmult": "float({fa} * {fb})",
    "fdiv": "float(_fdiv({fa}, {fb}))",
    "and": "wrap_int(to_unsigned({ia}) & to_unsigned({ib}))",
    "or": "wrap_int(to_unsigned({ia}) | to_unsigned({ib}))",
    "xor": "wrap_int(to_unsigned({ia}) ^ to_unsigned({ib}))",
    "andn": "wrap_int(to_unsigned({ia}) & ~to_unsigned({ib}))",
    "shl": "wrap_int(_shl({ia}, {ib}))",
    "shr": "wrap_int(_shr({ia}, {ib}))",
    "sar": "wrap_int(_sar({ia}, {ib}))",
    "itof": "float({ia})",
    "ftoi": "wrap_int(int({fa}))",
}

_COMPARE_TEMPLATES: Dict[str, str] = {
    "eq": "({ia} == {ib})",
    "ne": "({ia} != {ib})",
    "lt": "({ia} < {ib})",
    "le": "({ia} <= {ib})",
    "gt": "({ia} > {ib})",
    "ge": "({ia} >= {ib})",
    "feq": "({fa} == {fb})",
    "fne": "({fa} != {fb})",
    "flt": "({fa} < {fb})",
    "fle": "({fa} <= {fb})",
    "fgt": "({fa} > {fb})",
    "fge": "({fa} >= {fb})",
}

#: names every generated module-namespace starts with
_SEED = {
    "wrap_int": wrap_int,
    "to_unsigned": to_unsigned,
    "_idiv": _idiv,
    "_imod": _imod,
    "_fdiv": _fdiv,
    "_shl": _shl,
    "_shr": _shr,
    "_sar": _sar,
    "MachineError": MachineError,
    "MemoryError_": MemoryError_,
    "MemoryConflictError": MemoryConflictError,
    "RegisterConflictError": RegisterConflictError,
    "SimulationLimitError": SimulationLimitError,
    "BranchEvent": BranchEvent,
    "CycleEvent": CycleEvent,
    "SyncEdgeEvent": SyncEdgeEvent,
    "SyncEvent": SyncEvent,
    "CLASS_CHARS": CLASS_CHARS,
    "_device_table": _device_table,
    "_finish_ximd": _finish_ximd,
    "_finish_vliw": _finish_vliw,
    "_drain_epilogue": _drain_epilogue,
}


# --- eligibility -----------------------------------------------------------

def occupied_slot_count(program) -> int:
    """Number of non-empty parcels in *program* (generated-code size)."""
    return sum(1 for column in program.columns
               for parcel in column if parcel is not None)


def specialized_path_blockers(machine) -> List[str]:
    """Why *machine* cannot run a generated loop (empty = eligible).

    A superset of :func:`~.engine.fast_path_blockers`: everything the
    fast engine refuses, the specialized engine refuses too, plus the
    features whose cost model only makes sense interpreted — unsampled
    event tracing (the telemetry tier is folded at generation time, and
    tier-2 emits every cycle, so nothing would be left to specialize),
    SSET trackers (deferred replay buffers per-cycle vectors; a
    generated loop would re-grow the interpretive bookkeeping), and
    programs too large for one-time compilation to amortize.  Sorted,
    with each entry naming the knob that clears it.
    """
    blockers = fast_path_blockers(machine)
    obs = machine.obs
    tracker = getattr(machine, "tracker", None)
    if tracker is not None:
        blockers.append(
            "SSET tracker attached: deferred tracker replay is a "
            'fast-engine feature (run engine="fast" or detach the '
            "tracker)")
    elif (obs.enabled and obs.sinks and obs.sample_every <= 1
            and all(isinstance(sink, RingBufferSink)
                    for sink in obs.sinks)):
        blockers.append(
            "unsampled event tracing: the specialized engine folds the "
            "telemetry tier at generation time (set "
            'Observer(sample_every=N) or run engine="fast" for '
            "chunk-buffered full tracing)")
    occupied = occupied_slot_count(machine.program)
    if occupied > MAX_SPECIALIZED_SLOTS:
        blockers.append(
            f"program too large to specialize: {occupied} occupied "
            f"slots exceed {MAX_SPECIALIZED_SLOTS} "
            '(run engine="fast")')
    return sorted(blockers)


def specialized_eligible(machine) -> bool:
    """True when a generated loop may run *machine*."""
    return not specialized_path_blockers(machine)


def select_runner(machine, engine: str,
                  kind: str) -> Tuple[str, Optional[Callable]]:
    """Resolve *engine* to ``(engine_used, runner)`` for ``run()``.

    ``"auto"`` prefers specialized, falls back to fast, then to the
    reference path (``runner=None``).  Explicit ``"specialized"`` /
    ``"fast"`` raise :class:`MachineError` with the sorted blocker
    list when their tier is unavailable.
    """
    engine_used, runner, _reason = resolve_engine(machine, engine, kind)
    return engine_used, runner


def resolve_engine(machine, engine: str,
                   kind: str) -> Tuple[str, Optional[Callable], Optional[str]]:
    """:func:`select_runner` hardened against tier failures.

    Returns ``(engine_used, runner, fallback_reason)``.  Under
    ``engine="auto"`` a tier that *should* work but blows up is
    degraded instead of crashing the run: an exception while
    generating or compiling the specialized loop falls back to the
    fast engine, and a pre-decode failure on the fast path falls back
    to the reference interpreter — each recorded in the returned
    *fallback_reason* (None on a healthy resolution).  Explicitly
    demanded tiers (``engine="specialized"``/``"fast"``) still raise:
    the caller asked for that tier, silently running another would lie
    about what executed.
    """
    reasons = []
    if engine in ("auto", "specialized"):
        blockers = specialized_path_blockers(machine)
        if not blockers:
            try:
                return ("specialized", specialized_runner(machine, kind),
                        None)
            except Exception as exc:  # noqa: BLE001 — degrade, never crash
                if engine == "specialized":
                    raise MachineError(
                        "specialized engine failed to build: "
                        f"{type(exc).__name__}: {exc}") from exc
                reasons.append(
                    "specialized codegen failed "
                    f"({type(exc).__name__}: {exc}); degraded to fast")
        elif engine == "specialized":
            raise MachineError(
                "specialized engine unavailable: " + "; ".join(blockers))
    if engine in ("auto", "fast"):
        blockers = fast_path_blockers(machine)
        if not blockers:
            runner = run_ximd_fast if kind == "ximd" else run_vliw_fast
            try:
                # pre-decode now so a decoder failure is caught here,
                # where it can degrade, instead of inside the run
                _decoded_for(machine, kind,
                             decode_ximd_program if kind == "ximd"
                             else decode_vliw_program)
                return "fast", runner, "; ".join(reasons) or None
            except Exception as exc:  # noqa: BLE001 — degrade, never crash
                if engine == "fast":
                    raise MachineError(
                        "fast engine failed to decode the program: "
                        f"{type(exc).__name__}: {exc}") from exc
                reasons.append(
                    "fast decode failed "
                    f"({type(exc).__name__}: {exc}); degraded to reference")
        elif engine == "fast":
            raise MachineError(
                "fast engine unavailable: " + "; ".join(blockers))
    return "reference", None, "; ".join(reasons) or None


# --- source assembly helpers -----------------------------------------------

class _Writer:
    """Indentation-tracking line collector for generated source."""

    def __init__(self, indent: int = 0):
        self.lines: List[str] = []
        self.indent = indent

    def w(self, text: str = "") -> None:
        self.lines.append("    " * self.indent + text if text else "")

    @contextmanager
    def block(self, header: str):
        self.w(header)
        self.indent += 1
        try:
            yield
        finally:
            self.indent -= 1


class _Namespace:
    """The generated module's globals: seeded helpers plus values the
    source cannot spell as literals (semantics callables, per-FU
    lookup tables, non-finite floats), bound under fresh names."""

    def __init__(self):
        self.ns = dict(_SEED)
        self._next = 0

    def bind(self, value, prefix: str = "g") -> str:
        name = f"_{prefix}{self._next}"
        self._next += 1
        self.ns[name] = value
        return name


def _emit_linear(w: _Writer, var: str, cases: Dict[int, Callable]) -> None:
    keyword = "if"
    for address in sorted(cases):
        with w.block(f"{keyword} {var} == {address}:"):
            cases[address](w)
        keyword = "elif"


def _emit_tree(w: _Writer, var: str, addresses: List[int],
               cases: Dict[int, Callable]) -> None:
    """Binary decision tree over *addresses* (which must be exhaustive
    for *var* at this point; leaves run without an equality check)."""
    if len(addresses) == 1:
        body = cases.get(addresses[0])
        if body is None:
            w.w("pass")
        else:
            body(w)
        return
    mid = len(addresses) // 2
    with w.block(f"if {var} < {addresses[mid]}:"):
        _emit_tree(w, var, addresses[:mid], cases)
    with w.block("else:"):
        _emit_tree(w, var, addresses[mid:], cases)


def _emit_dispatch(w: _Writer, var: str, cases: Dict[int, Callable],
                   all_addresses: List[int]) -> None:
    """Dispatch on *var* (an ``Optional[int]`` PC local) to per-address
    bodies.  Small case sets use equality chains (``None == int`` is
    safely false); larger ones a ``None`` guard plus a decision tree
    over *all_addresses*, the exhaustive set of values *var* can hold.
    """
    if not cases:
        return
    if len(cases) <= _LINEAR_MAX:
        _emit_linear(w, var, cases)
        return
    with w.block(f"if {var} is not None:"):
        _emit_tree(w, var, sorted(all_addresses), cases)


# --- operand / expression lowering -----------------------------------------

def _int_expr(value, is_reg: bool, ns: _Namespace) -> Tuple[str, object]:
    """(source expression, folded value or None) for ``int(operand)``."""
    if is_reg:
        return f"int(regv[{value}])", None
    try:
        folded = int(value)
    except Exception:
        # the reference path would raise at runtime; preserve that
        return f"int({ns.bind(value, 'k')})", None
    return repr(folded), folded


def _float_expr(value, is_reg: bool, ns: _Namespace) -> str:
    if is_reg:
        return f"float(regv[{value}])"
    try:
        folded = float(value)
    except Exception:
        return f"float({ns.bind(value, 'k')})"
    if not math.isfinite(folded):
        return ns.bind(folded, "k")
    return repr(folded)


def _raw_expr(value, is_reg: bool, ns: _Namespace) -> str:
    """The operand itself, uncoerced (store values, fallback calls)."""
    if is_reg:
        return f"regv[{value}]"
    if isinstance(value, float) and not math.isfinite(value):
        return ns.bind(value, "k")
    if isinstance(value, (bool, int, float, str)):
        return repr(value)
    return ns.bind(value, "k")


def _value_expr(slot: tuple, ns: _Namespace) -> str:
    """Inline expression for an ARITH/COMPARE slot's computed value.

    Falls back to calling the slot's bound semantics when the mnemonic
    has no template or carries non-canonical semantics; compares stay
    plain bools either way (the templates are comparison operators, the
    fallback is wrapped in ``bool``), matching the fast loop's staging.
    """
    mnemonic = slot[9][1]
    canonical = OPCODES.get(mnemonic)
    if canonical is not None and canonical.semantics is slot[1]:
        template = (_ARITH_TEMPLATES.get(mnemonic)
                    or _COMPARE_TEMPLATES.get(mnemonic))
        if template is not None:
            kwargs = {}
            if "{ia}" in template:
                kwargs["ia"] = _int_expr(slot[2], slot[3], ns)[0]
            if "{ib}" in template:
                kwargs["ib"] = _int_expr(slot[4], slot[5], ns)[0]
            if "{fa}" in template:
                kwargs["fa"] = _float_expr(slot[2], slot[3], ns)
            if "{fb}" in template:
                kwargs["fb"] = _float_expr(slot[4], slot[5], ns)
            return template.format(**kwargs)
    call = (f"{ns.bind(slot[1], 'm')}({_raw_expr(slot[2], slot[3], ns)}, "
            f"{_raw_expr(slot[4], slot[5], ns)})")
    return call if slot[0] == _D_ARITH else f"bool({call})"


def _load_addr_expr(slot: tuple, ns: _Namespace) -> str:
    ea, fa = _int_expr(slot[2], slot[3], ns)
    eb, fb = _int_expr(slot[4], slot[5], ns)
    if fa is not None and fb is not None:
        return repr(fa + fb)
    return f"{ea} + {eb}"


# --- shared data-op body ---------------------------------------------------

class _MemShape:
    """Memory-access code parameters shared by both generators."""

    def __init__(self, shared: bool, has_devices: bool):
        self.shared = shared
        self.has_devices = has_devices
        #: FUs whose loads need a hoisted distributed bank local
        self.bank_fus: set = set()

    def bounds_raise(self, w: _Writer) -> None:
        if self.shared:
            w.w("raise MemoryError_(")
            w.w("    f\"address {address} out of range "
                "[0, {mem_words})\")")
        else:
            w.w("raise MemoryError_(")
            w.w("    f\"address {address!r} out of bank range "
                "[0, {mem_words})\")")

    def device_scan(self, w: _Writer) -> None:
        w.w("device = None")
        with w.block("if dev_lo <= address < dev_hi:"):
            with w.block("for d_lo, d_hi, d_dev in devs:"):
                with w.block("if d_lo <= address < d_hi:"):
                    w.w("device = d_dev")
                    w.w("d_base = d_lo")
                    w.w("break")

    def load_body(self, w: _Writer, slot: tuple, fu: int,
                  ns: _Namespace) -> None:
        w.w(f"address = {_load_addr_expr(slot, ns)}")
        bank = "mem_data" if self.shared else f"b{fu}"
        if not self.shared:
            self.bank_fus.add(fu)
        fetch = f"wbuf.append(({slot[6]}, {bank}.get(address, 0), {fu}))"
        if self.has_devices:
            self.device_scan(w)
            with w.block("if device is not None:"):
                w.w(f"wbuf.append(({slot[6]}, "
                    f"device.read(address - d_base, cycle), {fu}))")
            with w.block("elif not 0 <= address < mem_words:"):
                self.bounds_raise(w)
            with w.block("else:"):
                w.w("mem_loads += 1")
                w.w(fetch)
        else:
            with w.block("if not 0 <= address < mem_words:"):
                self.bounds_raise(w)
            w.w("mem_loads += 1")
            w.w(fetch)

    def store_body(self, w: _Writer, slot: tuple, fu: int,
                   ns: _Namespace) -> None:
        value = _raw_expr(slot[2], slot[3], ns)
        w.w(f"address = {_int_expr(slot[4], slot[5], ns)[0]}")
        pend = f"mem_pending.append(({fu}, address, {value}))"
        if self.has_devices:
            self.device_scan(w)
            with w.block("if device is not None:"):
                w.w(f"device.write(address - d_base, {value}, cycle)")
            with w.block("elif not 0 <= address < mem_words:"):
                self.bounds_raise(w)
            with w.block("else:"):
                w.w("mem_stores += 1")
                w.w(pend)
        else:
            with w.block("if not 0 <= address < mem_words:"):
                self.bounds_raise(w)
            w.w("mem_stores += 1")
            w.w(pend)


def _data_body(w: _Writer, slot: tuple, fu: int, ns: _Namespace,
               mem: _MemShape, count_ports: bool) -> None:
    """One non-nop data slot's execute-phase code (either machine)."""
    if count_ports:
        if slot[10]:
            w.w(f"creads += {slot[10]}")
        if slot[11]:
            w.w("cwrites += 1")
    dkind = slot[0]
    if dkind == _D_ARITH:
        w.w(f"wbuf.append(({slot[6]}, {_value_expr(slot, ns)}, {fu}))")
    elif dkind == _D_COMPARE:
        w.w(f"e{fu} = {_value_expr(slot, ns)}")
    elif dkind == _D_LOAD:
        mem.load_body(w, slot, fu, ns)
    else:  # _D_STORE
        mem.store_body(w, slot, fu, ns)


def _commit_registers(w: _Writer, detect_reg: bool,
                      single_writer: bool) -> None:
    with w.block("if due:"):
        if single_writer:
            # at most one FU ever stages a register write per cycle
            w.w("regv[due[0][0]] = due[0][1]")
        else:
            with w.block("if len(due) == 1:"):
                w.w("regv[due[0][0]] = due[0][1]")
            with w.block("else:"):
                w.w("seen_regs.clear()")
                with w.block("for register, value, fu in due:"):
                    w.w("prev_fu = seen_regs.get(register)")
                    with w.block(
                            "if prev_fu is not None and prev_fu != fu:"):
                        if detect_reg:
                            w.w("raise RegisterConflictError(")
                            w.w("    f\"cycle {cycle}: FUs {prev_fu} and "
                                "{fu} both write r{register} "
                                "(undefined)\")")
                        else:
                            w.w("reg_conflicts += 1")
                    w.w("seen_regs[register] = fu")
                    w.w("regv[register] = value")
        w.w("due.clear()")


def _commit_memory(w: _Writer, shared: bool, single_storer: bool) -> None:
    with w.block("if mem_pending:"):
        if not shared:
            with w.block("for fu, address, value in mem_pending:"):
                w.w("banks[fu][address] = value")
        elif single_storer:
            w.w("mem_data[mem_pending[0][1]] = mem_pending[0][2]")
        else:
            with w.block("if len(mem_pending) == 1:"):
                w.w("mem_data[mem_pending[0][1]] = mem_pending[0][2]")
            with w.block("else:"):
                w.w("seen_addrs.clear()")
                with w.block("for fu, address, value in mem_pending:"):
                    w.w("prev_fu = seen_addrs.get(address)")
                    with w.block("if prev_fu is not None:"):
                        with w.block("if detect_mem:"):
                            w.w("raise MemoryConflictError(")
                            w.w("    f\"cycle {cycle}: FUs {prev_fu} and "
                                "{fu} both store to address {address} "
                                "(undefined, section 2.3)\")")
                        w.w("mem_conflicts += 1")
                        with w.block("if fu < prev_fu:"):
                            w.w("continue  # highest-numbered FU wins")
                    w.w("seen_addrs[address] = fu")
                    w.w("mem_data[address] = value")
        w.w("mem_pending.clear()")


def _cc_text_line(w: _Writer) -> None:
    w.w('cc_text = "".join(')
    w.w('    ("T" if value else "F") if defined else "X"')
    w.w("    for value, defined in zip(ccv, ccdef))")


# --- the XIMD generator ----------------------------------------------------

class _XimdGen:
    """Generate the specialized XIMD step loop for one decoded program
    under one (config, memory shape, telemetry tier) fingerprint."""

    def __init__(self, decoded, config, shared: bool, has_devices: bool,
                 write_latency: int, obs_on: bool, emit_every: int):
        self.cols = decoded.columns
        self.length = decoded.length
        self.n = config.n_fus
        self.halted_done = config.halted_sync_done
        self.registered = config.ss_registered
        self.detect_reg = config.detect_register_conflicts
        self.shared = shared
        self.wl = write_latency
        self.obs = obs_on
        self.emit = emit_every if obs_on else 0  # 0 or >= 2
        self.ns = _Namespace()
        self.mem = _MemShape(shared, has_devices)
        # per-FU structure discovered while walking the columns
        self.occupied = [
            [address for address, slot in enumerate(column)
             if slot is not None]
            for column in self.cols]
        self.compare_fus: List[int] = []
        self.halt_fus: List[int] = []
        self.barrier_fus: List[int] = []
        self.writer_fus: List[int] = []
        self.storer_fus: List[int] = []
        self.data_fus: List[int] = []
        self.kc_pairs: List[Tuple[int, int]] = []  # (fu, cls) counters
        self.w_pairs: List[Tuple[int, int]] = []   # (waiter, blocker)
        for fu, column in enumerate(self.cols):
            for address in self.occupied[fu]:
                slot = column[address]
                dkind = slot[0]
                if dkind and fu not in self.data_fus:
                    self.data_fus.append(fu)
                if dkind == _D_COMPARE and fu not in self.compare_fus:
                    self.compare_fus.append(fu)
                if (dkind in (_D_ARITH, _D_LOAD)
                        and fu not in self.writer_fus):
                    self.writer_fus.append(fu)
                if dkind == _D_STORE and fu not in self.storer_fus:
                    self.storer_fus.append(fu)
                ctl = slot[8]
                if ctl is None:
                    if fu not in self.halt_fus:
                        self.halt_fus.append(fu)
                    self._note_kc(fu, slot[12])
                    continue
                ckind = ctl[0]
                if ckind == _C_RAISE:
                    continue
                self._note_kc(fu, slot[12])
                if ckind != _C_ALWAYS:
                    self._note_kc(fu, slot[13])
                if ckind == _C_ALL and fu not in self.barrier_fus:
                    self.barrier_fus.append(fu)
                if slot[13] == CLS_SYNC:
                    if ckind == _C_SS:
                        self._note_wm(fu, ctl[3])
                    elif ckind in (_C_ALL, _C_ANY):
                        for member in ctl[3]:
                            self._note_wm(fu, member)

    def _note_kc(self, fu: int, cls: int) -> None:
        if self.obs and (fu, cls) not in self.kc_pairs:
            self.kc_pairs.append((fu, cls))

    def _note_wm(self, waiter: int, blocker: int) -> None:
        if self.obs and (waiter, blocker) not in self.w_pairs:
            self.w_pairs.append((waiter, blocker))

    def _visible(self, fu: int) -> str:
        return f"q{fu}" if self.registered else f"s{fu}"

    # -- source sections ---------------------------------------------------

    def generate(self) -> Tuple[str, dict]:
        body = _Writer(indent=3)
        self._loop_body(body)
        pre = _Writer(indent=1)
        self._preamble(pre)
        fin = _Writer(indent=2)
        self._finish(fin)
        lines = ["def _runner(machine, limit):"]
        lines += pre.lines
        lines.append("    try:")
        lines.append("        while active:")
        lines += body.lines
        lines.append("    finally:")
        lines += fin.lines
        lines.append(f"    _drain_epilogue(regfile, {self.detect_reg!r}, "
                     f"cycle, {self.obs!r})")
        return "\n".join(lines) + "\n", self.ns.ns

    def _preamble(self, w: _Writer) -> None:
        n = self.n
        w.w("regfile = machine.regfile")
        w.w("regv = regfile._values")
        w.w("inflight = [list(stage) for stage in regfile._inflight]")
        w.w("ccv = machine.cc._values")
        w.w("ccdef = machine.cc._defined")
        w.w("memory = machine.memory")
        w.w("mem_words = memory.words")
        if self.shared:
            w.w("mem_data = memory._data")
            if self.storer_fus and len(self.storer_fus) > 1:
                w.w("detect_mem = memory.detect_conflicts")
        else:
            w.w("banks = memory._banks")
            for fu in sorted(self.mem.bank_fus):
                w.w(f"b{fu} = banks[{fu}]")
        if self.mem.has_devices:
            w.w("devs, dev_lo, dev_hi = _device_table(memory)")
        w.w("_pcs = machine.pcs")
        for fu in range(n):
            w.w(f"p{fu} = _pcs[{fu}]")
        w.w("active = " + " + ".join(
            f"(p{fu} is not None)" for fu in range(n)))
        w.w("cycle = machine.cycle")
        w.w("cycles_done = 0")
        w.w("_pss = machine._prev_ss")
        for fu in range(n):
            w.w(f"q{fu} = _pss[{fu}]")
        w.w(" = ".join(f"s{fu}" for fu in range(n))
            + f" = {self.halted_done!r}")
        for fu in self.compare_fus:
            w.w(f"e{fu} = None")
        for fu in self.halt_fus:
            w.w(f"h{fu} = False")
        for fu in range(n):
            w.w(f"v{fu} = [0] * {self.length}")
        w.w("fs = []")
        w.w("fsa = fs.append")
        if len(self.writer_fus) > 1:
            w.w("seen_regs = {}")
        if self.shared and len(self.storer_fus) > 1:
            w.w("seen_addrs = {}")
        if self.storer_fus:
            w.w("mem_pending = []")
        w.w("reg_conflicts = 0")
        w.w("mem_loads = mem_stores = mem_conflicts = 0")
        w.w("peak_r = regfile.peak_reads")
        w.w("peak_w = regfile.peak_writes")
        w.w("btaken = nbarriers = nresolved = 0")
        w.w("rcounts = {}")
        w.w("wcounts = {}")
        if self.wl == 1:
            w.w("wbuf = inflight[0]")
        if self.obs:
            if self.barrier_fus:
                w.w("bwait = machine._barrier_wait")
                w.w("bprof = machine.counters.barrier_profiles")
            for fu, cls in self.kc_pairs:
                w.w(f"kc{fu}_{cls} = 0")
            for fu, blocker in self.w_pairs:
                w.w(f"w{fu}_{blocker} = 0")
        if self.emit:
            w.w("emit_fn = machine.obs.emit")
            for fu in self.barrier_fus:
                w.w(f"bq{fu} = bn{fu} = False")
        # per-FU lookup tables: sync value (None = unoccupied), and for
        # tier-1 cycles the data-op flag and mnemonic at each address
        for fu, column in enumerate(self.cols):
            if not self.occupied[fu]:
                continue
            sync_table = tuple(None if s is None else s[7] for s in column)
            self.ns.ns[f"_y{fu}"] = sync_table
            if self.emit and fu in self.data_fus:
                self.ns.ns[f"_d{fu}"] = tuple(
                    0 if s is None else (1 if s[0] else 0) for s in column)
                self.ns.ns[f"_o{fu}"] = tuple(
                    s[9][1] if s is not None and s[0] else None
                    for s in column)
        self.ns.ns["_cols"] = self.cols

    def _loop_body(self, w: _Writer) -> None:
        with w.block("if cycle >= limit:"):
            w.w("raise SimulationLimitError(")
            w.w('    f"program did not halt within {limit} cycles")')
        # --- fetch (FU order fixes first_seen order) -------------------
        for fu in range(self.n):
            with w.block(f"if p{fu} is not None:"):
                if not self.occupied[fu]:
                    w.w(f"p{fu} = None")
                    w.w(f"s{fu} = {self.halted_done!r}")
                    w.w("active -= 1")
                    continue
                w.w(f"a = _y{fu}[p{fu}] "
                    f"if 0 <= p{fu} < {self.length} else None")
                with w.block("if a is None:"):
                    w.w(f"p{fu} = None")
                    w.w(f"s{fu} = {self.halted_done!r}")
                    w.w("active -= 1")
                with w.block("else:"):
                    w.w(f"s{fu} = a")
                    w.w(f"c = v{fu}[p{fu}]")
                    w.w(f"v{fu}[p{fu}] = c + 1")
                    with w.block("if not c:"):
                        w.w(f"fsa(({fu}, p{fu}))")
        with w.block("if not active:"):
            w.w("break  # every FU halted at fetch: cycle never happened")
        # --- execute: all data ops before any control op ---------------
        if self.wl > 1:
            w.w(f"wbuf = inflight[{self.wl - 1}]")
        w.w("creads = cwrites = 0")
        for fu in range(self.n):
            cases = {}
            for address in self.occupied[fu]:
                slot = self.cols[fu][address]
                if slot[0]:
                    cases[address] = self._data_case(fu, slot)
            _emit_dispatch(w, f"p{fu}", cases, self.occupied[fu])
        if self.emit:
            self._emit_capture(w)
        # --- control: branches resolved after every data op ------------
        for fu in range(self.n):
            cases = {
                address: self._ctl_case(fu, self.cols[fu][address])
                for address in self.occupied[fu]}
            _emit_dispatch(w, f"p{fu}", cases, self.occupied[fu])
        if self.emit:
            self._emit_tail(w)
        self._commit(w)

    def _data_case(self, fu: int, slot: tuple) -> Callable:
        def body(w: _Writer) -> None:
            _data_body(w, slot, fu, self.ns, self.mem, count_ports=True)
        return body

    def _emit_capture(self, w: _Writer) -> None:
        w.w(f"emit = not cycle % {self.emit}")
        with w.block("if emit:"):
            w.w("ps = (" + ", ".join(
                f"p{fu}" for fu in range(self.n)) + ("," if self.n == 1
                                                    else "") + ")")
            _cc_text_line(w)
            parts = []
            for fu in range(self.n):
                if self.occupied[fu]:
                    parts.append(f'("-" if p{fu} is None else '
                                 f'("D" if s{fu} else "B"))')
                else:
                    parts.append('"-"')
            w.w("ss_text = " + " + ".join(parts))
            w.w(f"clsn = [{CLS_HALTED}] * {self.n}")
            ops_terms = [f"(_d{fu}[p{fu}] if p{fu} is not None else 0)"
                         for fu in range(self.n) if fu in self.data_fus]
            w.w("cyc_ops = " + (" + ".join(ops_terms) if ops_terms
                                else "0"))
            tup = []
            for fu in range(self.n):
                if fu in self.data_fus:
                    tup.append(f"_o{fu}[p{fu}] "
                               f"if p{fu} is not None else None")
                else:
                    tup.append("None")
            w.w("ops_t = (" + ", ".join(tup)
                + ("," if self.n == 1 else "") + ")")

    # -- control-phase arms ------------------------------------------------

    def _branch_event(self, fu: int, address: int, slot: tuple,
                      taken: str, target) -> str:
        kind = _B_KIND_NAMES[slot[9][5]]
        return (f'emit_fn(BranchEvent(machine="ximd", cycle=cycle, '
                f"fu={fu}, pc={address}, branch_kind={kind!r}, "
                f"taken={taken}, target={target!r}))")

    def _sync_edge(self, fu: int, address: int, blocker: int,
                   cond: str) -> str:
        return (f'emit_fn(SyncEdgeEvent(machine="ximd", cycle=cycle, '
                f"waiter={fu}, blocker={blocker}, pc={address}, "
                f"cond={cond!r}))")

    def _ctl_case(self, fu: int, slot: tuple) -> Callable:
        # bind loop variables now; emitted later at dispatch indent
        def body(w: _Writer) -> None:
            self._ctl_body(w, fu, slot)
        return body

    def _ctl_body(self, w: _Writer, fu: int, slot: tuple) -> None:
        ctl = slot[8]
        address = None
        # recover the slot's address (dispatch key) from its column —
        # cheaper to pass explicitly, so find it once here
        column = self.cols[fu]
        for pc in self.occupied[fu]:
            if column[pc] is slot:
                address = pc
                break
        cls_t, cls_u = slot[12], slot[13]
        if ctl is None:
            w.w(f"p{fu} = None")
            w.w("active -= 1")
            w.w(f"h{fu} = True")
            if self.obs:
                w.w(f"kc{fu}_{cls_t} += 1")
                if self.emit:
                    with w.block("if emit:"):
                        w.w(f"clsn[{fu}] = {cls_t}")
            return
        ckind, t_taken, t_untaken, aux, message = ctl
        if ckind == _C_RAISE:
            w.w(f"raise MachineError({message!r})")
            return
        if ckind == _C_ALWAYS:
            if self.obs:
                w.w("nresolved += 1")
                if aux:
                    w.w("btaken += 1")
                w.w(f"kc{fu}_{cls_t} += 1")
                if self.emit:
                    with w.block("if emit:"):
                        w.w(f"clsn[{fu}] = {cls_t}")
                        w.w(self._branch_event(fu, address, slot,
                                               repr(bool(aux)), t_taken))
            w.w(f"p{fu} = {t_taken!r}")
            return
        if ckind == _C_CC:
            test = f"ccv[{aux}]"
        elif ckind == _C_SS:
            test = self._visible(aux)
        elif ckind == _C_ALL:
            test = (" and ".join(self._visible(m) for m in aux)
                    if aux else "True")
        else:  # _C_ANY
            test = (" or ".join(self._visible(m) for m in aux)
                    if aux else "False")
        if not self.obs:
            if t_taken == t_untaken:
                w.w(f"p{fu} = {t_taken!r}")
            else:
                w.w(f"p{fu} = {t_taken!r} if {test} else {t_untaken!r}")
            return
        w.w("nresolved += 1")
        with w.block(f"if {test}:"):
            w.w("btaken += 1")
            w.w(f"kc{fu}_{cls_t} += 1")
            if ckind == _C_ALL:
                self._barrier_release(w, fu, address)
            if self.emit:
                with w.block("if emit:"):
                    if ckind == _C_ALL:
                        w.w(f"bn{fu} = True")
                    w.w(f"clsn[{fu}] = {cls_t}")
                    w.w(self._branch_event(fu, address, slot, "True",
                                           t_taken))
            w.w(f"p{fu} = {t_taken!r}")
        with w.block("else:"):
            w.w(f"kc{fu}_{cls_u} += 1")
            if ckind == _C_ALL:
                self._barrier_hold(w, fu, address)
            if self.emit:
                with w.block("if emit:"):
                    if ckind == _C_ALL:
                        w.w(f"bq{fu} = True")
                    w.w(f"clsn[{fu}] = {cls_u}")
                    w.w(self._branch_event(fu, address, slot, "False",
                                           t_untaken))
            if cls_u == CLS_SYNC:
                if ckind == _C_SS:
                    w.w(f"w{fu}_{aux} += 1")
                    if self.emit:
                        with w.block("if emit:"):
                            w.w(self._sync_edge(fu, address, aux, "ss"))
                elif ckind == _C_ALL:
                    for member in aux:
                        with w.block(
                                f"if not {self._visible(member)}:"):
                            w.w(f"w{fu}_{member} += 1")
                            if self.emit:
                                with w.block("if emit:"):
                                    w.w(self._sync_edge(
                                        fu, address, member, "all"))
                else:  # _C_ANY charges every member
                    for member in aux:
                        w.w(f"w{fu}_{member} += 1")
                        if self.emit:
                            with w.block("if emit:"):
                                w.w(self._sync_edge(
                                    fu, address, member, "any"))
            w.w(f"p{fu} = {t_untaken!r}")

    def _barrier_release(self, w: _Writer, fu: int, address: int) -> None:
        w.w(f"state = bwait[{fu}]")
        with w.block(
                f"if state is not None and state[0] != {address}:"):
            w.w("state = None")
        w.w("nbarriers += 1")
        w.w("skew = cycle - state[1] if state is not None else 0")
        w.w(f"entry = bprof.get(({address}, {fu}))")
        with w.block("if entry is None:"):
            w.w(f"bprof[({address}, {fu})] = [1, skew, skew]")
        with w.block("else:"):
            w.w("entry[0] += 1")
            w.w("entry[1] += skew")
            with w.block("if skew > entry[2]:"):
                w.w("entry[2] = skew")
        w.w(f"bwait[{fu}] = None")

    def _barrier_hold(self, w: _Writer, fu: int, address: int) -> None:
        w.w(f"state = bwait[{fu}]")
        with w.block(
                f"if state is not None and state[0] != {address}:"):
            w.w("state = None")
        w.w(f"bwait[{fu}] = state if state is not None "
            f"else ({address}, cycle)")

    def _emit_tail(self, w: _Writer) -> None:
        with w.block("if emit:"):
            w.w('emit_fn(CycleEvent(machine="ximd", cycle=cycle, '
                "pcs=ps, cc=cc_text, ss=ss_text, partition=None, "
                "data_ops=cyc_ops, "
                'fu_class="".join(CLASS_CHARS[c] for c in clsn), '
                "ops=ops_t))")
            for fu in range(self.n):
                if self.occupied[fu]:
                    with w.block(
                            f"if ps[{fu}] is not None and s{fu}:"):
                        w.w(f'emit_fn(SyncEvent(machine="ximd", '
                            f"cycle=cycle, fu={fu}, pc=ps[{fu}], "
                            'what="done"))')
                if fu in self.barrier_fus:
                    with w.block(f"if bq{fu}:"):
                        w.w(f'emit_fn(SyncEvent(machine="ximd", '
                            f"cycle=cycle, fu={fu}, pc=ps[{fu}], "
                            'what="barrier_wait"))')
                        w.w(f"bq{fu} = False")
                    with w.block(f"if bn{fu}:"):
                        w.w(f'emit_fn(SyncEvent(machine="ximd", '
                            f"cycle=cycle, fu={fu}, pc=ps[{fu}], "
                            'what="barrier"))')
                        w.w(f"bn{fu} = False")

    def _commit(self, w: _Writer) -> None:
        for fu in range(self.n):
            w.w(f"q{fu} = s{fu}")
        if self.writer_fus:
            w.w("due = wbuf" if self.wl == 1 else "due = inflight[0]")
            _commit_registers(w, self.detect_reg,
                              len(self.writer_fus) <= 1)
        if self.wl > 1:
            w.w("inflight.append(inflight.pop(0))")
        for fu in self.compare_fus:
            with w.block(f"if e{fu} is not None:"):
                w.w(f"ccv[{fu}] = e{fu}")
                w.w(f"ccdef[{fu}] = True")
                w.w(f"e{fu} = None")
        if self.storer_fus:
            _commit_memory(w, self.shared, len(self.storer_fus) <= 1)
        for fu in self.halt_fus:
            with w.block(f"if h{fu}:"):
                w.w(f"s{fu} = {self.halted_done!r}")
                w.w(f"h{fu} = False")
        with w.block("if creads > peak_r:"):
            w.w("peak_r = creads")
        with w.block("if cwrites > peak_w:"):
            w.w("peak_w = cwrites")
        if self.obs:
            w.w("rcounts[creads] = rcounts.get(creads, 0) + 1")
            w.w("wcounts[cwrites] = wcounts.get(cwrites, 0) + 1")
        w.w("cycle += 1")
        w.w("cycles_done += 1")

    def _finish(self, w: _Writer) -> None:
        if self.obs and self.kc_pairs:
            w.w("ccounts = machine.counters.class_counts")
            for fu, cls in self.kc_pairs:
                w.w(f"ccounts[{fu * 5 + cls}] += kc{fu}_{cls}")
        if self.obs and self.w_pairs:
            w.w("wmat = machine.counters.wait_matrix")
            for fu, blocker in self.w_pairs:
                w.w(f"wmat[{fu * self.n + blocker}] += w{fu}_{blocker}")
        visits = "[" + ", ".join(f"v{fu}" for fu in range(self.n)) + "]"
        pcs = "[" + ", ".join(f"p{fu}" for fu in range(self.n)) + "]"
        prev = "[" + ", ".join(f"q{fu}" for fu in range(self.n)) + "]"
        w.w(f"_finish_ximd(machine, _cols, {visits}, fs, cycles_done,")
        w.w("             btaken, nbarriers, nresolved, rcounts,")
        w.w(f"             wcounts, {pcs}, cycle, {prev},")
        w.w("             0, 0, reg_conflicts, peak_r, peak_w,")
        w.w("             inflight, mem_loads, mem_stores,")
        w.w("             mem_conflicts)")


# --- the VLIW generator ----------------------------------------------------

class _VliwGen:
    """Generate the specialized VLIW step loop (single shared PC)."""

    def __init__(self, decoded, config, shared: bool, has_devices: bool,
                 write_latency: int, obs_on: bool, emit_every: int):
        self.rows = decoded.columns[0]
        self.length = decoded.length
        self.n = config.n_fus
        self.detect_reg = config.detect_register_conflicts
        self.shared = shared
        self.wl = write_latency
        self.obs = obs_on
        self.emit = emit_every if obs_on else 0
        self.ns = _Namespace()
        self.mem = _MemShape(shared, has_devices)
        self.occupied = [address for address, row in enumerate(self.rows)
                         if row is not None]
        self.compare_fus: List[int] = []
        max_writers = max_storers = 0
        for address in self.occupied:
            row = self.rows[address]
            writers = storers = 0
            for fu, slot in row[0]:
                if slot[0] == _D_COMPARE and fu not in self.compare_fus:
                    self.compare_fus.append(fu)
                if slot[0] in (_D_ARITH, _D_LOAD):
                    writers += 1
                elif slot[0] == _D_STORE:
                    storers += 1
            max_writers = max(max_writers, writers)
            max_storers = max(max_storers, storers)
        self.max_writers = max_writers
        self.max_storers = max_storers
        self.compare_fus.sort()

    def generate(self) -> Tuple[str, dict]:
        body = _Writer(indent=3)
        self._loop_body(body)
        pre = _Writer(indent=1)
        self._preamble(pre)
        fin = _Writer(indent=2)
        self._finish(fin)
        lines = ["def _runner(machine, limit):"]
        lines += pre.lines
        lines.append("    try:")
        lines.append("        while pc is not None:")
        lines += body.lines
        lines.append("    finally:")
        lines += fin.lines
        lines.append(f"    _drain_epilogue(regfile, {self.detect_reg!r}, "
                     f"cycle, {self.obs!r})")
        return "\n".join(lines) + "\n", self.ns.ns

    def _preamble(self, w: _Writer) -> None:
        w.w("regfile = machine.regfile")
        w.w("regv = regfile._values")
        w.w("inflight = [list(stage) for stage in regfile._inflight]")
        w.w("ccv = machine.cc._values")
        w.w("ccdef = machine.cc._defined")
        w.w("memory = machine.memory")
        w.w("mem_words = memory.words")
        if self.shared:
            w.w("mem_data = memory._data")
            if self.max_storers > 1:
                w.w("detect_mem = memory.detect_conflicts")
        else:
            w.w("banks = memory._banks")
            for fu in sorted(self.mem.bank_fus):
                w.w(f"b{fu} = banks[{fu}]")
        if self.mem.has_devices:
            w.w("devs, dev_lo, dev_hi = _device_table(memory)")
        w.w("pc = machine.pc")
        w.w("cycle = machine.cycle")
        w.w("cycles_done = 0")
        w.w(f"vis = [0] * {self.length}")
        w.w("fs = []")
        w.w("fsa = fs.append")
        if self.max_writers > 1:
            w.w("seen_regs = {}")
        if self.shared and self.max_storers > 1:
            w.w("seen_addrs = {}")
        if self.max_storers:
            w.w("mem_pending = []")
        w.w("reg_conflicts = 0")
        w.w("mem_loads = mem_stores = mem_conflicts = 0")
        w.w("btaken = nresolved = 0")
        for fu in self.compare_fus:
            w.w(f"e{fu} = None")
        if self.wl == 1:
            w.w("wbuf = inflight[0]")
        if self.emit:
            w.w("emit_fn = machine.obs.emit")
            self.ns.ns["_part"] = (tuple(range(self.n)),)
        self.ns.ns["_rows"] = self.rows
        if len(self.occupied) > _LINEAR_MAX:
            self.ns.ns["_ok"] = frozenset(self.occupied)

    def _loop_body(self, w: _Writer) -> None:
        with w.block("if cycle >= limit:"):
            w.w("raise SimulationLimitError(")
            w.w('    f"program did not halt within {limit} cycles")')
        cases = {address: self._row_case(address)
                 for address in self.occupied}
        if not cases:
            w.w("pc = None")
            w.w("break")
            return
        if len(cases) <= _LINEAR_MAX:
            keyword = "if"
            for address in sorted(cases):
                with w.block(f"{keyword} pc == {address}:"):
                    cases[address](w)
                keyword = "elif"
            with w.block("else:"):
                w.w("pc = None")
                w.w("break  # empty row: halt, cycle never happened")
        else:
            with w.block("if pc in _ok:"):
                _emit_tree(w, "pc", sorted(cases), cases)
            with w.block("else:"):
                w.w("pc = None")
                w.w("break  # empty row: halt, cycle never happened")
        self._commit(w)

    def _row_case(self, address: int) -> Callable:
        def body(w: _Writer) -> None:
            self._row_body(w, address)
        return body

    def _row_body(self, w: _Writer, address: int) -> None:
        row = self.rows[address]
        data_slots, ctl, _folds, meta = row
        w.w(f"c = vis[{address}]")
        w.w(f"vis[{address}] = c + 1")
        with w.block("if not c:"):
            w.w(f"fsa({address})")
        if self.wl > 1 and data_slots:
            w.w(f"wbuf = inflight[{self.wl - 1}]")
        for fu, slot in data_slots:
            _data_body(w, slot, fu, self.ns, self.mem, count_ports=False)
        if self.emit:
            w.w(f"emit = not cycle % {self.emit}")
        ctl_fu, branch_kind = meta[6], meta[7]

        def branch_event(taken: str, target) -> str:
            return (f'emit_fn(BranchEvent(machine="vliw", cycle=cycle, '
                    f"fu={ctl_fu}, pc={address}, "
                    f"branch_kind={branch_kind!r}, taken={taken}, "
                    f"target={target!r}))")

        if ctl is None:
            w.w("next_pc = None")
        else:
            ckind, t_taken, t_untaken, aux, message = ctl
            if ckind == _C_RAISE:
                w.w(f"raise MachineError({message!r})")
                return
            if ckind == _C_ALWAYS:
                w.w(f"next_pc = {t_taken!r}")
                if self.obs:
                    w.w("nresolved += 1")
                    if aux:
                        w.w("btaken += 1")
                    if self.emit:
                        with w.block("if emit:"):
                            w.w(branch_event(repr(bool(aux)), t_taken))
            else:  # _C_CC
                if not self.obs:
                    if t_taken == t_untaken:
                        w.w(f"next_pc = {t_taken!r}")
                    else:
                        w.w(f"next_pc = {t_taken!r} if ccv[{aux}] "
                            f"else {t_untaken!r}")
                else:
                    w.w("nresolved += 1")
                    with w.block(f"if ccv[{aux}]:"):
                        w.w("btaken += 1")
                        if self.emit:
                            with w.block("if emit:"):
                                w.w(branch_event("True", t_taken))
                        w.w(f"next_pc = {t_taken!r}")
                    with w.block("else:"):
                        if self.emit:
                            with w.block("if emit:"):
                                w.w(branch_event("False", t_untaken))
                        w.w(f"next_pc = {t_untaken!r}")
        if self.emit:
            with w.block("if emit:"):
                _cc_text_line(w)
                pcs = (f"(pc,) * {self.n}" if self.n != 1 else "(pc,)")
                w.w(f'emit_fn(CycleEvent(machine="vliw", cycle=cycle, '
                    f"pcs={pcs}, cc=cc_text, ss={'-' * self.n!r}, "
                    f"partition=_part, data_ops={meta[5]}, "
                    f"fu_class={meta[2]!r}, ops={meta[4]!r}))")

    def _commit(self, w: _Writer) -> None:
        if self.max_writers:
            w.w("due = wbuf" if self.wl == 1 else "due = inflight[0]")
            _commit_registers(w, self.detect_reg, self.max_writers <= 1)
        if self.wl > 1:
            w.w("inflight.append(inflight.pop(0))")
        for fu in self.compare_fus:
            with w.block(f"if e{fu} is not None:"):
                w.w(f"ccv[{fu}] = e{fu}")
                w.w(f"ccdef[{fu}] = True")
                w.w(f"e{fu} = None")
        if self.max_storers:
            _commit_memory(w, self.shared, self.max_storers <= 1)
        w.w("pc = next_pc")
        w.w("cycle += 1")
        w.w("cycles_done += 1")

    def _finish(self, w: _Writer) -> None:
        w.w("_finish_vliw(machine, _rows, vis, fs, cycles_done,")
        w.w("             btaken, nresolved, pc, cycle, 0, 0,")
        w.w("             reg_conflicts, inflight, mem_loads,")
        w.w("             mem_stores, mem_conflicts)")


# --- compilation and caching -----------------------------------------------

def _generate(machine, kind: str) -> Tuple[str, dict]:
    """Generated ``(source, namespace)`` for *machine*'s program under
    its current configuration fingerprint (no cache)."""
    if kind == "ximd":
        decoded = _decoded_for(machine, "ximd", decode_ximd_program)
        gen_cls = _XimdGen
    else:
        decoded = _decoded_for(machine, "vliw", decode_vliw_program)
        gen_cls = _VliwGen
    obs = machine.obs
    obs_on = obs.enabled
    emit_every = obs.sample_every if (obs_on and obs.sinks) else 0
    memory = machine.memory
    generator = gen_cls(
        decoded, machine.config,
        shared=isinstance(memory, SharedMemory),
        has_devices=bool(_device_table(memory)[0]),
        write_latency=machine.regfile.write_latency,
        obs_on=obs_on, emit_every=emit_every)
    return generator.generate()


def specialized_source(machine, kind: str) -> str:
    """The Python source a specialized run of *machine* would execute
    (debugging/testing aid; does not touch the cache)."""
    return _generate(machine, kind)[0]


def specialized_runner(machine, kind: str) -> Callable:
    """The compiled step loop for *machine*, cached on its program.

    The cache key holds every knob the generated source bakes in; the
    cache itself is dropped whenever the program's columns are mutated
    (:func:`~.engine.refresh_program_caches`), so a stale compiled
    loop can never serve an edited program.
    """
    config = machine.config
    obs = machine.obs
    obs_on = obs.enabled
    emit_every = obs.sample_every if (obs_on and obs.sinks) else 0
    memory = machine.memory
    key = (
        kind,
        config.n_fus,
        config.sequencer,
        config.halted_sync_done,
        config.ss_registered,
        config.detect_register_conflicts,
        isinstance(memory, SharedMemory),
        bool(_device_table(memory)[0]),
        machine.regfile.write_latency,
        obs_on,
        emit_every,
    )
    _, cache = refresh_program_caches(machine.program)
    runner = cache.get(key)
    if runner is None:
        source, namespace = _generate(machine, kind)
        code = compile(source, f"<repro-specialized-{kind}>", "exec")
        exec(code, namespace)
        runner = namespace["_runner"]
        runner._source = source  # introspection for tests and debugging
        cache[key] = runner
    else:
        # the program may have been re-decoded since (cache intact);
        # keep machine._decoded in sync with what the runner executes
        _decoded_for(machine, kind,
                     decode_ximd_program if kind == "ximd"
                     else decode_vliw_program)
    return runner
