"""Condition-code state and the branch-condition evaluator.

Each functional unit owns one condition-code register ``CC_i`` (two
values, TRUE/FALSE) written only by compare operations executed on that
FU, and asserts one synchronization signal ``SS_i`` (BUSY/DONE) carried
as a field of the parcel it executes.  Both are distributed globally:
any FU's branch may examine any ``CC_j`` or ``SS_j`` or the ALL/ANY
reduction of the sync signals (section 2.2, Figure 8 — the evaluator
corresponds to the PAL in the prototype's control path).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..isa import Condition, ControlOp, SyncValue
from .errors import MachineError


class ConditionCodes:
    """The per-FU condition-code registers with end-of-cycle update.

    A compare executed in cycle *t* becomes visible at the start of
    cycle *t+1*; branches in cycle *t* read start-of-cycle values
    (validated cell-for-cell against the Figure 10 trace).
    """

    def __init__(self, n_fus: int):
        self.n_fus = n_fus
        self._values: List[bool] = [False] * n_fus
        self._defined: List[bool] = [False] * n_fus
        self._pending: List[Tuple[int, bool]] = []

    def read(self, fu: int) -> bool:
        """Start-of-cycle value of ``CC_fu``."""
        return self._values[fu]

    def is_defined(self, fu: int) -> bool:
        """Whether ``CC_fu`` has ever been written (traces print 'X'
        for never-written codes, as Figure 10 does)."""
        return self._defined[fu]

    def set(self, fu: int, value: bool) -> None:
        """Record a compare result; it commits at end of cycle."""
        self._pending.append((fu, bool(value)))

    def commit(self) -> None:
        for fu, value in self._pending:
            self._values[fu] = value
            self._defined[fu] = True
        self._pending.clear()

    def snapshot(self) -> Tuple[bool, ...]:
        return tuple(self._values)

    def format(self) -> str:
        """Figure 10 style: one character per FU, T/F/X."""
        return "".join(
            ("T" if v else "F") if d else "X"
            for v, d in zip(self._values, self._defined)
        )


def evaluate_condition(control: ControlOp,
                       cc: Sequence[bool],
                       ss_done: Sequence[bool]) -> bool:
    """Evaluate a branch condition against global CC and SS state.

    *cc* holds the start-of-cycle condition-code values; *ss_done* holds
    per-FU booleans (True = DONE) for the sync signals visible this
    cycle.  Returns True when ``target1`` should be selected.
    """
    condition = control.condition
    if condition is Condition.ALWAYS_T1:
        return True
    if condition is Condition.ALWAYS_T2:
        return False
    if condition is Condition.CC_TRUE:
        _check_index(control.index, len(cc), "CC")
        return bool(cc[control.index])
    if condition is Condition.SS_DONE:
        _check_index(control.index, len(ss_done), "SS")
        return bool(ss_done[control.index])
    members = control.mask if control.mask is not None else range(len(ss_done))
    if condition is Condition.ALL_SS_DONE:
        return all(ss_done[i] for i in members)
    if condition is Condition.ANY_SS_DONE:
        return any(ss_done[i] for i in members)
    raise MachineError(f"unhandled condition: {condition}")


def select_target(control: ControlOp, taken: bool) -> int:
    """Map a condition outcome to the next instruction address."""
    if control.condition is Condition.ALWAYS_T1:
        return control.target1
    if control.condition is Condition.ALWAYS_T2:
        # ALWAYS_T2 is modeled with its single target in target1 slot
        # when target2 is absent (assembler normalizes to ALWAYS_T1),
        # but accept both encodings.
        return control.target2 if control.target2 is not None else control.target1
    return control.target1 if taken else control.target2


def sync_done_vector(sync_values: Sequence[Optional[SyncValue]],
                     halted_done: bool) -> Tuple[bool, ...]:
    """Per-FU DONE booleans for a cycle.

    ``None`` entries mark halted FUs; they contribute *halted_done*
    (default True: a finished thread has passed every future barrier).
    """
    return tuple(
        halted_done if value is None else (value is SyncValue.DONE)
        for value in sync_values
    )


def _check_index(index: Optional[int], limit: int, what: str) -> None:
    if index is None or not 0 <= index < limit:
        raise MachineError(f"{what} index out of range: {index}")
