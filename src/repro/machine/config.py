"""Machine configuration for the XIMD-1 research model and variants.

Two named configurations are provided:

* :func:`research_config` — the XIMD-1 research model of paper
  section 2.2/2.3: 8 homogeneous FUs, single-cycle operations, idealized
  single-cycle shared memory, explicit two-target sequencers (no PC
  incrementer), combinational sync-signal distribution.
* :func:`prototype_config` — the hardware prototype of section 4.3:
  3-stage data-path pipeline (operand fetch / execute / write back, so a
  result is not readable by the next instruction), distributed memory
  (1 MB per FU), and a traditional sequencer (incrementer plus one
  explicit branch target).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class SequencerStyle(enum.Enum):
    """How each functional unit computes its next PC."""

    #: XIMD-1 research model: no incrementer; every parcel carries two
    #: explicit branch targets (Figure 8).
    EXPLICIT_TWO_TARGET = "explicit2"
    #: Hardware prototype (section 4.3): PC+1 default plus one explicit
    #: branch target.
    INCREMENT_ONE_TARGET = "incr1"


class MemoryStyle(enum.Enum):
    """Data-memory organization."""

    #: Idealized shared memory (section 2.3): every FU reads or writes
    #: every cycle, one shared address space, single-cycle completion.
    SHARED = "shared"
    #: Prototype distributed memory (section 4.3): a private bank per FU.
    DISTRIBUTED = "distributed"


@dataclass(frozen=True)
class MachineConfig:
    """Static parameters of a simulated machine.

    Attributes:
        n_fus: number of functional units (paper model: 8; the worked
            examples use 4 "for clarity").
        n_registers: global register file size (paper: 256).
        memory_words: words of data memory (per bank when distributed).
        sequencer: next-PC mechanism per FU.
        memory: shared vs. distributed data memory.
        write_latency: cycles after issue at which a register result
            becomes architecturally visible.  1 models the single-cycle
            research datapath; 2 models the prototype's 3-stage pipeline
            (one exposed delay slot).
        ss_registered: if False (research model), a sync signal carried
            by the parcel executing in cycle *t* is visible to every
            branch evaluated in cycle *t* (combinational distribution);
            if True, branches see the previous cycle's values.
        halted_sync_done: sync value contributed by a halted FU.  DONE
            (True) lets ALL-FU barriers release once running threads
            finish; matches the intuition that a finished thread "has
            reached every future barrier".
        detect_memory_conflicts: raise on two stores to one address in
            one cycle (paper: undefined) instead of letting the
            highest-numbered FU win.
        detect_register_conflicts: likewise for register writes.
        max_read_ports / max_write_ports: register-file port budget per
            cycle (paper: 16 reads + 8 writes).
        max_cycles: simulation watchdog.
        hang_detection: run the deadlock/livelock monitor (see
            :mod:`repro.machine.runtime`) at geometrically spaced cycle
            boundaries, so a hung workload aborts with a structured
            diagnosis long before ``max_cycles``.  Off, only the plain
            watchdog remains.
        hang_check_start: first cycle boundary at which the hang
            monitor looks (subsequent checks double: 4096, 8192, …),
            so runs shorter than this — every paper workload — pay
            nothing at all and the monitor costs O(log cycles) checks
            overall.  Each check digests the full machine state, so
            the floor must sit well above the short-workload cycle
            counts the throughput floors (E18) are measured on.
    """

    n_fus: int = 8
    n_registers: int = 256
    memory_words: int = 1 << 16
    sequencer: SequencerStyle = SequencerStyle.EXPLICIT_TWO_TARGET
    memory: MemoryStyle = MemoryStyle.SHARED
    write_latency: int = 1
    ss_registered: bool = False
    halted_sync_done: bool = True
    detect_memory_conflicts: bool = True
    detect_register_conflicts: bool = True
    max_read_ports: int = field(default=None)  # type: ignore[assignment]
    max_write_ports: int = field(default=None)  # type: ignore[assignment]
    max_cycles: int = 1_000_000
    hang_detection: bool = True
    hang_check_start: int = 4096

    def __post_init__(self):
        if self.n_fus < 1:
            raise ValueError("n_fus must be >= 1")
        if self.write_latency < 1:
            raise ValueError("write_latency must be >= 1")
        if self.hang_check_start < 1:
            raise ValueError("hang_check_start must be >= 1")
        if self.max_read_ports is None:
            object.__setattr__(self, "max_read_ports", 2 * self.n_fus)
        if self.max_write_ports is None:
            object.__setattr__(self, "max_write_ports", self.n_fus)

    def with_fus(self, n_fus: int) -> "MachineConfig":
        """A copy of this config with a different FU count (and the
        port budget rescaled to match)."""
        return replace(self, n_fus=n_fus,
                       max_read_ports=2 * n_fus, max_write_ports=n_fus)


def research_config(n_fus: int = 8, **overrides) -> MachineConfig:
    """The XIMD-1 research model (sections 2.2-2.3)."""
    params = dict(
        n_fus=n_fus,
        sequencer=SequencerStyle.EXPLICIT_TWO_TARGET,
        memory=MemoryStyle.SHARED,
        write_latency=1,
        ss_registered=False,
        max_read_ports=2 * n_fus,
        max_write_ports=n_fus,
    )
    params.update(overrides)
    return MachineConfig(**params)


#: Words per distributed-memory bank: 1 MB of 32-bit words (section 4.3).
PROTOTYPE_BANK_WORDS = (1 << 20) // 4


def prototype_config(n_fus: int = 8, **overrides) -> MachineConfig:
    """The hardware-prototype variant (section 4.3)."""
    params = dict(
        n_fus=n_fus,
        sequencer=SequencerStyle.INCREMENT_ONE_TARGET,
        memory=MemoryStyle.DISTRIBUTED,
        memory_words=PROTOTYPE_BANK_WORDS,
        write_latency=2,
        ss_registered=False,
        max_read_ports=2 * n_fus,
        max_write_ports=n_fus,
    )
    params.update(overrides)
    return MachineConfig(**params)
