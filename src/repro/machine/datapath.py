"""Data-path execution shared by the XIMD and VLIW simulators.

Both machines have the identical data path (the paper's XIMD model
changes only the control path — "the output functions ... and the
functional unit data paths ... are unchanged", section 2.1), so data-op
execution lives here once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..isa import Const, DataOp, OpKind, Reg
from .condition import ConditionCodes
from .errors import MachineError
from .register_file import RegisterFile


@dataclass
class DatapathStats:
    """Dynamic operation counts."""

    cycles: int = 0
    data_ops: int = 0
    nops: int = 0
    compares: int = 0
    loads: int = 0
    stores: int = 0
    branches_conditional: int = 0
    branches_unconditional: int = 0
    branches_sync: int = 0
    per_fu_ops: Dict[int, int] = field(default_factory=dict)
    per_opcode: Dict[str, int] = field(default_factory=dict)

    def count_op(self, fu: int, op: DataOp) -> None:
        if op.is_nop:
            self.nops += 1
            return
        self.data_ops += 1
        self.per_fu_ops[fu] = self.per_fu_ops.get(fu, 0) + 1
        mnemonic = op.opcode.mnemonic
        self.per_opcode[mnemonic] = self.per_opcode.get(mnemonic, 0) + 1
        kind = op.opcode.kind
        if kind is OpKind.COMPARE:
            self.compares += 1
        elif kind is OpKind.LOAD:
            self.loads += 1
        elif kind is OpKind.STORE:
            self.stores += 1

    def utilization(self, n_fus: int) -> float:
        """Fraction of FU-cycles doing useful (non-nop) data work.

        Zero-cycle runs (an empty program halts before executing
        anything) and degenerate machine widths report 0.0 rather than
        dividing by zero.
        """
        if self.cycles <= 0 or n_fus <= 0:
            return 0.0
        return self.data_ops / (self.cycles * n_fus)


def read_operand(operand, fu: int, regfile: RegisterFile):
    """Fetch one source operand's value."""
    if isinstance(operand, Const):
        return operand.value
    if isinstance(operand, Reg):
        return regfile.read(fu, operand.index)
    raise MachineError(f"bad operand: {operand!r}")


def execute_data_op(fu: int, op: DataOp, regfile: RegisterFile,
                    cc: ConditionCodes, memory, cycle: int,
                    stats: Optional[DatapathStats] = None) -> None:
    """Execute one data operation on functional unit *fu*.

    Reads observe start-of-cycle state; register and CC writes commit at
    end of cycle (the callers' ``commit`` phase).
    """
    if stats is not None:
        stats.count_op(fu, op)
    kind = op.opcode.kind
    if kind is OpKind.NOP:
        return
    a = read_operand(op.srca, fu, regfile)
    b = read_operand(op.srcb, fu, regfile)
    if kind is OpKind.ARITH:
        regfile.write(fu, op.dest.index, op.opcode.semantics(a, b))
    elif kind is OpKind.COMPARE:
        cc.set(fu, op.opcode.semantics(a, b))
    elif kind is OpKind.LOAD:
        address = int(a) + int(b)
        regfile.write(fu, op.dest.index, memory.load(fu, address, cycle))
    elif kind is OpKind.STORE:
        memory.store(fu, int(b), a, cycle)
    else:
        raise MachineError(f"unhandled op kind: {kind}")
