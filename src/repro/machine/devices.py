"""Memory-mapped device models.

The paper's Figure 12 workload reads from and writes to I/O ports whose
response timing *"is not known"* to the compiler.  Since XIMD-1's ISA has
no dedicated I/O instructions, devices are memory-mapped: a device claims
a range of addresses and services the loads and stores that hit it.

:class:`InputPort` reproduces the paper's protocol exactly: *"each
process reads some data from an I/O port until the port returns a
non-zero, valid value"* — the port returns 0 until its (scripted or
seeded) ready cycle, then returns the value.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class Device:
    """Base class for memory-mapped devices.

    Subclasses implement :meth:`read` / :meth:`write`; *offset* is the
    word offset within the device's claimed range and *cycle* is the
    machine cycle performing the access.
    """

    def read(self, offset: int, cycle: int):
        raise NotImplementedError

    def write(self, offset: int, value, cycle: int):
        raise NotImplementedError

    def reset(self):
        """Return the device to its power-on state."""


@dataclass
class InputPort(Device):
    """A polled input port that becomes ready at a scheduled cycle.

    Attributes:
        arrivals: list of (ready_cycle, value) pairs, consumed in
            ready-cycle order.  A read before the current head's ready
            cycle returns 0 ("invalid"); a read at or after it returns
            the value and advances to the next pair.  Values must be
            non-zero, per the paper's valid-value convention.  The list
            is sorted by ready cycle on construction (stable, so values
            sharing a cycle keep their listed order): an out-of-order
            list would strand an already-ready value behind a
            later-ready head and starve the poll loop.
    """

    arrivals: List[Tuple[int, int]] = field(default_factory=list)
    _next: int = 0
    reads: int = 0
    polls_failed: int = 0

    def __post_init__(self):
        for ready, value in self.arrivals:
            if value == 0:
                raise ValueError("InputPort values must be non-zero "
                                 "(0 means 'not ready')")
            if ready < 0:
                raise ValueError("ready cycle must be >= 0")
        self.arrivals = sorted(self.arrivals, key=lambda pair: pair[0])

    def read(self, offset: int, cycle: int):
        self.reads += 1
        if self._next < len(self.arrivals):
            ready, value = self.arrivals[self._next]
            if cycle >= ready:
                self._next += 1
                return value
        self.polls_failed += 1
        return 0

    def write(self, offset: int, value, cycle: int):
        raise IOError("InputPort is read-only")

    def reset(self):
        self._next = 0
        self.reads = 0
        self.polls_failed = 0

    @property
    def delivered(self) -> int:
        """How many values have been consumed so far."""
        return self._next

    @property
    def pending(self) -> int:
        """How many scheduled values have not been consumed yet."""
        return len(self.arrivals) - self._next

    def next_ready(self):
        """Ready cycle of the next undelivered value (None when dry)."""
        if self._next < len(self.arrivals):
            return self.arrivals[self._next][0]
        return None

    def drop_next(self):
        """Fault hook: discard the next undelivered value.

        Models a peripheral losing a datum in flight; the poll loop
        simply keeps polling for the value after it.  Returns the
        dropped ``(ready, value)`` pair, or ``None`` when every value
        was already consumed.
        """
        if self._next >= len(self.arrivals):
            return None
        return self.arrivals.pop(self._next)

    def delay_pending(self, delay: int) -> int:
        """Fault hook: push every undelivered arrival *delay* cycles out.

        Shifting the whole undelivered tail (rather than one entry)
        preserves the sorted-arrivals invariant the poll protocol
        relies on.  Returns the number of arrivals shifted.
        """
        if delay < 0:
            raise ValueError("delay must be >= 0")
        shifted = 0
        for index in range(self._next, len(self.arrivals)):
            ready, value = self.arrivals[index]
            self.arrivals[index] = (ready + delay, value)
            shifted += 1
        return shifted


@dataclass
class OutputPort(Device):
    """An output port recording every value written with its cycle."""

    writes: List[Tuple[int, int]] = field(default_factory=list)

    def read(self, offset: int, cycle: int):
        raise IOError("OutputPort is write-only")

    def write(self, offset: int, value, cycle: int):
        self.writes.append((cycle, value))

    def reset(self):
        self.writes.clear()

    @property
    def values(self) -> List[int]:
        return [value for _, value in self.writes]


def random_input_port(n_values: int, mean_gap: float, seed: int,
                      first_ready: int = 0) -> InputPort:
    """An :class:`InputPort` with geometrically distributed inter-arrival
    gaps — the "bounded but still non-deterministic" peripheral behavior
    of paper section 1.3, made reproducible with a seed.

    *first_ready* is the earliest ready cycle: the first value is ready
    at exactly that cycle, and each later value follows after a gap of
    at least one cycle.
    """
    if first_ready < 0:
        raise ValueError("first_ready must be >= 0")
    rng = random.Random(seed)
    arrivals = []
    cycle = first_ready
    for index in range(n_values):
        if index:
            cycle += max(1, int(rng.expovariate(1.0 /
                                                max(mean_gap, 1e-9))))
        arrivals.append((cycle, rng.randrange(1, 1 << 16)))
    return InputPort(arrivals)


class DeviceMap:
    """Routes memory accesses in claimed address ranges to devices."""

    def __init__(self):
        self._ranges: List[Tuple[int, int, Device]] = []

    def map(self, base: int, length: int, device: Device) -> None:
        """Claim ``[base, base+length)`` for *device*."""
        if length <= 0:
            raise ValueError("device range must be non-empty")
        for lo, hi, _ in self._ranges:
            if base < hi and base + length > lo:
                raise ValueError(
                    f"device range [{base}, {base + length}) overlaps "
                    f"existing range [{lo}, {hi})")
        self._ranges.append((base, base + length, device))
        self._ranges.sort()

    def lookup(self, address: int) -> Optional[Tuple[Device, int]]:
        """The (device, offset) claiming *address*, or None."""
        for lo, hi, device in self._ranges:
            if lo <= address < hi:
                return device, address - lo
        return None

    def reset(self) -> None:
        for _, _, device in self._ranges:
            device.reset()

    def __bool__(self):
        return bool(self._ranges)

    def devices(self) -> List[Device]:
        return [device for _, _, device in self._ranges]

    def ranges(self) -> List[Tuple[int, int, Device]]:
        """The claimed ``(base, end, device)`` ranges, address-sorted."""
        return list(self._ranges)
