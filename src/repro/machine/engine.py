"""The fast execution engine: pre-decoded programs, allocation-free loop.

The reference ``step()`` paths in :mod:`.ximd` / :mod:`.vliw` re-fetch
every parcel from :class:`~.program.Program`, re-dispatch operands
through ``isinstance`` checks, and build half a dozen lists, snapshot
tuples, and format strings per cycle whether or not anybody is
observing.  That is the classic interpreter fetch/dispatch tax, and on
long ``xsim``/``vsim`` runs (the paper's section 4.1 evaluation) it
dominates wall time.

This module applies the two standard simulator moves:

* **Pre-decode** (:func:`decode_ximd_program` /
  :func:`decode_vliw_program`): a :class:`Program` is lowered *once*
  into flat per-FU slot tuples — an opcode-kind int, the pre-bound
  semantics callable, operand accessors with :class:`~repro.isa.Const`
  values already resolved to Python values, the sync bit as a plain
  bool, and the control op's condition index plus both branch targets
  resolved to concrete addresses (the prototype sequencer's implicit
  ``PC+1`` included, since the slot knows its own address).

* **Allocation-free stepping** (:func:`run_ximd_fast` /
  :func:`run_vliw_fast`): the per-cycle loop reuses a fixed set of
  buffers, keeps ``halted`` as a live active-FU counter instead of an
  ``all()`` scan over PCs, and defers *all* statistics to a single
  post-run fold over per-slot visit counters (kept in first-encounter
  order so even the ``per_opcode`` dict insertion order matches the
  reference path byte for byte).

Correctness contract: a fast run produces a **bit-identical**
:class:`~.ximd.ExecutionResult` — registers, cycle count, final PCs,
and the full :class:`~.datapath.DatapathStats` — and leaves the
machine's register file, condition codes, and memory in the same state
the reference path would.  The cheap observability tiers run natively:
a counter-only observer (tier-0) fills the same
:class:`~.telemetry.RunCounters` / metrics-registry shapes the
reference path fills, bit-identically, from flat in-loop accumulators
and a post-run fold, and register-file port peaks are tracked always
(observer or not).  A sampling observer (tier-1,
``Observer(sinks, sample_every=N)``) additionally emits the full typed
events on every Nth cycle.

Memory-mapped devices run natively: the :class:`~.devices.DeviceMap`'s
sorted range table is resolved once at engine entry into a flat scan
tuple plus a covering ``[lo, hi)`` envelope, so the common non-device
access pays two int compares and no allocation, while a device-range
load/store calls the device directly in FU order — program order
within the cycle, bypassing the end-of-cycle store buffer, exactly
like the reference data path (``IOError`` type, message, and ordering
included).

SSET trackers run natively too, via a snapshot-at-sample-boundary
protocol (:class:`~.partition.DeferredTrackerFeed`): the loop records
each cycle's tracker inputs as flat vectors and reconstructs tracker
state by replay only when a partition is observed — at tier-1 sample
cycles, at a flush cap, and at run end — instead of stepping the
tracker every cycle.

The engine refuses — and the machines fall back to the reference path
— only for the genuinely expensive features: full per-cycle event
tracing (sinks at ``sample_every=1``, which with a tracker attached
would need the tracker reconstructed every cycle anyway), an address
trace, or register-file port caps tighter than the structural per-FU
maximum (2 reads + 1 write per FU, which the data path cannot exceed).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..isa import Condition, OpKind, Parcel, Reg, SyncValue
from ..obs.sinks import RingBufferSink
from ..obs.events import (
    BranchEvent,
    CycleEvent,
    PartitionChangeEvent,
    SyncEdgeEvent,
    SyncEvent,
)
from .config import MachineConfig, SequencerStyle
from .partition import DeferredTrackerFeed
from .telemetry import (
    CLASS_CHARS,
    CLS_BRANCH,
    CLS_HALTED,
    CLS_IDLE,
    CLS_SYNC,
    CLS_USEFUL,
)
from .errors import (
    MachineError,
    MemoryConflictError,
    MemoryError_,
    RegisterConflictError,
    SimulationLimitError,
)
from .memory import SharedMemory
from .program import Program

# --- decoded-slot layout ---------------------------------------------------
#
# One XIMD slot is a 14-tuple (tuples index faster than objects and
# unpack in one bytecode):
#
#   (dkind, sem, aval, areg, bval, breg, dest, sync_done, ctl, fold,
#    reads, writes, cls_taken, cls_untaken)
#
# dkind: _D_NOP / _D_ARITH / _D_COMPARE / _D_LOAD / _D_STORE
# sem:   the opcode's semantics callable (None for memory ops / nop)
# aval:  register index when areg else the resolved constant value
# dest:  destination register index (arith/load) else -1
# sync_done: True when the parcel's sync field is DONE
# ctl:   None (halt after the data op) or
#        (ckind, taken_target, untaken_target, aux, raise_message)
#        ckind: _C_ALWAYS (taken constant-folded into the targets;
#        aux = the reference evaluate_condition value, False for
#        ALWAYS_T2, kept for branch-taken telemetry), _C_CC / _C_SS
#        (aux = FU index), _C_ALL / _C_ANY (aux = member index tuple),
#        _C_RAISE (aux unused; raise_message is the reference path's
#        MachineError text, raised on *execution*, not at decode, so
#        never-executed malformed slots stay legal).
# fold:  per-slot statistics record folded post-run:
#        (is_nop, mnemonic, stat_kind, reg_reads, reg_writes, branch_kind)
# reads/writes: register ports the data op uses per execution (fold's
#        reg_reads/reg_writes hoisted to a flat index for the per-cycle
#        port-pressure accumulators)
# cls_taken/cls_untaken: tier-0 cycle-class codes (telemetry.CLS_*)
#        this slot contributes when its branch is taken / untaken; they
#        differ only for nop parcels on sync-conditioned branches
#        (branch_resolve vs sync_wait, matching the reference
#        attribution).  For ctl-None slots both hold the halt-cycle
#        class (useful or idle).

_D_NOP, _D_ARITH, _D_COMPARE, _D_LOAD, _D_STORE = range(5)
_C_ALWAYS, _C_CC, _C_SS, _C_ALL, _C_ANY, _C_RAISE = range(6)

#: events buffered per flush when unsampled tracing runs on the fast
#: path (ring-buffer sinks only; the chunk is drained into each sink's
#: deque at this stride and at run end)
_RING_CHUNK = 8192

#: fold stat_kind codes
_S_OTHER, _S_COMPARE, _S_LOAD, _S_STORE = range(4)
#: fold branch_kind codes
_B_NONE, _B_UNCOND, _B_COND, _B_SYNC = range(4)
#: fold branch_kind code -> BranchEvent.branch_kind string
_B_KIND_NAMES = (None, "uncond", "cond", "sync")

_DKIND = {
    OpKind.NOP: _D_NOP,
    OpKind.ARITH: _D_ARITH,
    OpKind.COMPARE: _D_COMPARE,
    OpKind.LOAD: _D_LOAD,
    OpKind.STORE: _D_STORE,
}

_SKIND = {
    OpKind.COMPARE: _S_COMPARE,
    OpKind.LOAD: _S_LOAD,
    OpKind.STORE: _S_STORE,
}


class DecodedProgram:
    """A :class:`Program` lowered to flat per-FU slot arrays."""

    __slots__ = ("columns", "length", "width")

    def __init__(self, columns: List[List[Optional[tuple]]]):
        self.columns = columns
        self.width = len(columns)
        self.length = len(columns[0]) if columns else 0


def program_cache_token(program: Program) -> tuple:
    """A value-identity token for *program*'s executable text.

    Parcels are frozen dataclasses, so the token compares by value: any
    column edit (replacing, adding, or clearing a parcel) yields a
    different token, while metadata-only mutations — the assembler's
    late label additions, register-name bindings — do not.  Building it
    is O(slots) per ``run()``, far below one simulated cycle's cost.
    """
    return tuple(map(tuple, program.columns))


def refresh_program_caches(program: Program) -> Tuple[dict, dict]:
    """The per-program ``(decode cache, codegen cache)`` pair, dropped
    and rebuilt whenever the program text changed since they were
    filled — a mutated :class:`Program` must never serve a stale
    pre-decoded column set or compiled step loop."""
    token = program_cache_token(program)
    decoded = getattr(program, "_decoded_cache", None)
    if decoded is None or getattr(program, "_cache_token", None) != token:
        program._cache_token = token
        decoded = program._decoded_cache = {}
        program._codegen_cache = {}
    return decoded, program._codegen_cache


def _decoded_for(machine, kind: str, decoder) -> DecodedProgram:
    """The machine's decoded program, shared across same-shape users.

    Decoding depends only on the program text plus two config knobs
    (FU count and sequencer style), and the decoded slots are immutable
    tuples, so machines sharing one :class:`Program` (the
    fresh-machine-per-rep benchmark idiom) share one decode instead of
    paying the lowering again per instance.  The cache lives on the
    program object — ``{(kind, n_fus, sequencer): DecodedProgram}`` —
    dies with it, and is invalidated (along with the compiled-loop
    cache) when the program's columns are mutated.
    """
    program = machine.program
    per_program, _ = refresh_program_caches(program)
    key = (kind, machine.config.n_fus, machine.config.sequencer)
    decoded = per_program.get(key)
    if decoded is None:
        decoded = per_program[key] = decoder(program, machine.config)
    machine._decoded = decoded
    return decoded


def _decode_operand(operand) -> Tuple[object, bool]:
    """(value-or-index, is_register) for one source operand."""
    if isinstance(operand, Reg):
        return operand.index, True
    # Const (DataOp validation guarantees Reg | Const for sources)
    return operand.value, False


def _decode_control(control, address: int, n_fus: int,
                    style: SequencerStyle) -> Optional[tuple]:
    """Lower one ControlOp to a (ckind, t_taken, t_untaken, aux, msg)
    tuple with both branch targets resolved to concrete addresses."""
    if control is None:
        return None
    condition = control.condition
    explicit = style is SequencerStyle.EXPLICIT_TWO_TARGET
    fallthrough = address + 1
    if condition is Condition.ALWAYS_T1:
        target = control.target1
        # aux records the reference evaluate_condition value (True for
        # ALWAYS_T1, False for ALWAYS_T2) so branch-taken telemetry
        # matches the reference path even though the target selection
        # is constant-folded.
        return (_C_ALWAYS, target, target, True, None)
    if condition is Condition.ALWAYS_T2:
        if explicit:
            target = (control.target2 if control.target2 is not None
                      else control.target1)
        else:
            target = fallthrough
        return (_C_ALWAYS, target, target, False, None)
    t_taken = control.target1
    t_untaken = control.target2 if explicit else fallthrough
    if condition is Condition.CC_TRUE or condition is Condition.SS_DONE:
        what = "CC" if condition is Condition.CC_TRUE else "SS"
        index = control.index
        if index is None or not 0 <= index < n_fus:
            # The reference path raises when the op *executes*; keep
            # that lazily so dead malformed slots stay legal.
            return (_C_RAISE, t_taken, t_untaken, None,
                    f"{what} index out of range: {index}")
        ckind = _C_CC if condition is Condition.CC_TRUE else _C_SS
        return (ckind, t_taken, t_untaken, index, None)
    members = (control.mask if control.mask is not None
               else tuple(range(n_fus)))
    if condition is Condition.ALL_SS_DONE:
        return (_C_ALL, t_taken, t_untaken, members, None)
    if condition is Condition.ANY_SS_DONE:
        return (_C_ANY, t_taken, t_untaken, members, None)
    return (_C_RAISE, t_taken, t_untaken, None,
            f"unhandled condition: {condition}")


def _decode_parcel(parcel: Parcel, address: int, n_fus: int,
                   style: SequencerStyle) -> tuple:
    """Lower one parcel to the flat slot tuple described above."""
    op = parcel.data
    kind = op.opcode.kind
    dkind = _DKIND[kind]
    if dkind == _D_NOP:
        sem, aval, areg, bval, breg, dest = None, 0, False, 0, False, -1
        reads = writes = 0
        fold = (True, None, _S_OTHER, 0, 0, _B_NONE)
    else:
        sem = op.opcode.semantics
        aval, areg = _decode_operand(op.srca)
        bval, breg = _decode_operand(op.srcb)
        dest = op.dest.index if op.dest is not None else -1
        reads = int(areg) + int(breg)
        writes = 1 if dkind in (_D_ARITH, _D_LOAD) else 0
        fold = (False, op.opcode.mnemonic, _SKIND.get(kind, _S_OTHER),
                reads, writes, _B_NONE)
    ctl = _decode_control(parcel.control, address, n_fus, style)
    if ctl is not None and ctl[0] != _C_RAISE:
        # A _C_RAISE slot keeps branch_kind _B_NONE: the reference path
        # raises from evaluate_condition before counting the branch.
        condition = parcel.control.condition
        if condition.is_unconditional:
            branch = _B_UNCOND
        elif condition.uses_sync:
            branch = _B_SYNC
        else:
            branch = _B_COND
        fold = fold[:5] + (branch,)
    # tier-0 cycle-class attribution, mirroring the reference rules:
    # non-nop = useful; nop with no control = idle; a nop spent purely
    # on a sync-conditioned branch is sync-wait when untaken, else
    # branch-resolve.
    if dkind != _D_NOP:
        cls_taken = cls_untaken = CLS_USEFUL
    elif ctl is None:
        cls_taken = cls_untaken = CLS_IDLE
    elif ctl[0] in (_C_SS, _C_ALL, _C_ANY):
        cls_taken, cls_untaken = CLS_BRANCH, CLS_SYNC
    else:
        cls_taken = cls_untaken = CLS_BRANCH
    return (dkind, sem, aval, areg, bval, breg, dest,
            parcel.sync is SyncValue.DONE, ctl, fold,
            reads, writes, cls_taken, cls_untaken)


def decode_ximd_program(program: Program,
                        config: MachineConfig) -> DecodedProgram:
    """Pre-decode *program* for the XIMD fast path (per-FU columns)."""
    n = config.n_fus
    style = config.sequencer
    columns: List[List[Optional[tuple]]] = []
    for fu in range(n):
        column = []
        for address, parcel in enumerate(program.columns[fu]):
            column.append(None if parcel is None
                          else _decode_parcel(parcel, address, n, style))
        columns.append(column)
    return DecodedProgram(columns)


def decode_vliw_program(program: Program,
                        config: MachineConfig) -> DecodedProgram:
    """Pre-decode *program* for the VLIW fast path (per-address rows).

    Each row is ``None`` (all parcels empty: executing it halts the
    machine) or ``(data_slots, ctl, fold_rows, meta)`` where
    *data_slots* holds the non-nop data work as ``(fu, slot)`` pairs,
    *ctl* is the machine-wide control op of the lowest-numbered FU
    carrying one (sync conditions lower to a ``_C_RAISE`` slot
    reproducing the reference path's :class:`MachineError`),
    *fold_rows* records per-FU statistics as ``(fu, fold)`` pairs for
    every occupied parcel, nops included, and *meta* is the row's
    static telemetry record
    ``(reads, writes, class_str, class_codes, ops, data_ops, ctl_fu,
    branch_kind)`` — every per-cycle observation of a VLIW row except
    the condition codes is a constant of the row, so tier-0 class/port
    accumulation folds entirely from visit counts post-run.
    """
    n = config.n_fus
    style = config.sequencer
    rows: List[Optional[tuple]] = []
    for address in range(program.length):
        parcels = [program.columns[fu][address] for fu in range(n)]
        if all(p is None for p in parcels):
            rows.append(None)
            continue
        data_slots = []
        fold_rows = []
        ctl = None
        ctl_fu = 0
        ctl_branch = _B_NONE
        row_reads = row_writes = 0
        class_codes = [CLS_HALTED] * n
        ops_row: List[Optional[str]] = [None] * n
        for fu, parcel in enumerate(parcels):
            if parcel is None:
                continue
            slot = _decode_parcel(parcel, address, n, style)
            # the machine-wide control op: lowest FU carrying one
            if ctl is None and parcel.control is not None:
                if parcel.control.condition.uses_sync:
                    # raises before the branch is counted -> _B_NONE
                    ctl = (_C_RAISE, 0, 0, None,
                           "VLIW machine has no synchronization signals "
                           f"(at address {address:#04x})")
                    branch = _B_NONE
                else:
                    ctl = slot[8]
                    branch = slot[9][5]
                ctl_fu = fu
                ctl_branch = branch
            else:
                branch = _B_NONE
            fold_rows.append((fu, slot[9][:5] + (branch,)))
            if slot[0] != _D_NOP:
                data_slots.append((fu, slot))
                class_codes[fu] = CLS_USEFUL
                ops_row[fu] = slot[9][1]
                row_reads += slot[10]
                row_writes += slot[11]
            else:
                class_codes[fu] = CLS_IDLE
        if ctl is not None and class_codes[ctl_fu] == CLS_IDLE:
            # the reference attribution upgrades the control-carrying
            # FU's idle cycle to branch-resolve
            class_codes[ctl_fu] = CLS_BRANCH
        meta = (row_reads, row_writes,
                "".join(CLASS_CHARS[code] for code in class_codes),
                tuple(class_codes), tuple(ops_row), len(data_slots),
                ctl_fu, _B_KIND_NAMES[ctl_branch])
        rows.append((tuple(data_slots), ctl, tuple(fold_rows), meta))
    return DecodedProgram([rows])


# --- eligibility -----------------------------------------------------------

def fast_path_blockers(machine) -> List[str]:
    """Why *machine* cannot take the fast path (empty list = eligible).

    The blockers are exactly the features whose semantics the fast
    engine does not model; with any of them active the machines run the
    reference ``step()`` path so observability behavior is unchanged.
    Counter-only observers (tier-0), sampling observers (tier-1,
    ``sample_every > 1``), memory-mapped devices, and SSET trackers are
    *not* blockers: the engine handles those natively (trackers via
    deferred replay, so they fall back only when full per-cycle tracing
    — ``sample_every <= 1`` with sinks — demands per-cycle tracker
    state anyway).  Unsampled tracing into in-memory ring buffers runs
    on the fast path too — events are chunk-buffered and flushed into
    every :class:`~repro.obs.sinks.RingBufferSink` at cycle-stride
    boundaries — so only sinks with per-event side effects (e.g.
    ``JsonlSink``) and tracker-attached full tracing still force the
    reference path.  The list is sorted for deterministic error
    messages, and each entry names the knob that would clear it.
    """
    blockers = []
    obs = machine.obs
    if obs.enabled and obs.sinks and obs.sample_every <= 1:
        if not all(isinstance(sink, RingBufferSink) for sink in obs.sinks):
            blockers.append(
                "full event tracing: observer has non-ring-buffer sinks "
                "at sample_every=1 (set Observer(sample_every=N) for "
                "sampled tracing, use RingBufferSinks for chunk-buffered "
                "full tracing, or drop the sinks for counter-only "
                "telemetry)")
        elif getattr(machine, "tracker", None) is not None:
            blockers.append(
                "full event tracing with an SSET tracker attached: "
                "per-cycle partition queries need per-cycle tracker "
                "state (set Observer(sample_every=N) or detach the "
                "tracker)")
    if machine.trace is not None:
        blockers.append(
            "address trace recording (construct the machine with "
            "trace=False)")
    config = machine.config
    if (config.max_read_ports is not None
            and config.max_read_ports < 2 * config.n_fus):
        blockers.append(
            "register read-port cap below structural maximum (set "
            f"max_read_ports to None or >= {2 * config.n_fus})")
    if (config.max_write_ports is not None
            and config.max_write_ports < config.n_fus):
        blockers.append(
            "register write-port cap below structural maximum (set "
            f"max_write_ports to None or >= {config.n_fus})")
    return sorted(blockers)


def fast_path_eligible(machine) -> bool:
    """True when :func:`run_ximd_fast`/:func:`run_vliw_fast` may run."""
    return not fast_path_blockers(machine)


# --- the XIMD fast loop ----------------------------------------------------

def _device_table(memory) -> Tuple[tuple, int, int]:
    """Flatten the memory's :class:`~.devices.DeviceMap` into a scan
    tuple plus the covering ``[lo, hi)`` envelope.

    The ranges come out address-sorted and non-overlapping (DeviceMap
    enforces both), so the envelope is first-lo to last-hi and the
    common non-device access is rejected by two int compares; only an
    address inside the envelope pays the short linear scan.
    """
    ranges = tuple(memory.devices.ranges())
    if not ranges:
        return (), 0, 0
    return ranges, ranges[0][0], ranges[-1][1]


def _emit_mode(obs, emit_every: int) -> Tuple[object, Optional[list], tuple]:
    """``(emit_fn, ring_chunk, ring_sinks)`` for the fast loops.

    Sampled tracing (``emit_every > 1``) pays the normal
    ``Observer.emit`` fan-out — it fires rarely.  Unsampled tracing
    (``emit_every == 1``) only reaches the fast path when every sink is
    a :class:`~repro.obs.sinks.RingBufferSink` (``fast_path_blockers``
    guarantees it), so events are chunk-buffered into a plain list —
    one bound-method append per event on the hot path — and drained
    into each sink's deque at :data:`_RING_CHUNK` boundaries and at run
    end.  ``deque.extend`` honors ``maxlen`` eviction, so the sinks end
    up byte-identical to per-event emission.
    """
    if emit_every != 1:
        return obs.emit, None, ()
    ring_chunk: list = []
    ring_sinks = tuple(sink._events for sink in obs.sinks)
    return ring_chunk.append, ring_chunk, ring_sinks


def _flush_ring_chunk(ring_chunk: Optional[list], ring_sinks: tuple) -> None:
    """Drain the buffered events into every ring sink's deque."""
    if ring_chunk:
        for events in ring_sinks:
            events.extend(ring_chunk)
        ring_chunk.clear()


def run_ximd_fast(machine, limit: int) -> None:
    """Run *machine* (an eligible :class:`~.ximd.XimdMachine`) to halt.

    Advances the machine in place — PCs, cycle counter, stats, register
    file, condition codes, memory — exactly as the reference path
    would, then drains the register-file write pipeline.  Raises
    :class:`SimulationLimitError` when *limit* is reached, and the same
    conflict/machine errors the reference path raises, with identical
    messages.
    """
    decoded = _decoded_for(machine, "ximd", decode_ximd_program)
    config = machine.config
    n = config.n_fus
    cols = decoded.columns
    length = decoded.length
    halted_done = config.halted_sync_done
    registered = config.ss_registered
    detect_reg = config.detect_register_conflicts

    regfile = machine.regfile
    regv = regfile._values
    write_latency = regfile.write_latency
    inflight = [list(stage) for stage in regfile._inflight]

    cc = machine.cc
    ccv = cc._values
    ccdef = cc._defined
    cc_pending: List[Tuple[int, bool]] = []

    memory = machine.memory
    shared = isinstance(memory, SharedMemory)
    detect_mem = shared and memory.detect_conflicts
    mem_words = memory.words
    mem_data = memory._data if shared else None
    banks = None if shared else memory._banks
    mem_pending: List[Tuple[int, int, object]] = []  # (fu, address, value)
    devs, dev_lo, dev_hi = _device_table(memory)

    # SSET tracker: inputs are buffered and replayed in batches (state
    # reconstructed only at sample cycles / flush cap / run end)
    tracker = getattr(machine, "tracker", None)
    feed = (DeferredTrackerFeed(machine.program, tracker)
            if tracker is not None else None)
    actual_t: List[int] = []
    barrier_mask = 0

    pcs: List[Optional[int]] = list(machine.pcs)
    active = sum(1 for pc in pcs if pc is not None)
    cycle = machine.cycle
    cycles_done = 0
    prev_ss: List[bool] = list(machine._prev_ss)

    # per-cycle scratch, allocated once and reused.  ss starts at the
    # halted value for every FU: active FUs overwrite their entry at
    # fetch before anything reads it, halted FUs keep it (matching
    # sync_done_vector's treatment of halted FUs).
    cur: List[Optional[tuple]] = [None] * n
    ss: List[bool] = [halted_done] * n
    halted_now: List[int] = []
    seen_regs: dict = {}
    seen_addrs: dict = {}
    # statistics: per-slot visit counters folded once at the end, in
    # first-encounter order so dict insertion orders match the
    # reference path exactly
    visits = [[0] * length for _ in range(n)]
    first_seen: List[Tuple[int, int]] = []
    reg_reads = reg_writes = reg_conflicts = 0
    mem_loads = mem_stores = mem_conflicts = 0

    # telemetry: port peaks are tracked always (they are plain machine
    # state, like stats); tier-0 class/branch/sync counters and the
    # port-pressure histograms only when the observer is enabled, and
    # full typed events only every emit_every cycles (tier-1 sampling;
    # 0 = no sinks, never emit).
    obs = machine.obs
    obs_on = obs.enabled
    emit_every = obs.sample_every if (obs_on and obs.sinks) else 0
    emit_fn, ring_chunk, ring_sinks = _emit_mode(obs, emit_every)
    ccounts = machine.counters.class_counts
    btaken = nbarriers = nresolved = 0
    peak_r = regfile.peak_reads
    peak_w = regfile.peak_writes
    rcounts: dict = {}
    wcounts: dict = {}
    barrier_now: List[bool] = [False] * n
    barrier_waiting: List[bool] = [False] * n
    # sync observability: the wait matrix and barrier-episode state are
    # shared with (and mutated in place for) the reference path, so
    # mid-run engine switches continue the same episodes
    wmat = machine.counters.wait_matrix
    bprof = machine.counters.barrier_profiles
    bwait = machine._barrier_wait

    try:
        while active:
            if cycle >= limit:
                raise SimulationLimitError(
                    f"program did not halt within {limit} cycles")

            # --- fetch: halt FUs on empty slots, latch sync signals ----
            for fu in range(n):
                pc = pcs[fu]
                if pc is None:
                    cur[fu] = None
                    continue
                slot = cols[fu][pc] if 0 <= pc < length else None
                if slot is None:
                    pcs[fu] = None
                    ss[fu] = halted_done
                    active -= 1
                    cur[fu] = None
                    continue
                cur[fu] = slot
                ss[fu] = slot[7]
                vfu = visits[fu]
                count = vfu[pc]
                vfu[pc] = count + 1
                if not count:
                    first_seen.append((fu, pc))
            if not active:
                # every FU halted at fetch: the cycle never happened
                break
            visible = prev_ss if registered else ss
            if feed is not None:
                # post-fetch PC vector (-1 = halted), the reference
                # path's tracker/partition input for this cycle
                actual_t = [pc if pc is not None else -1 for pc in pcs]

            # --- execute: all data ops run before any control op is ----
            # evaluated, matching the reference step()'s phase order
            # (data-path errors must surface before control-op errors)
            wbuf = inflight[write_latency - 1]
            creads = cwrites = 0
            for fu in range(n):
                slot = cur[fu]
                if slot is None:
                    continue
                dkind = slot[0]
                if dkind:
                    creads += slot[10]
                    cwrites += slot[11]
                    if dkind == _D_ARITH:
                        wbuf.append((
                            slot[6],
                            slot[1](regv[slot[2]] if slot[3] else slot[2],
                                    regv[slot[4]] if slot[5] else slot[4]),
                            fu))
                    elif dkind == _D_COMPARE:
                        cc_pending.append((fu, bool(
                            slot[1](regv[slot[2]] if slot[3] else slot[2],
                                    regv[slot[4]] if slot[5] else slot[4]))))
                    elif dkind == _D_LOAD:
                        address = (
                            int(regv[slot[2]] if slot[3] else slot[2])
                            + int(regv[slot[4]] if slot[5] else slot[4]))
                        # device ranges take precedence over the bounds
                        # check (they may live outside data memory) and
                        # see program order within the cycle; device
                        # hits bypass the memory counters, like the
                        # reference load()
                        device = None
                        if devs and dev_lo <= address < dev_hi:
                            for d_lo, d_hi, d_dev in devs:
                                if d_lo <= address < d_hi:
                                    device = d_dev
                                    d_base = d_lo
                                    break
                        if device is not None:
                            wbuf.append((
                                slot[6],
                                device.read(address - d_base, cycle),
                                fu))
                        elif not 0 <= address < mem_words:
                            raise MemoryError_(
                                f"address {address} out of range "
                                f"[0, {mem_words})"
                                if shared else
                                f"address {address!r} out of bank range "
                                f"[0, {mem_words})")
                        else:
                            mem_loads += 1
                            bank = mem_data if shared else banks[fu]
                            wbuf.append(
                                (slot[6], bank.get(address, 0), fu))
                    else:  # _D_STORE
                        value = regv[slot[2]] if slot[3] else slot[2]
                        address = int(
                            regv[slot[4]] if slot[5] else slot[4])
                        device = None
                        if devs and dev_lo <= address < dev_hi:
                            for d_lo, d_hi, d_dev in devs:
                                if d_lo <= address < d_hi:
                                    device = d_dev
                                    d_base = d_lo
                                    break
                        if device is not None:
                            # immediate, not end-of-cycle: devices see
                            # program order within the cycle
                            device.write(address - d_base, value, cycle)
                        elif not 0 <= address < mem_words:
                            raise MemoryError_(
                                f"address {address} out of range "
                                f"[0, {mem_words})"
                                if shared else
                                f"address {address!r} out of bank range "
                                f"[0, {mem_words})")
                        else:
                            mem_stores += 1
                            mem_pending.append((fu, address, value))

            emit = emit_every and cycle % emit_every == 0
            if emit:
                # sampled cycle: capture the start-of-cycle view the
                # reference CycleEvent carries, before branches retarget
                # the PCs.  The partition query replays the tracker up
                # to this cycle (snapshot-at-sample-boundary).
                pcs_start = tuple(pcs)
                partition = (feed.partition_now(actual_t)
                             if feed is not None else None)
                cc_text = "".join(
                    ("T" if value else "F") if defined else "X"
                    for value, defined in zip(ccv, ccdef))
                ss_text = "".join(
                    "-" if s is None else ("D" if s[7] else "B")
                    for s in cur)
                cls_now = [CLS_HALTED] * n
                cyc_ops = 0
                for s in cur:
                    if s is not None and s[0]:
                        cyc_ops += 1

            # --- control: branches resolved after every data op ---------
            for fu in range(n):
                slot = cur[fu]
                if slot is None:
                    continue
                ctl = slot[8]
                if ctl is None:
                    pcs[fu] = None
                    active -= 1
                    halted_now.append(fu)
                    if obs_on:
                        ccounts[fu * 5 + slot[12]] += 1
                        if emit:
                            cls_now[fu] = slot[12]
                    continue
                ckind = ctl[0]
                if ckind == _C_ALWAYS:
                    taken = True
                elif ckind == _C_CC:
                    taken = ccv[ctl[3]]
                elif ckind == _C_SS:
                    taken = visible[ctl[3]]
                elif ckind == _C_ALL:
                    taken = True
                    for member in ctl[3]:
                        if not visible[member]:
                            taken = False
                            break
                elif ckind == _C_ANY:
                    taken = False
                    for member in ctl[3]:
                        if visible[member]:
                            taken = True
                            break
                else:
                    raise MachineError(ctl[4])
                target = ctl[1] if taken else ctl[2]
                if feed is not None and ckind == _C_ALL and taken:
                    barrier_mask |= 1 << fu
                if obs_on:
                    nresolved += 1
                    cls = slot[12] if taken else slot[13]
                    ccounts[fu * 5 + cls] += 1
                    # _C_ALWAYS folds both targets, so report the
                    # reference evaluate_condition value from aux
                    reported = ctl[3] if ckind == _C_ALWAYS else taken
                    if reported:
                        btaken += 1
                    if ckind == _C_ALL:
                        # barrier episode tracking (XimdMachine
                        # ._track_barrier, inlined)
                        wpc = pcs[fu]
                        state = bwait[fu]
                        if state is not None and state[0] != wpc:
                            state = None
                        if taken:
                            nbarriers += 1
                            skew = (cycle - state[1]
                                    if state is not None else 0)
                            entry = bprof.get((wpc, fu))
                            if entry is None:
                                bprof[(wpc, fu)] = [1, skew, skew]
                            else:
                                entry[0] += 1
                                entry[1] += skew
                                if skew > entry[2]:
                                    entry[2] = skew
                            bwait[fu] = None
                            if emit:
                                barrier_now[fu] = True
                        else:
                            bwait[fu] = (state if state is not None
                                         else (wpc, cycle))
                            if emit:
                                barrier_waiting[fu] = True
                    if emit:
                        cls_now[fu] = cls
                        emit_fn(BranchEvent(
                            machine="ximd", cycle=cycle, fu=fu,
                            pc=pcs[fu],
                            branch_kind=_B_KIND_NAMES[slot[9][5]],
                            taken=reported, target=target))
                    if cls == CLS_SYNC:
                        # sync-edge attribution: charge each BUSY
                        # blocker (see RunCounters.wait_matrix docs)
                        base = fu * n
                        if ckind == _C_SS:
                            blocker = ctl[3]
                            wmat[base + blocker] += 1
                            if emit:
                                emit_fn(SyncEdgeEvent(
                                    machine="ximd", cycle=cycle,
                                    waiter=fu, blocker=blocker,
                                    pc=pcs[fu], cond="ss"))
                        elif ckind == _C_ALL:
                            for member in ctl[3]:
                                if not visible[member]:
                                    wmat[base + member] += 1
                                    if emit:
                                        emit_fn(SyncEdgeEvent(
                                            machine="ximd", cycle=cycle,
                                            waiter=fu, blocker=member,
                                            pc=pcs[fu], cond="all"))
                        else:
                            for member in ctl[3]:
                                wmat[base + member] += 1
                                if emit:
                                    emit_fn(SyncEdgeEvent(
                                        machine="ximd", cycle=cycle,
                                        waiter=fu, blocker=member,
                                        pc=pcs[fu], cond="any"))
                pcs[fu] = target

            if feed is not None:
                # buffer this cycle's tracker inputs; a data- or
                # control-op error skips this (the reference path never
                # reaches tracker.step on the error cycle either)
                feed.record(actual_t,
                            [pc if pc is not None else -1 for pc in pcs],
                            barrier_mask)
                barrier_mask = 0

            if emit:
                emit_fn(CycleEvent(
                    machine="ximd", cycle=cycle, pcs=pcs_start,
                    cc=cc_text, ss=ss_text, partition=partition,
                    data_ops=cyc_ops,
                    fu_class="".join(CLASS_CHARS[c] for c in cls_now),
                    ops=tuple(
                        s[9][1] if s is not None and s[0] else None
                        for s in cur)))
                for fu in range(n):
                    s = cur[fu]
                    if s is not None and s[7]:
                        emit_fn(SyncEvent(
                            machine="ximd", cycle=cycle, fu=fu,
                            pc=pcs_start[fu], what="done"))
                    if barrier_waiting[fu]:
                        emit_fn(SyncEvent(
                            machine="ximd", cycle=cycle, fu=fu,
                            pc=pcs_start[fu], what="barrier_wait"))
                        barrier_waiting[fu] = False
                    if barrier_now[fu]:
                        emit_fn(SyncEvent(
                            machine="ximd", cycle=cycle, fu=fu,
                            pc=pcs_start[fu], what="barrier"))
                        barrier_now[fu] = False
                if (partition is not None
                        and partition != machine._last_partition):
                    emit_fn(PartitionChangeEvent(
                        machine="ximd", cycle=cycle,
                        partition=partition, n_ssets=len(partition)))
                    machine._last_partition = partition
                if (ring_chunk is not None
                        and len(ring_chunk) >= _RING_CHUNK):
                    _flush_ring_chunk(ring_chunk, ring_sinks)

            # --- commit -------------------------------------------------
            prev_ss[:] = ss  # this cycle's SS vector, pre-halt updates
            due = inflight[0]
            if due:
                if len(due) == 1:
                    regv[due[0][0]] = due[0][1]
                else:
                    seen_regs.clear()
                    for register, value, fu in due:
                        prev_fu = seen_regs.get(register)
                        if prev_fu is not None and prev_fu != fu:
                            if detect_reg:
                                raise RegisterConflictError(
                                    f"cycle {cycle}: FUs {prev_fu} and "
                                    f"{fu} both write r{register} "
                                    "(undefined)")
                            reg_conflicts += 1
                        seen_regs[register] = fu
                        regv[register] = value
                due.clear()
            if write_latency > 1:
                inflight.append(inflight.pop(0))
            if cc_pending:
                for fu, value in cc_pending:
                    ccv[fu] = value
                    ccdef[fu] = True
                cc_pending.clear()
            if mem_pending:
                if shared:
                    if len(mem_pending) == 1:
                        mem_data[mem_pending[0][1]] = mem_pending[0][2]
                    else:
                        seen_addrs.clear()
                        for fu, address, value in mem_pending:
                            prev_fu = seen_addrs.get(address)
                            if prev_fu is not None:
                                if detect_mem:
                                    raise MemoryConflictError(
                                        f"cycle {cycle}: FUs {prev_fu} "
                                        f"and {fu} both store to address "
                                        f"{address} (undefined, "
                                        "section 2.3)")
                                mem_conflicts += 1
                                if fu < prev_fu:
                                    continue  # highest-numbered FU wins
                            seen_addrs[address] = fu
                            mem_data[address] = value
                else:
                    for fu, address, value in mem_pending:
                        banks[fu][address] = value
                mem_pending.clear()
            if halted_now:
                for fu in halted_now:
                    ss[fu] = halted_done
                halted_now.clear()
            if creads > peak_r:
                peak_r = creads
            if cwrites > peak_w:
                peak_w = cwrites
            if obs_on:
                rcounts[creads] = rcounts.get(creads, 0) + 1
                wcounts[cwrites] = wcounts.get(cwrites, 0) + 1
            cycle += 1
            cycles_done += 1
    finally:
        # --- fold + write back machine state, even on an error ----------
        if feed is not None:
            # reconstruct the tracker through the last executed cycle,
            # so its post-run state matches the reference path's
            feed.flush()
        _flush_ring_chunk(ring_chunk, ring_sinks)
        _finish_ximd(machine, cols, visits, first_seen, cycles_done,
                     btaken, nbarriers, nresolved, rcounts, wcounts,
                     pcs, cycle, prev_ss,
                     reg_reads, reg_writes, reg_conflicts,
                     peak_r, peak_w, inflight,
                     mem_loads, mem_stores, mem_conflicts)

    # --- drain the write pipeline (the reference run() epilogue) --------
    _drain_epilogue(regfile, detect_reg, cycle, obs_on)


def _finish_ximd(machine, cols, visits, first_seen, cycles_done,
                 btaken, nbarriers, nresolved, rcounts, wcounts,
                 pcs, cycle, prev_ss,
                 reg_reads, reg_writes, reg_conflicts,
                 peak_r, peak_w, inflight,
                 mem_loads, mem_stores, mem_conflicts) -> None:
    """Fold the XIMD run's per-slot visit counters into stats/telemetry
    and write the end state back to *machine*.

    Shared verbatim by the hand-written fast loop and every generated
    specialized loop (:mod:`.codegen`), so the post-run fold — the part
    of the differential contract with the most insertion-order traps
    (``per_opcode`` / ``per_fu_ops`` dict order follows ``first_seen``
    encounter order) — is identical across engines by construction.
    Runs inside the loops' ``finally``: it must fold the partial state
    of an error cycle exactly like the reference path's own unwinding.
    """
    obs = machine.obs
    obs_on = obs.enabled
    regfile = machine.regfile
    memory = machine.memory
    n = machine.config.n_fus
    stats = machine.stats
    stats.cycles += cycles_done
    counters = machine.counters
    ccounts = counters.class_counts
    for fu, address in first_seen:
        count = visits[fu][address]
        slot = cols[fu][address]
        is_nop, mnemonic, skind, reads, writes, branch = slot[9]
        if is_nop:
            stats.nops += count
        else:
            stats.data_ops += count
            per_fu = stats.per_fu_ops
            per_fu[fu] = per_fu.get(fu, 0) + count
            per_op = stats.per_opcode
            per_op[mnemonic] = per_op.get(mnemonic, 0) + count
            if skind == _S_COMPARE:
                stats.compares += count
            elif skind == _S_LOAD:
                stats.loads += count
            elif skind == _S_STORE:
                stats.stores += count
            reg_reads += reads * count
            reg_writes += writes * count
        if branch == _B_UNCOND:
            stats.branches_unconditional += count
        elif branch != _B_NONE:
            stats.branches_conditional += count
            if branch == _B_SYNC:
                stats.branches_sync += count
        if obs_on and slot[7]:
            # DONE assertions are a static property of the slot, so
            # the sync tally folds straight from visit counts
            counters.sync_done += count
    if obs_on:
        counters.branches_taken += btaken
        counters.barriers += nbarriers
        # the reference Sequencer counts live, per run (no re-fold)
        if nresolved:
            obs.registry.counter("sequencer.resolved").inc(nresolved)
        if btaken:
            obs.registry.counter("sequencer.taken").inc(btaken)
        for fu in range(n):
            # halted-FU cycles are the executed cycles the FU did
            # not fetch in (fetches == visits); max() guards the
            # partially-accounted error cycle
            idle = cycles_done - sum(visits[fu])
            if idle > 0:
                ccounts[fu * 5 + CLS_HALTED] += idle
        if rcounts or wcounts:
            read_hist, write_hist = regfile.port_histograms()
            if read_hist is not None:
                for value, count in rcounts.items():
                    read_hist.observe_many(value, count)
                for value, count in wcounts.items():
                    write_hist.observe_many(value, count)
    machine.pcs = pcs
    machine.cycle = cycle
    machine._prev_ss = tuple(prev_ss)
    regfile.total_reads += reg_reads
    regfile.total_writes += reg_writes
    regfile.conflicts_dropped += reg_conflicts
    regfile.peak_reads = peak_r
    regfile.peak_writes = peak_w
    regfile._inflight = inflight
    memory.loads += mem_loads
    memory.stores += mem_stores
    memory.conflicts_dropped += mem_conflicts


def _drain_epilogue(regfile, detect_reg: bool, cycle: int,
                    obs_on: bool) -> None:
    """Post-run pipeline drain, shared by fast and specialized loops."""
    _drain_inflight(regfile, detect_reg, cycle)
    if obs_on:
        # the reference drain() commits observe zero port activity
        read_hist, write_hist = regfile.port_histograms()
        if read_hist is not None:
            read_hist.observe_many(0, regfile.write_latency)
            write_hist.observe_many(0, regfile.write_latency)


def _drain_inflight(regfile, detect_reg: bool, cycle: int) -> None:
    """Retire every in-flight register write, conflict-checked with the
    reference path's messages (mirrors ``RegisterFile.drain``)."""
    regv = regfile._values
    inflight = regfile._inflight
    for _ in range(regfile.write_latency):
        due = inflight[0]
        if due:
            seen = {}
            for register, value, fu in due:
                prev_fu = seen.get(register)
                if prev_fu is not None and prev_fu != fu:
                    if detect_reg:
                        raise RegisterConflictError(
                            f"cycle {cycle}: FUs {prev_fu} and {fu} "
                            f"both write r{register} (undefined)")
                    regfile.conflicts_dropped += 1
                seen[register] = fu
                regv[register] = value
            due.clear()
        inflight.append(inflight.pop(0))


# --- the VLIW fast loop ----------------------------------------------------

def run_vliw_fast(machine, limit: int) -> None:
    """Run *machine* (an eligible :class:`~.vliw.VliwMachine`) to halt.

    Same contract as :func:`run_ximd_fast`: in-place advance,
    bit-identical results, identical error behavior.
    """
    decoded = _decoded_for(machine, "vliw", decode_vliw_program)
    config = machine.config
    n = config.n_fus
    rows = decoded.columns[0]
    length = decoded.length
    detect_reg = config.detect_register_conflicts

    regfile = machine.regfile
    regv = regfile._values
    write_latency = regfile.write_latency
    inflight = [list(stage) for stage in regfile._inflight]

    cc = machine.cc
    ccv = cc._values
    ccdef = cc._defined
    cc_pending: List[Tuple[int, bool]] = []

    memory = machine.memory
    shared = isinstance(memory, SharedMemory)
    detect_mem = shared and memory.detect_conflicts
    mem_words = memory.words
    mem_data = memory._data if shared else None
    banks = None if shared else memory._banks
    mem_pending: List[Tuple[int, int, object]] = []
    devs, dev_lo, dev_hi = _device_table(memory)

    pc: Optional[int] = machine.pc
    cycle = machine.cycle
    cycles_done = 0
    seen_regs: dict = {}
    seen_addrs: dict = {}
    visits = [0] * length
    first_seen: List[int] = []
    reg_reads = reg_writes = reg_conflicts = 0
    mem_loads = mem_stores = mem_conflicts = 0

    # telemetry: every per-cycle VLIW observation except the condition
    # codes is a static property of the row, so tier-0 class counts and
    # port pressure fold entirely from visit counts post-run; only the
    # branch-taken tally and tier-1 sampled events cost per-cycle work.
    obs = machine.obs
    obs_on = obs.enabled
    emit_every = obs.sample_every if (obs_on and obs.sinks) else 0
    emit_fn, ring_chunk, ring_sinks = _emit_mode(obs, emit_every)
    btaken = nresolved = 0
    ss_const = "-" * n
    part_const = (tuple(range(n)),)

    try:
        while pc is not None:
            if cycle >= limit:
                raise SimulationLimitError(
                    f"program did not halt within {limit} cycles")
            row = rows[pc] if 0 <= pc < length else None
            if row is None:
                pc = None
                break
            count = visits[pc]
            visits[pc] = count + 1
            if not count:
                first_seen.append(pc)
            data_slots = row[0]
            ctl = row[1]

            wbuf = inflight[write_latency - 1]
            for fu, slot in data_slots:
                dkind = slot[0]
                if dkind == _D_ARITH:
                    wbuf.append((
                        slot[6],
                        slot[1](regv[slot[2]] if slot[3] else slot[2],
                                regv[slot[4]] if slot[5] else slot[4]),
                        fu))
                elif dkind == _D_COMPARE:
                    cc_pending.append((fu, bool(
                        slot[1](regv[slot[2]] if slot[3] else slot[2],
                                regv[slot[4]] if slot[5] else slot[4]))))
                elif dkind == _D_LOAD:
                    address = (int(regv[slot[2]] if slot[3] else slot[2])
                               + int(regv[slot[4]] if slot[5] else slot[4]))
                    # device ranges take precedence over the bounds
                    # check and bypass the memory counters (see the
                    # XIMD loop)
                    device = None
                    if devs and dev_lo <= address < dev_hi:
                        for d_lo, d_hi, d_dev in devs:
                            if d_lo <= address < d_hi:
                                device = d_dev
                                d_base = d_lo
                                break
                    if device is not None:
                        wbuf.append((
                            slot[6],
                            device.read(address - d_base, cycle), fu))
                    elif not 0 <= address < mem_words:
                        raise MemoryError_(
                            f"address {address} out of range "
                            f"[0, {mem_words})"
                            if shared else
                            f"address {address!r} out of bank range "
                            f"[0, {mem_words})")
                    else:
                        mem_loads += 1
                        bank = mem_data if shared else banks[fu]
                        wbuf.append((slot[6], bank.get(address, 0), fu))
                else:  # _D_STORE
                    value = regv[slot[2]] if slot[3] else slot[2]
                    address = int(regv[slot[4]] if slot[5] else slot[4])
                    device = None
                    if devs and dev_lo <= address < dev_hi:
                        for d_lo, d_hi, d_dev in devs:
                            if d_lo <= address < d_hi:
                                device = d_dev
                                d_base = d_lo
                                break
                    if device is not None:
                        # immediate: devices see program order in-cycle
                        device.write(address - d_base, value, cycle)
                    elif not 0 <= address < mem_words:
                        raise MemoryError_(
                            f"address {address} out of range "
                            f"[0, {mem_words})"
                            if shared else
                            f"address {address!r} out of bank range "
                            f"[0, {mem_words})")
                    else:
                        mem_stores += 1
                        mem_pending.append((fu, address, value))

            emit = emit_every and cycle % emit_every == 0
            if ctl is None:
                next_pc: Optional[int] = None
            else:
                ckind = ctl[0]
                if ckind == _C_ALWAYS:
                    taken = True
                elif ckind == _C_CC:
                    taken = ccv[ctl[3]]
                elif ckind == _C_RAISE:
                    raise MachineError(ctl[4])
                else:  # pragma: no cover - sync lowers to _C_RAISE
                    raise MachineError("sync condition on a VLIW machine")
                next_pc = ctl[1] if taken else ctl[2]
                if obs_on:
                    nresolved += 1
                    # _C_ALWAYS folds both targets; aux keeps the
                    # reference evaluate_condition value
                    reported = ctl[3] if ckind == _C_ALWAYS else taken
                    if reported:
                        btaken += 1
                    if emit:
                        meta = row[3]
                        emit_fn(BranchEvent(
                            machine="vliw", cycle=cycle, fu=meta[6],
                            pc=pc, branch_kind=meta[7],
                            taken=reported, target=next_pc))

            if emit:
                meta = row[3]
                cc_text = "".join(
                    ("T" if value else "F") if defined else "X"
                    for value, defined in zip(ccv, ccdef))
                emit_fn(CycleEvent(
                    machine="vliw", cycle=cycle, pcs=(pc,) * n,
                    cc=cc_text, ss=ss_const, partition=part_const,
                    data_ops=meta[5], fu_class=meta[2], ops=meta[4]))
                if (ring_chunk is not None
                        and len(ring_chunk) >= _RING_CHUNK):
                    _flush_ring_chunk(ring_chunk, ring_sinks)

            # --- commit -------------------------------------------------
            due = inflight[0]
            if due:
                if len(due) == 1:
                    regv[due[0][0]] = due[0][1]
                else:
                    seen_regs.clear()
                    for register, value, fu in due:
                        prev_fu = seen_regs.get(register)
                        if prev_fu is not None and prev_fu != fu:
                            if detect_reg:
                                raise RegisterConflictError(
                                    f"cycle {cycle}: FUs {prev_fu} and "
                                    f"{fu} both write r{register} "
                                    "(undefined)")
                            reg_conflicts += 1
                        seen_regs[register] = fu
                        regv[register] = value
                due.clear()
            if write_latency > 1:
                inflight.append(inflight.pop(0))
            if cc_pending:
                for fu, value in cc_pending:
                    ccv[fu] = value
                    ccdef[fu] = True
                cc_pending.clear()
            if mem_pending:
                if shared:
                    if len(mem_pending) == 1:
                        mem_data[mem_pending[0][1]] = mem_pending[0][2]
                    else:
                        seen_addrs.clear()
                        for fu, address, value in mem_pending:
                            prev_fu = seen_addrs.get(address)
                            if prev_fu is not None:
                                if detect_mem:
                                    raise MemoryConflictError(
                                        f"cycle {cycle}: FUs {prev_fu} "
                                        f"and {fu} both store to address "
                                        f"{address} (undefined, "
                                        "section 2.3)")
                                mem_conflicts += 1
                                if fu < prev_fu:
                                    continue  # highest-numbered FU wins
                            seen_addrs[address] = fu
                            mem_data[address] = value
                else:
                    for fu, address, value in mem_pending:
                        banks[fu][address] = value
                mem_pending.clear()
            pc = next_pc
            cycle += 1
            cycles_done += 1
    finally:
        _flush_ring_chunk(ring_chunk, ring_sinks)
        _finish_vliw(machine, rows, visits, first_seen, cycles_done,
                     btaken, nresolved, pc, cycle,
                     reg_reads, reg_writes, reg_conflicts, inflight,
                     mem_loads, mem_stores, mem_conflicts)

    _drain_epilogue(regfile, detect_reg, cycle, obs_on)


def _finish_vliw(machine, rows, visits, first_seen, cycles_done,
                 btaken, nresolved, pc, cycle,
                 reg_reads, reg_writes, reg_conflicts, inflight,
                 mem_loads, mem_stores, mem_conflicts) -> None:
    """Fold the VLIW run's per-row visit counters into stats/telemetry
    and write the end state back to *machine* (see :func:`_finish_ximd`
    for the sharing rationale)."""
    obs = machine.obs
    obs_on = obs.enabled
    regfile = machine.regfile
    memory = machine.memory
    stats = machine.stats
    stats.cycles += cycles_done
    counters = machine.counters
    ccounts = counters.class_counts
    peak_r = regfile.peak_reads
    peak_w = regfile.peak_writes
    read_hist = write_hist = None
    if obs_on and first_seen:
        read_hist, write_hist = regfile.port_histograms()
    for address in first_seen:
        count = visits[address]
        row = rows[address]
        for fu, fold in row[2]:
            is_nop, mnemonic, skind, reads, writes, branch = fold
            if is_nop:
                stats.nops += count
            else:
                stats.data_ops += count
                per_fu = stats.per_fu_ops
                per_fu[fu] = per_fu.get(fu, 0) + count
                per_op = stats.per_opcode
                per_op[mnemonic] = per_op.get(mnemonic, 0) + count
                if skind == _S_COMPARE:
                    stats.compares += count
                elif skind == _S_LOAD:
                    stats.loads += count
                elif skind == _S_STORE:
                    stats.stores += count
                reg_reads += reads * count
                reg_writes += writes * count
            if branch == _B_UNCOND:
                stats.branches_unconditional += count
            elif branch != _B_NONE:
                stats.branches_conditional += count
        meta = row[3]
        if meta[0] > peak_r:
            peak_r = meta[0]
        if meta[1] > peak_w:
            peak_w = meta[1]
        if obs_on:
            for fu, code in enumerate(meta[3]):
                ccounts[fu * 5 + code] += count
            if read_hist is not None:
                read_hist.observe_many(meta[0], count)
                write_hist.observe_many(meta[1], count)
    if obs_on:
        counters.branches_taken += btaken
        # the reference Sequencer counts live, per run (no re-fold)
        if nresolved:
            obs.registry.counter("sequencer.resolved").inc(nresolved)
        if btaken:
            obs.registry.counter("sequencer.taken").inc(btaken)
    machine.pc = pc
    machine.cycle = cycle
    regfile.total_reads += reg_reads
    regfile.total_writes += reg_writes
    regfile.conflicts_dropped += reg_conflicts
    regfile.peak_reads = peak_r
    regfile.peak_writes = peak_w
    regfile._inflight = inflight
    memory.loads += mem_loads
    memory.stores += mem_stores
    memory.conflicts_dropped += mem_conflicts
