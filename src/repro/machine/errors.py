"""Exception types raised by the machine (simulator) layer."""


class MachineError(Exception):
    """Base class for all simulator errors."""


class ProgramError(MachineError):
    """Raised when a program is structurally invalid for the machine."""


class MemoryError_(MachineError):
    """Raised on illegal memory accesses (out of range, wrong bank)."""


class MemoryConflictError(MemoryError_):
    """Raised when two stores hit one address in one cycle.

    Paper section 2.3: *"Multiple writes to the same location in one
    cycle are undefined."*  The simulator surfaces the undefined
    behavior instead of silently picking a winner (configurable via
    :attr:`repro.machine.config.MachineConfig.detect_memory_conflicts`).
    """


class RegisterConflictError(MachineError):
    """Raised when two functional units write one register in one cycle."""


class PortOverflowError(MachineError):
    """Raised when a cycle exceeds the register file's port budget."""


class SimulationLimitError(MachineError):
    """Raised when a program exceeds the configured cycle limit."""


class RunAbort(SimulationLimitError):
    """A run was stopped with a structured diagnosis attached.

    Subclasses :class:`SimulationLimitError` so existing watchdog
    handlers keep working, but carries *why* the run stopped:

    * ``kind`` — ``"watchdog"`` (the plain cycle-limit trip),
      ``"deadlock"`` (every active FU provably blocked on an untaken
      sync branch that loops back to itself), or ``"livelock"`` (the
      complete architectural state recurred, so the machine can never
      halt).
    * ``cycle`` — the cycle at which the run was aborted.
    * ``diagnostics`` — a JSON-ready dict with the evidence: per-FU
      last-issue PCs, the sync wait matrix and critical wait chain,
      open barrier episodes, and the per-FU blocked edges at abort
      time (see :mod:`repro.machine.runtime`).

    Both engines and the reference interpreter raise bit-identical
    aborts (type, message, kind, cycle, and diagnostics) for the same
    program and fault plan.
    """

    def __init__(self, message: str, kind: str = "watchdog",
                 cycle: int = 0, diagnostics: dict = None):
        super().__init__(message)
        self.kind = kind
        self.cycle = cycle
        self.diagnostics = diagnostics if diagnostics is not None else {}
