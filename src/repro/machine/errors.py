"""Exception types raised by the machine (simulator) layer."""


class MachineError(Exception):
    """Base class for all simulator errors."""


class ProgramError(MachineError):
    """Raised when a program is structurally invalid for the machine."""


class MemoryError_(MachineError):
    """Raised on illegal memory accesses (out of range, wrong bank)."""


class MemoryConflictError(MemoryError_):
    """Raised when two stores hit one address in one cycle.

    Paper section 2.3: *"Multiple writes to the same location in one
    cycle are undefined."*  The simulator surfaces the undefined
    behavior instead of silently picking a winner (configurable via
    :attr:`repro.machine.config.MachineConfig.detect_memory_conflicts`).
    """


class RegisterConflictError(MachineError):
    """Raised when two functional units write one register in one cycle."""


class PortOverflowError(MachineError):
    """Raised when a cycle exceeds the register file's port budget."""


class SimulationLimitError(MachineError):
    """Raised when a program exceeds the configured cycle limit."""
