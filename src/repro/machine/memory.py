"""Data-memory models.

Two organizations are implemented, matching the paper:

* :class:`SharedMemory` — the idealized research model (section 2.3):
  *"A shared memory model is used.  Each functional unit can read or
  write to memory every cycle.  All ports use a single shared address
  space.  Memory operations complete in one cycle.  Multiple writes to
  the same location in one cycle are undefined."*

  Stores commit at end of cycle, so a load and a store to the same
  address in the same cycle give the load the old value; conflicting
  stores raise (or, when conflict detection is off, the
  highest-numbered FU wins and a counter records the event).

* :class:`DistributedMemory` — the prototype organization (section 4.3,
  "Distributed Memory (1MB per FU)"): a private bank per FU; an access
  from FU *i* addresses bank *i* only.

Both support memory-mapped devices through a
:class:`~repro.machine.devices.DeviceMap` (device accesses bypass the
end-of-cycle store buffer: devices see program order within a cycle).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .devices import DeviceMap
from .errors import MemoryConflictError, MemoryError_


class SharedMemory:
    """Idealized single-cycle shared memory with word addressing."""

    def __init__(self, words: int, detect_conflicts: bool = True,
                 devices: Optional[DeviceMap] = None):
        if words <= 0:
            raise ValueError("memory must have at least one word")
        self.words = words
        self.detect_conflicts = detect_conflicts
        self.devices = devices if devices is not None else DeviceMap()
        self._data: Dict[int, object] = {}
        self._pending: List[Tuple[int, object, int]] = []
        #: stores that lost a same-cycle conflict (when detection is off)
        self.conflicts_dropped = 0
        self.loads = 0
        self.stores = 0

    def _check(self, address: int) -> None:
        if not isinstance(address, int):
            raise MemoryError_(f"non-integer address: {address!r}")
        if not 0 <= address < self.words:
            raise MemoryError_(
                f"address {address} out of range [0, {self.words})")

    def load(self, fu: int, address: int, cycle: int):
        """Read *address* as seen at the start of the cycle."""
        hit = self.devices.lookup(address)
        if hit is not None:
            device, offset = hit
            return device.read(offset, cycle)
        self._check(address)
        self.loads += 1
        return self._data.get(address, 0)

    def store(self, fu: int, address: int, value, cycle: int) -> None:
        """Buffer a store; it becomes visible at :meth:`commit`."""
        hit = self.devices.lookup(address)
        if hit is not None:
            device, offset = hit
            device.write(offset, value, cycle)
            return
        self._check(address)
        self.stores += 1
        self._pending.append((address, value, fu))

    def commit(self, cycle: int) -> None:
        """Apply the cycle's buffered stores (end-of-cycle semantics).

        With conflict detection off, same-cycle stores to one address
        resolve by FU number — the highest-numbered FU wins — no matter
        what order the stores were issued in; the loser is dropped and
        counted.
        """
        if not self._pending:
            return
        seen: Dict[int, int] = {}
        for address, value, fu in self._pending:
            prev_fu = seen.get(address)
            if prev_fu is not None:
                if self.detect_conflicts:
                    raise MemoryConflictError(
                        f"cycle {cycle}: FUs {prev_fu} and {fu} both "
                        f"store to address {address} (undefined, "
                        f"section 2.3)")
                self.conflicts_dropped += 1
                if fu < prev_fu:
                    continue
            seen[address] = fu
            self._data[address] = value
        self._pending.clear()

    # -- direct (non-simulated) access for loading/checking test data ----

    def poke(self, address: int, value) -> None:
        """Write a word directly, outside simulation."""
        self._check(address)
        self._data[address] = value

    def peek(self, address: int):
        """Read a word directly, outside simulation."""
        self._check(address)
        return self._data.get(address, 0)

    def poke_block(self, base: int, values: Iterable) -> None:
        """Write consecutive words starting at *base*."""
        for offset, value in enumerate(values):
            self.poke(base + offset, value)

    def peek_block(self, base: int, count: int) -> List:
        """Read *count* consecutive words starting at *base*."""
        return [self.peek(base + offset) for offset in range(count)]


class DistributedMemory:
    """Per-FU private banks (the prototype organization).

    Presents the same interface as :class:`SharedMemory`; the *fu*
    argument selects the bank.  ``poke``/``peek`` take an explicit bank.
    """

    def __init__(self, n_fus: int, words_per_bank: int,
                 devices: Optional[DeviceMap] = None):
        if n_fus <= 0:
            raise ValueError("need at least one bank")
        self.n_fus = n_fus
        self.words = words_per_bank
        self.devices = devices if devices is not None else DeviceMap()
        self._banks: List[Dict[int, object]] = [{} for _ in range(n_fus)]
        self._pending: List[Tuple[int, int, object]] = []
        self.loads = 0
        self.stores = 0
        self.conflicts_dropped = 0

    def _check(self, fu: int, address: int) -> None:
        if not 0 <= fu < self.n_fus:
            raise MemoryError_(f"no such bank: {fu}")
        if not isinstance(address, int) or not 0 <= address < self.words:
            raise MemoryError_(
                f"address {address!r} out of bank range [0, {self.words})")

    def load(self, fu: int, address: int, cycle: int):
        hit = self.devices.lookup(address)
        if hit is not None:
            device, offset = hit
            return device.read(offset, cycle)
        self._check(fu, address)
        self.loads += 1
        return self._banks[fu].get(address, 0)

    def store(self, fu: int, address: int, value, cycle: int) -> None:
        hit = self.devices.lookup(address)
        if hit is not None:
            device, offset = hit
            device.write(offset, value, cycle)
            return
        self._check(fu, address)
        self.stores += 1
        self._pending.append((fu, address, value))

    def commit(self, cycle: int) -> None:
        # Distinct banks cannot conflict; one FU issues at most one store
        # per cycle, so no conflict is possible at all.
        for fu, address, value in self._pending:
            self._banks[fu][address] = value
        self._pending.clear()

    def poke(self, address: int, value, bank: int = 0) -> None:
        self._check(bank, address)
        self._banks[bank][address] = value

    def peek(self, address: int, bank: int = 0):
        self._check(bank, address)
        return self._banks[bank].get(address, 0)

    def poke_block(self, base: int, values: Iterable, bank: int = 0) -> None:
        for offset, value in enumerate(values):
            self.poke(base + offset, value, bank)

    def peek_block(self, base: int, count: int, bank: int = 0) -> List:
        return [self.peek(base + offset, bank) for offset in range(count)]
