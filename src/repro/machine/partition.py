"""SSET and partition tracking.

Paper section 2.4 defines the central formal concept:

    *"SSET: A Synchronous Set of Functional Units ... describes a set of
    one or more XIMD functional units which are currently executing a
    single program thread. ... Formally, two functional units are in the
    same SSET at time t, if given the program and the control state of
    one FU, the control state of the other FU can be uniquely
    determined."*

and the partition notation ``{0,1}{2}{3,6,7}{4,5}`` used in the
Figure 10 address trace.  Note the definition quantifies over *possible*
executions: in Figure 10 (cycle 9) all four FUs sit at address ``03:``
yet the partition is ``{0,1}{2}{3}`` because FU2/FU3 arrived there
through data-dependent branches.

Two trackers implement the definition:

:class:`ExactSSETTracker`
    A possible-worlds analysis.  A *world* is a vector of per-FU PCs.
    Each cycle every world advances: branch conditions over condition
    codes are treated as free boolean choices (shared within a world by
    condition spec — all FUs testing ``cc2`` in one cycle see the same
    value), while sync-signal conditions are *deterministic per world*
    because ``SS_i`` is a field of the parcel addressed by ``PC_i``.
    Worlds are deduplicated by PC vector.  FUs *i* and *j* are in one
    SSET at time *t* iff, restricted to worlds that agree with the
    actual execution on ``PC_i``, the value of ``PC_j`` is unique — and
    vice versa.  Treating every condition-code evaluation as free
    ignores correlation between branch outcomes over time, which makes
    the analysis conservative (it may split more finely than strictly
    necessary); this matches the paper's reading of "data dependent"
    and reproduces Figure 10 cell-for-cell.

:class:`HeuristicSSETTracker`
    An O(n_fus) per-cycle operational approximation: an SSET splits when
    its members execute different control fields; a diverged SSET tracks
    its *relative possible-PC set* (reset at each split point) and heals
    when that set collapses to a singleton; healed SSETs arriving at one
    address merge; an ALL-sync barrier release merges every SSET that
    took the identical barrier branch.  Tests assert agreement with the
    exact tracker on all the paper's programs.

:class:`AdaptiveSSETTracker` runs the exact analysis until its world set
exceeds a budget, then falls over to the heuristic.

:class:`DeferredTrackerFeed` is the fast engine's
snapshot-at-sample-boundary adapter: it buffers the per-cycle tracker
inputs as the flat loop produces them and replays them in batches, so
tracker state is only reconstructed when a partition is actually
observed (tier-1 sample cycles, flush-cap overflow, or run end) rather
than advanced every cycle.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..isa import Condition, ControlOp, Parcel, SyncValue
from .condition import evaluate_condition, select_target
from .program import Program
from .sequencer import Sequencer

#: A partition: tuple of SSETs, each a sorted tuple of FU indices,
#: ordered by smallest member.
Partition = Tuple[Tuple[int, ...], ...]


def format_partition(partition: Partition) -> str:
    """Render a partition in the paper's ``{0,1}{2}{3}`` notation."""
    return "".join("{" + ",".join(str(i) for i in sset) + "}"
                   for sset in partition)


def parse_partition(text: str) -> Partition:
    """Parse the ``{0,1}{2}{3}`` notation back into a partition."""
    ssets = []
    for chunk in text.replace("}", "}|").split("|"):
        chunk = chunk.strip()
        if not chunk:
            continue
        if not (chunk.startswith("{") and chunk.endswith("}")):
            raise ValueError(f"malformed partition text: {text!r}")
        body = chunk[1:-1].strip()
        members = tuple(sorted(int(x) for x in body.split(",") if x.strip()))
        if not members:
            raise ValueError(f"empty SSET in: {text!r}")
        ssets.append(members)
    return normalize_partition(ssets)


def normalize_partition(ssets: Iterable[Iterable[int]]) -> Partition:
    """Sort members within SSETs and SSETs by least member."""
    return tuple(sorted((tuple(sorted(s)) for s in ssets),
                        key=lambda s: s[0]))


def is_valid_partition(partition: Partition, n_fus: int) -> bool:
    """Every FU appears in exactly one SSET."""
    seen = [i for sset in partition for i in sset]
    return sorted(seen) == list(range(n_fus))


def refines(fine: Partition, coarse: Partition) -> bool:
    """True if every SSET of *fine* is contained in some SSET of *coarse*."""
    coarse_sets = [set(s) for s in coarse]
    return all(any(set(f) <= c for c in coarse_sets) for f in fine)


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra

    def partition(self) -> Partition:
        groups: Dict[int, List[int]] = {}
        for i in range(len(self.parent)):
            groups.setdefault(self.find(i), []).append(i)
        return normalize_partition(groups.values())


class WorldExplosionError(Exception):
    """The exact tracker's world set exceeded its budget."""


class ExactSSETTracker:
    """Possible-worlds implementation of the formal SSET definition."""

    def __init__(self, program: Program, sequencer: Sequencer,
                 halted_sync_done: bool = True, max_worlds: int = 50_000):
        self.program = program
        self.sequencer = sequencer
        self.halted_sync_done = halted_sync_done
        self.max_worlds = max_worlds
        entry = program.entry
        self.worlds: Set[Tuple[int, ...]] = {
            tuple([entry] * program.width)
        }

    def partition(self, actual_pcs: Sequence[int]) -> Partition:
        """The SSET partition at the current cycle, given the PCs the
        machine actually holds."""
        n = self.program.width
        uf = _UnionFind(n)
        worlds = self.worlds
        for i in range(n):
            for j in range(i + 1, n):
                if uf.find(i) == uf.find(j):
                    continue
                if self._mutually_determined(worlds, i, j,
                                             actual_pcs[i], actual_pcs[j]):
                    uf.union(i, j)
        return uf.partition()

    @staticmethod
    def _mutually_determined(worlds, i, j, pc_i, pc_j) -> bool:
        js = {w[j] for w in worlds if w[i] == pc_i}
        if len(js) != 1:
            return False
        is_ = {w[i] for w in worlds if w[j] == pc_j}
        return len(is_) == 1

    def step(self) -> None:
        """Advance every world by one machine cycle."""
        program = self.program
        n = program.width
        next_worlds: Set[Tuple[int, ...]] = set()
        for world in self.worlds:
            parcels: List[Optional[Parcel]] = [
                program.fetch(fu, world[fu]) for fu in range(n)
            ]
            ss_done = tuple(
                self.halted_sync_done if p is None
                else (p.sync is SyncValue.DONE)
                for p in parcels
            )
            # Collect the distinct condition-code specs evaluated in this
            # world this cycle; each is one free boolean choice.
            cc_specs: List[int] = []
            for p in parcels:
                if (p is not None and p.control is not None
                        and p.control.condition is Condition.CC_TRUE
                        and p.control.index not in cc_specs):
                    cc_specs.append(p.control.index)
            for outcome_bits in itertools.product(
                    (False, True), repeat=len(cc_specs)):
                cc = dict(zip(cc_specs, outcome_bits))
                successor = []
                for fu in range(n):
                    parcel = parcels[fu]
                    if parcel is None or parcel.control is None:
                        successor.append(world[fu])  # halted
                        continue
                    control = parcel.control
                    if control.condition is Condition.CC_TRUE:
                        taken = cc[control.index]
                    else:
                        taken = evaluate_condition(
                            control, _NO_CC, ss_done)
                    successor.append(
                        self.sequencer.next_pc(world[fu], control, taken))
                next_worlds.add(tuple(successor))
                if len(next_worlds) > self.max_worlds:
                    raise WorldExplosionError(
                        f"> {self.max_worlds} worlds")
        self.worlds = next_worlds


class _NoCC:
    """Sentinel CC vector: exact-tracker worlds never read real CCs."""

    def __getitem__(self, index):
        raise AssertionError("CC conditions are forked, not evaluated")

    def __len__(self):
        return 16


_NO_CC = _NoCC()


class _Record:
    """One SSET in the heuristic tracker's state."""

    __slots__ = ("members", "pc", "possible")

    def __init__(self, members: FrozenSet[int], pc: int,
                 possible: FrozenSet[int]):
        self.members = members
        self.pc = pc
        self.possible = possible

    @property
    def healed(self) -> bool:
        return len(self.possible) == 1


_POSSIBLE_CAP = 64


class HeuristicSSETTracker:
    """Operational split/heal/merge approximation of the SSET relation."""

    def __init__(self, program: Program, sequencer: Sequencer,
                 halted_sync_done: bool = True):
        self.program = program
        self.sequencer = sequencer
        self.halted_sync_done = halted_sync_done
        entry = program.entry
        self._records: List[_Record] = [
            _Record(frozenset(range(program.width)), entry,
                    frozenset([entry]))
        ]

    def partition(self, actual_pcs: Sequence[int]) -> Partition:
        return normalize_partition(r.members for r in self._records)

    def step(self, actual_pcs: Sequence[int],
             next_pcs: Sequence[int],
             parcels: Sequence[Optional[Parcel]],
             barrier_taken: Sequence[bool]) -> None:
        """Advance one cycle.

        Args:
            actual_pcs: PC of each FU during the cycle just executed.
            next_pcs: PC each FU will hold next cycle.
            parcels: the parcel each FU executed (None = halted).
            barrier_taken: per FU, True when it executed an ALL-sync
                conditional branch whose condition fired.
        """
        new_records: List[_Record] = []
        barrier_groups: Dict[object, List[int]] = {}

        for record in self._records:
            subgroups: Dict[object, List[int]] = {}
            for fu in sorted(record.members):
                parcel = parcels[fu]
                if parcel is None or parcel.control is None:
                    key = ("halt",)
                else:
                    key = parcel.control.branch_key()
                subgroups.setdefault(key, []).append(fu)

            split = len(subgroups) > 1
            for key, fus in subgroups.items():
                rep = fus[0]
                next_pc = next_pcs[rep]
                parcel = parcels[rep]
                control = parcel.control if parcel is not None else None
                if (control is not None
                        and control.condition is Condition.ALL_SS_DONE
                        and barrier_taken[rep]):
                    # Barrier release: full resynchronization of every
                    # FU that took this identical barrier branch.
                    barrier_groups.setdefault(key, []).extend(fus)
                    continue
                if split:
                    possible = self._reset_possible(
                        actual_pcs[rep], control)
                else:
                    possible = self._advance_possible(record, fus)
                new_records.append(
                    _Record(frozenset(fus), next_pc, possible))

        for key, fus in barrier_groups.items():
            rep_next = next_pcs[fus[0]]
            new_records.append(
                _Record(frozenset(fus), rep_next,
                        frozenset([rep_next])))

        # Merge rule: healed records at one address are mutually
        # determined (each PC is a program constant).
        merged: Dict[int, _Record] = {}
        final: List[_Record] = []
        for record in new_records:
            if record.healed:
                existing = merged.get(record.pc)
                if existing is not None and existing.healed:
                    existing.members |= record.members
                    continue
                merged[record.pc] = record
            final.append(record)
        self._records = final

    def _reset_possible(self, pc: int,
                        control: Optional[ControlOp]) -> FrozenSet[int]:
        """Relative possible-PC set right after a split point."""
        return frozenset(self.sequencer.possible_next(pc, control))

    def _advance_possible(self, record: _Record,
                          fus: List[int]) -> FrozenSet[int]:
        """One-step image of the record's relative possible-PC set."""
        if len(record.possible) > _POSSIBLE_CAP:
            return record.possible  # saturated; stays conservative
        out: Set[int] = set()
        for pc in record.possible:
            for fu in fus:
                parcel = self.program.fetch(fu, pc)
                control = parcel.control if parcel is not None else None
                out.update(self.sequencer.possible_next(pc, control))
        return frozenset(out)


class AdaptiveSSETTracker:
    """Exact tracking with automatic fallback to the heuristic."""

    def __init__(self, program: Program, sequencer: Sequencer,
                 halted_sync_done: bool = True, max_worlds: int = 50_000):
        self._exact: Optional[ExactSSETTracker] = ExactSSETTracker(
            program, sequencer, halted_sync_done, max_worlds)
        self._heuristic = HeuristicSSETTracker(
            program, sequencer, halted_sync_done)
        self.fell_back_at: Optional[int] = None
        self._cycle = 0

    @property
    def using_exact(self) -> bool:
        return self._exact is not None

    def partition(self, actual_pcs: Sequence[int]) -> Partition:
        if self._exact is not None:
            return self._exact.partition(actual_pcs)
        return self._heuristic.partition(actual_pcs)

    def step(self, actual_pcs, next_pcs, parcels, barrier_taken) -> None:
        if self._exact is not None:
            try:
                self._exact.step()
            except WorldExplosionError:
                self._exact = None
                self.fell_back_at = self._cycle
        self._heuristic.step(actual_pcs, next_pcs, parcels, barrier_taken)
        self._cycle += 1


class DeferredTrackerFeed:
    """Batches tracker input for the fast engine.

    The reference interpreter advances its SSET tracker every cycle.
    The fast engine instead records each executed cycle's tracker
    inputs — the post-fetch PC vector, the post-branch PC vector (−1
    for halted FUs), and a bitmask of FUs that released an ALL-sync
    barrier — and replays them with :meth:`flush` only when tracker
    state is actually needed: at a tier-1 sample cycle (via
    :meth:`partition_now`), when the buffer reaches *flush_every*
    recorded cycles, or at run end.  Replay re-fetches each cycle's
    parcels from the program and calls ``tracker.step`` with exactly
    the arguments the reference path would have passed, so the
    tracker's state after a flush is bit-identical to the reference
    interpreter's at the same cycle — only *when* the steps execute
    moves.  A consequence: a :class:`WorldExplosionError` from the
    exact tracker surfaces at the flush, possibly later than the cycle
    the reference path would have raised it on.
    """

    __slots__ = ("_program", "_tracker", "_fus", "_pending",
                 "flush_every")

    def __init__(self, program: Program, tracker,
                 flush_every: int = 2048):
        self._program = program
        self._tracker = tracker
        self._fus = range(program.width)
        self._pending: List[Tuple[List[int], List[int], int]] = []
        self.flush_every = flush_every

    def record(self, actual_pcs: List[int], next_pcs: List[int],
               barrier_mask: int) -> None:
        """Buffer one executed cycle (PC vectors use −1 for halted)."""
        self._pending.append((actual_pcs, next_pcs, barrier_mask))
        if len(self._pending) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Replay every buffered cycle into the tracker."""
        if not self._pending:
            return
        program = self._program
        tracker = self._tracker
        fus = self._fus
        for actual, nxt, mask in self._pending:
            parcels = [program.fetch(fu, actual[fu])
                       if actual[fu] >= 0 else None for fu in fus]
            tracker.step(actual, nxt, parcels,
                         [bool(mask >> fu & 1) for fu in fus])
        self._pending.clear()

    def partition_now(self, actual_pcs: Sequence[int]) -> Partition:
        """The partition at the current cycle: replay, then query."""
        self.flush()
        return self._tracker.partition(actual_pcs)
