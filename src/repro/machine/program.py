"""Executable program container for the XIMD machine.

Instruction memory is organized as one *column* of parcels per functional
unit ("the control signals for each functional unit are supplied by a
unique portion of the instruction memory", section 2.2).  A
:class:`Program` holds those columns plus the symbol-table metadata the
assembler collected (labels, register bindings) so traces and
disassembly can be rendered symbolically.

Unoccupied slots hold ``None``; a functional unit whose PC reaches a
``None`` slot — or a parcel with no control fields — halts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa import Parcel, WideInstruction
from .errors import ProgramError


@dataclass
class Program:
    """A program laid out into per-FU instruction-memory columns.

    Attributes:
        columns: ``columns[fu][address]`` is the parcel FU *fu* executes
            when its PC equals *address* (or None for an empty slot).
        entry: common start address (the paper's examples assume *"all
            functional units begin execution together at address 00:"*).
        labels: label name -> address, for symbolic traces.
        register_names: register index -> preferred symbolic name.
        source: optional original assembly text.
    """

    columns: List[List[Optional[Parcel]]]
    entry: int = 0
    labels: Dict[str, int] = field(default_factory=dict)
    register_names: Dict[int, str] = field(default_factory=dict)
    source: Optional[str] = None

    def __post_init__(self):
        if not self.columns:
            raise ProgramError("program must have at least one column")
        length = max(len(col) for col in self.columns)
        # Copy the columns rather than padding the caller's lists in
        # place: callers may reuse (or share) the list objects they
        # passed in, and mutating them aliases every such use.
        self.columns = [
            list(col) + [None] * (length - len(col))
            for col in self.columns
        ]
        # label_at reverse index, built lazily (labels may be filled in
        # after construction by the assembler).
        self._address_labels: Optional[Dict[int, str]] = None
        self._address_labels_size = -1

    @property
    def width(self) -> int:
        """Number of functional-unit columns."""
        return len(self.columns)

    @property
    def length(self) -> int:
        """Number of instruction-memory slots per column."""
        return len(self.columns[0])

    def fetch(self, fu: int, address: int) -> Optional[Parcel]:
        """The parcel at (*fu*, *address*), or None for empty/out-of-range."""
        if not 0 <= fu < self.width:
            raise ProgramError(f"no such FU column: {fu}")
        if not 0 <= address < self.length:
            return None
        return self.columns[fu][address]

    def label_at(self, address: int) -> Optional[str]:
        """A label bound to *address*, if any (first match wins).

        Backed by a lazily-built reverse index — this runs once per
        trace row per cycle, and the linear scan it replaced dominated
        symbolic-trace rendering.  The index keeps the *first* label
        bound to each address (dict iteration order), matching the
        original scan, and is rebuilt if labels are added later.
        """
        index = self._address_labels
        if index is None or self._address_labels_size != len(self.labels):
            index = {}
            for name, addr in self.labels.items():
                index.setdefault(addr, name)
            self._address_labels = index
            self._address_labels_size = len(self.labels)
        return index.get(address)

    def address_of(self, label: str) -> int:
        """Resolve *label* to its address."""
        try:
            return self.labels[label]
        except KeyError:
            raise ProgramError(f"undefined label: {label!r}") from None

    def occupied_slots(self) -> int:
        """Total non-empty parcel slots (static code size in parcels)."""
        return sum(1 for col in self.columns for p in col if p is not None)

    def static_parcel_rows(self) -> int:
        """Number of addresses with at least one occupied parcel."""
        return sum(
            1 for address in range(self.length)
            if any(col[address] is not None for col in self.columns)
        )

    def rows(self) -> List[Tuple[int, Tuple[Optional[Parcel], ...]]]:
        """(address, parcels-across-FUs) for every address, in order."""
        return [
            (address, tuple(col[address] for col in self.columns))
            for address in range(self.length)
        ]

    @classmethod
    def from_wide_instructions(
        cls,
        instructions: Sequence[WideInstruction],
        entry: int = 0,
        labels: Optional[Dict[str, int]] = None,
    ) -> "Program":
        """Build a program from a dense list of wide instructions.

        Instruction *k* occupies address *k* in every column.  This is
        the natural constructor for VLIW-style code, where every FU
        executes from the same address.
        """
        if not instructions:
            raise ProgramError("no instructions")
        width = instructions[0].width
        for instr in instructions:
            if instr.width != width:
                raise ProgramError("inconsistent instruction widths")
        columns: List[List[Optional[Parcel]]] = [
            [instr[fu] for instr in instructions] for fu in range(width)
        ]
        return cls(columns, entry=entry, labels=dict(labels or {}))

    @classmethod
    def empty(cls, width: int, length: int) -> "Program":
        """An all-empty program of the given shape."""
        return cls([[None] * length for _ in range(width)])
