"""The global multiported register file.

Paper section 2.2: *"The register file simultaneously supports two reads
and one write per functional unit for a total of 16 reads and 8 writes
per cycle."*  Section 4.4 describes the custom chip built to provide
those ports; :mod:`repro.analysis.registerfile` models the chip-level
partitioning, while this module models the architectural behavior:

* reads during cycle *t* observe the state at the start of cycle *t*;
* a result produced in cycle *t* commits at the end of cycle
  *t + write_latency - 1* (latency 1 = the research model's single-cycle
  datapath; latency 2 = the prototype's 3-stage pipeline, which exposes
  one delay slot to the compiler);
* per-cycle port usage is accounted and can be capped;
* two FUs writing one register in one cycle is undefined and is either
  raised or counted, mirroring the memory-conflict policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .errors import PortOverflowError, RegisterConflictError


class RegisterFile:
    """Architectural model of the 24-ported global register file."""

    def __init__(self, n_registers: int = 256, write_latency: int = 1,
                 max_read_ports: Optional[int] = None,
                 max_write_ports: Optional[int] = None,
                 detect_conflicts: bool = True,
                 obs=None):
        if n_registers <= 0:
            raise ValueError("need at least one register")
        if write_latency < 1:
            raise ValueError("write_latency must be >= 1")
        self.n_registers = n_registers
        self.write_latency = write_latency
        self.max_read_ports = max_read_ports
        self.max_write_ports = max_write_ports
        self.detect_conflicts = detect_conflicts
        self._values: List[object] = [0] * n_registers
        #: in-flight writes: delay -> list of (register, value, fu)
        self._inflight: List[List[Tuple[int, object, int]]] = [
            [] for _ in range(write_latency)
        ]
        #: optional repro.obs Observer (port-pressure histograms).
        self._obs = obs
        self._read_hist = None
        self._write_hist = None
        self._reads_this_cycle = 0
        self._writes_this_cycle = 0
        self.total_reads = 0
        self.total_writes = 0
        self.peak_reads = 0
        self.peak_writes = 0
        self.conflicts_dropped = 0

    def _check(self, register: int) -> None:
        if not 0 <= register < self.n_registers:
            raise RegisterConflictError(
                f"register index out of range: {register}")

    def read(self, fu: int, register: int):
        """Read *register* (start-of-cycle value) through one read port."""
        self._check(register)
        self._reads_this_cycle += 1
        self.total_reads += 1
        if (self.max_read_ports is not None
                and self._reads_this_cycle > self.max_read_ports):
            raise PortOverflowError(
                f"cycle exceeds {self.max_read_ports} read ports")
        return self._values[register]

    def write(self, fu: int, register: int, value) -> None:
        """Issue a write; it commits after ``write_latency`` commits."""
        self._check(register)
        self._writes_this_cycle += 1
        self.total_writes += 1
        if (self.max_write_ports is not None
                and self._writes_this_cycle > self.max_write_ports):
            raise PortOverflowError(
                f"cycle exceeds {self.max_write_ports} write ports")
        self._inflight[self.write_latency - 1].append((register, value, fu))

    def commit(self, cycle: int) -> None:
        """End the cycle: retire due writes, advance the pipeline."""
        due = self._inflight[0]
        if due:
            seen: Dict[int, int] = {}
            for register, value, fu in due:
                if register in seen and seen[register] != fu:
                    if self.detect_conflicts:
                        raise RegisterConflictError(
                            f"cycle {cycle}: FUs {seen[register]} and {fu} "
                            f"both write r{register} (undefined)")
                    self.conflicts_dropped += 1
                seen[register] = fu
                self._values[register] = value
        # advance the in-flight pipeline
        for stage in range(len(self._inflight) - 1):
            self._inflight[stage] = self._inflight[stage + 1]
        self._inflight[-1] = []
        self.peak_reads = max(self.peak_reads, self._reads_this_cycle)
        self.peak_writes = max(self.peak_writes, self._writes_this_cycle)
        read_hist, write_hist = self.port_histograms()
        if read_hist is not None:
            read_hist.observe(self._reads_this_cycle)
            write_hist.observe(self._writes_this_cycle)
        self._reads_this_cycle = 0
        self._writes_this_cycle = 0

    def port_histograms(self):
        """The lazily-bound port-pressure histograms as a
        ``(read, write)`` pair, or ``(None, None)`` when no enabled
        observer is attached.  Shared by :meth:`commit` and the fast
        engine's post-run fold so both bind the same registry names."""
        if self._obs is None or not self._obs.enabled:
            return None, None
        if self._read_hist is None:
            self._read_hist = self._obs.registry.histogram(
                "regfile.read_ports")
            self._write_hist = self._obs.registry.histogram(
                "regfile.write_ports")
        return self._read_hist, self._write_hist

    def drain(self, cycle: int = -1) -> None:
        """Retire every in-flight write (used when the machine halts, so
        final register state is observable)."""
        for _ in range(self.write_latency):
            self.commit(cycle)

    # -- direct access outside simulation ---------------------------------

    def poke(self, register: int, value) -> None:
        """Set a register directly (test setup / initial state)."""
        self._check(register)
        self._values[register] = value

    def peek(self, register: int):
        """Read a register directly, without port accounting."""
        self._check(register)
        return self._values[register]

    def snapshot(self) -> List[object]:
        """A copy of the committed register state."""
        return list(self._values)
