"""The shared run driver: segmented execution, fault injection, and
hang diagnosis for every engine tier.

``XimdMachine.run`` / ``VliwMachine.run`` delegate here.  The driver
executes the program in *segments*: each segment runs — on whichever
engine tier resolved — up to the nearest of the cycle limit, the next
scheduled fault, and the next hang-check boundary.  Engines already
support stopping at a cycle bound and resuming (their loops check the
limit at the top and write state back on every exit), so segmentation
adds **zero** hot-loop cost and preserves bit-identity by
construction: faults and checks happen only at segment boundaries,
where all three tiers expose exactly the same architectural state.

Hang diagnosis replaces the blind ``max_cycles`` watchdog with two
cheap checks at geometrically spaced boundaries (``hang_check_start``,
then doubling — O(log cycles) checks total):

* **deadlock** (XIMD): every active FU sits on a nop parcel whose
  sync-conditioned branch is untaken under both the visible and the
  steady-state sync vectors and loops back to itself — no future
  cycle can change anything, so the machine is provably stuck;
* **livelock**: the complete architectural state (PCs, registers,
  condition codes, in-flight writes, memory, sync registers, device
  cursors — everything that determines future evolution) recurred
  between two checks, so the machine can never halt.

Both raise :class:`~repro.machine.errors.RunAbort` carrying a
JSON-ready diagnosis: per-FU PCs, the sync wait matrix with its
critical wait chain, open barrier episodes, and (for deadlock) the
exact blocked edges.  Claims are suppressed while outside events are
still due — pending fault-plan entries or input-port arrivals that
have not become ready — since those can legitimately unstick a
spinning loop.
"""

from __future__ import annotations

import hashlib
import time
from typing import List, Optional, Tuple

from ..isa import Condition
from ..obs.critpath import critical_path_from_matrix
from .codegen import resolve_engine
from .condition import evaluate_condition, sync_done_vector
from .devices import InputPort
from .errors import RunAbort, SimulationLimitError
from .memory import DistributedMemory
from .telemetry import fold_run_metrics


def execute_run(machine, kind: str, limit: int, engine: str,
                plan=None) -> Tuple[str, Optional[str]]:
    """Run *machine* to halt, abort, or error.

    Returns ``(engine_used, fallback_reason)``.  Raises
    :class:`RunAbort` when the watchdog trips or a hang is diagnosed;
    machine errors from the datapath propagate unchanged.
    """
    if engine == "reference":
        engine_used, runner, fallback = "reference", None, None
    else:
        engine_used, runner, fallback = resolve_engine(machine, engine, kind)
    machine.engine_used = engine_used
    machine.last_fallback = fallback
    obs_on = machine.obs.enabled
    if fallback is not None and obs_on:
        machine.obs.registry.counter(f"{kind}.engine_fallback").inc()

    events = list(plan.events) if plan is not None else []
    cursor = 0
    while cursor < len(events) and events[cursor].cycle < machine.cycle:
        cursor += 1  # events scheduled before a resumed run's cycle

    hang_on = machine.config.hang_detection
    check_at = machine.config.hang_check_start
    while check_at <= machine.cycle:
        check_at *= 2
    anchor: Optional[Tuple[int, str]] = None
    wall = 0.0

    from ..faults import FaultPlan

    while True:
        applied = False
        while cursor < len(events) and events[cursor].cycle <= machine.cycle:
            record = FaultPlan.apply(machine, events[cursor])
            machine.fault_log.append(record)
            cursor += 1
            applied = True
            if obs_on:
                machine.obs.registry.counter(
                    f"{kind}.faults_injected").inc()
        if applied:
            anchor = None  # faulted state: previous digest is stale

        if machine.halted:
            break

        if machine.cycle >= limit:
            raise _abort(
                machine, kind, "watchdog", limit,
                f"program did not halt within {limit} cycles")

        if hang_on and machine.cycle >= check_at:
            while check_at <= machine.cycle:
                check_at *= 2
            faults_pending = cursor < len(events)
            if kind == "ximd" and not faults_pending:
                edges = _deadlock_scan(machine)
                if edges is not None:
                    active = len(edges)
                    raise _abort(
                        machine, kind, "deadlock", limit,
                        f"sync deadlock at cycle {machine.cycle}: all "
                        f"{active} active FUs blocked on untaken sync "
                        "branches", blocked=edges)
            if not faults_pending and not _ports_pending(machine):
                digest = _state_digest(machine, kind)
                if anchor is not None and anchor[1] == digest:
                    period = machine.cycle - anchor[0]
                    raise _abort(
                        machine, kind, "livelock", limit,
                        f"livelock at cycle {machine.cycle}: machine "
                        f"state recurred (period divides {period} "
                        "cycles)", period=period)
                anchor = (machine.cycle, digest)

        seg = limit
        if hang_on and check_at < seg:
            seg = check_at
        if cursor < len(events) and events[cursor].cycle < seg:
            seg = events[cursor].cycle
        start = time.perf_counter() if obs_on else 0.0
        try:
            if runner is None:
                while not machine.halted and machine.cycle < seg:
                    machine.step()
            else:
                runner(machine, seg)
        except SimulationLimitError:
            pass  # segment boundary, not a verdict — loop decides
        finally:
            if obs_on:
                wall += time.perf_counter() - start

    if runner is None:
        machine.regfile.drain(machine.cycle)
    if obs_on:
        fold_run_metrics(machine.obs, machine, wall)
    return engine_used, fallback


def _abort(machine, kind: str, abort_kind: str, limit: int,
           message: str, blocked=None, period=None) -> RunAbort:
    """Build a :class:`RunAbort` with the structured diagnosis.

    The diagnostics dict deliberately omits which engine tier was
    running: the same hang diagnosed on any tier must compare equal.
    """
    if hasattr(machine, "pcs"):
        pcs = list(machine.pcs)
    else:
        pcs = [machine.pc]
    rows = machine.counters.wait_rows()
    if any(any(row) for row in rows):
        source = "counters"
    elif blocked:
        n = machine.config.n_fus
        rows = [[0] * n for _ in range(n)]
        for edge in blocked:
            for blocker in edge["blockers"]:
                rows[edge["fu"]][blocker] += 1
        source = "instantaneous"
    else:
        source = "empty"
    open_barriers = []
    for fu, state in enumerate(getattr(machine, "_barrier_wait", [])):
        if state is not None:
            open_barriers.append(
                {"fu": fu, "pc": state[0], "since": state[1]})
    diagnostics = {
        "kind": abort_kind,
        "cycle": machine.cycle,
        "limit": limit,
        "pcs": pcs,
        "wait_matrix": rows,
        "wait_matrix_source": source,
        "critical_path": critical_path_from_matrix(rows).to_dict(),
        "open_barriers": open_barriers,
        "faults_applied": len(machine.fault_log),
    }
    if blocked is not None:
        diagnostics["blocked"] = blocked
    if period is not None:
        diagnostics["period"] = period
    abort = RunAbort(message, kind=abort_kind, cycle=machine.cycle,
                     diagnostics=diagnostics)
    machine.last_abort = diagnostics
    return abort


def _deadlock_scan(machine) -> Optional[List[dict]]:
    """The blocked edges if every active FU is provably stuck forever.

    A FU is provably stuck when its fetched parcel does no data work
    (nop), its control is a sync-conditioned branch that stays untaken
    under both the currently visible sync vector and the steady-state
    one (what the registers settle to while nobody moves), and the
    untaken target is its own PC.  If *every* active FU is in that
    state no sync signal can ever change, so the machine is
    deadlocked.  Returns ``None`` when any FU still has a way forward.
    """
    n = machine.config.n_fus
    parcels = [None] * n
    active = []
    for fu in range(n):
        pc = machine.pcs[fu]
        if pc is None:
            continue
        parcel = machine.program.fetch(fu, pc)
        if parcel is None:
            return None  # empty slot: this FU halts next cycle
        parcels[fu] = parcel
        active.append(fu)
    if not active:
        return None
    sync_values = [p.sync if p is not None else None for p in parcels]
    steady = sync_done_vector(sync_values, machine.config.halted_sync_done)
    visible = (machine._prev_ss if machine.config.ss_registered
               else steady)
    cc_start = machine.cc.snapshot()
    edges = []
    for fu in active:
        parcel = parcels[fu]
        if not parcel.data.is_nop:
            return None
        control = parcel.control
        if control is None or not control.condition.uses_sync:
            return None
        if evaluate_condition(control, cc_start, visible):
            return None
        if visible is not steady and evaluate_condition(
                control, cc_start, steady):
            return None  # would unblock once the sync registers settle
        pc = machine.pcs[fu]
        if machine.sequencer.preview(pc, control, False) != pc:
            return None  # untaken path goes somewhere new
        condition = control.condition
        if condition is Condition.SS_DONE:
            blockers: Tuple[int, ...] = (control.index,)
            cond = "ss"
        else:
            members = (control.mask if control.mask is not None
                       else tuple(range(n)))
            if condition is Condition.ALL_SS_DONE:
                blockers = tuple(m for m in members if not steady[m])
                cond = "all"
            else:
                blockers = tuple(members)
                cond = "any"
        edges.append({"fu": fu, "pc": pc, "cond": cond,
                      "blockers": list(blockers)})
    return edges


def _ports_pending(machine) -> bool:
    """True when an input port still has an arrival that has not become
    ready — an outside event that may yet unstick a polling loop, so a
    recurring state digest is not proof of livelock."""
    for device in machine.memory.devices.devices():
        if isinstance(device, InputPort):
            ready = device.next_ready()
            if ready is not None and ready > machine.cycle:
                return True
    return False


def _state_digest(machine, kind: str) -> str:
    """Digest of everything that determines future evolution.

    Includes PCs, sync registers, condition codes, registers,
    in-flight register writes, memory contents, and input-port
    delivery cursors.  Deliberately excludes the cycle counter, stats,
    telemetry counters, and output-port logs: those grow monotonically
    without influencing control flow, and including them would make
    every livelock invisible.
    """
    if kind == "ximd":
        control_state = (tuple(machine.pcs), machine._prev_ss)
    else:
        control_state = (machine.pc,)
    cc = machine.cc
    memory = machine.memory
    if isinstance(memory, DistributedMemory):
        mem_state = tuple(
            tuple(sorted(bank.items())) for bank in memory._banks)
    else:
        mem_state = tuple(sorted(memory._data.items()))
    port_state = tuple(
        device._next for device in memory.devices.devices()
        if isinstance(device, InputPort))
    payload = repr((
        control_state,
        tuple(cc._values),
        tuple(cc._defined),
        tuple(machine.regfile._values),
        tuple(tuple(stage) for stage in machine.regfile._inflight),
        mem_state,
        port_state,
    ))
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()
