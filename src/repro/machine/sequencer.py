"""Per-functional-unit instruction sequencers.

The research model's sequencer (Figure 8) has **no PC incrementer**:
every parcel carries two explicit branch targets and the condition
selects between them.  The hardware prototype (section 4.3) instead uses
a *"traditional sequencer (incrementer + 1 explicit branch target)"*: a
conditional branch falls through to PC+1 when not taken, and the
untaken-target field is ignored.

Both are pure next-PC functions; the XIMD machine instantiates one per
FU, the VLIW machine a single one.
"""

from __future__ import annotations

from typing import Optional

from ..isa import Condition, ControlOp
from ..obs.core import Observer
from .condition import select_target
from .config import SequencerStyle
from .errors import MachineError


class Sequencer:
    """Computes the next PC for one functional unit."""

    def __init__(self, style: SequencerStyle,
                 obs: Optional[Observer] = None):
        self.style = style
        self._obs = obs

    def next_pc(self, pc: int, control: ControlOp, taken: bool) -> int:
        """The address to fetch next, given the condition outcome."""
        if self._obs is not None and self._obs.enabled:
            registry = self._obs.registry
            registry.counter("sequencer.resolved").inc()
            if taken:
                registry.counter("sequencer.taken").inc()
        return self.preview(pc, control, taken)

    def preview(self, pc: int, control: ControlOp, taken: bool) -> int:
        """:meth:`next_pc` without the telemetry side effects.

        Used by the hang-diagnosis scan (would this blocked FU go
        anywhere if its branch stays untaken?) and by fault injection
        (where would a spuriously-taken sync branch land?), neither of
        which is a real sequencer resolution and so must not perturb
        the ``sequencer.*`` counters.
        """
        if self.style is SequencerStyle.EXPLICIT_TWO_TARGET:
            return select_target(control, taken)
        if self.style is SequencerStyle.INCREMENT_ONE_TARGET:
            if control.condition is Condition.ALWAYS_T1:
                return control.target1
            if control.condition is Condition.ALWAYS_T2:
                # "fall through": the prototype's default next address.
                return pc + 1
            return control.target1 if taken else pc + 1
        raise MachineError(f"unknown sequencer style: {self.style}")

    def possible_next(self, pc: int, control: Optional[ControlOp]):
        """All addresses this parcel may transfer control to.

        Used by the SSET trackers' possible-worlds analysis.  A missing
        control op (halt slot) keeps the PC fixed.
        """
        if control is None:
            return (pc,)
        if self.style is SequencerStyle.EXPLICIT_TWO_TARGET:
            return control.possible_targets()
        if control.condition is Condition.ALWAYS_T1:
            return (control.target1,)
        if control.condition is Condition.ALWAYS_T2:
            return (pc + 1,)
        if control.target1 == pc + 1:
            return (pc + 1,)
        return (control.target1, pc + 1)
