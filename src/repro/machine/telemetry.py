"""Tier-0 run telemetry shared by both execution engines.

The observability tiers (see README "Observability"):

* **tier-0** — counter-only: an enabled :class:`~repro.obs.core.Observer`
  with no sinks.  Both the reference interpreters and the fast engine
  accumulate the same flat counters (per-FU cycle-class attribution,
  branch/sync tallies) into a :class:`RunCounters` and fold them — plus
  the op census already kept by
  :class:`~repro.machine.datapath.DatapathStats` — into the metrics
  registry through :func:`fold_run_metrics`, so the registry contents
  are bit-identical whichever engine ran.
* **tier-1** — sampled tracing: ``Observer(sinks, sample_every=N)``
  additionally emits the full typed-event vocabulary every Nth cycle
  (SSET-tracker partitions included: the fast engine reconstructs
  tracker state at sample boundaries by deferred replay).
* **tier-2** — full tracing: sinks at ``sample_every=1`` (or an address
  trace), which still forces the reference path.

Like :class:`~repro.machine.datapath.DatapathStats`, a
:class:`RunCounters` accumulates across multiple ``run()`` calls on the
same machine and is only filled while the machine's observer is
enabled.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Cycle-class codes, ordered to match the characters of
#: :data:`repro.obs.events.FU_CLASS_NAMES`: useful / sync-wait /
#: branch-resolve / idle / halted.
CLS_USEFUL, CLS_SYNC, CLS_BRANCH, CLS_IDLE, CLS_HALTED = range(5)

#: code -> fu_class character (as carried by CycleEvent.fu_class).
CLASS_CHARS = "USBI."

#: code -> spelled-out class name (as used by stall-mix renderings).
CLASS_NAMES = ("useful", "sync_wait", "branch_resolve", "idle", "halted")

#: fu_class character -> code (for the reference interpreters).
CLASS_INDEX: Dict[str, int] = {char: i for i, char in enumerate(CLASS_CHARS)}


class RunCounters:
    """Flat tier-0 counters accumulated inside the step loops.

    ``class_counts`` is one flat list with 5 slots per FU (indexed
    ``fu * 5 + code``) so the fast engine's per-cycle update is a single
    list-index add — no dicts, no allocation.

    ``wait_matrix`` is the sync-edge attribution: a flat ``n_fus *
    n_fus`` list where ``wait_matrix[i * n_fus + j]`` counts the
    sync-wait cycles FU *i* spent blocked on FU *j*'s BUSY signal.  An
    edge is charged only on cycles classed ``sync_wait`` (a nop parcel
    spinning on an untaken sync branch): ``SS_DONE(j)`` charges *j*,
    ``ALL_SS_DONE`` charges every still-BUSY member, and an untaken
    ``ANY_SS_DONE`` — which means *no* member was DONE — charges every
    member.  A VLIW machine has no sync signals, so its matrix stays
    all-zero.

    ``barrier_profiles`` maps ``(pc, fu) -> [count, total_skew,
    max_skew]`` for every ``ALL_SS_DONE`` barrier site: *skew* is the
    cycles between the FU's first arrival at the barrier (its first
    consecutive evaluation of that site) and the release cycle where
    the branch finally took — the paper's §3.2 fork/join path-padding
    imbalance, measured.  Keys are inserted in release order (cycle-
    major, FU-ascending), identically by both engines.
    """

    __slots__ = ("machine_name", "n_fus", "class_counts",
                 "branches_taken", "sync_done", "barriers",
                 "wait_matrix", "barrier_profiles")

    def __init__(self, machine_name: str, n_fus: int):
        self.machine_name = machine_name
        self.n_fus = n_fus
        self.class_counts: List[int] = [0] * (5 * n_fus)
        self.branches_taken = 0
        self.sync_done = 0
        self.barriers = 0
        self.wait_matrix: List[int] = [0] * (n_fus * n_fus)
        self.barrier_profiles: Dict[Tuple[int, int], List[int]] = {}

    def busy_cycles(self) -> List[int]:
        """Per-FU cycles spent non-halted (classes U/S/B/I)."""
        counts = self.class_counts
        return [sum(counts[fu * 5:fu * 5 + 4]) for fu in range(self.n_fus)]

    def wait_rows(self) -> List[List[int]]:
        """The wait matrix as nested per-waiter rows."""
        n = self.n_fus
        matrix = self.wait_matrix
        return [list(matrix[fu * n:(fu + 1) * n]) for fu in range(n)]

    def wait_total(self) -> int:
        """Total sync-edge charges (>= sync_wait cycles: a barrier
        cycle may charge several blockers)."""
        return sum(self.wait_matrix)

    def barrier_profile_rows(self) -> List[Dict[str, object]]:
        """Barrier-site skew profiles as JSON-ready dicts, sorted by
        (pc, fu) — the exact shape of ``RunReport.sync['barriers']``."""
        rows = []
        for (pc, fu), (count, total, peak) in sorted(
                self.barrier_profiles.items()):
            rows.append({
                "pc": pc,
                "fu": fu,
                "count": count,
                "total_skew": total,
                "mean_skew": total / count if count else 0.0,
                "max_skew": peak,
            })
        return rows

    def class_mix(self) -> List[Dict[str, int]]:
        """Per-FU ``{class name: cycles}`` with zero entries dropped and
        keys sorted — the exact shape of ``RunReport.stall_mix``."""
        mix = []
        for fu in range(self.n_fus):
            base = fu * 5
            tally = {CLASS_NAMES[code]: self.class_counts[base + code]
                     for code in range(5) if self.class_counts[base + code]}
            mix.append(dict(sorted(tally.items())))
        return mix


def fold_run_metrics(observer, machine, wall_seconds: float) -> None:
    """Fold one finished ``run()`` into *observer*'s metrics registry.

    Both the reference interpreters and the fast engine call this same
    fold, so the registry contents (everything except the wall-clock
    timer) are bit-identical whichever engine executed the run.  The
    census counters re-fold the machine's cumulative
    :class:`~repro.machine.datapath.DatapathStats`, matching the
    long-standing ``{machine}.cycles`` / ``{machine}.data_ops``
    semantics on repeated runs of one machine.
    """
    registry = observer.registry
    counters = machine.counters
    name = counters.machine_name
    stats = machine.stats
    registry.timer(f"{name}.run_wall").observe(wall_seconds)
    registry.counter(f"{name}.runs").inc()
    registry.counter(f"{name}.cycles").inc(machine.cycle)
    registry.counter(f"{name}.data_ops").inc(stats.data_ops)
    registry.gauge(f"{name}.utilization").set(
        stats.utilization(counters.n_fus))
    for mnemonic, count in stats.per_opcode.items():
        registry.counter(f"{name}.op.{mnemonic}").inc(count)
    class_counts = counters.class_counts
    for fu in range(counters.n_fus):
        base = fu * 5
        for code in range(5):
            value = class_counts[base + code]
            if value:
                registry.counter(
                    f"{name}.class.fu{fu}.{CLASS_NAMES[code]}").inc(value)
    if counters.branches_taken:
        registry.counter(f"{name}.branches_taken").inc(
            counters.branches_taken)
    if counters.sync_done:
        registry.counter(f"{name}.sync_done").inc(counters.sync_done)
    if counters.barriers:
        registry.counter(f"{name}.barriers").inc(counters.barriers)
    wait_matrix = counters.wait_matrix
    n = counters.n_fus
    for waiter in range(n):
        base = waiter * n
        for blocker in range(n):
            value = wait_matrix[base + blocker]
            if value:
                registry.counter(
                    f"{name}.wait.fu{waiter}.on_fu{blocker}").inc(value)
    for (pc, fu), (count, total_skew, _max_skew) in sorted(
            counters.barrier_profiles.items()):
        registry.counter(
            f"{name}.barrier.pc{pc}.fu{fu}.releases").inc(count)
        if total_skew:
            registry.counter(
                f"{name}.barrier.pc{pc}.fu{fu}.skew_cycles").inc(total_skew)
    devices = getattr(machine.memory, "devices", None)
    if devices:
        # the paper's Figure-12 polling loops live or die by port
        # timing; surface each port's census next to the machine's
        for index, (base, _hi, device) in enumerate(devices.ranges()):
            prefix = f"{name}.port{index}@{base:#x}"
            reads = getattr(device, "reads", 0)
            if reads:
                registry.counter(f"{prefix}.reads").inc(reads)
            failed = getattr(device, "polls_failed", 0)
            if failed:
                registry.counter(f"{prefix}.polls_failed").inc(failed)
            delivered = getattr(device, "delivered", 0)
            if delivered:
                registry.counter(f"{prefix}.delivered").inc(delivered)
            writes = getattr(device, "writes", None)
            if isinstance(writes, list) and writes:
                registry.counter(f"{prefix}.writes").inc(len(writes))
