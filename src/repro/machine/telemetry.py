"""Tier-0 run telemetry shared by both execution engines.

The observability tiers (see README "Observability"):

* **tier-0** — counter-only: an enabled :class:`~repro.obs.core.Observer`
  with no sinks.  Both the reference interpreters and the fast engine
  accumulate the same flat counters (per-FU cycle-class attribution,
  branch/sync tallies) into a :class:`RunCounters` and fold them — plus
  the op census already kept by
  :class:`~repro.machine.datapath.DatapathStats` — into the metrics
  registry through :func:`fold_run_metrics`, so the registry contents
  are bit-identical whichever engine ran.
* **tier-1** — sampled tracing: ``Observer(sinks, sample_every=N)``
  additionally emits the full typed-event vocabulary every Nth cycle.
* **tier-2** — full tracing: sinks at ``sample_every=1`` (or an address
  trace / SSET tracker), which still forces the reference path.

Like :class:`~repro.machine.datapath.DatapathStats`, a
:class:`RunCounters` accumulates across multiple ``run()`` calls on the
same machine and is only filled while the machine's observer is
enabled.
"""

from __future__ import annotations

from typing import Dict, List

#: Cycle-class codes, ordered to match the characters of
#: :data:`repro.obs.events.FU_CLASS_NAMES`: useful / sync-wait /
#: branch-resolve / idle / halted.
CLS_USEFUL, CLS_SYNC, CLS_BRANCH, CLS_IDLE, CLS_HALTED = range(5)

#: code -> fu_class character (as carried by CycleEvent.fu_class).
CLASS_CHARS = "USBI."

#: code -> spelled-out class name (as used by stall-mix renderings).
CLASS_NAMES = ("useful", "sync_wait", "branch_resolve", "idle", "halted")

#: fu_class character -> code (for the reference interpreters).
CLASS_INDEX: Dict[str, int] = {char: i for i, char in enumerate(CLASS_CHARS)}


class RunCounters:
    """Flat tier-0 counters accumulated inside the step loops.

    ``class_counts`` is one flat list with 5 slots per FU (indexed
    ``fu * 5 + code``) so the fast engine's per-cycle update is a single
    list-index add — no dicts, no allocation.
    """

    __slots__ = ("machine_name", "n_fus", "class_counts",
                 "branches_taken", "sync_done", "barriers")

    def __init__(self, machine_name: str, n_fus: int):
        self.machine_name = machine_name
        self.n_fus = n_fus
        self.class_counts: List[int] = [0] * (5 * n_fus)
        self.branches_taken = 0
        self.sync_done = 0
        self.barriers = 0

    def busy_cycles(self) -> List[int]:
        """Per-FU cycles spent non-halted (classes U/S/B/I)."""
        counts = self.class_counts
        return [sum(counts[fu * 5:fu * 5 + 4]) for fu in range(self.n_fus)]

    def class_mix(self) -> List[Dict[str, int]]:
        """Per-FU ``{class name: cycles}`` with zero entries dropped and
        keys sorted — the exact shape of ``RunReport.stall_mix``."""
        mix = []
        for fu in range(self.n_fus):
            base = fu * 5
            tally = {CLASS_NAMES[code]: self.class_counts[base + code]
                     for code in range(5) if self.class_counts[base + code]}
            mix.append(dict(sorted(tally.items())))
        return mix


def fold_run_metrics(observer, machine, wall_seconds: float) -> None:
    """Fold one finished ``run()`` into *observer*'s metrics registry.

    Both the reference interpreters and the fast engine call this same
    fold, so the registry contents (everything except the wall-clock
    timer) are bit-identical whichever engine executed the run.  The
    census counters re-fold the machine's cumulative
    :class:`~repro.machine.datapath.DatapathStats`, matching the
    long-standing ``{machine}.cycles`` / ``{machine}.data_ops``
    semantics on repeated runs of one machine.
    """
    registry = observer.registry
    counters = machine.counters
    name = counters.machine_name
    stats = machine.stats
    registry.timer(f"{name}.run_wall").observe(wall_seconds)
    registry.counter(f"{name}.runs").inc()
    registry.counter(f"{name}.cycles").inc(machine.cycle)
    registry.counter(f"{name}.data_ops").inc(stats.data_ops)
    registry.gauge(f"{name}.utilization").set(
        stats.utilization(counters.n_fus))
    for mnemonic, count in stats.per_opcode.items():
        registry.counter(f"{name}.op.{mnemonic}").inc(count)
    class_counts = counters.class_counts
    for fu in range(counters.n_fus):
        base = fu * 5
        for code in range(5):
            value = class_counts[base + code]
            if value:
                registry.counter(
                    f"{name}.class.fu{fu}.{CLASS_NAMES[code]}").inc(value)
    if counters.branches_taken:
        registry.counter(f"{name}.branches_taken").inc(
            counters.branches_taken)
    if counters.sync_done:
        registry.counter(f"{name}.sync_done").inc(counters.sync_done)
    if counters.barriers:
        registry.counter(f"{name}.barriers").inc(counters.barriers)
