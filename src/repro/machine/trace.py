"""Address traces in the style of the paper's Figure 10.

Figure 10 shows, for each cycle: the address each FU executes from, the
condition-code register contents *"as they exist at the beginning of
each cycle"*, and the XIMD partition.  :class:`AddressTrace` records the
same columns (plus the sync signals asserted during the cycle) and
renders them as a fixed-width table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .partition import Partition, format_partition


@dataclass(frozen=True)
class TraceRecord:
    """One row of an address trace."""

    cycle: int
    #: PC per FU at the start of the cycle; None = halted.
    pcs: Tuple[Optional[int], ...]
    #: condition codes at the start of the cycle, e.g. ``"TTFX"``.
    condition_codes: str
    #: sync signals asserted during the cycle, ``"B"``/``"D"`` per FU.
    sync_signals: str
    #: the SSET partition, or None when tracking is disabled.
    partition: Optional[Partition] = None

    def pc_text(self, fu: int) -> str:
        pc = self.pcs[fu]
        return "--:" if pc is None else f"{pc:02x}:"

    def partition_text(self) -> str:
        return "" if self.partition is None else format_partition(self.partition)


@dataclass
class AddressTrace:
    """A full execution's trace with Figure 10 rendering."""

    n_fus: int
    records: List[TraceRecord] = field(default_factory=list)

    def append(self, record: TraceRecord) -> None:
        self.records.append(record)

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index) -> TraceRecord:
        return self.records[index]

    def format(self, show_sync: bool = False,
               comments: Optional[Sequence[str]] = None) -> str:
        """Render the trace as a Figure 10 style table."""
        headers = ["Cycle"] + [f"FU{i}" for i in range(self.n_fus)]
        headers += ["CC"]
        if show_sync:
            headers += ["SS"]
        headers += ["Partition"]
        if comments is not None:
            headers += ["Comment"]
        rows = [headers]
        for record in self.records:
            row = [f"Cycle {record.cycle}"]
            row += [record.pc_text(fu) for fu in range(self.n_fus)]
            row += [record.condition_codes]
            if show_sync:
                row += [record.sync_signals]
            row += [record.partition_text()]
            if comments is not None:
                comment = (comments[record.cycle]
                           if record.cycle < len(comments) else "")
                row += [comment]
            rows.append(row)
        widths = [max(len(row[col]) for row in rows)
                  for col in range(len(headers))]
        lines = []
        for i, row in enumerate(rows):
            lines.append("  ".join(cell.ljust(width)
                                   for cell, width in zip(row, widths)).rstrip())
            if i == 0:
                lines.append("-" * len(lines[0]))
        return "\n".join(lines)

    def partitions(self) -> List[Optional[Partition]]:
        """The partition column, one entry per cycle."""
        return [record.partition for record in self.records]

    def pcs_matrix(self) -> List[Tuple[Optional[int], ...]]:
        """The PC columns, one tuple per cycle."""
        return [record.pcs for record in self.records]
