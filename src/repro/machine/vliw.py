"""``vsim`` — the companion VLIW simulator.

The paper's section 4.1: *"A companion simulator, vsim, simulates a VLIW
processor with similar characteristics."*  The VLIW machine shares the
XIMD data path (functional units, global register file, condition-code
registers, idealized memory) but has the classical single control path
of Figure 4: one program counter, one sequencer, and therefore one
control operation per cycle for the whole machine.  Condition codes from
every functional unit feed the single sequencer, so a branch may test
any ``CC_j``; synchronization signals do not exist.

Program representation: the same per-FU-column :class:`Program`, with
the convention that the machine-wide control operation of address *a* is
the control op of the lowest-numbered FU whose parcel at *a* carries
one.  (The assembler's VLIW mode emits it on FU0.)  Parcels on other
columns may carry copies — they are ignored, matching the paper's remark
that running VLIW code on an XIMD just duplicates the control fields.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..isa import Parcel
from ..obs.core import Observer, current_observer
from ..obs.events import BranchEvent, CycleEvent
from .condition import ConditionCodes, evaluate_condition
from .config import MachineConfig, MemoryStyle, research_config
from .datapath import DatapathStats, execute_data_op
from .devices import DeviceMap
from .errors import MachineError, ProgramError
from .memory import DistributedMemory, SharedMemory
from .runtime import execute_run
from .program import Program
from .register_file import RegisterFile
from .sequencer import Sequencer
from .telemetry import CLASS_INDEX, RunCounters
from .trace import AddressTrace, TraceRecord
from .ximd import ExecutionResult


class VliwMachine:
    """A VLIW processor with the XIMD-1 data path (Figure 4 model)."""

    def __init__(self, program: Program,
                 config: Optional[MachineConfig] = None,
                 devices: Optional[DeviceMap] = None,
                 trace: bool = False,
                 obs: Optional[Observer] = None):
        self.config = config if config is not None else research_config(
            program.width)
        if program.width != self.config.n_fus:
            raise ProgramError(
                f"program has {program.width} columns but machine has "
                f"{self.config.n_fus} FUs")
        self.program = program
        self.obs = obs if obs is not None else current_observer()
        self.sequencer = Sequencer(self.config.sequencer, obs=self.obs)
        self.regfile = RegisterFile(
            self.config.n_registers,
            write_latency=self.config.write_latency,
            max_read_ports=self.config.max_read_ports,
            max_write_ports=self.config.max_write_ports,
            detect_conflicts=self.config.detect_register_conflicts,
            obs=self.obs,
        )
        self.cc = ConditionCodes(self.config.n_fus)
        device_map = devices if devices is not None else DeviceMap()
        if self.config.memory is MemoryStyle.SHARED:
            self.memory = SharedMemory(
                self.config.memory_words,
                detect_conflicts=self.config.detect_memory_conflicts,
                devices=device_map,
            )
        else:
            self.memory = DistributedMemory(
                self.config.n_fus, self.config.memory_words,
                devices=device_map,
            )
        self.pc: Optional[int] = program.entry
        self.cycle = 0
        self.stats = DatapathStats()
        #: tier-0 telemetry counters, filled (by either engine) while
        #: the observer is enabled; cumulative like stats.
        self.counters = RunCounters("vliw", self.config.n_fus)
        self.trace: Optional[AddressTrace] = (
            AddressTrace(self.config.n_fus) if trace else None)
        #: pre-decoded program for the fast engine (built lazily, cached).
        self._decoded = None
        #: which execution path the last run() took ("fast"/"reference").
        self.engine_used: Optional[str] = None
        #: cumulative fault-injection records (see repro.faults).
        self.fault_log: List[dict] = []
        #: diagnostics dict of the last RunAbort, or None.
        self.last_abort: Optional[dict] = None
        #: why the last run() degraded engine tiers, or None.
        self.last_fallback: Optional[str] = None

    @property
    def halted(self) -> bool:
        return self.pc is None

    def _machine_control(self, parcels: List[Optional[Parcel]]):
        """The single machine-wide control op at the current address.

        Returns ``(fu, control)`` — the lowest-numbered FU carrying the
        control fields (always FU0 for assembler-emitted VLIW code).
        """
        for fu, parcel in enumerate(parcels):
            if parcel is not None and parcel.control is not None:
                control = parcel.control
                if control.condition.uses_sync:
                    raise MachineError(
                        "VLIW machine has no synchronization signals "
                        f"(at address {self.pc:#04x})")
                return fu, control
        return 0, None

    def step(self) -> None:
        """Execute one wide instruction."""
        if self.pc is None:
            return
        n = self.config.n_fus
        parcels: List[Optional[Parcel]] = [
            self.program.fetch(fu, self.pc) for fu in range(n)
        ]
        if all(p is None for p in parcels):
            self.pc = None
            return

        cc_start = self.cc.snapshot()
        obs_on = self.obs.enabled
        # tier-1 sampling: typed events only every sample_every cycles;
        # the counter tallies below stay unsampled.
        emit_on = obs_on and self.cycle % self.obs.sample_every == 0
        if self.trace is not None:
            self.trace.append(TraceRecord(
                cycle=self.cycle,
                pcs=tuple([self.pc] * n),
                condition_codes=self.cc.format(),
                sync_signals="-" * n,
                partition=(tuple(range(n)),),
            ))

        ops_before = self.stats.data_ops
        for fu in range(n):
            parcel = parcels[fu]
            if parcel is None:
                continue
            execute_data_op(fu, parcel.data, self.regfile, self.cc,
                            self.memory, self.cycle, self.stats)

        # cycle attribution (observe-only): the VLIW machine has no sync
        # signals, so a nop slot is idle unless it carries the machine's
        # single control op (branch-resolve).
        fu_class: List[str] = []
        fu_ops: List[Optional[str]] = []
        if obs_on:
            for parcel in parcels:
                if parcel is None:
                    fu_class.append(".")
                    fu_ops.append(None)
                elif parcel.data.is_nop:
                    fu_class.append("I")
                    fu_ops.append(None)
                else:
                    fu_class.append("U")
                    fu_ops.append(parcel.data.opcode.mnemonic)

        control_fu, control = self._machine_control(parcels)
        if obs_on and control is not None and fu_class[control_fu] == "I":
            fu_class[control_fu] = "B"
        if control is None:
            next_pc: Optional[int] = None
        else:
            taken = evaluate_condition(control, cc_start, ())
            if control.is_unconditional:
                self.stats.branches_unconditional += 1
            else:
                self.stats.branches_conditional += 1
            next_pc = self.sequencer.next_pc(self.pc, control, taken)
            if obs_on:
                if taken:
                    self.counters.branches_taken += 1
                if emit_on:
                    self.obs.emit(BranchEvent(
                        machine="vliw", cycle=self.cycle, fu=control_fu,
                        pc=self.pc,
                        branch_kind=("uncond" if control.is_unconditional
                                     else "cond"),
                        taken=taken, target=next_pc))

        if obs_on:
            class_counts = self.counters.class_counts
            for fu, char in enumerate(fu_class):
                class_counts[fu * 5 + CLASS_INDEX[char]] += 1
        if emit_on:
            self.obs.emit(CycleEvent(
                machine="vliw", cycle=self.cycle,
                pcs=tuple([self.pc] * n), cc=self.cc.format(),
                ss="-" * n, partition=(tuple(range(n)),),
                data_ops=self.stats.data_ops - ops_before,
                fu_class="".join(fu_class), ops=tuple(fu_ops)))

        self.regfile.commit(self.cycle)
        self.cc.commit()
        self.memory.commit(self.cycle)
        self.pc = next_pc
        self.cycle += 1
        self.stats.cycles += 1

    def run(self, max_cycles: Optional[int] = None,
            engine: str = "auto", faults=None) -> ExecutionResult:
        """Run until the machine halts (or the watchdog/hang monitor
        trips).

        *engine* and *faults* work as in :meth:`XimdMachine.run`:
        ``"auto"`` prefers the per-program compiled loop, then the
        fast path, then the reference :meth:`step` loop, degrading
        (with the reason recorded) when a tier fails to build;
        ``"specialized"`` and ``"fast"`` demand their tier and raise
        :class:`MachineError` when it is unavailable or broken.
        """
        limit = max_cycles if max_cycles is not None else self.config.max_cycles
        if engine not in ("auto", "specialized", "fast", "reference"):
            raise ValueError(f"unknown engine: {engine!r}")
        faults_before = len(self.fault_log)
        _, fallback = execute_run(self, "vliw", limit, engine, faults)
        final: Tuple[Optional[int], ...] = tuple([None] * self.config.n_fus)
        return ExecutionResult(
            cycles=self.cycle,
            halted=True,
            registers=self.regfile.snapshot(),
            stats=self.stats,
            trace=self.trace,
            final_pcs=final,
            fallback_reason=fallback,
            faults=tuple(self.fault_log[faults_before:]),
        )


def run_vliw(program: Program, *,
             config: Optional[MachineConfig] = None,
             registers: Optional[dict] = None,
             memory_init: Optional[dict] = None,
             devices: Optional[DeviceMap] = None,
             trace: bool = False,
             obs: Optional[Observer] = None,
             max_cycles: Optional[int] = None,
             faults=None) -> ExecutionResult:
    """One-call convenience wrapper mirroring :func:`run_ximd`."""
    machine = VliwMachine(program, config=config, devices=devices,
                          trace=trace, obs=obs)
    for index, value in (registers or {}).items():
        machine.regfile.poke(index, value)
    for address, value in (memory_init or {}).items():
        machine.memory.poke(address, value)
    return machine.run(max_cycles, faults=faults)
