"""``xsim`` — the XIMD-1 behavioral simulator.

Reimplements the paper's xsim (section 4.1): an XIMD machine with one
sequencer, one condition-code register, and one synchronization signal
per functional unit, a global multiported register file, and idealized
single-cycle shared memory.

Cycle semantics (validated against the Figure 10 trace):

1. every non-halted FU fetches the parcel addressed by its PC; a fetch
   from an empty slot halts the FU;
2. the sync signal ``SS_i`` visible this cycle is the fetched parcel's
   sync field (combinational distribution; a registered variant uses the
   previous cycle's values);
3. data operations execute reading start-of-cycle register/memory/CC
   state; results commit at end of cycle (after ``write_latency - 1``
   further cycles for the pipelined prototype);
4. each FU's control operation selects its next PC from its two branch
   targets using start-of-cycle condition codes and this cycle's sync
   signals; a parcel with no control fields halts the FU after its data
   op;
5. all state commits; the machine stops when every FU has halted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..isa import Condition, Parcel, SyncValue
from ..obs.core import Observer, current_observer
from ..obs.events import (
    BranchEvent,
    CycleEvent,
    PartitionChangeEvent,
    SyncEdgeEvent,
    SyncEvent,
)
from .condition import ConditionCodes, evaluate_condition, sync_done_vector
from .config import MachineConfig, MemoryStyle, research_config
from .datapath import DatapathStats, execute_data_op
from .devices import DeviceMap
from .errors import ProgramError
from .memory import DistributedMemory, SharedMemory
from .runtime import execute_run
from .partition import (
    AdaptiveSSETTracker,
    ExactSSETTracker,
    HeuristicSSETTracker,
)
from .program import Program
from .register_file import RegisterFile
from .sequencer import Sequencer
from .telemetry import CLASS_INDEX, RunCounters
from .trace import AddressTrace, TraceRecord


class TrackerKind(enum.Enum):
    """Which SSET tracker (if any) an execution should run."""

    NONE = "none"
    EXACT = "exact"
    HEURISTIC = "heuristic"
    ADAPTIVE = "adaptive"


@dataclass
class ExecutionResult:
    """Outcome of a simulation run."""

    cycles: int
    halted: bool
    registers: List[object]
    stats: DatapathStats
    trace: Optional[AddressTrace]
    final_pcs: Tuple[Optional[int], ...]
    #: why run() degraded to a lower engine tier (None: none needed).
    fallback_reason: Optional[str] = None
    #: fault-log records injected during *this* run (see repro.faults).
    faults: Tuple[dict, ...] = ()

    def register(self, index: int):
        """Final committed value of register *index*."""
        return self.registers[index]


class XimdMachine:
    """The XIMD-1 research machine (and, via config, the prototype)."""

    def __init__(self, program: Program,
                 config: Optional[MachineConfig] = None,
                 devices: Optional[DeviceMap] = None,
                 trace: bool = False,
                 tracker: TrackerKind = TrackerKind.NONE,
                 obs: Optional[Observer] = None):
        self.config = config if config is not None else research_config(
            program.width)
        if program.width != self.config.n_fus:
            raise ProgramError(
                f"program has {program.width} columns but machine has "
                f"{self.config.n_fus} FUs")
        self.program = program
        self.obs = obs if obs is not None else current_observer()
        self.sequencer = Sequencer(self.config.sequencer, obs=self.obs)
        self.regfile = RegisterFile(
            self.config.n_registers,
            write_latency=self.config.write_latency,
            max_read_ports=self.config.max_read_ports,
            max_write_ports=self.config.max_write_ports,
            detect_conflicts=self.config.detect_register_conflicts,
            obs=self.obs,
        )
        self.cc = ConditionCodes(self.config.n_fus)
        device_map = devices if devices is not None else DeviceMap()
        if self.config.memory is MemoryStyle.SHARED:
            self.memory = SharedMemory(
                self.config.memory_words,
                detect_conflicts=self.config.detect_memory_conflicts,
                devices=device_map,
            )
        else:
            self.memory = DistributedMemory(
                self.config.n_fus, self.config.memory_words,
                devices=device_map,
            )
        self.pcs: List[Optional[int]] = [program.entry] * self.config.n_fus
        self.cycle = 0
        self.stats = DatapathStats()
        #: tier-0 telemetry counters, filled (by either engine) while
        #: the observer is enabled; cumulative like stats.
        self.counters = RunCounters("ximd", self.config.n_fus)
        self.trace: Optional[AddressTrace] = (
            AddressTrace(self.config.n_fus) if trace else None)
        self.tracker = self._make_tracker(tracker)
        #: pre-decoded program for the fast engine (built lazily, cached;
        #: programs are immutable once assembled).
        self._decoded = None
        #: which execution path the last run() took ("fast"/"reference").
        self.engine_used: Optional[str] = None
        #: cumulative fault-injection records (see repro.faults).
        self.fault_log: List[dict] = []
        #: diagnostics dict of the last RunAbort, or None.
        self.last_abort: Optional[dict] = None
        #: why the last run() degraded engine tiers, or None.
        self.last_fallback: Optional[str] = None
        #: last partition emitted, for fork/join change events.
        self._last_partition: Optional[object] = None
        # Previous cycle's sync vector, for the registered-SS variant.
        # Before cycle 0 no FU has asserted anything, which is the same
        # state a halted FU presents — so the reset registers hold the
        # halted contribution (DONE under the default halted_sync_done,
        # matching the combinational variant's treatment of idle FUs).
        self._prev_ss: Tuple[bool, ...] = tuple(
            [self.config.halted_sync_done] * self.config.n_fus)
        # Per-FU open barrier episode, (pc, first_arrival_cycle) or
        # None, feeding counters.barrier_profiles.  Lives on the
        # machine (like _prev_ss) so mid-run resumes — and the fast
        # engine — continue the same episode.
        self._barrier_wait: List[Optional[Tuple[int, int]]] = (
            [None] * self.config.n_fus)

    def _make_tracker(self, kind: TrackerKind):
        if kind is TrackerKind.NONE:
            return None
        if kind is TrackerKind.EXACT:
            exact = ExactSSETTracker(
                self.program, self.sequencer, self.config.halted_sync_done)
            return _ExactAdapter(exact)
        if kind is TrackerKind.HEURISTIC:
            return HeuristicSSETTracker(
                self.program, self.sequencer, self.config.halted_sync_done)
        return AdaptiveSSETTracker(
            self.program, self.sequencer, self.config.halted_sync_done)

    @property
    def halted(self) -> bool:
        """True once every FU has halted."""
        return all(pc is None for pc in self.pcs)

    def step(self) -> None:
        """Execute one machine cycle."""
        n = self.config.n_fus
        parcels: List[Optional[Parcel]] = [None] * n
        for fu in range(n):
            pc = self.pcs[fu]
            if pc is None:
                continue
            parcel = self.program.fetch(fu, pc)
            if parcel is None:
                self.pcs[fu] = None  # fetched an empty slot: halt
                continue
            parcels[fu] = parcel

        if self.halted:
            return

        sync_values = [p.sync if p is not None else None for p in parcels]
        current_ss = sync_done_vector(
            sync_values, self.config.halted_sync_done)
        visible_ss = self._prev_ss if self.config.ss_registered else current_ss
        cc_start = self.cc.snapshot()

        obs_on = self.obs.enabled
        # tier-1 sampling: typed events are emitted only every
        # sample_every cycles; counters/metrics below stay unsampled.
        emit_on = obs_on and self.cycle % self.obs.sample_every == 0
        partition = None
        cc_text = ss_text = ""
        pcs_start: Tuple[Optional[int], ...] = ()
        if obs_on or self.trace is not None or self.tracker is not None:
            partition = (self.tracker.partition(self._pc_vector())
                         if self.tracker is not None else None)
            if emit_on or self.trace is not None:
                cc_text = self.cc.format()
                ss_text = "".join(
                    "-" if p is None else
                    ("D" if p.sync is SyncValue.DONE else "B")
                    for p in parcels)
                pcs_start = tuple(self.pcs)
            if self.trace is not None:
                self.trace.append(TraceRecord(
                    cycle=self.cycle,
                    pcs=pcs_start,
                    condition_codes=cc_text,
                    sync_signals=ss_text,
                    partition=partition,
                ))

        # --- data path -----------------------------------------------------
        ops_before = self.stats.data_ops
        for fu in range(n):
            parcel = parcels[fu]
            if parcel is None:
                continue
            execute_data_op(fu, parcel.data, self.regfile, self.cc,
                            self.memory, self.cycle, self.stats)

        # --- control path ----------------------------------------------------
        actual_pcs = self._pc_vector()
        next_pcs: List[Optional[int]] = list(self.pcs)
        barrier_taken = [False] * n
        barrier_waiting = [False] * n if emit_on else None
        # cycle attribution (observe-only): why each FU spent this cycle
        fu_class = ["."] * n if obs_on else None
        fu_ops: List[Optional[str]] = [None] * n if obs_on else None
        for fu in range(n):
            parcel = parcels[fu]
            if parcel is None:
                continue
            useful = not parcel.data.is_nop
            if obs_on and useful:
                fu_class[fu] = "U"
                fu_ops[fu] = parcel.data.opcode.mnemonic
            control = parcel.control
            if control is None:
                if obs_on and not useful:
                    fu_class[fu] = "I"
                next_pcs[fu] = None  # halt after final data op
                continue
            taken = evaluate_condition(control, cc_start, visible_ss)
            condition = control.condition
            blockers: Tuple[int, ...] = ()
            edge_cond = ""
            if obs_on and not useful:
                # a nop parcel spent purely on control: spinning on an
                # untaken sync branch is a sync wait, anything else is
                # branch-resolve overhead.
                if condition.uses_sync and not taken:
                    fu_class[fu] = "S"
                    # sync-edge attribution: which BUSY signals held
                    # this FU?  SS_DONE names its blocker; an untaken
                    # ALL charges every still-BUSY member; an untaken
                    # ANY means *no* member was DONE, so all of them.
                    if condition is Condition.SS_DONE:
                        blockers = (control.index,)
                        edge_cond = "ss"
                    else:
                        members = (control.mask if control.mask is not None
                                   else tuple(range(n)))
                        if condition is Condition.ALL_SS_DONE:
                            blockers = tuple(m for m in members
                                             if not visible_ss[m])
                            edge_cond = "all"
                        else:
                            blockers = members
                            edge_cond = "any"
                    wait_matrix = self.counters.wait_matrix
                    for blocker in blockers:
                        wait_matrix[fu * n + blocker] += 1
                else:
                    fu_class[fu] = "B"
            if control.is_unconditional:
                self.stats.branches_unconditional += 1
            else:
                self.stats.branches_conditional += 1
                if condition.uses_sync:
                    self.stats.branches_sync += 1
            if condition is Condition.ALL_SS_DONE:
                if taken:
                    barrier_taken[fu] = True
                elif emit_on:
                    barrier_waiting[fu] = True
                if obs_on:
                    self._track_barrier(fu, taken)
            next_pcs[fu] = self.sequencer.next_pc(self.pcs[fu], control, taken)
            if obs_on:
                if taken:
                    self.counters.branches_taken += 1
                if emit_on:
                    branch_kind = ("uncond" if control.is_unconditional
                                   else "sync" if condition.uses_sync
                                   else "cond")
                    self.obs.emit(BranchEvent(
                        machine="ximd", cycle=self.cycle, fu=fu,
                        pc=self.pcs[fu], branch_kind=branch_kind,
                        taken=taken, target=next_pcs[fu]))
                    for blocker in blockers:
                        self.obs.emit(SyncEdgeEvent(
                            machine="ximd", cycle=self.cycle, waiter=fu,
                            blocker=blocker, pc=self.pcs[fu],
                            cond=edge_cond))

        if self.tracker is not None:
            self.tracker.step(actual_pcs,
                              [pc if pc is not None else -1
                               for pc in next_pcs],
                              parcels, barrier_taken)

        if obs_on:
            counters = self.counters
            class_counts = counters.class_counts
            for fu, char in enumerate(fu_class):
                class_counts[fu * 5 + CLASS_INDEX[char]] += 1
            for fu in range(n):
                parcel = parcels[fu]
                if parcel is not None and parcel.sync is SyncValue.DONE:
                    counters.sync_done += 1
                if barrier_taken[fu]:
                    counters.barriers += 1
        if emit_on:
            self.obs.emit(CycleEvent(
                machine="ximd", cycle=self.cycle, pcs=pcs_start,
                cc=cc_text, ss=ss_text, partition=partition,
                data_ops=self.stats.data_ops - ops_before,
                fu_class="".join(fu_class), ops=tuple(fu_ops)))
            for fu in range(n):
                parcel = parcels[fu]
                if parcel is not None and parcel.sync is SyncValue.DONE:
                    self.obs.emit(SyncEvent(
                        machine="ximd", cycle=self.cycle, fu=fu,
                        pc=pcs_start[fu], what="done"))
                if barrier_waiting[fu]:
                    self.obs.emit(SyncEvent(
                        machine="ximd", cycle=self.cycle, fu=fu,
                        pc=pcs_start[fu], what="barrier_wait"))
                if barrier_taken[fu]:
                    self.obs.emit(SyncEvent(
                        machine="ximd", cycle=self.cycle, fu=fu,
                        pc=pcs_start[fu], what="barrier"))
            if partition is not None and partition != self._last_partition:
                self.obs.emit(PartitionChangeEvent(
                    machine="ximd", cycle=self.cycle, partition=partition,
                    n_ssets=len(partition)))
                self._last_partition = partition

        # --- commit -----------------------------------------------------------
        self.regfile.commit(self.cycle)
        self.cc.commit()
        self.memory.commit(self.cycle)
        self._prev_ss = current_ss
        self.pcs = next_pcs
        self.cycle += 1
        self.stats.cycles += 1

    def _pc_vector(self) -> List[int]:
        """PCs with halted FUs frozen at -1 (for the trackers)."""
        return [pc if pc is not None else -1 for pc in self.pcs]

    def _track_barrier(self, fu: int, taken: bool) -> None:
        """Advance FU *fu*'s barrier episode at an ALL_SS_DONE
        evaluation this cycle (release when *taken*)."""
        pc = self.pcs[fu]
        state = self._barrier_wait[fu]
        if state is not None and state[0] != pc:
            state = None  # moved to a different barrier site: abandon
        if taken:
            start = state[1] if state is not None else self.cycle
            skew = self.cycle - start
            profiles = self.counters.barrier_profiles
            entry = profiles.get((pc, fu))
            if entry is None:
                profiles[(pc, fu)] = [1, skew, skew]
            else:
                entry[0] += 1
                entry[1] += skew
                if skew > entry[2]:
                    entry[2] = skew
            self._barrier_wait[fu] = None
        else:
            self._barrier_wait[fu] = (state if state is not None
                                      else (pc, self.cycle))

    def run(self, max_cycles: Optional[int] = None,
            engine: str = "auto", faults=None) -> ExecutionResult:
        """Run until every FU halts (or the watchdog/hang monitor trips).

        *engine* selects the execution path: ``"auto"`` (default)
        prefers the per-program compiled loop from
        :mod:`repro.machine.codegen`, falls back to the pre-decoded
        fast path, then to the reference interpreter — degrading (and
        recording why in :attr:`ExecutionResult.fallback_reason`) when
        a tier that should work fails to build; ``"reference"`` forces
        the cycle-by-cycle :meth:`step` loop; ``"specialized"`` and
        ``"fast"`` demand their tier and raise :class:`MachineError`
        when it is unavailable or broken.  Every path produces
        bit-identical results; :attr:`engine_used` records which one
        ran.

        *faults* is an optional :class:`repro.faults.FaultPlan`
        applied deterministically at segment boundaries — identically
        on every engine tier (see :mod:`repro.machine.runtime`).
        """
        limit = max_cycles if max_cycles is not None else self.config.max_cycles
        if engine not in ("auto", "specialized", "fast", "reference"):
            raise ValueError(f"unknown engine: {engine!r}")
        faults_before = len(self.fault_log)
        _, fallback = execute_run(self, "ximd", limit, engine, faults)
        return ExecutionResult(
            cycles=self.cycle,
            halted=True,
            registers=self.regfile.snapshot(),
            stats=self.stats,
            trace=self.trace,
            final_pcs=tuple(self.pcs),
            fallback_reason=fallback,
            faults=tuple(self.fault_log[faults_before:]),
        )


class _ExactAdapter:
    """Give :class:`ExactSSETTracker` the adaptive tracker's interface."""

    def __init__(self, exact: ExactSSETTracker):
        self._exact = exact

    def partition(self, actual_pcs):
        return self._exact.partition(actual_pcs)

    def step(self, actual_pcs, next_pcs, parcels, barrier_taken):
        self._exact.step()


def run_ximd(program: Program, *,
             config: Optional[MachineConfig] = None,
             registers: Optional[dict] = None,
             memory_init: Optional[dict] = None,
             devices: Optional[DeviceMap] = None,
             trace: bool = False,
             tracker: TrackerKind = TrackerKind.NONE,
             obs: Optional[Observer] = None,
             max_cycles: Optional[int] = None,
             faults=None) -> ExecutionResult:
    """One-call convenience wrapper: build, initialize, run.

    Args:
        registers: register index -> initial value.
        memory_init: address -> initial word (bank 0 when distributed).
        faults: optional :class:`repro.faults.FaultPlan` to inject.
    """
    machine = XimdMachine(program, config=config, devices=devices,
                          trace=trace, tracker=tracker, obs=obs)
    for index, value in (registers or {}).items():
        machine.regfile.poke(index, value)
    for address, value in (memory_init or {}).items():
        machine.memory.poke(address, value)
    return machine.run(max_cycles, faults=faults)
