"""The section 2 state-machine architecture models.

SISD (Figure 3), SIMD, VLIW (Figure 4), XIMD (Figure 5), and MIMD
(Figure 6), built on a shared abstract data path, plus the emulation
constructions that exhibit XIMD as a superset of the others.
"""

from .equivalence import (
    duplicate_control,
    embed_mimd_in_ximd,
    embed_simd_in_vliw,
    embed_sisd_in_simd,
    embed_vliw_in_ximd,
    equivalent_runs,
    is_mimd_expressible,
    is_vliw_expressible,
)
from .mimd import MimdMachine, MimdProgram
from .simd import SimdMachine, SimdProgram
from .sisd import SisdMachine, SisdProgram
from .statemachine import (
    DP_REGISTERS,
    DatapathUnit,
    HALT,
    MicroKind,
    MicroOp,
    ModelRunResult,
    NOP_OP,
    NextKind,
    NextSpec,
    goto,
    if_cc,
)
from .vliw_model import VliwModelMachine, VliwModelProgram
from .ximd_model import XimdModelMachine, XimdModelProgram

__all__ = [
    "DP_REGISTERS",
    "DatapathUnit",
    "HALT",
    "MicroKind",
    "MicroOp",
    "MimdMachine",
    "MimdProgram",
    "ModelRunResult",
    "NOP_OP",
    "NextKind",
    "NextSpec",
    "SimdMachine",
    "SimdProgram",
    "SisdMachine",
    "SisdProgram",
    "VliwModelMachine",
    "VliwModelProgram",
    "XimdModelMachine",
    "XimdModelProgram",
    "duplicate_control",
    "embed_mimd_in_ximd",
    "embed_simd_in_vliw",
    "embed_sisd_in_simd",
    "embed_vliw_in_ximd",
    "equivalent_runs",
    "goto",
    "if_cc",
    "is_mimd_expressible",
    "is_vliw_expressible",
]
