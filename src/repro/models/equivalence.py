"""The paper's emulation theorems as executable constructions.

Section 2.1 establishes a functional hierarchy:

* *"It is easily shown that VLIW is a functional superset of SIMD.  If
  for a given program the functions λ1 ... λn are identical and equal to
  the function λ of a corresponding SIMD machine, then the two machines
  are functionally equivalent."* — :func:`embed_simd_in_vliw`.
* *"If for a given program, the functions δ1 ... δn are identical and
  the initial values of the state variables S1 ... Sn are identical,
  then the XIMD machine will be the functional equivalent of a VLIW
  machine."* — :func:`embed_vliw_in_ximd`.
* *"By selecting functions for δ1 ... δn which disregard the state of
  other functional units, XIMD can be a functional equivalent of this
  MIMD model as well."* — :func:`embed_mimd_in_ximd`.

Each embedding returns a program for the more general model;
:func:`equivalent_runs` checks that two runs produced identical
data-path trajectories.  :func:`duplicate_control` is the concrete-
machine counterpart of :func:`embed_vliw_in_ximd`: it turns a single-
stream :class:`~repro.machine.program.Program` into XIMD form by
duplicating the machine-wide control fields into every parcel — exactly
the paper's recipe for running VLIW code on an XIMD (Example 1).
"""

from __future__ import annotations

from typing import Optional

from ..isa import Parcel
from ..machine.program import Program
from .mimd import MimdProgram
from .simd import SimdProgram
from .sisd import SisdProgram
from .statemachine import ModelRunResult, NOP_OP
from .vliw_model import VliwModelProgram
from .ximd_model import XimdModelProgram


def embed_sisd_in_simd(program: SisdProgram, n_units: int = 1) -> SimdProgram:
    """An SISD machine is the one-unit special case of SIMD."""
    if n_units != 1:
        raise ValueError("an SISD program drives exactly one data path")
    return SimdProgram(program.rows, n_units=1)


def embed_simd_in_vliw(program: SimdProgram) -> VliwModelProgram:
    """λ1 = ... = λn = λ: broadcast each SIMD micro-op to every slot."""
    rows = tuple(
        (tuple([op] * program.n_units), spec)
        for op, spec in program.rows
    )
    return VliwModelProgram(rows)


def embed_vliw_in_ximd(program: VliwModelProgram) -> XimdModelProgram:
    """δ1 = ... = δn = δ, S1(0) = ... = Sn(0): duplicate the sequencer."""
    units = tuple(
        tuple((ops[i], spec) for ops, spec in program.rows)
        for i in range(program.n_units)
    )
    return XimdModelProgram(units)


def embed_mimd_in_ximd(program: MimdProgram) -> XimdModelProgram:
    """MIMD programs are XIMD programs whose δi ignore other units."""
    return XimdModelProgram(program.units)


def is_mimd_expressible(program: XimdModelProgram) -> bool:
    """Whether an XIMD program happens to satisfy the MIMD restriction
    (every δi observes only its own unit)."""
    for i, rows in enumerate(program.units):
        for _, spec in rows:
            if any(index != i for index in spec.observed_indices()):
                return False
    return True


def is_vliw_expressible(program: XimdModelProgram) -> bool:
    """Whether an XIMD program is VLIW-equivalent *syntactically*:
    identical δ entries across units at every state (the paper's
    sufficient condition, with common initial state 0)."""
    first = program.units[0]
    for rows in program.units[1:]:
        if len(rows) != len(first):
            return False
        for (_, spec_a), (_, spec_b) in zip(first, rows):
            if spec_a != spec_b:
                return False
    return True


def equivalent_runs(a: ModelRunResult, b: ModelRunResult) -> bool:
    """True when two runs agree cycle-for-cycle on data-path state."""
    return (a.cycles == b.cycles
            and a.halted == b.halted
            and a.state_trace == b.state_trace)


def duplicate_control(program: Program) -> Program:
    """Concrete-machine VLIW→XIMD embedding.

    For each instruction-memory address, the machine-wide control op
    (the lowest-numbered FU's) is copied into every parcel at that
    address, and empty slots gain an explicit nop parcel so all
    sequencers stay in lock step — the paper's *"the control path
    instruction fields must be duplicated in each instruction parcel,
    so that each functional unit will execute the same control"*.

    The result runs on :class:`~repro.machine.ximd.XimdMachine` with
    cycle-for-cycle the behavior the original has on
    :class:`~repro.machine.vliw.VliwMachine`.
    """
    columns = [list(col) for col in program.columns]
    for address in range(program.length):
        control = None
        for fu in range(program.width):
            parcel = columns[fu][address]
            if parcel is not None and parcel.control is not None:
                control = parcel.control
                break
        row_live = any(columns[fu][address] is not None
                       for fu in range(program.width))
        if not row_live:
            continue
        for fu in range(program.width):
            parcel = columns[fu][address]
            if parcel is None:
                if control is not None:
                    columns[fu][address] = Parcel(control=control)
                # a live row with a halting control stays halting
                elif row_live:
                    columns[fu][address] = Parcel()
            elif control is not None:
                columns[fu][address] = parcel.with_control(control)
            else:
                columns[fu][address] = Parcel(parcel.data, None, parcel.sync)
    return Program(columns, entry=program.entry,
                   labels=dict(program.labels),
                   register_names=dict(program.register_names),
                   source=program.source)
