"""The MIMD model of Figure 6: λ1..λn, S1..Sn, δi seeing only s_di.

The defining restriction relative to XIMD: each next-state function
disregards the state of the *other* functional units — there is no
cross-unit condition or synchronization visibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .statemachine import DatapathUnit, MicroOp, ModelRunResult, NextSpec


@dataclass(frozen=True)
class MimdProgram:
    """``units[i][S]`` is ``(λi(S), δi entry at S)`` for unit *i*.

    Validation enforces the MIMD restriction: δi may observe only its
    own condition code.
    """

    units: Tuple[Tuple[Tuple[MicroOp, NextSpec], ...], ...]

    def __post_init__(self):
        object.__setattr__(
            self, "units", tuple(tuple(rows) for rows in self.units))
        for i, rows in enumerate(self.units):
            for op, spec in rows:
                for target in (spec.target1, spec.target2):
                    if target >= len(rows) or target < 0:
                        raise ValueError(
                            f"unit {i}: δ target out of range: {target}")
                for index in spec.observed_indices():
                    if index != i:
                        raise ValueError(
                            f"unit {i}: MIMD δ may not observe DP {index}")

    @property
    def n_units(self) -> int:
        return len(self.units)


class MimdMachine:
    """Executes a :class:`MimdProgram`: fully independent streams."""

    def __init__(self, program: MimdProgram,
                 registers: Optional[Sequence[Sequence[int]]] = None):
        self.program = program
        n = program.n_units
        if registers is None:
            registers = [None] * n
        if len(registers) != n:
            raise ValueError(f"need initial registers for {n} units")
        self.dps: List[DatapathUnit] = [DatapathUnit(r) for r in registers]
        self.pcs: List[Optional[int]] = [0] * n

    def run(self, max_cycles: int = 10_000) -> ModelRunResult:
        result = ModelRunResult()
        while (any(pc is not None for pc in self.pcs)
               and result.cycles < max_cycles):
            result.state_trace.append(tuple(dp.state() for dp in self.dps))
            result.control_trace.append(tuple(self.pcs))
            cc_start = [dp.cc for dp in self.dps]  # start-of-cycle s_d
            specs = []
            for i, pc in enumerate(self.pcs):
                if pc is None:
                    specs.append(None)
                    continue
                op, spec = self.program.units[i][pc]
                self.dps[i].execute(op)
                specs.append(spec)
            for i, spec in enumerate(specs):
                if spec is not None:
                    # δi was validated to observe only index i, so the
                    # global vector is safe to pass.
                    self.pcs[i] = spec.resolve(cc_start)
            result.cycles += 1
        result.halted = all(pc is None for pc in self.pcs)
        result.state_trace.append(tuple(dp.state() for dp in self.dps))
        return result
