"""The traditional SIMD model: one λ broadcast to n data paths.

Section 2.1: *"A traditional SIMD would distribute the output of a
single function λ to each functional unit."*  One control state, one δ;
every data-path unit executes the same micro-op each cycle (on its own
local registers, hence "multiple data").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .statemachine import DatapathUnit, MicroOp, ModelRunResult, NextSpec


@dataclass(frozen=True)
class SimdProgram:
    """``rows[S]`` is ``(λ(S), δ-entry at S)``; λ(S) goes to every DP."""

    rows: Tuple[Tuple[MicroOp, NextSpec], ...]
    n_units: int = 4

    def __post_init__(self):
        object.__setattr__(self, "rows", tuple(self.rows))
        for op, spec in self.rows:
            for target in (spec.target1, spec.target2):
                if target >= len(self.rows) or target < 0:
                    raise ValueError(f"δ target out of range: {target}")
            for index in spec.observed_indices():
                if index >= self.n_units:
                    raise ValueError(f"δ observes nonexistent DP {index}")


class SimdMachine:
    """Executes a :class:`SimdProgram` on *n_units* data paths."""

    def __init__(self, program: SimdProgram,
                 registers: Optional[Sequence[Sequence[int]]] = None):
        self.program = program
        n = program.n_units
        if registers is None:
            registers = [None] * n
        if len(registers) != n:
            raise ValueError(f"need initial registers for {n} units")
        self.dps: List[DatapathUnit] = [
            DatapathUnit(r) for r in registers
        ]
        self.pc: Optional[int] = 0

    def run(self, max_cycles: int = 10_000) -> ModelRunResult:
        result = ModelRunResult()
        while self.pc is not None and result.cycles < max_cycles:
            result.state_trace.append(tuple(dp.state() for dp in self.dps))
            result.control_trace.append((self.pc,))
            op, spec = self.program.rows[self.pc]
            cc_start = [dp.cc for dp in self.dps]  # start-of-cycle s_d
            for dp in self.dps:
                dp.execute(op)
            self.pc = spec.resolve(cc_start)
            result.cycles += 1
        result.halted = self.pc is None
        result.state_trace.append(tuple(dp.state() for dp in self.dps))
        return result
