"""The SISD model of Figure 3: one λ, one δ, one data path."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .statemachine import (
    DatapathUnit,
    MicroOp,
    ModelRunResult,
    NextSpec,
)


@dataclass(frozen=True)
class SisdProgram:
    """Control store of a microprogrammed SISD uniprocessor.

    ``rows[S]`` is ``(λ(S), δ-entry at S)``: for a given value of the
    µPC a given instruction executes on the data path, and the next
    state depends on the control state and the data-path state.
    """

    rows: Tuple[Tuple[MicroOp, NextSpec], ...]

    def __post_init__(self):
        object.__setattr__(self, "rows", tuple(self.rows))
        for op, spec in self.rows:
            for target in (spec.target1, spec.target2):
                if target >= len(self.rows) or target < 0:
                    raise ValueError(f"δ target out of range: {target}")
            if spec.observed_indices() not in ((), (0,)):
                raise ValueError("SISD δ may only observe its own s_d")


class SisdMachine:
    """Executes an :class:`SisdProgram`."""

    def __init__(self, program: SisdProgram,
                 registers: Optional[Sequence[int]] = None):
        self.program = program
        self.dp = DatapathUnit(registers)
        self.pc: Optional[int] = 0

    def run(self, max_cycles: int = 10_000) -> ModelRunResult:
        result = ModelRunResult()
        while self.pc is not None and result.cycles < max_cycles:
            result.state_trace.append((self.dp.state(),))
            result.control_trace.append((self.pc,))
            op, spec = self.program.rows[self.pc]
            cc_start = (self.dp.cc,)  # δ reads start-of-cycle s_d
            self.dp.execute(op)
            self.pc = spec.resolve(cc_start)
            result.cycles += 1
        result.halted = self.pc is None
        result.state_trace.append((self.dp.state(),))
        return result
