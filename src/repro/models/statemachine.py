"""The abstract processor framework behind the section 2 models.

Section 2.1 models a processor as a union of control path and data path:
the control path is a finite state machine whose output function λ
selects data-path control words and whose next-state function δ reacts
to data-path state (condition codes).  The architecture classes differ
*only* in how λ and δ are replicated:

================  ========================  ===========================
architecture      output functions           next-state functions
================  ========================  ===========================
SISD (Fig 3)      one λ                      one δ(s_c, s_d)
SIMD              one λ broadcast to n DPs   one δ
VLIW (Fig 4)      λ1..λn, one state S        one δ(s_c, s_d1..s_dn)
XIMD (Fig 5)      λ1..λn, states S1..Sn      δ1..δn, each sees all state
MIMD (Fig 6)      λ1..λn, states S1..Sn      δi sees only s_di
================  ========================  ===========================

This module supplies the shared substrate: a tiny data-path unit
(:class:`DatapathUnit` — a handful of registers plus a condition code),
the micro-operation alphabet (:class:`MicroOp`), and the declarative
next-state specification (:class:`NextSpec`).  The concrete architecture
models live in sibling modules; :mod:`repro.models.equivalence`
implements the paper's emulation constructions and checks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: registers per abstract data-path unit (small on purpose: the models
#: exist to compare control structures, not to compute).
DP_REGISTERS = 4


class MicroKind(enum.Enum):
    """The micro-operation alphabet of the abstract data path."""

    NOP = "nop"
    LDI = "ldi"      # dst <- imm
    ADD = "add"      # dst <- r[src1] + r[src2]
    SUB = "sub"      # dst <- r[src1] - r[src2]
    CMP_GT = "cmpgt"  # cc <- r[src1] > r[src2]
    CMP_EQ = "cmpeq"  # cc <- r[src1] == r[src2]


@dataclass(frozen=True)
class MicroOp:
    """One data-path control word (the range of an output function λ)."""

    kind: MicroKind = MicroKind.NOP
    dst: int = 0
    src1: int = 0
    src2: int = 0
    imm: int = 0

    def __str__(self):
        k = self.kind
        if k is MicroKind.NOP:
            return "nop"
        if k is MicroKind.LDI:
            return f"ldi r{self.dst},{self.imm}"
        if k in (MicroKind.CMP_GT, MicroKind.CMP_EQ):
            return f"{k.value} r{self.src1},r{self.src2}"
        return f"{k.value} r{self.dst},r{self.src1},r{self.src2}"


NOP_OP = MicroOp()


class DatapathUnit:
    """One functional unit's data path: registers plus a condition code."""

    def __init__(self, registers: Optional[Sequence[int]] = None):
        if registers is None:
            self.regs: List[int] = [0] * DP_REGISTERS
        else:
            if len(registers) != DP_REGISTERS:
                raise ValueError(f"need {DP_REGISTERS} registers")
            self.regs = list(registers)
        self.cc = False

    def execute(self, op: MicroOp) -> None:
        """Apply one micro-op; comparisons update ``cc`` (s_d)."""
        kind = op.kind
        if kind is MicroKind.NOP:
            return
        if kind is MicroKind.LDI:
            self.regs[op.dst] = op.imm
        elif kind is MicroKind.ADD:
            self.regs[op.dst] = self.regs[op.src1] + self.regs[op.src2]
        elif kind is MicroKind.SUB:
            self.regs[op.dst] = self.regs[op.src1] - self.regs[op.src2]
        elif kind is MicroKind.CMP_GT:
            self.cc = self.regs[op.src1] > self.regs[op.src2]
        elif kind is MicroKind.CMP_EQ:
            self.cc = self.regs[op.src1] == self.regs[op.src2]
        else:
            raise ValueError(f"unknown micro-op kind {kind}")

    def state(self) -> Tuple[Tuple[int, ...], bool]:
        """The observable data-path state (s_d plus registers)."""
        return tuple(self.regs), self.cc


class NextKind(enum.Enum):
    """Forms a next-state function δ may take at one control state."""

    GOTO = "goto"      # unconditionally to target1
    IF_CC = "if_cc"    # on DP `index`'s cc: target1 else target2
    HALT = "halt"


@dataclass(frozen=True)
class NextSpec:
    """A declarative δ entry: what the sequencer does at one state.

    ``index`` names which data-path unit's condition code is examined;
    the MIMD model restricts it to the unit's own index (δi may not see
    other units' state), while VLIW and XIMD allow any unit's.
    """

    kind: NextKind
    target1: int = 0
    target2: int = 0
    index: int = 0

    def resolve(self, cc: Sequence[bool]) -> Optional[int]:
        """The successor control state given the condition codes
        (``None`` = halt)."""
        if self.kind is NextKind.HALT:
            return None
        if self.kind is NextKind.GOTO:
            return self.target1
        return self.target1 if cc[self.index] else self.target2

    def observed_indices(self) -> Tuple[int, ...]:
        """Which data-path units this δ entry observes."""
        if self.kind is NextKind.IF_CC:
            return (self.index,)
        return ()


HALT = NextSpec(NextKind.HALT)


def goto(target: int) -> NextSpec:
    """Shorthand for an unconditional transition."""
    return NextSpec(NextKind.GOTO, target)


def if_cc(index: int, target1: int, target2: int) -> NextSpec:
    """Shorthand for a conditional transition on DP *index*'s cc."""
    return NextSpec(NextKind.IF_CC, target1, target2, index)


class ModelRunResult:
    """Trajectory of an abstract-model execution."""

    def __init__(self):
        #: per cycle: tuple of each DP's (registers, cc) BEFORE the cycle
        self.state_trace: List[Tuple] = []
        #: per cycle: tuple of control states before the cycle
        self.control_trace: List[Tuple] = []
        self.cycles = 0
        self.halted = False

    def final_datapath_state(self):
        """The last recorded data-path state vector."""
        return self.state_trace[-1] if self.state_trace else None
