"""The VLIW model of Figure 4: λ1..λn, one control state, one δ.

*"The VLIW model control path contains a separate output mapping
function λ1 ... λn for each functional unit in the data path.  The next
state function δ must consider the state of each of the functional
units."*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .statemachine import DatapathUnit, MicroOp, ModelRunResult, NextSpec


@dataclass(frozen=True)
class VliwModelProgram:
    """``rows[S]`` is ``((λ1(S)..λn(S)), δ-entry at S)``."""

    rows: Tuple[Tuple[Tuple[MicroOp, ...], NextSpec], ...]

    def __post_init__(self):
        object.__setattr__(
            self, "rows",
            tuple((tuple(ops), spec) for ops, spec in self.rows))
        if not self.rows:
            raise ValueError("empty program")
        n = len(self.rows[0][0])
        for ops, spec in self.rows:
            if len(ops) != n:
                raise ValueError("inconsistent instruction widths")
            for target in (spec.target1, spec.target2):
                if target >= len(self.rows) or target < 0:
                    raise ValueError(f"δ target out of range: {target}")
            for index in spec.observed_indices():
                if index >= n:
                    raise ValueError(f"δ observes nonexistent DP {index}")

    @property
    def n_units(self) -> int:
        return len(self.rows[0][0])


class VliwModelMachine:
    """Executes a :class:`VliwModelProgram`."""

    def __init__(self, program: VliwModelProgram,
                 registers: Optional[Sequence[Sequence[int]]] = None):
        self.program = program
        n = program.n_units
        if registers is None:
            registers = [None] * n
        if len(registers) != n:
            raise ValueError(f"need initial registers for {n} units")
        self.dps: List[DatapathUnit] = [DatapathUnit(r) for r in registers]
        self.pc: Optional[int] = 0

    def run(self, max_cycles: int = 10_000) -> ModelRunResult:
        result = ModelRunResult()
        while self.pc is not None and result.cycles < max_cycles:
            result.state_trace.append(tuple(dp.state() for dp in self.dps))
            result.control_trace.append((self.pc,))
            ops, spec = self.program.rows[self.pc]
            cc_start = [dp.cc for dp in self.dps]  # start-of-cycle s_d
            for dp, op in zip(self.dps, ops):
                dp.execute(op)
            self.pc = spec.resolve(cc_start)
            result.cycles += 1
        result.halted = self.pc is None
        result.state_trace.append(tuple(dp.state() for dp in self.dps))
        return result
