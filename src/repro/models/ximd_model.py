"""The XIMD model of Figure 5: λ1..λn, S1..Sn, δ1..δn seeing everything.

*"Just as the amount of state relevant to next address generation
increased when additional data path units were added, the number of
inputs to the δ functions must increase to include the state of each
section of the control path."*

This abstract model keeps the section 2.1 level of detail (each δi may
observe any unit's condition code); the concrete XIMD-1 machine in
:mod:`repro.machine.ximd` adds the synchronization-signal abstraction of
control-path state (``SS_i``) on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .statemachine import DatapathUnit, MicroOp, ModelRunResult, NextSpec


@dataclass(frozen=True)
class XimdModelProgram:
    """``units[i][S]`` is ``(λi(S), δi entry at S)`` for unit *i*.

    Unlike :class:`~repro.models.mimd.MimdProgram`, δi may observe any
    data-path unit's condition code.
    """

    units: Tuple[Tuple[Tuple[MicroOp, NextSpec], ...], ...]

    def __post_init__(self):
        object.__setattr__(
            self, "units", tuple(tuple(rows) for rows in self.units))
        n = len(self.units)
        for i, rows in enumerate(self.units):
            for op, spec in rows:
                for target in (spec.target1, spec.target2):
                    if target >= len(rows) or target < 0:
                        raise ValueError(
                            f"unit {i}: δ target out of range: {target}")
                for index in spec.observed_indices():
                    if index >= n:
                        raise ValueError(
                            f"unit {i}: δ observes nonexistent DP {index}")

    @property
    def n_units(self) -> int:
        return len(self.units)


class XimdModelMachine:
    """Executes an :class:`XimdModelProgram`.

    Semantics match the concrete machine: data ops execute on
    start-of-cycle state, condition codes commit at end of cycle, and
    every δi reads the same global start-of-cycle condition vector.
    """

    def __init__(self, program: XimdModelProgram,
                 registers: Optional[Sequence[Sequence[int]]] = None):
        self.program = program
        n = program.n_units
        if registers is None:
            registers = [None] * n
        if len(registers) != n:
            raise ValueError(f"need initial registers for {n} units")
        self.dps: List[DatapathUnit] = [DatapathUnit(r) for r in registers]
        self.pcs: List[Optional[int]] = [0] * n

    def run(self, max_cycles: int = 10_000) -> ModelRunResult:
        result = ModelRunResult()
        while (any(pc is not None for pc in self.pcs)
               and result.cycles < max_cycles):
            result.state_trace.append(tuple(dp.state() for dp in self.dps))
            result.control_trace.append(tuple(self.pcs))
            cc_start = [dp.cc for dp in self.dps]
            specs = []
            for i, pc in enumerate(self.pcs):
                if pc is None:
                    specs.append(None)
                    continue
                op, spec = self.program.units[i][pc]
                self.dps[i].execute(op)
                specs.append(spec)
            for i, spec in enumerate(specs):
                if spec is not None:
                    self.pcs[i] = spec.resolve(cc_start)
            result.cycles += 1
        result.halted = all(pc is None for pc in self.pcs)
        result.state_trace.append(tuple(dp.state() for dp in self.dps))
        return result
