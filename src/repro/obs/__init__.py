"""``repro.obs`` — structured tracing, metrics, and run reports.

The observability layer the paper's evaluation implies (section 4.1's
per-cycle traces and partition statistics) generalized into a
subsystem:

* typed events (:mod:`~repro.obs.events`) flowing through pluggable
  sinks (:mod:`~repro.obs.sinks`): in-memory ring buffer, JSONL file,
  and nothing at all — the default null observer costs one guarded
  attribute load per emit site;
* a metrics registry (:mod:`~repro.obs.metrics`): counters, gauges,
  histograms, and wall-clock timers with context-manager/decorator
  APIs;
* a Chrome trace-event exporter (:mod:`~repro.obs.chrome`) that
  renders each functional unit as a Perfetto track;
* run reports (:mod:`~repro.obs.report`) merging trace + metrics into
  one JSON/text artifact, with per-FU/per-SSET/per-opcode stall
  attribution (why every FU-cycle was spent);
* the differential tier: a run-diff engine (:mod:`~repro.obs.diff`)
  with a threshold-based regression policy, the benchmark history
  ledger (:mod:`~repro.obs.history`, ``BENCH_HISTORY.jsonl``), and a
  stdlib-only offline HTML dashboard (:mod:`~repro.obs.html`);
* a CLI (``python -m repro.obs``) replaying saved JSONL traces into
  Figure-10 tables, Chrome traces, or reports — and comparing runs
  (``diff``), gating CI on perf regressions (``gate``), trending the
  ledger (``history``), and exporting the dashboard (``html``).

All JSON artifacts are schema-versioned (:mod:`~repro.obs.schema`);
wall-clock measurements are quarantined under a ``timing`` key so
everything else is byte-deterministic and safely comparable.

Enable by passing an :class:`Observer` to a machine, or ambiently::

    from repro.obs import Observer, JsonlSink, observed

    obs = Observer(JsonlSink("run.jsonl"))
    with observed(obs):
        machine = XimdMachine(program, obs=obs)
        machine.run()
    obs.close()
"""

from .chrome import (
    CYCLE_US,
    chrome_trace,
    chrome_trace_events,
    write_chrome_trace,
)
from .core import (
    NULL_OBSERVER,
    NullObserver,
    Observer,
    PassSpan,
    current_observer,
    observed,
    recording_observer,
    set_observer,
)
from .critpath import (
    CriticalPath,
    WaitInterval,
    critical_path_from_events,
    critical_path_from_matrix,
    format_wait_matrix,
    intervals_from_events,
)
from .diff import (
    DiffResult,
    MetricDelta,
    WorkloadMismatchError,
    diff_artifacts,
    diff_files,
    flatten_numeric,
    load_tolerance_table,
)
from .events import (
    FU_CLASS_NAMES,
    FU_CLASS_ORDER,
    BranchEvent,
    CycleEvent,
    Event,
    PartitionChangeEvent,
    PassEvent,
    SyncEdgeEvent,
    SyncEvent,
    event_from_dict,
    event_to_dict,
)
from .history import (
    DEFAULT_HISTORY,
    append_record,
    latest_record,
    make_record,
    read_history,
    render_trend,
)
from .html import render_dashboard, write_dashboard
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Timer
from .report import RunReport, events_to_trace
from .schema import (
    SCHEMA_VERSION,
    SchemaError,
    check_artifact,
    load_artifact,
)
from .sinks import JsonlSink, RingBufferSink, Sink, read_jsonl

__all__ = [
    "BranchEvent",
    "CYCLE_US",
    "Counter",
    "CriticalPath",
    "CycleEvent",
    "DEFAULT_HISTORY",
    "DiffResult",
    "Event",
    "FU_CLASS_NAMES",
    "FU_CLASS_ORDER",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricDelta",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "PartitionChangeEvent",
    "PassEvent",
    "PassSpan",
    "RingBufferSink",
    "RunReport",
    "SCHEMA_VERSION",
    "SchemaError",
    "Sink",
    "SyncEdgeEvent",
    "SyncEvent",
    "Timer",
    "WaitInterval",
    "WorkloadMismatchError",
    "append_record",
    "check_artifact",
    "chrome_trace",
    "chrome_trace_events",
    "critical_path_from_events",
    "critical_path_from_matrix",
    "current_observer",
    "diff_artifacts",
    "diff_files",
    "event_from_dict",
    "event_to_dict",
    "events_to_trace",
    "flatten_numeric",
    "format_wait_matrix",
    "intervals_from_events",
    "latest_record",
    "load_artifact",
    "load_tolerance_table",
    "make_record",
    "observed",
    "read_history",
    "read_jsonl",
    "recording_observer",
    "render_dashboard",
    "render_trend",
    "set_observer",
    "write_chrome_trace",
    "write_dashboard",
]
