"""``repro.obs`` — structured tracing, metrics, and run reports.

The observability layer the paper's evaluation implies (section 4.1's
per-cycle traces and partition statistics) generalized into a
subsystem:

* typed events (:mod:`~repro.obs.events`) flowing through pluggable
  sinks (:mod:`~repro.obs.sinks`): in-memory ring buffer, JSONL file,
  and nothing at all — the default null observer costs one guarded
  attribute load per emit site;
* a metrics registry (:mod:`~repro.obs.metrics`): counters, gauges,
  histograms, and wall-clock timers with context-manager/decorator
  APIs;
* a Chrome trace-event exporter (:mod:`~repro.obs.chrome`) that
  renders each functional unit as a Perfetto track;
* run reports (:mod:`~repro.obs.report`) merging trace + metrics into
  one JSON/text artifact;
* a CLI (``python -m repro.obs``) replaying saved JSONL traces into
  Figure-10 tables, Chrome traces, or reports.

Enable by passing an :class:`Observer` to a machine, or ambiently::

    from repro.obs import Observer, JsonlSink, observed

    obs = Observer(JsonlSink("run.jsonl"))
    with observed(obs):
        machine = XimdMachine(program, obs=obs)
        machine.run()
    obs.close()
"""

from .chrome import (
    CYCLE_US,
    chrome_trace,
    chrome_trace_events,
    write_chrome_trace,
)
from .core import (
    NULL_OBSERVER,
    NullObserver,
    Observer,
    PassSpan,
    current_observer,
    observed,
    recording_observer,
    set_observer,
)
from .events import (
    BranchEvent,
    CycleEvent,
    Event,
    PartitionChangeEvent,
    PassEvent,
    SyncEvent,
    event_from_dict,
    event_to_dict,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Timer
from .report import RunReport, events_to_trace
from .sinks import JsonlSink, RingBufferSink, Sink, read_jsonl

__all__ = [
    "BranchEvent",
    "CYCLE_US",
    "Counter",
    "CycleEvent",
    "Event",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "PartitionChangeEvent",
    "PassEvent",
    "PassSpan",
    "RingBufferSink",
    "RunReport",
    "Sink",
    "SyncEvent",
    "Timer",
    "chrome_trace",
    "chrome_trace_events",
    "current_observer",
    "event_from_dict",
    "event_to_dict",
    "events_to_trace",
    "observed",
    "read_jsonl",
    "recording_observer",
    "set_observer",
    "write_chrome_trace",
]
