"""``python -m repro.obs`` — replay saved JSONL traces.

Commands:

* ``fig10 TRACE.jsonl``  — render the stream as a Figure-10 table;
* ``chrome TRACE.jsonl`` — convert to a Chrome trace-event JSON for
  ``chrome://tracing`` / https://ui.perfetto.dev;
* ``report TRACE.jsonl`` — print (or ``--json``-dump) the run report;
* ``summary TRACE.jsonl`` — one-line event census (quick sanity check).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import List, Optional

from .chrome import CYCLE_US, write_chrome_trace
from .report import RunReport, events_to_trace
from .sinks import read_jsonl


def _cmd_fig10(args) -> int:
    events = read_jsonl(args.trace)
    trace = events_to_trace(events)
    print(trace.format(show_sync=args.sync))
    return 0


def _cmd_chrome(args) -> int:
    events = read_jsonl(args.trace)
    path = write_chrome_trace(args.output, events, cycle_us=args.cycle_us)
    print(f"wrote {path} ({len(events)} events) — load it at "
          "chrome://tracing or https://ui.perfetto.dev")
    return 0


def _cmd_report(args) -> int:
    events = read_jsonl(args.trace)
    report = RunReport.from_events(events)
    if args.json:
        print(report.to_json())
    else:
        print(report.render_text())
    if args.output:
        report.write_json(args.output)
        print(f"\nwrote {args.output}", file=sys.stderr)
    return 0


def _cmd_summary(args) -> int:
    events = read_jsonl(args.trace)
    census = Counter(e.kind for e in events)
    parts = ", ".join(f"{count} {kind}" for kind, count
                      in sorted(census.items()))
    print(f"{args.trace}: {len(events)} events ({parts or 'empty'})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Replay saved repro.obs JSONL traces into Figure-10 "
                    "tables, Chrome traces, or run reports.")
    sub = parser.add_subparsers(dest="command", required=True)

    fig10 = sub.add_parser(
        "fig10", help="render a trace as a Figure-10 address table")
    fig10.add_argument("trace", help="JSONL trace file")
    fig10.add_argument("--sync", action="store_true",
                       help="include the sync-signal column")
    fig10.set_defaults(func=_cmd_fig10)

    chrome = sub.add_parser(
        "chrome", help="export a Chrome trace-event JSON (Perfetto)")
    chrome.add_argument("trace", help="JSONL trace file")
    chrome.add_argument("-o", "--output", default="trace.chrome.json",
                        help="output path (default: trace.chrome.json)")
    chrome.add_argument("--cycle-us", type=float, default=CYCLE_US,
                        help="trace microseconds per machine cycle")
    chrome.set_defaults(func=_cmd_chrome)

    report = sub.add_parser("report", help="print the run report")
    report.add_argument("trace", help="JSONL trace file")
    report.add_argument("--json", action="store_true",
                        help="print JSON instead of text")
    report.add_argument("-o", "--output", default=None,
                        help="also write the JSON report to this path")
    report.set_defaults(func=_cmd_report)

    summary = sub.add_parser("summary", help="one-line event census")
    summary.add_argument("trace", help="JSONL trace file")
    summary.set_defaults(func=_cmd_summary)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # downstream pager/head closed early; not an error
        sys.stderr.close()
        return 0
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
