"""``python -m repro.obs`` — replay traces, compare runs, gate perf.

Replay commands:

* ``fig10 TRACE.jsonl``  — render the stream as a Figure-10 table;
* ``chrome TRACE.jsonl`` — convert to a Chrome trace-event JSON for
  ``chrome://tracing`` / https://ui.perfetto.dev;
* ``report TRACE.jsonl`` — print (or ``--json``-dump) the run report;
* ``summary TRACE.jsonl`` — one-line event census (quick sanity check);
* ``sync TRACE.jsonl|REPORT.json`` — the synchronization profile: text
  wait matrix, top blockers, barrier skew, and the critical wait chain
  (cycle-resolved from a trace, aggregate from a report's matrix);
* ``faults REPORT.json`` — the run's deterministic fault-injection log
  and (if it aborted) the structured hang diagnosis.

Differential-analysis commands:

* ``diff A.json B.json`` — structured delta between two schema-versioned
  artifacts (run reports, benchmark results, summaries);
* ``gate --baseline S.json`` — the CI perf-regression gate: compare a
  candidate summary (or the latest ``BENCH_HISTORY.jsonl`` record)
  against a committed baseline;
* ``gate --calibrate`` — derive per-metric tolerances from the variance
  observed across the history ledger and rewrite the tolerance table
  (``benchmarks/tolerances.json``), max-merging with any hand-set
  allowances already in the file;
* ``history`` — render the benchmark-history trend table;
* ``html`` — export the offline HTML dashboard.

Exit codes: 0 = OK / within tolerance, 1 = usage, I/O, schema, or
workload-mismatch error, 2 = perf regression beyond threshold.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import List, Optional

from .chrome import CYCLE_US, write_chrome_trace
from .diff import WorkloadMismatchError, diff_files
from .history import (
    DEFAULT_HISTORY,
    latest_record,
    read_history,
    render_trend,
)
from .html import write_dashboard
from .ioutil import atomic_write_text
from .report import RunReport, events_to_trace
from .schema import SchemaError, load_artifact
from .sinks import read_jsonl

#: Exit code for a perf regression beyond threshold (1 = plain error).
EXIT_REGRESSION = 2


def _cmd_fig10(args) -> int:
    events = read_jsonl(args.trace)
    trace = events_to_trace(events)
    print(trace.format(show_sync=args.sync))
    return 0


def _cmd_chrome(args) -> int:
    events = read_jsonl(args.trace)
    path = write_chrome_trace(args.output, events, cycle_us=args.cycle_us)
    print(f"wrote {path} ({len(events)} events) — load it at "
          "chrome://tracing or https://ui.perfetto.dev")
    return 0


def _cmd_report(args) -> int:
    events = read_jsonl(args.trace)
    report = RunReport.from_events(events)
    if args.json:
        print(report.to_json(include_timing=args.timing))
    else:
        print(report.render_text())
    if args.output:
        report.write_json(args.output, include_timing=args.timing)
        print(f"\nwrote {args.output}", file=sys.stderr)
    return 0


def _cmd_faults(args) -> int:
    """Print a run-report artifact's fault log and abort diagnosis."""
    try:
        payload = load_artifact(args.report, expect_kind="run_report")
    except (OSError, SchemaError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    faults = payload.get("faults") or []
    abort = payload.get("abort") or {}
    if args.json:
        print(json.dumps({"faults": faults, "abort": abort},
                         indent=2, sort_keys=True))
        return 0
    if not faults and not abort:
        print("clean run: no faults injected, no abort recorded")
        return 0
    if faults:
        kinds = Counter(record.get("kind", "?") for record in faults)
        masked = sum(1 for record in faults if "masked" in record)
        mix = ", ".join(f"{kind}×{count}"
                        for kind, count in sorted(kinds.items()))
        print(f"{len(faults)} fault(s) injected ({mix}; {masked} masked)")
        for record in faults:
            detail = ", ".join(
                f"{key}={value}" for key, value in record.items()
                if key not in ("cycle", "kind", "masked"))
            note = (f"  [masked: {record['masked']}]"
                    if "masked" in record else "")
            print(f"  cycle {record.get('cycle', 0):>8}: "
                  f"{record.get('kind', '?'):<16} {detail}{note}")
    if abort:
        print(f"run aborted: {abort.get('kind', '?')} at cycle "
              f"{abort.get('cycle', '?')} (limit {abort.get('limit', '?')})")
        chain = abort.get("critical_path") or {}
        links = chain.get("links") or []
        if links:
            hops = " <- ".join(
                [f"FU{links[0]['waiter']}"]
                + [f"FU{link['blocker']}" for link in links])
            print(f"  critical wait chain: {hops} "
                  f"({chain.get('total_cycles', 0)} blocked cycles)")
        for edge in abort.get("blocked") or []:
            blockers = ",".join(f"FU{b}" for b in edge["blockers"])
            print(f"  FU{edge['fu']} @ {edge['pc']:#04x}: untaken "
                  f"{edge['cond']} wait on {blockers or 'nothing'}")
        for barrier in abort.get("open_barriers") or []:
            print(f"  open barrier: FU{barrier['fu']} @ "
                  f"{barrier['pc']:#04x} since cycle {barrier['since']}")
    return 0


def _cmd_diff(args) -> int:
    try:
        result = diff_files(args.baseline, args.candidate,
                            tolerance=args.tolerance,
                            abs_tolerance=args.abs_tolerance,
                            include_timing=args.include_timing,
                            require_matching_workloads=not args.any_workloads)
    except WorkloadMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.render_text())
    if result.regressions:
        print(f"\nFAIL: {len(result.regressions)} metric(s) regressed "
              f"beyond {args.tolerance:.1%} tolerance", file=sys.stderr)
        return EXIT_REGRESSION
    return 0


def _cmd_gate_calibrate(args) -> int:
    """Rewrite the tolerance table from history-ledger variance.

    Hand-set allowances in the existing table are floors, not stale
    data: the rewrite max-merges them with the calibrated values (and
    keeps the table's description) unless ``--calibrate-fresh`` asks
    for a purely variance-derived table.
    """
    import pathlib

    from .history import calibrate_tolerances

    records = read_history(args.history)
    if len(records) < 2:
        print(f"error: calibration needs at least 2 history records; "
              f"{args.history} has {len(records)}", file=sys.stderr)
        return 1
    out = pathlib.Path(args.calibrate_output)
    previous = {}
    if out.exists() and not args.calibrate_fresh:
        try:
            previous = json.loads(out.read_text(encoding="utf-8"))
        except ValueError as exc:
            print(f"error: existing {out} is not valid JSON ({exc})",
                  file=sys.stderr)
            return 1
        if not isinstance(previous, dict):
            previous = {}
    table = calibrate_tolerances(records, margin=args.calibrate_margin,
                                 description=previous.get("description"))
    if isinstance(previous.get("metrics"), dict):
        merged = dict(table["metrics"])
        for leaf, value in previous["metrics"].items():
            if isinstance(value, (int, float)) and not isinstance(
                    value, bool):
                merged[leaf] = max(float(value), merged.get(leaf, 0.0))
        table["metrics"] = {leaf: merged[leaf] for leaf in sorted(merged)}
        table["abs_tolerance"] = max(
            table["abs_tolerance"],
            float(previous.get("abs_tolerance") or 0.0))
        table["default_tolerance"] = float(
            previous.get("default_tolerance") or 0.0)
    atomic_write_text(out, json.dumps(table, indent=2) + "\n")
    print(f"calibrated {out} from {len(records)} history records "
          f"(margin {args.calibrate_margin:g}x): "
          f"{len(table['metrics'])} per-metric allowance(s), "
          f"abs floor {table['abs_tolerance']:g}")
    return 0


def _cmd_gate(args) -> int:
    if args.calibrate:
        return _cmd_gate_calibrate(args)
    if not args.baseline:
        print("error: --baseline is required (or pass --calibrate)",
              file=sys.stderr)
        return 1
    if args.candidate:
        candidate = load_artifact(args.candidate)
        candidate_label = args.candidate
    else:
        candidate = latest_record(args.history)
        candidate_label = (f"{args.history} (latest record, "
                           f"sha {candidate.get('git_sha', '?')[:12]})")
    baseline = load_artifact(args.baseline)
    from .diff import diff_artifacts, load_tolerance_table

    # the tolerance table supplies defaults; explicit CLI flags win
    tolerance = args.tolerance
    abs_tolerance = args.abs_tolerance
    per_metric = {}
    if args.tolerance_table:
        table = load_tolerance_table(args.tolerance_table)
        per_metric = table["metrics"]
        if tolerance is None:
            tolerance = table["default_tolerance"]
        if abs_tolerance is None:
            abs_tolerance = table["abs_tolerance"]
    tolerance = tolerance or 0.0
    abs_tolerance = abs_tolerance or 0.0

    try:
        result = diff_artifacts(baseline, candidate,
                                tolerance=tolerance,
                                abs_tolerance=abs_tolerance,
                                per_metric=per_metric,
                                include_timing=True,
                                require_matching_workloads=not args.allow_new)
    except WorkloadMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"perf gate: {args.baseline} vs {candidate_label}")
    print(result.render_text())
    for delta in result.timing_regressions:
        print(f"warning: wall-time metric worsened (non-blocking): "
              f"{delta.path} {delta.before:.4g} -> {delta.after:.4g}",
              file=sys.stderr)
    for delta in result.advisory_regressions:
        print(f"warning: advisory metric worsened (non-blocking): "
              f"{delta.path} {delta.before:.4g} -> {delta.after:.4g}",
              file=sys.stderr)
    if result.regressions:
        print(f"\nGATE FAILED: {len(result.regressions)} deterministic "
              f"metric(s) regressed beyond {tolerance:.1%} tolerance",
              file=sys.stderr)
        return EXIT_REGRESSION
    print("\ngate passed")
    return 0


def _cmd_history(args) -> int:
    records = read_history(args.ledger)
    if args.json:
        print(json.dumps(records, indent=2, sort_keys=True))
    else:
        print(render_trend(records, metrics=args.metrics))
    return 0


def _cmd_html(args) -> int:
    timeline = None
    if args.input.endswith(".jsonl"):
        events = read_jsonl(args.input)
        report = RunReport.from_events(events).to_dict(include_timing=False)
        timeline = [(e.cycle, len(e.partition))
                    for e in events
                    if e.kind == "cycle" and e.partition is not None]
    else:
        report = load_artifact(args.input, expect_kind="run_report")
    history = read_history(args.history) if args.history else None
    path = write_dashboard(args.output, report, timeline=timeline,
                           history=history, title=args.title)
    print(f"wrote {path} — self-contained, open it straight from disk")
    return 0


def _cmd_sync(args) -> int:
    from .critpath import (
        critical_path_from_events,
        critical_path_from_matrix,
        format_wait_matrix,
    )

    if args.input.endswith(".jsonl"):
        events = read_jsonl(args.input)
        report = RunReport.from_events(events)
        sync = report.sync
        critpath = critical_path_from_events(events)
        source = f"{args.input} (typed-event trace)"
    else:
        payload = load_artifact(args.input, expect_kind="run_report")
        sync = payload.get("sync") or {}
        critpath = critical_path_from_matrix(
            sync.get("wait_matrix") or [])
        source = f"{args.input} (run report)"
    if args.json:
        print(json.dumps({"sync": sync, "critical_path": critpath.to_dict()},
                         indent=2, sort_keys=True))
        return 0
    print(f"synchronization profile — {source}")
    if not sync:
        print("  no sync activity observed (wait matrix empty, "
              "no barrier sites)")
        print(critpath.render())
        return 0
    print(f"  blocked FU-cycle charges: {sync.get('wait_cycles', 0)}")
    blockers = sync.get("top_blockers") or []
    if blockers:
        parts = ", ".join(f"FU{fu} ({count} cy)" for fu, count in blockers)
        print(f"  top blockers            : {parts}")
    waiters = sync.get("top_waiters") or []
    if waiters:
        parts = ", ".join(f"FU{fu} ({count} cy)" for fu, count in waiters)
        print(f"  top waiters             : {parts}")
    matrix = sync.get("wait_matrix") or []
    if any(any(row) for row in matrix):
        print()
        print(format_wait_matrix(matrix))
    barriers = sync.get("barriers") or []
    if barriers:
        print()
        print("barrier skew (first arrival -> release):")
        for row in barriers:
            print(f"  pc {row['pc']:#04x} FU{row['fu']}: "
                  f"{row['count']} releases, "
                  f"mean {row['mean_skew']:.1f} cy, "
                  f"max {row['max_skew']} cy")
    print()
    print(critpath.render())
    return 0


def _cmd_summary(args) -> int:
    events = read_jsonl(args.trace)
    census = Counter(e.kind for e in events)
    parts = ", ".join(f"{count} {kind}" for kind, count
                      in sorted(census.items()))
    print(f"{args.trace}: {len(events)} events ({parts or 'empty'})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Replay saved repro.obs JSONL traces into Figure-10 "
                    "tables, Chrome traces, or run reports.")
    sub = parser.add_subparsers(dest="command", required=True)

    fig10 = sub.add_parser(
        "fig10", help="render a trace as a Figure-10 address table")
    fig10.add_argument("trace", help="JSONL trace file")
    fig10.add_argument("--sync", action="store_true",
                       help="include the sync-signal column")
    fig10.set_defaults(func=_cmd_fig10)

    chrome = sub.add_parser(
        "chrome", help="export a Chrome trace-event JSON (Perfetto)")
    chrome.add_argument("trace", help="JSONL trace file")
    chrome.add_argument("-o", "--output", default="trace.chrome.json",
                        help="output path (default: trace.chrome.json)")
    chrome.add_argument("--cycle-us", type=float, default=CYCLE_US,
                        help="trace microseconds per machine cycle")
    chrome.set_defaults(func=_cmd_chrome)

    report = sub.add_parser("report", help="print the run report")
    report.add_argument("trace", help="JSONL trace file")
    report.add_argument("--json", action="store_true",
                        help="print JSON instead of text")
    report.add_argument("-o", "--output", default=None,
                        help="also write the JSON report to this path")
    report.add_argument("--timing", action="store_true",
                        help="include the wall-clock `timing` key "
                             "(non-deterministic)")
    report.set_defaults(func=_cmd_report)

    summary = sub.add_parser("summary", help="one-line event census")
    summary.add_argument("trace", help="JSONL trace file")
    summary.set_defaults(func=_cmd_summary)

    sync = sub.add_parser(
        "sync", help="synchronization profile: wait matrix, barrier "
                     "skew, critical wait chain")
    sync.add_argument("input",
                      help="a JSONL trace (cycle-resolved critical path) "
                           "or a run-report .json (aggregate fallback)")
    sync.add_argument("--json", action="store_true",
                      help="print the profile as JSON")
    sync.set_defaults(func=_cmd_sync)

    faults = sub.add_parser(
        "faults", help="show a run report's fault log and abort "
                       "diagnosis")
    faults.add_argument("report", help="run-report .json artifact")
    faults.add_argument("--json", action="store_true",
                        help="print the faults/abort sections as JSON")
    faults.set_defaults(func=_cmd_faults)

    diff = sub.add_parser(
        "diff", help="structured delta between two obs JSON artifacts")
    diff.add_argument("baseline", help="baseline artifact (.json)")
    diff.add_argument("candidate", help="candidate artifact (.json)")
    diff.add_argument("--tolerance", type=float, default=0.0,
                      help="relative worsening allowed before a metric "
                           "counts as regressed (default: 0, i.e. any)")
    diff.add_argument("--abs-tolerance", type=float, default=0.0,
                      help="absolute |delta| floor below which a metric "
                           "never regresses (guards 0 -> epsilon moves, "
                           "whose relative change is infinite)")
    diff.add_argument("--include-timing", action="store_true",
                      help="also compare wall-clock (timing) metrics")
    diff.add_argument("--any-workloads", action="store_true",
                      help="do not require matching workload sets")
    diff.add_argument("--json", action="store_true",
                      help="print the delta as JSON")
    diff.set_defaults(func=_cmd_diff)

    gate = sub.add_parser(
        "gate", help="CI perf-regression gate against a baseline summary")
    gate.add_argument("--baseline", default=None,
                      help="committed baseline (BENCH_SUMMARY.json); "
                           "required unless --calibrate")
    gate.add_argument("--candidate", default=None,
                      help="candidate summary JSON (default: latest "
                           "history record)")
    gate.add_argument("--history", default=DEFAULT_HISTORY,
                      help=f"history ledger (default: {DEFAULT_HISTORY})")
    gate.add_argument("--tolerance", type=float, default=None,
                      help="relative regression allowed on deterministic "
                           "metrics (default: the tolerance table's "
                           "default, else 0)")
    gate.add_argument("--abs-tolerance", type=float, default=None,
                      help="absolute |delta| floor below which a metric "
                           "never regresses (guards 0 -> epsilon moves; "
                           "default: the tolerance table's, else 0)")
    gate.add_argument("--tolerance-table", default=None,
                      help="calibrated per-metric tolerance file (a "
                           "tolerance_table artifact, e.g. "
                           "benchmarks/tolerances.json)")
    gate.add_argument("--allow-new", action="store_true",
                      help="tolerate added/removed workloads")
    gate.add_argument("--calibrate", action="store_true",
                      help="instead of gating, derive per-metric "
                           "tolerances from history-ledger variance and "
                           "rewrite the tolerance table")
    gate.add_argument("--calibrate-output",
                      default="benchmarks/tolerances.json",
                      help="tolerance table to rewrite (default: "
                           "benchmarks/tolerances.json)")
    gate.add_argument("--calibrate-margin", type=float, default=2.0,
                      help="safety multiplier on the observed spread "
                           "(default: 2.0)")
    gate.add_argument("--calibrate-fresh", action="store_true",
                      help="discard the existing table's hand-set "
                           "allowances instead of max-merging them")
    gate.set_defaults(func=_cmd_gate)

    history = sub.add_parser(
        "history", help="render the benchmark-history trend")
    history.add_argument("ledger", nargs="?", default=DEFAULT_HISTORY,
                         help=f"JSONL ledger (default: {DEFAULT_HISTORY})")
    history.add_argument("--json", action="store_true",
                         help="dump raw records instead of the table")
    history.add_argument("--metrics", nargs="+",
                         default=["speedup", "ximd_cycles",
                                  "ximd_energy_pj",
                                  "fast_kcycles_per_sec",
                                  "specialized_kcycles_per_sec",
                                  "specialized_over_fast", "ops_out",
                                  "overhead_vs_bare"],
                         help="metrics to trend (default: speedup "
                              "ximd_cycles ximd_energy_pj "
                              "fast_kcycles_per_sec "
                              "specialized_kcycles_per_sec "
                              "specialized_over_fast ops_out "
                              "overhead_vs_bare)")
    history.set_defaults(func=_cmd_history)

    html = sub.add_parser(
        "html", help="export the offline HTML dashboard")
    html.add_argument("input",
                      help="a JSONL trace or a run-report .json artifact")
    html.add_argument("-o", "--output", default="dashboard.html",
                      help="output path (default: dashboard.html)")
    html.add_argument("--history", default=None,
                      help="also chart this BENCH_HISTORY.jsonl ledger")
    html.add_argument("--title", default="repro.obs dashboard",
                      help="page title")
    html.set_defaults(func=_cmd_html)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # downstream pager/head closed early; not an error
        sys.stderr.close()
        return 0
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
