"""Chrome trace-event export (``chrome://tracing`` / Perfetto).

Renders a recorded event stream on a timeline: one track (thread) per
functional unit, one slice per fetched parcel, instants for branches and
sync signals, and a counter track for the number of SSETs — so the
fork/join behavior of Figures 10–12 and barrier stalls are *visible*
rather than tabulated.  Compiler :class:`~repro.obs.events.PassEvent`
telemetry renders as a second process with real wall-clock durations.

One simulated cycle maps to :data:`CYCLE_US` microseconds of trace
time, which keeps Perfetto's zoom behavior sane on long runs.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Optional, Union

from .events import (
    BranchEvent,
    CycleEvent,
    Event,
    PartitionChangeEvent,
    PassEvent,
    SyncEdgeEvent,
    SyncEvent,
)

#: SyncEvent.what -> instant name on the FU track.
_SYNC_NAMES = {"done": "SS=DONE", "barrier": "barrier",
               "barrier_wait": "barrier wait"}

#: trace microseconds per simulated machine cycle.
CYCLE_US = 10.0

_MACHINE_PID = 1
_COMPILER_PID = 2


def _machine_metadata(n_fus: int, machine_name: str) -> List[dict]:
    meta = [{
        "ph": "M", "pid": _MACHINE_PID, "name": "process_name",
        "args": {"name": f"{machine_name} simulator"},
    }]
    for fu in range(n_fus):
        meta.append({
            "ph": "M", "pid": _MACHINE_PID, "tid": fu,
            "name": "thread_name", "args": {"name": f"FU{fu}"},
        })
        meta.append({
            "ph": "M", "pid": _MACHINE_PID, "tid": fu,
            "name": "thread_sort_index", "args": {"sort_index": fu},
        })
    return meta


def chrome_trace_events(events: Iterable[Event],
                        cycle_us: float = CYCLE_US) -> List[dict]:
    """Convert typed events to Chrome trace-event dicts."""
    out: List[dict] = []
    n_fus = 0
    machine_name = "ximd"
    pass_starts: List[float] = []
    for event in events:
        if isinstance(event, PassEvent) and event.start:
            pass_starts.append(event.start)
    pass_epoch = min(pass_starts) if pass_starts else 0.0
    pass_clock = 0.0  # fallback ordering when no start stamps exist
    flow_id = 0       # one flow pair per sync edge (blocker ~> waiter)

    for event in events:
        if isinstance(event, CycleEvent):
            n_fus = max(n_fus, len(event.pcs))
            machine_name = event.machine
            ts = event.cycle * cycle_us
            for fu, pc in enumerate(event.pcs):
                if pc is None:
                    continue
                out.append({
                    "ph": "X", "pid": _MACHINE_PID, "tid": fu,
                    "name": f"{pc:#04x}", "cat": "fetch",
                    "ts": ts, "dur": cycle_us,
                    "args": {"cycle": event.cycle, "cc": event.cc,
                             "ss": event.ss},
                })
            n_ssets = (len(event.partition)
                       if event.partition is not None else None)
            counters = {"data_ops": event.data_ops}
            if n_ssets is not None:
                counters["ssets"] = n_ssets
            out.append({
                "ph": "C", "pid": _MACHINE_PID, "name": "machine",
                "ts": ts, "args": counters,
            })
        elif isinstance(event, BranchEvent):
            out.append({
                "ph": "i", "pid": _MACHINE_PID, "tid": event.fu,
                "name": f"branch {event.branch_kind}"
                        f"{' taken' if event.taken else ''}",
                "cat": "branch", "s": "t",
                "ts": (event.cycle + 1) * cycle_us - cycle_us / 4,
                "args": {"pc": event.pc, "target": event.target},
            })
        elif isinstance(event, SyncEvent):
            out.append({
                "ph": "i", "pid": _MACHINE_PID, "tid": event.fu,
                "name": _SYNC_NAMES.get(event.what, event.what),
                "cat": "sync", "s": "t" if event.what == "done" else "p",
                "ts": event.cycle * cycle_us + cycle_us / 2,
                "args": {"pc": event.pc},
            })
        elif isinstance(event, SyncEdgeEvent):
            # a flow arrow from the blocking FU's track to the waiting
            # FU's — Perfetto draws the dependency the wait matrix
            # only tallies
            flow_id += 1
            ts = event.cycle * cycle_us + cycle_us / 2
            args = {"pc": event.pc, "cond": event.cond}
            out.append({
                "ph": "s", "pid": _MACHINE_PID, "tid": event.blocker,
                "name": "blocks", "cat": "sync_edge", "id": flow_id,
                "ts": ts, "args": args,
            })
            out.append({
                "ph": "f", "bp": "e", "pid": _MACHINE_PID,
                "tid": event.waiter, "name": "blocks",
                "cat": "sync_edge", "id": flow_id,
                "ts": ts + cycle_us / 4, "args": args,
            })
        elif isinstance(event, PartitionChangeEvent):
            out.append({
                "ph": "i", "pid": _MACHINE_PID,
                "name": f"partition -> {event.n_ssets} SSETs",
                "cat": "partition", "s": "g",
                "ts": event.cycle * cycle_us,
                "args": {"partition": event.partition},
            })
        elif isinstance(event, PassEvent):
            if event.start:
                ts = (event.start - pass_epoch) * 1e6
            else:
                ts = pass_clock
                pass_clock += event.seconds * 1e6
            out.append({
                "ph": "X", "pid": _COMPILER_PID, "tid": 0,
                "name": event.name, "cat": "compiler",
                "ts": ts, "dur": max(event.seconds * 1e6, 0.01),
                "args": {"ops_in": event.ops_in, "ops_out": event.ops_out,
                         **event.extra},
            })

    meta: List[dict] = []
    if any(e.get("pid") == _MACHINE_PID for e in out):
        meta += _machine_metadata(n_fus, machine_name)
    if any(e.get("pid") == _COMPILER_PID for e in out):
        meta += [
            {"ph": "M", "pid": _COMPILER_PID, "name": "process_name",
             "args": {"name": "compiler"}},
            {"ph": "M", "pid": _COMPILER_PID, "tid": 0,
             "name": "thread_name", "args": {"name": "passes"}},
        ]
    return meta + out


def chrome_trace(events: Iterable[Event],
                 cycle_us: float = CYCLE_US) -> dict:
    """The complete JSON-object trace Perfetto/chrome://tracing loads."""
    return {
        "traceEvents": chrome_trace_events(list(events), cycle_us),
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "cycle_us": cycle_us,
        },
    }


def write_chrome_trace(path: Union[str, pathlib.Path],
                       events: Iterable[Event],
                       cycle_us: float = CYCLE_US) -> pathlib.Path:
    """Serialize :func:`chrome_trace` to *path*; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(chrome_trace(events, cycle_us), stream)
    return path
