"""The observer: sinks + metrics behind one guarded emit point.

Instrumented code holds an :class:`Observer` (or the shared
:data:`NULL_OBSERVER`) and guards every event construction with
``if obs.enabled:`` — the disabled path is one attribute load, so the
simulators pay nothing when nobody is watching (the tier-1 timing
requirement).  A module-level *current observer* (in the spirit of
``logging``'s root logger) lets deep call chains — compiler passes in
particular — report telemetry without threading an argument through
every signature; :func:`observed` scopes it.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Union

from .events import Event, PassEvent
from .metrics import MetricsRegistry
from .sinks import RingBufferSink, Sink


class PassSpan:
    """Mutable record handed to an in-flight compiler pass."""

    __slots__ = ("name", "ops_in", "ops_out", "extra")

    def __init__(self, name: str, ops_in: int = 0):
        self.name = name
        self.ops_in = ops_in
        self.ops_out = ops_in
        self.extra: dict = {}


class Observer:
    """Fan events out to sinks and keep a metrics registry.

    *sample_every* selects the tracing tier for the machine simulators:
    ``1`` (the default) emits every cycle's events (tier-2, full
    tracing), ``N > 1`` emits the full typed-event set only on cycles
    where ``cycle % N == 0`` (tier-1, sampled tracing — cheap enough
    for the fast engine).  An observer with no sinks at all is tier-0:
    only counters/metrics are kept, which the fast engine accumulates
    natively.  Sampling never thins metrics — counters and histograms
    always cover every cycle.
    """

    enabled = True
    sample_every = 1

    def __init__(self, sinks: Union[Sink, Sequence[Sink], None] = None,
                 registry: Optional[MetricsRegistry] = None,
                 sample_every: int = 1):
        if sinks is None:
            sinks = []
        elif isinstance(sinks, Sink):
            sinks = [sinks]
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sinks: List[Sink] = list(sinks)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sample_every = int(sample_every)

    @property
    def counters_only(self) -> bool:
        """True when this observer keeps metrics but has no sinks — the
        tier-0 subset the fast engine supports natively."""
        return not self.sinks

    def add_sink(self, sink: Sink) -> Sink:
        self.sinks.append(sink)
        return sink

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    # -- metrics shorthands ------------------------------------------------

    def counter(self, name: str):
        return self.registry.counter(name)

    def gauge(self, name: str):
        return self.registry.gauge(name)

    def histogram(self, name: str):
        return self.registry.histogram(name)

    def timer(self, name: str):
        return self.registry.timer(name)

    # -- compiler-pass telemetry ------------------------------------------

    @contextmanager
    def pass_span(self, name: str, ops_in: int = 0) -> Iterator[PassSpan]:
        """Time one compiler pass; emits a :class:`PassEvent` on exit.

        The pass body may set ``span.ops_out`` (defaults to ``ops_in``)
        and stash details in ``span.extra``.
        """
        span = PassSpan(name, ops_in)
        if not self.enabled:
            yield span
            return
        start = time.perf_counter()
        try:
            yield span
        finally:
            seconds = time.perf_counter() - start
            self.registry.timer(f"pass.{name}").observe(seconds)
            self.emit(PassEvent(name=name, seconds=seconds,
                                ops_in=span.ops_in, ops_out=span.ops_out,
                                start=start, extra=dict(span.extra)))

    def __enter__(self) -> "Observer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullObserver(Observer):
    """The default: drops everything, guards short-circuit on it."""

    enabled = False

    def __init__(self):
        super().__init__()

    def emit(self, event: Event) -> None:  # pragma: no cover - never hot
        pass


#: Shared disabled observer; identity-comparable, never emits.
NULL_OBSERVER = NullObserver()

_current: Observer = NULL_OBSERVER


def current_observer() -> Observer:
    """The ambient observer (the null observer unless one is installed)."""
    return _current


def set_observer(observer: Optional[Observer]) -> Observer:
    """Install *observer* globally; returns the previous one."""
    global _current
    previous = _current
    _current = observer if observer is not None else NULL_OBSERVER
    return previous


@contextmanager
def observed(observer: Observer) -> Iterator[Observer]:
    """Scope the ambient observer to a ``with`` block."""
    previous = set_observer(observer)
    try:
        yield observer
    finally:
        set_observer(previous)


def recording_observer(capacity: Optional[int] = None,
                       sample_every: int = 1) -> Observer:
    """An observer with a single in-memory ring buffer (test helper)."""
    return Observer(RingBufferSink(capacity), sample_every=sample_every)
