"""Synchronization critical-path analysis.

The wait matrix says how long each FU was blocked and on whom; this
module answers the follow-up question — *which chain of waits bounded
the run*.  From a typed-event stream it merges per-(waiter, blocker,
site) :class:`~repro.obs.events.SyncEdgeEvent` runs into
:class:`WaitInterval` s, builds the cycle-resolved wait-for graph, and
extracts the longest release→wait chain (FU *a* could only stop
waiting once FU *b* released, and *b* itself had been waiting on *c*
earlier — the paper's §3.2 fork/join imbalance, composed across
barriers).  From a bare tier-0 wait matrix — no cycle resolution — it
falls back to the heaviest simple path through the aggregate wait-for
graph.

Intervals tolerate tier-1 sampling: the merge stride is inferred from
the smallest observed gap between edge events, so a stream sampled
every N cycles yields intervals whose ``cycles`` estimate scales back
up by N.  On a full (tier-2) trace the reconstruction is exact.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .events import Event, PartitionChangeEvent, SyncEdgeEvent

#: largest FU count the exact longest-simple-path search will take on
#: (2^n * n^2 states); larger machines fall back to a greedy walk.
_EXACT_PATH_LIMIT = 12


@dataclass(frozen=True)
class WaitInterval:
    """One maximal run of consecutive sync-edge charges: FU *waiter*
    blocked on FU *blocker* at barrier/branch site *pc* from cycle
    *start* through cycle *end*."""

    waiter: int
    blocker: int
    pc: Optional[int]
    cond: str                   #: "ss" | "all" | "any"
    start: int
    end: int
    edges: int                  #: merged edge events
    cycles: int                 #: estimated blocked cycles (edges × stride)

    def to_dict(self) -> dict:
        return {
            "waiter": self.waiter, "blocker": self.blocker,
            "pc": self.pc, "cond": self.cond,
            "start": self.start, "end": self.end,
            "edges": self.edges, "cycles": self.cycles,
        }


@dataclass
class CriticalPath:
    """The longest release→wait chain found, as JSON-ready links."""

    total_cycles: int
    links: List[dict]
    source: str                 #: "events" | "matrix"

    def to_dict(self) -> dict:
        return {"total_cycles": self.total_cycles,
                "links": list(self.links), "source": self.source}

    def render(self) -> str:
        if not self.links:
            return "critical path: none (no sync waits observed)"
        lines = [f"critical path: {self.total_cycles} blocked cycles "
                 f"across {len(self.links)} link"
                 f"{'s' if len(self.links) != 1 else ''} "
                 f"(from {self.source})"]
        for link in self.links:
            where = (f" @{link['pc']:#04x}" if link.get("pc") is not None
                     else "")
            cond = f" ({link['cond']})" if link.get("cond") else ""
            span = ""
            if link.get("start", -1) >= 0:
                span = f"  cycles {link['start']}..{link['end']}"
            sset = link.get("sset")
            sset_text = (
                "  sset={" + ",".join(str(fu) for fu in sset) + "}"
                if sset else "")
            lines.append(
                f"  FU{link['waiter']} waited on FU{link['blocker']}"
                f"{where}{cond}{span}  [{link['cycles']} cy]{sset_text}")
        return "\n".join(lines)


def infer_stride(cycles: Sequence[int]) -> int:
    """The sampling stride of an edge stream: the smallest positive
    gap between observed cycles (1 when indeterminate)."""
    distinct = sorted(set(cycles))
    stride = 0
    for before, after in zip(distinct, distinct[1:]):
        gap = after - before
        if gap > 0 and (stride == 0 or gap < stride):
            stride = gap
    return stride or 1


def intervals_from_events(events: Iterable[Event]) -> List[WaitInterval]:
    """Merge a stream's sync-edge events into maximal wait intervals."""
    edges = [e for e in events if isinstance(e, SyncEdgeEvent)]
    if not edges:
        return []
    stride = infer_stride([e.cycle for e in edges])
    by_key: Dict[Tuple[int, int, Optional[int], str], List[int]] = {}
    for event in edges:
        by_key.setdefault(
            (event.waiter, event.blocker, event.pc, event.cond),
            []).append(event.cycle)
    intervals: List[WaitInterval] = []
    for (waiter, blocker, pc, cond), cycles in by_key.items():
        cycles.sort()
        run_start = prev = cycles[0]
        count = 1
        for cycle in cycles[1:]:
            if cycle - prev <= stride:
                prev = cycle
                count += 1
                continue
            intervals.append(WaitInterval(
                waiter, blocker, pc, cond, run_start, prev,
                count, count * stride))
            run_start = prev = cycle
            count = 1
        intervals.append(WaitInterval(
            waiter, blocker, pc, cond, run_start, prev,
            count, count * stride))
    intervals.sort(key=lambda iv: (iv.end, iv.start, iv.waiter, iv.blocker))
    return intervals


def _partition_timeline(events: Iterable[Event]):
    """(cycles, partitions) arrays for bisecting the active partition."""
    changes = sorted(
        ((e.cycle, e.partition) for e in events
         if isinstance(e, PartitionChangeEvent)),
        key=lambda pair: pair[0])
    return [c for c, _ in changes], [p for _, p in changes]


def _sset_of(partition, fu: int) -> Optional[Tuple[int, ...]]:
    if partition is None:
        return None
    for sset in partition:
        if fu in sset:
            return tuple(sset)
    return None


def critical_path_from_events(events: Iterable[Event]) -> CriticalPath:
    """The longest release→wait chain in a typed-event stream.

    A chain may extend a wait on FU *b* with an earlier-ending wait
    *by* FU *b*: *b*'s own blocking had to resolve before *b* could
    release anyone else.  Links carry SSET attribution when the stream
    recorded partition changes.
    """
    events = list(events)
    intervals = intervals_from_events(events)
    # longest-chain DP: process intervals in ascending end order; equal
    # ends are batched so a predecessor must strictly precede its
    # successor's release (the graph stays acyclic)
    best: Dict[int, Tuple[int, List[WaitInterval]]] = {}
    index = 0
    while index < len(intervals):
        stop = index
        end = intervals[index].end
        staged = []
        while stop < len(intervals) and intervals[stop].end == end:
            interval = intervals[stop]
            pred = best.get(interval.blocker)
            if pred is not None:
                staged.append((pred[0] + interval.cycles,
                               pred[1] + [interval]))
            else:
                staged.append((interval.cycles, [interval]))
            stop += 1
        for total, chain in staged:
            current = best.get(chain[-1].waiter)
            if current is None or total > current[0]:
                best[chain[-1].waiter] = (total, chain)
        index = stop
    if not best:
        return CriticalPath(0, [], "events")
    total, chain = max(best.values(), key=lambda pair: pair[0])
    change_cycles, partitions = _partition_timeline(events)
    links = []
    for interval in chain:
        link = interval.to_dict()
        if change_cycles:
            at = bisect_right(change_cycles, interval.start) - 1
            sset = (_sset_of(partitions[at], interval.waiter)
                    if at >= 0 else None)
            link["sset"] = list(sset) if sset is not None else None
        links.append(link)
    return CriticalPath(total, links, "events")


def critical_path_from_matrix(
        wait_rows: Sequence[Sequence[int]]) -> CriticalPath:
    """Heaviest simple blocker→waiter path through an aggregate wait
    matrix (tier-0 fallback: no cycle resolution, so the chain is a
    weight argument, not a proven temporal ordering)."""
    n = len(wait_rows)
    if not n or not any(any(row) for row in wait_rows):
        return CriticalPath(0, [], "matrix")
    if n <= _EXACT_PATH_LIMIT:
        path, weight = _heaviest_path_exact(wait_rows)
    else:
        path, weight = _heaviest_path_greedy(wait_rows)
    links = [
        {"waiter": waiter, "blocker": blocker, "pc": None, "cond": "",
         "start": -1, "end": -1, "edges": wait_rows[waiter][blocker],
         "cycles": wait_rows[waiter][blocker]}
        for blocker, waiter in zip(path, path[1:])
    ]
    return CriticalPath(weight, links, "matrix")


def _heaviest_path_exact(wait_rows) -> Tuple[List[int], int]:
    """Exact heaviest simple path by subset DP (blocker→waiter edges,
    edge weight = wait cycles charged)."""
    n = len(wait_rows)
    # dp[(mask, last)] = (weight, path) — paths ending at `last` having
    # visited `mask`
    dp: Dict[Tuple[int, int], Tuple[int, List[int]]] = {
        (1 << node, node): (0, [node]) for node in range(n)}
    best_weight = 0
    best_path = [0]
    frontier = list(dp.items())
    while frontier:
        next_frontier = []
        for (mask, last), (weight, path) in frontier:
            for waiter in range(n):
                if mask & (1 << waiter):
                    continue
                edge = wait_rows[waiter][last]
                if not edge:
                    continue
                key = (mask | (1 << waiter), waiter)
                candidate = (weight + edge, path + [waiter])
                current = dp.get(key)
                if current is None or candidate[0] > current[0]:
                    dp[key] = candidate
                    next_frontier.append((key, candidate))
                    if candidate[0] > best_weight:
                        best_weight, best_path = candidate
        frontier = next_frontier
    return best_path, best_weight


def _heaviest_path_greedy(wait_rows) -> Tuple[List[int], int]:
    """Greedy fallback for wide machines: start at the heaviest edge,
    extend both ends by the heaviest unused edge."""
    n = len(wait_rows)
    waiter, blocker = max(
        ((i, j) for i in range(n) for j in range(n)),
        key=lambda ij: wait_rows[ij[0]][ij[1]])
    path = [blocker, waiter]
    weight = wait_rows[waiter][blocker]
    used = set(path)
    grew = True
    while grew:
        grew = False
        head, tail = path[-1], path[0]
        nxt = max((w for w in range(n) if w not in used
                   and wait_rows[w][head]),
                  key=lambda w: wait_rows[w][head], default=None)
        if nxt is not None:
            weight += wait_rows[nxt][head]
            path.append(nxt)
            used.add(nxt)
            grew = True
        prev = max((b for b in range(n) if b not in used
                    and wait_rows[tail][b]),
                   key=lambda b: wait_rows[tail][b], default=None)
        if prev is not None:
            weight += wait_rows[tail][prev]
            path.insert(0, prev)
            used.add(prev)
            grew = True
    return path, weight


def format_wait_matrix(wait_rows: Sequence[Sequence[int]]) -> str:
    """Fixed-width text grid: rows are waiters, columns are blockers."""
    n = len(wait_rows)
    cell = max([5] + [len(str(value)) + 2
                      for row in wait_rows for value in row])
    header = "waits on:".rjust(10) + "".join(
        f"FU{j}".rjust(cell) for j in range(n))
    lines = [header]
    for i, row in enumerate(wait_rows):
        lines.append(f"FU{i}".rjust(10) + "".join(
            (str(value) if value else ".").rjust(cell) for value in row))
    return "\n".join(lines)
