"""The run-diff engine: structured deltas between two obs artifacts.

The paper's evaluation is *comparative* (XIMD vs VLIW cycles,
utilization, synchronization cost across workloads), and the ROADMAP's
"every PR makes a hot path measurably faster" only means something if a
change that makes any workload *slower* is caught.  This module
compares two run reports, two benchmark-result artifacts, or two
benchmark summaries and produces a structured delta — per-metric
before/after/ratio — plus a regression verdict under a configurable
threshold policy.

Direction matters: more ``cycles`` is a regression, more ``speedup`` is
an improvement, and anything under a ``timing`` key (wall-clock) is
*never* blocking — simulated cycle counts are deterministic, wall time
is not.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .schema import SchemaError, artifact_kind, check_artifact

#: Metric-name markers whose *increase* is a regression.  Markers are
#: matched as anchored ``_``-token sequences against the path leaf, so
#: ``cycles`` matches ``ximd_cycles`` but not ``cycle_time_ns`` and
#: ``stall`` does not match an ``installed`` leaf.
LOWER_IS_BETTER = (
    "cycles", "nops", "stall", "sync_wait", "branch_resolve", "idle",
    "halted", "partition_changes", "barriers", "height", "code_rows",
    "chips", "transistors", "cycle_time", "energy", "pj",
    "ops_in", "ops_out", "skew", "polls_failed",
)

#: Metric-name markers whose *decrease* is a regression.
HIGHER_IS_BETTER = ("speedup", "utilization", "occupancy", "mips",
                    "mflops", "per_sec", "throughput")

#: Path-component markers for wall-clock measurements (warn-only).
TIMING_MARKERS = ("timing", "seconds", "wall")

#: Path-component markers for advisory metrics: deterministic, with a
#: real direction (per-pass IR growth is worth flagging), but judged by
#: a coarser yardstick than end-to-end results — a pass may legitimately
#: grow the IR so a later pass can shrink it.  Advisory regressions are
#: reported but never block.
ADVISORY_MARKERS = ("passes",)

#: Exact *non-leaf* path components whose whole subtree is advisory.
#: ``sync`` must match only the section name: token matching would also
#: catch blocking leaves like ``sync_done`` or ``sync_cycles_total``,
#: and leaf exclusion keeps ``branch_mix.sync`` blocking.  ``faults``
#: covers the E19 fault-injection metrics: deterministic, but their
#: direction (more faults applied, more faulted cycles) says nothing
#: about simulator performance.
ADVISORY_SECTIONS = ("passes", "sync", "faults")


class WorkloadMismatchError(ValueError):
    """The two artifacts do not describe the same workload set."""


def _marker_matches(marker: str, component: str) -> bool:
    """Anchored match: *marker*'s ``_``-token sequence appears
    contiguously among *component*'s ``_``-tokens.

    Substring matching silently classified any leaf merely *containing*
    a marker (``installed`` ~ ``stall``, ``recycles`` ~ ``cycles``);
    token anchoring only fires on whole metric words.
    """
    tokens = component.lower().split("_")
    needle = marker.split("_")
    span = len(tokens) - len(needle) + 1
    return any(tokens[i:i + len(needle)] == needle for i in range(span))


def metric_direction(path: str) -> str:
    """``"lower"`` / ``"higher"`` / ``"neutral"`` for a metric path.

    Compared against the *last* path component so that e.g.
    ``workloads.minmax.ximd_cycles`` is judged by ``ximd_cycles``;
    markers match whole ``_``-separated tokens (``cycle_time_ns`` is
    judged by the ``cycle_time`` marker, never by ``cycles``).
    The leaf markers are consulted *before* the timing fallback so a
    throughput rate quarantined under ``timing`` (host kcycles/sec is
    wall-clock-derived) still reads higher-is-better; unrecognized
    leaves on a timing path default to lower-is-better — more seconds
    is worse.  Timing paths never block either way (see
    :class:`DiffResult`).
    """
    leaf = path.rsplit(".", 1)[-1]
    for marker in HIGHER_IS_BETTER:
        if _marker_matches(marker, leaf):
            return "higher"
    for marker in LOWER_IS_BETTER:
        if _marker_matches(marker, leaf):
            return "lower"
    if is_timing_path(path):
        return "lower"
    return "neutral"


def is_timing_path(path: str) -> bool:
    """Whether *path* measures wall-clock time (never blocking)."""
    return any(_marker_matches(marker, part)
               for part in path.split(".")
               for marker in TIMING_MARKERS)


def is_advisory_path(path: str) -> bool:
    """Whether *path* is advisory: reported on regression, never
    blocking (per-pass compiler telemetry, sync-wait profiles)."""
    parts = path.split(".")
    if any(part in ADVISORY_SECTIONS for part in parts[:-1]):
        return True
    return any(_marker_matches(marker, part)
               for part in parts
               for marker in ADVISORY_MARKERS)


def flatten_numeric(payload: object, prefix: str = "",
                    skip_keys: Iterable[str] = (
                        "schema_version", "kind", "generated_by",
                        "git_sha", "label")) -> Dict[str, float]:
    """All numeric leaves of a JSON payload as ``dotted.path -> value``.

    Recurses into dicts and lists (list positions become numeric path
    components); strings, booleans, and None are ignored, as are the
    bookkeeping keys in *skip_keys*.
    """
    skip = frozenset(skip_keys)
    out: Dict[str, float] = {}

    def walk(node: object, path: str) -> None:
        if isinstance(node, bool):
            return
        if isinstance(node, (int, float)):
            out[path] = node
            return
        if isinstance(node, dict):
            for key, value in node.items():
                if key in skip:
                    continue
                walk(value, f"{path}.{key}" if path else str(key))
            return
        if isinstance(node, list):
            for index, value in enumerate(node):
                walk(value, f"{path}.{index}" if path else str(index))

    walk(payload, prefix)
    return out


@dataclass(frozen=True)
class MetricDelta:
    """One metric's before/after pair."""

    path: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def ratio(self) -> Optional[float]:
        """after/before, or None when the baseline is zero."""
        if self.before == 0:
            return None
        return self.after / self.before

    @property
    def direction(self) -> str:
        return metric_direction(self.path)

    @property
    def timing(self) -> bool:
        return is_timing_path(self.path)

    @property
    def advisory(self) -> bool:
        return is_advisory_path(self.path)

    def relative_change(self) -> float:
        """|delta| / |before| (∞ when the baseline is zero)."""
        if self.before == 0:
            return float("inf") if self.after != 0 else 0.0
        return abs(self.delta) / abs(self.before)

    def regressed(self, tolerance: float = 0.0,
                  abs_tolerance: float = 0.0) -> bool:
        """Whether this delta worsens the metric beyond the tolerances.

        *tolerance* is relative: 0.02 lets a metric worsen by up to 2%
        of its baseline value before counting as a regression.
        *abs_tolerance* is an absolute floor on |delta|: a zero
        baseline makes the relative change infinite (0 → ε would block
        at any relative tolerance), so movements no larger than
        *abs_tolerance* never regress.  Neutral metrics never regress.
        """
        direction = self.direction
        if direction == "neutral":
            return False
        worse = (self.delta > 0) if direction == "lower" else (self.delta < 0)
        return (worse and abs(self.delta) > abs_tolerance
                and self.relative_change() > tolerance)

    def improved(self) -> bool:
        direction = self.direction
        if direction == "neutral":
            return False
        return (self.delta < 0) if direction == "lower" else (self.delta > 0)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "before": self.before,
            "after": self.after,
            "delta": self.delta,
            "ratio": self.ratio,
            "direction": self.direction,
            "timing": self.timing,
            "advisory": self.advisory,
        }


@dataclass
class DiffResult:
    """The structured comparison of two artifacts.

    ``tolerance``/``abs_tolerance`` are the default relative/absolute
    thresholds; ``per_metric`` maps a path *leaf* (e.g.
    ``skyline_height``) to a calibrated relative tolerance overriding
    the default for that metric — the loaded form of a
    ``tolerance_table`` artifact (see :func:`load_tolerance_table`).
    """

    deltas: List[MetricDelta] = field(default_factory=list)
    only_before: List[str] = field(default_factory=list)
    only_after: List[str] = field(default_factory=list)
    tolerance: float = 0.0
    abs_tolerance: float = 0.0
    per_metric: Dict[str, float] = field(default_factory=dict)

    def tolerance_for(self, path: str) -> float:
        """The relative tolerance in force for one metric path."""
        return self.per_metric.get(path.rsplit(".", 1)[-1], self.tolerance)

    @property
    def changed(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.delta != 0]

    @property
    def regressions(self) -> List[MetricDelta]:
        """Deterministic-metric regressions beyond tolerance (blocking)."""
        return [d for d in self.deltas
                if not d.timing and not d.advisory
                and d.regressed(self.tolerance_for(d.path),
                                self.abs_tolerance)]

    @property
    def timing_regressions(self) -> List[MetricDelta]:
        """Wall-clock worsening — reported, never blocking."""
        return [d for d in self.deltas
                if d.timing and d.regressed(self.tolerance_for(d.path),
                                            self.abs_tolerance)]

    @property
    def advisory_regressions(self) -> List[MetricDelta]:
        """Per-pass IR growth and friends — reported, never blocking."""
        return [d for d in self.deltas
                if d.advisory and not d.timing
                and d.regressed(self.tolerance_for(d.path),
                                self.abs_tolerance)]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [d for d in self.deltas if not d.timing and d.improved()]

    @property
    def identical(self) -> bool:
        return (not self.changed and not self.only_before
                and not self.only_after)

    def to_dict(self) -> dict:
        return {
            "tolerance": self.tolerance,
            "abs_tolerance": self.abs_tolerance,
            "per_metric_tolerances": dict(sorted(self.per_metric.items())),
            "identical": self.identical,
            "changed": [d.to_dict() for d in self.changed],
            "regressions": [d.to_dict() for d in self.regressions],
            "timing_regressions": [d.to_dict()
                                   for d in self.timing_regressions],
            "advisory_regressions": [d.to_dict()
                                     for d in self.advisory_regressions],
            "improvements": [d.to_dict() for d in self.improvements],
            "only_before": list(self.only_before),
            "only_after": list(self.only_after),
        }

    def render_text(self, max_rows: int = 40) -> str:
        """A fixed-width delta table (changed metrics only)."""
        if self.identical:
            return "no differences"
        lines: List[str] = []
        changed = self.changed
        if changed:
            regressed = {d.path for d in self.regressions}
            advisory = {d.path for d in self.advisory_regressions}
            width = max(len(d.path) for d in changed)
            width = min(max(width, 6), 56)
            lines.append(f"{'metric':<{width}} {'before':>14} "
                         f"{'after':>14} {'delta':>12}  verdict")
            lines.append("-" * (width + 14 + 14 + 12 + 11))
            shown = changed[:max_rows]
            for d in shown:
                if d.path in regressed:
                    verdict = "REGRESSED"
                elif d.path in advisory:
                    verdict = "advisory"
                elif d.timing:
                    verdict = "timing"
                elif d.improved():
                    verdict = "improved"
                else:
                    verdict = "changed"
                lines.append(
                    f"{d.path:<{width}} {_num(d.before):>14} "
                    f"{_num(d.after):>14} {_num(d.delta, sign=True):>12}"
                    f"  {verdict}")
            if len(changed) > max_rows:
                lines.append(f"... {len(changed) - max_rows} more "
                             "changed metrics")
        for label, paths in (("only in baseline", self.only_before),
                             ("only in candidate", self.only_after)):
            if paths:
                preview = ", ".join(paths[:6])
                more = f" (+{len(paths) - 6} more)" if len(paths) > 6 else ""
                lines.append(f"{label}: {preview}{more}")
        policy = f"tolerance {self.tolerance:.1%}"
        if self.abs_tolerance:
            policy += f", abs floor {self.abs_tolerance:g}"
        if self.per_metric:
            policy += f", {len(self.per_metric)} per-metric overrides"
        lines.append(
            f"summary: {len(changed)} changed, "
            f"{len(self.regressions)} regressed, "
            f"{len(self.improvements)} improved, "
            f"{len(self.advisory_regressions)} advisory, "
            f"{len(self.timing_regressions)} timing-only "
            f"({policy})")
        return "\n".join(lines)


def _num(value: float, sign: bool = False) -> str:
    if isinstance(value, float) and not value.is_integer():
        text = f"{value:+.4f}" if sign else f"{value:.4f}"
    else:
        text = f"{int(value):+d}" if sign else f"{int(value)}"
    return text


def comparison_payload(artifact: dict) -> Tuple[dict, List[str]]:
    """Reduce an artifact to its comparable payload + workload labels.

    Returns ``(payload, workloads)`` where *workloads* is the label set
    used to detect apples-to-oranges diffs: section entry names for
    summaries/history records, the result name for ``bench_result``,
    and ``machine×n_fus`` for run reports.
    """
    kind = artifact_kind(artifact)
    if kind == "run_report":
        labels = [f"{artifact.get('machine', '?')}"
                  f"×{artifact.get('n_fus', '?')}fus"]
        return artifact, labels
    if kind == "bench_result":
        return ({"data": artifact.get("data")},
                [str(artifact.get("name", "?"))])
    if kind in ("bench_summary", "bench_history"):
        sections = artifact.get("sections")
        if not isinstance(sections, dict):
            # flat summaries keep sections at top level
            sections = {key: value for key, value in artifact.items()
                        if isinstance(value, dict)
                        and key not in ("timing",)}
        labels = sorted(
            f"{section}/{entry}"
            for section, entries in sections.items()
            if isinstance(entries, dict)
            for entry in entries)
        payload = {"sections": sections}
        if isinstance(artifact.get("timing"), dict):
            payload["timing"] = artifact["timing"]
        return payload, labels
    raise SchemaError(f"cannot compare artifact of kind {kind!r}")


def load_tolerance_table(path: Union[str, pathlib.Path]) -> dict:
    """Load a ``tolerance_table`` artifact (the calibrated per-metric
    tolerance file the CI gate consumes).

    Shape::

        {"schema_version": 2, "kind": "tolerance_table",
         "default_tolerance": 0.0, "abs_tolerance": 0.0,
         "metrics": {"skyline_height": 0.10, ...}}

    ``metrics`` keys are path leaves; values are relative tolerances
    overriding ``default_tolerance`` for that metric.  Returns a dict
    with normalized ``default_tolerance``/``abs_tolerance``/``metrics``
    keys; raises :class:`SchemaError` on a malformed table.
    """
    from .schema import load_artifact

    table = load_artifact(path, expect_kind="tolerance_table")
    metrics = table.get("metrics", {})
    if not isinstance(metrics, dict) or not all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in metrics.values()):
        raise SchemaError(
            f"{path}: 'metrics' must map metric leaves to numeric "
            "relative tolerances")
    return {
        "default_tolerance": float(table.get("default_tolerance", 0.0)),
        "abs_tolerance": float(table.get("abs_tolerance", 0.0)),
        "metrics": {str(k): float(v) for k, v in metrics.items()},
    }


def diff_artifacts(baseline: dict, candidate: dict,
                   tolerance: float = 0.0,
                   abs_tolerance: float = 0.0,
                   per_metric: Optional[Dict[str, float]] = None,
                   include_timing: bool = False,
                   require_matching_workloads: bool = True) -> DiffResult:
    """Compare two schema-checked artifacts.

    Raises :class:`WorkloadMismatchError` when the two artifacts cover
    different workload sets (unless *require_matching_workloads* is
    False, in which case the mismatch is reported through
    ``only_before``/``only_after``) and :class:`SchemaError` when the
    kinds are incomparable.
    """
    check_artifact(baseline, "baseline")
    check_artifact(candidate, "candidate")
    kind_a = artifact_kind(baseline)
    kind_b = artifact_kind(candidate)
    comparable = {kind_a, kind_b}
    # summaries and history records share the sections shape
    if not (kind_a == kind_b
            or comparable <= {"bench_summary", "bench_history"}):
        raise SchemaError(
            f"cannot diff a {kind_a!r} artifact against a {kind_b!r} one")

    payload_a, workloads_a = comparison_payload(baseline)
    payload_b, workloads_b = comparison_payload(candidate)
    if require_matching_workloads and set(workloads_a) != set(workloads_b):
        missing = sorted(set(workloads_a) - set(workloads_b))
        added = sorted(set(workloads_b) - set(workloads_a))
        detail = []
        if missing:
            detail.append(f"missing from candidate: {', '.join(missing)}")
        if added:
            detail.append(f"new in candidate: {', '.join(added)}")
        raise WorkloadMismatchError(
            "workload sets differ — " + "; ".join(detail))

    flat_a = flatten_numeric(payload_a)
    flat_b = flatten_numeric(payload_b)
    if not include_timing:
        flat_a = {p: v for p, v in flat_a.items() if not is_timing_path(p)}
        flat_b = {p: v for p, v in flat_b.items() if not is_timing_path(p)}

    deltas = [MetricDelta(path, flat_a[path], flat_b[path])
              for path in sorted(flat_a.keys() & flat_b.keys())]
    return DiffResult(
        deltas=deltas,
        only_before=sorted(flat_a.keys() - flat_b.keys()),
        only_after=sorted(flat_b.keys() - flat_a.keys()),
        tolerance=tolerance,
        abs_tolerance=abs_tolerance,
        per_metric=dict(per_metric or {}),
    )


def diff_files(baseline: Union[str, pathlib.Path],
               candidate: Union[str, pathlib.Path],
               tolerance: float = 0.0,
               abs_tolerance: float = 0.0,
               per_metric: Optional[Dict[str, float]] = None,
               include_timing: bool = False,
               require_matching_workloads: bool = True) -> DiffResult:
    """File-path convenience wrapper around :func:`diff_artifacts`."""
    from .schema import load_artifact

    return diff_artifacts(
        load_artifact(baseline),
        load_artifact(candidate),
        tolerance=tolerance,
        abs_tolerance=abs_tolerance,
        per_metric=per_metric,
        include_timing=include_timing,
        require_matching_workloads=require_matching_workloads,
    )
