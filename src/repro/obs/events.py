"""Typed trace events — the vocabulary of the observability subsystem.

Everything the paper's evaluation *observes* about an execution
(section 4.1: per-cycle addresses, condition codes, sync signals, SSET
partitions) plus what the compiler does to a program on its way to the
machine is expressed as one of these event types.  Events are plain
frozen dataclasses with a stable ``kind`` tag and a lossless
dict/JSON round-trip (:func:`event_to_dict` / :func:`event_from_dict`)
so a recorded JSONL stream can be replayed into a Figure-10 table, a
Chrome trace, or a run report long after the simulator is gone.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple, Type

#: JSON-friendly partition: a list of FU-index lists, or None.
PartitionJson = Optional[Tuple[Tuple[int, ...], ...]]

#: Per-FU cycle classification characters (:attr:`CycleEvent.fu_class`)
#: and their spelled-out names, as used by stall attribution in run
#: reports.  ``U`` = executed a useful (non-nop) data op; ``S`` = spun
#: on an untaken sync branch (waiting on BUSY signals); ``B`` = spent
#: the cycle resolving a branch with no data work; ``I`` = idle (nop,
#: no pending control transfer); ``.`` = halted.
FU_CLASS_NAMES: Dict[str, str] = {
    "U": "useful",
    "S": "sync_wait",
    "B": "branch_resolve",
    "I": "idle",
    ".": "halted",
}

#: Stable column order for stall-mix renderings.
FU_CLASS_ORDER: Tuple[str, ...] = tuple(FU_CLASS_NAMES.values())


@dataclass(frozen=True)
class CycleEvent:
    """One machine cycle: the Figure-10 row, in structured form."""

    kind = "cycle"

    machine: str                       #: "ximd" or "vliw"
    cycle: int
    #: PC per FU at the start of the cycle; None = halted.
    pcs: Tuple[Optional[int], ...]
    #: condition codes at the start of the cycle, e.g. ``"TTFX"``.
    cc: str
    #: sync signals asserted during the cycle, ``"B"``/``"D"``/``"-"``.
    ss: str
    #: the SSET partition, or None when no tracker is attached.
    partition: PartitionJson = None
    #: non-nop data operations executed this cycle (for utilization).
    data_ops: int = 0
    #: per-FU cycle classification, one :data:`FU_CLASS_NAMES` char per
    #: FU (empty string on streams recorded before attribution existed).
    fu_class: str = ""
    #: per-FU executed opcode mnemonic; None = nop or halted.  Empty
    #: tuple on pre-attribution streams.
    ops: Tuple[Optional[str], ...] = ()


@dataclass(frozen=True)
class BranchEvent:
    """One control operation resolved by a sequencer."""

    kind = "branch"

    machine: str
    cycle: int
    fu: int
    pc: int
    #: "uncond" | "cond" | "sync" (condition reads the sync signals).
    branch_kind: str
    taken: bool
    target: Optional[int] = None


@dataclass(frozen=True)
class SyncEvent:
    """A synchronization signal asserted, or a barrier passed."""

    kind = "sync"

    machine: str
    cycle: int
    fu: int
    pc: Optional[int]
    #: "done" = FU asserted SS DONE; "barrier" = ALL_SS_DONE branch
    #: taken; "barrier_wait" = ALL_SS_DONE branch evaluated untaken
    #: (the FU is parked at the barrier this cycle).
    what: str = "done"


@dataclass(frozen=True)
class SyncEdgeEvent:
    """One cycle of FU *waiter* blocked on FU *blocker*'s BUSY signal.

    Emitted (on sampled cycles) for each blocker charged in the tier-0
    wait matrix: a ``sync_wait``-classed cycle spinning on an untaken
    sync branch at *pc*.  ``cond`` names the condition shape —
    ``"ss"`` (SS_DONE, one blocker), ``"all"`` (ALL_SS_DONE, every
    still-BUSY member), or ``"any"`` (ANY_SS_DONE untaken: no member
    was DONE, so every member blocks).
    """

    kind = "sync_edge"

    machine: str
    cycle: int
    waiter: int
    blocker: int
    pc: Optional[int]
    cond: str = "ss"


@dataclass(frozen=True)
class PartitionChangeEvent:
    """The SSET partition changed between cycles (fork or join)."""

    kind = "partition"

    machine: str
    cycle: int
    partition: PartitionJson
    n_ssets: int


@dataclass(frozen=True)
class PassEvent:
    """One compiler pass finished (wall time + IR size in/out)."""

    kind = "pass"

    name: str
    seconds: float
    ops_in: int = 0
    ops_out: int = 0
    #: perf_counter() at pass start, for ordering on a timeline.
    start: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)


Event = object  # any of the dataclasses above

_EVENT_TYPES: Dict[str, Type] = {
    cls.kind: cls
    for cls in (CycleEvent, BranchEvent, SyncEvent, SyncEdgeEvent,
                PartitionChangeEvent, PassEvent)
}


def event_to_dict(event) -> dict:
    """Serialize an event to a JSON-ready dict (with its ``kind`` tag)."""
    payload = asdict(event)
    payload["kind"] = event.kind
    return payload


def _tuplify_partition(value) -> PartitionJson:
    if value is None:
        return None
    return tuple(tuple(int(fu) for fu in sset) for sset in value)


def event_from_dict(payload: dict):
    """Rebuild a typed event from :func:`event_to_dict` output."""
    payload = dict(payload)
    kind = payload.pop("kind")
    try:
        cls = _EVENT_TYPES[kind]
    except KeyError:
        raise ValueError(f"unknown event kind {kind!r}") from None
    if "pcs" in payload:
        payload["pcs"] = tuple(
            None if pc is None else int(pc) for pc in payload["pcs"])
    if "partition" in payload:
        payload["partition"] = _tuplify_partition(payload["partition"])
    if "ops" in payload:
        payload["ops"] = tuple(
            None if op is None else str(op) for op in payload["ops"])
    return cls(**payload)
