"""The benchmark history ledger: ``BENCH_HISTORY.jsonl``.

Each speedup-suite run appends one schema-versioned record — the git
SHA it ran at (passed in, never shelled out) plus the benchmark
sections — so the repo carries its own performance trajectory.  The
``sections`` payload deliberately contains **no wall-clock fields**:
two runs of the same tree at the same SHA produce an identical
deterministic core, which both keeps the ledger diffable and lets
:func:`append_record` skip duplicates instead of growing the file on
every local rerun.  Wall-clock measurements (host throughput, E14) ride
along under a separate top-level ``timing`` key that is **excluded from
the dedupe identity**: a rerun whose deterministic sections are
unchanged never grows the ledger, however much its wall times wobble.

The CI perf gate consumes the latest record (``latest_record``); the
trend renderer (``render_trend``) summarizes the whole trajectory; and
:func:`calibrate_tolerances` derives a per-metric tolerance table from
the observed variance across the ledger.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Dict, List, Optional, Sequence, Union

from .ioutil import atomic_append_line
from .schema import SCHEMA_VERSION, SchemaError, check_artifact

#: Default ledger location, relative to the repo root.
DEFAULT_HISTORY = "BENCH_HISTORY.jsonl"

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def make_record(sections: Dict[str, dict],
                git_sha: str = "local",
                label: Optional[str] = None,
                timing: Optional[Dict[str, dict]] = None) -> dict:
    """Build one schema-versioned history record.

    *sections* must be deterministic (simulated cycles, energy, static
    sizes); wall-clock measurements go in *timing*, which is stored
    under a separate top-level key so :func:`append_record` can ignore
    it when deciding whether a record duplicates an earlier run.
    """
    clean_sections = {
        section: {name: dict(payload) for name, payload
                  in sorted(entries.items())}
        for section, entries in sorted(sections.items())
        if isinstance(entries, dict) and section != "suite_health"
    }
    record = {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench_history",
        "git_sha": git_sha,
        "sections": clean_sections,
    }
    if label:
        record["label"] = label
    if timing:
        record["timing"] = {
            name: dict(payload) for name, payload in sorted(timing.items())
            if isinstance(payload, dict)
        }
    return record


def _dump(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _identity(record: dict) -> str:
    """The dedupe identity: the canonical dump minus wall-clock keys."""
    return _dump({key: value for key, value in record.items()
                  if key != "timing"})


def append_record(path: Union[str, pathlib.Path], record: dict,
                  dedupe: bool = True) -> bool:
    """Append *record* to the ledger; returns False on a skipped dupe.

    With *dedupe* (the default) an append is skipped when a record with
    the same deterministic content — everything except the wall-clock
    ``timing`` key — appears *anywhere* in the ledger.  Checking only
    the final line would re-append a record whenever an older SHA is
    replayed after a newer one landed; reruns of any already-recorded
    tree must not grow the file, and nondeterministic wall times must
    not defeat that.
    """
    check_artifact(record, "history record")
    path = pathlib.Path(path)
    identity = _identity(record)
    if dedupe and path.exists():
        for seen in path.read_text(encoding="utf-8").splitlines():
            seen = seen.strip()
            if not seen:
                continue
            try:
                previous = json.loads(seen)
            except json.JSONDecodeError:
                continue  # malformed line cannot be a duplicate
            if isinstance(previous, dict) and _identity(previous) == identity:
                return False
    atomic_append_line(path, _dump(record))
    return True


def read_history(path: Union[str, pathlib.Path]) -> List[dict]:
    """Load + validate every record in the ledger, oldest first."""
    path = pathlib.Path(path)
    records = []
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SchemaError(
                f"{path}:{lineno}: malformed JSON ({exc})") from None
        record = check_artifact(payload, source=f"{path}:{lineno}")
        if record.get("kind") != "bench_history":
            raise SchemaError(
                f"{path}:{lineno}: expected a bench_history record, "
                f"found kind={record.get('kind')!r}")
        records.append(record)
    return records


def latest_record(path: Union[str, pathlib.Path]) -> dict:
    """The newest record in the ledger (raises on an empty one)."""
    records = read_history(path)
    if not records:
        raise SchemaError(f"{path}: history ledger is empty")
    return records[-1]


def record_sections(record: dict) -> Dict[str, dict]:
    """A record's sections with ``timing`` folded in as a pseudo-section.

    Trend/series consumers address wall-clock throughput the same way
    as deterministic sections (``series(records, "timing", entry,
    metric)``) even though the record stores it under a separate
    top-level key for dedupe purposes.
    """
    sections = dict(record.get("sections", {}))
    timing = record.get("timing")
    if isinstance(timing, dict):
        sections["timing"] = timing
    return sections


def series(records: Sequence[dict], section: str,
           entry: str, metric: str) -> List[Optional[float]]:
    """One metric's value per record (None where absent)."""
    out: List[Optional[float]] = []
    for record in records:
        value = (record_sections(record)
                 .get(section, {})
                 .get(entry, {})
                 .get(metric))
        out.append(float(value) if isinstance(value, (int, float))
                   and not isinstance(value, bool) else None)
    return out


def _scaled_sparkline(values: Sequence[Optional[float]]) -> str:
    """Min-max scale a series into unicode bars ('·' where absent)."""
    present = [v for v in values if v is not None]
    if not present:
        return "·" * len(values)
    lo, hi = min(present), max(present)
    out = []
    for value in values:
        if value is None:
            out.append("·")
        elif hi == lo:
            out.append(_SPARK_GLYPHS[len(_SPARK_GLYPHS) // 2])
        else:
            index = int((value - lo) / (hi - lo)
                        * (len(_SPARK_GLYPHS) - 1) + 0.5)
            out.append(_SPARK_GLYPHS[index])
    return "".join(out)


def trend_rows(records: Sequence[dict],
               metrics: Sequence[str] = ("speedup", "ximd_cycles"),
               ) -> List[dict]:
    """Per-workload trend summaries across the ledger.

    Each row: section, entry, metric, first, last, spark — one row per
    (workload, metric) that appears anywhere in the history.
    """
    keys = sorted({
        (section, entry)
        for record in records
        for section, entries in record_sections(record).items()
        if isinstance(entries, dict)
        for entry in entries
    })
    rows = []
    for section, entry in keys:
        for metric in metrics:
            values = series(records, section, entry, metric)
            present = [v for v in values if v is not None]
            if not present:
                continue
            rows.append({
                "section": section,
                "entry": entry,
                "metric": metric,
                "first": present[0],
                "last": present[-1],
                "spark": _scaled_sparkline(values),
            })
    return rows


def render_trend(records: Sequence[dict],
                 metrics: Sequence[str] = ("speedup", "ximd_cycles"),
                 ) -> str:
    """A fixed-width trajectory table over the whole ledger."""
    if not records:
        return "history is empty"
    rows = trend_rows(records, metrics)
    if not rows:
        return (f"{len(records)} records, but none carry the metrics "
                f"{', '.join(metrics)}")
    name_width = min(max(len(f"{r['section']}/{r['entry']}")
                         for r in rows), 44)
    lines = [
        f"benchmark history — {len(records)} records "
        f"({records[0].get('git_sha', '?')[:12]} .. "
        f"{records[-1].get('git_sha', '?')[:12]})",
        f"{'workload':<{name_width}} {'metric':<12} {'first':>10} "
        f"{'last':>10} {'change':>8}  trend",
    ]
    for row in rows:
        name = f"{row['section']}/{row['entry']}"[:name_width]
        first, last = row["first"], row["last"]
        change = ((last - first) / first) if first else 0.0
        lines.append(
            f"{name:<{name_width}} {row['metric']:<12} "
            f"{first:>10.4g} {last:>10.4g} {change:>+8.1%}  "
            f"|{row['spark']}|")
    return "\n".join(lines)


def calibrate_tolerances(records: Sequence[dict],
                         margin: float = 2.0,
                         description: Optional[str] = None) -> dict:
    """Derive a ``tolerance_table`` artifact from ledger variance.

    For every deterministic metric path that appears in at least two
    records, the observed relative spread — the largest
    ``|value - mean| / |mean|`` across the ledger — is taken as that
    metric's natural run-to-run variability; multiplied by *margin* it
    becomes the calibrated relative tolerance for the metric's path
    leaf (tolerance tables key on leaves, so the spread is maximized
    over every path sharing the leaf).  Metrics that never vary get no
    entry — the gate's zero default keeps them exact.  Paths whose mean
    is zero cannot express a relative spread; their largest absolute
    deviation (times *margin*) feeds the table's ``abs_tolerance``
    floor instead.  Wall-clock (timing) paths are excluded: the gate
    never blocks on them.

    Values are rounded *up* to 3 decimals so the emitted table is
    stable and the calibrated allowance never undercuts the spread it
    was derived from.
    """
    from .diff import flatten_numeric, is_timing_path

    if margin <= 0:
        raise ValueError("margin must be positive")
    values_by_path: Dict[str, List[float]] = {}
    for record in records:
        flat = flatten_numeric({"sections": record.get("sections", {})})
        for path, value in flat.items():
            if is_timing_path(path):
                continue
            values_by_path.setdefault(path, []).append(float(value))

    def _ceil3(value: float) -> float:
        return math.ceil(value * 1000 - 1e-9) / 1000

    metrics: Dict[str, float] = {}
    abs_floor = 0.0
    for path, values in values_by_path.items():
        if len(values) < 2:
            continue
        mean = sum(values) / len(values)
        spread = max(abs(value - mean) for value in values)
        if spread == 0:
            continue
        leaf = path.rsplit(".", 1)[-1]
        if mean == 0:
            abs_floor = max(abs_floor, _ceil3(spread * margin))
            continue
        tolerance = _ceil3(spread / abs(mean) * margin)
        metrics[leaf] = max(metrics.get(leaf, 0.0), tolerance)

    table = {
        "schema_version": SCHEMA_VERSION,
        "kind": "tolerance_table",
        "default_tolerance": 0.0,
        "abs_tolerance": abs_floor,
        "metrics": {leaf: metrics[leaf] for leaf in sorted(metrics)},
    }
    if description:
        table["description"] = description
    return table
