"""The benchmark history ledger: ``BENCH_HISTORY.jsonl``.

Each speedup-suite run appends one schema-versioned record — the git
SHA it ran at (passed in, never shelled out) plus the benchmark
sections — so the repo carries its own performance trajectory.  Records
deliberately contain **no wall-clock fields**: two runs of the same
tree at the same SHA produce byte-identical records, which both keeps
the ledger diffable and lets :func:`append_record` skip exact
duplicates instead of growing the file on every local rerun.

The CI perf gate consumes the latest record (``latest_record``); the
trend renderer (``render_trend``) summarizes the whole trajectory.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence, Union

from .schema import SCHEMA_VERSION, SchemaError, check_artifact

#: Default ledger location, relative to the repo root.
DEFAULT_HISTORY = "BENCH_HISTORY.jsonl"

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def make_record(sections: Dict[str, dict],
                git_sha: str = "local",
                label: Optional[str] = None) -> dict:
    """Build one deterministic, schema-versioned history record."""
    clean_sections = {
        section: {name: dict(payload) for name, payload
                  in sorted(entries.items())}
        for section, entries in sorted(sections.items())
        if isinstance(entries, dict)
    }
    record = {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench_history",
        "git_sha": git_sha,
        "sections": clean_sections,
    }
    if label:
        record["label"] = label
    return record


def _dump(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def append_record(path: Union[str, pathlib.Path], record: dict,
                  dedupe: bool = True) -> bool:
    """Append *record* to the ledger; returns False on a skipped dupe.

    With *dedupe* (the default) an append is skipped when a
    byte-identical record appears *anywhere* in the ledger — records
    are canonical dumps, so line identity is content identity.
    Checking only the final line would re-append a record whenever an
    older SHA is replayed after a newer one landed; reruns of any
    already-recorded tree must not grow the file.
    """
    check_artifact(record, "history record")
    path = pathlib.Path(path)
    line = _dump(record)
    if dedupe and path.exists():
        existing = path.read_text(encoding="utf-8")
        if line in (seen.strip() for seen in existing.splitlines()):
            return False
    with open(path, "a", encoding="utf-8") as stream:
        stream.write(line + "\n")
    return True


def read_history(path: Union[str, pathlib.Path]) -> List[dict]:
    """Load + validate every record in the ledger, oldest first."""
    path = pathlib.Path(path)
    records = []
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SchemaError(
                f"{path}:{lineno}: malformed JSON ({exc})") from None
        record = check_artifact(payload, source=f"{path}:{lineno}")
        if record.get("kind") != "bench_history":
            raise SchemaError(
                f"{path}:{lineno}: expected a bench_history record, "
                f"found kind={record.get('kind')!r}")
        records.append(record)
    return records


def latest_record(path: Union[str, pathlib.Path]) -> dict:
    """The newest record in the ledger (raises on an empty one)."""
    records = read_history(path)
    if not records:
        raise SchemaError(f"{path}: history ledger is empty")
    return records[-1]


def series(records: Sequence[dict], section: str,
           entry: str, metric: str) -> List[Optional[float]]:
    """One metric's value per record (None where absent)."""
    out: List[Optional[float]] = []
    for record in records:
        value = (record.get("sections", {})
                 .get(section, {})
                 .get(entry, {})
                 .get(metric))
        out.append(float(value) if isinstance(value, (int, float))
                   and not isinstance(value, bool) else None)
    return out


def _scaled_sparkline(values: Sequence[Optional[float]]) -> str:
    """Min-max scale a series into unicode bars ('·' where absent)."""
    present = [v for v in values if v is not None]
    if not present:
        return "·" * len(values)
    lo, hi = min(present), max(present)
    out = []
    for value in values:
        if value is None:
            out.append("·")
        elif hi == lo:
            out.append(_SPARK_GLYPHS[len(_SPARK_GLYPHS) // 2])
        else:
            index = int((value - lo) / (hi - lo)
                        * (len(_SPARK_GLYPHS) - 1) + 0.5)
            out.append(_SPARK_GLYPHS[index])
    return "".join(out)


def trend_rows(records: Sequence[dict],
               metrics: Sequence[str] = ("speedup", "ximd_cycles"),
               ) -> List[dict]:
    """Per-workload trend summaries across the ledger.

    Each row: section, entry, metric, first, last, spark — one row per
    (workload, metric) that appears anywhere in the history.
    """
    keys = sorted({
        (section, entry)
        for record in records
        for section, entries in record.get("sections", {}).items()
        if isinstance(entries, dict)
        for entry in entries
    })
    rows = []
    for section, entry in keys:
        for metric in metrics:
            values = series(records, section, entry, metric)
            present = [v for v in values if v is not None]
            if not present:
                continue
            rows.append({
                "section": section,
                "entry": entry,
                "metric": metric,
                "first": present[0],
                "last": present[-1],
                "spark": _scaled_sparkline(values),
            })
    return rows


def render_trend(records: Sequence[dict],
                 metrics: Sequence[str] = ("speedup", "ximd_cycles"),
                 ) -> str:
    """A fixed-width trajectory table over the whole ledger."""
    if not records:
        return "history is empty"
    rows = trend_rows(records, metrics)
    if not rows:
        return (f"{len(records)} records, but none carry the metrics "
                f"{', '.join(metrics)}")
    name_width = min(max(len(f"{r['section']}/{r['entry']}")
                         for r in rows), 44)
    lines = [
        f"benchmark history — {len(records)} records "
        f"({records[0].get('git_sha', '?')[:12]} .. "
        f"{records[-1].get('git_sha', '?')[:12]})",
        f"{'workload':<{name_width}} {'metric':<12} {'first':>10} "
        f"{'last':>10} {'change':>8}  trend",
    ]
    for row in rows:
        name = f"{row['section']}/{row['entry']}"[:name_width]
        first, last = row["first"], row["last"]
        change = ((last - first) / first) if first else 0.0
        lines.append(
            f"{name:<{name_width}} {row['metric']:<12} "
            f"{first:>10.4g} {last:>10.4g} {change:>+8.1%}  "
            f"|{row['spark']}|")
    return "\n".join(lines)
