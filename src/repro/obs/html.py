"""Static HTML dashboard exporter — stdlib-only, fully offline.

Renders a run report (and optionally the raw cycle timeline plus the
benchmark history ledger) into one self-contained HTML file: headline
stat cards, a per-FU utilization/stall heatmap, the SSET-count
timeline, the dynamic opcode census, and the cross-PR speedup trend.
No JavaScript frameworks, no CDN fonts, no third-party anything — the
file opens from disk in any browser, which is exactly what a CI
artifact needs to be.
"""

from __future__ import annotations

import html as _html
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .events import FU_CLASS_ORDER
from .history import record_sections
from .history import series as history_series

#: Heatmap/timeline colors per cycle class (colorblind-safe-ish).
CLASS_COLORS: Dict[str, str] = {
    "useful": "#2a9d8f",
    "sync_wait": "#e9c46a",
    "branch_resolve": "#e76f51",
    "idle": "#8d99ae",
    "halted": "#d8dee9",
}

_CSS = """
:root { color-scheme: light; }
body { font: 14px/1.5 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       color: #1b263b; background: #fafafa; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.cards { display: flex; flex-wrap: wrap; gap: .8rem; }
.card { background: #fff; border: 1px solid #e0e0e0; border-radius: 8px;
        padding: .7rem 1.1rem; min-width: 7.5rem; }
.card .v { font-size: 1.3rem; font-weight: 600; }
.card .k { color: #6b7280; font-size: .8rem; }
table { border-collapse: collapse; background: #fff; }
th, td { border: 1px solid #e0e0e0; padding: .35rem .7rem;
         text-align: right; font-variant-numeric: tabular-nums; }
th { background: #f1f5f9; }
td.name, th.name { text-align: left; }
.legend span { display: inline-block; margin-right: 1rem; }
.legend i { display: inline-block; width: .8rem; height: .8rem;
            border-radius: 2px; margin-right: .3rem;
            vertical-align: -1px; }
.bar { height: .8rem; border-radius: 2px; display: inline-block;
       vertical-align: middle; }
svg text { font: 11px sans-serif; fill: #6b7280; }
footer { margin-top: 3rem; color: #9ca3af; font-size: .8rem; }
"""


def _esc(value: object) -> str:
    return _html.escape(str(value))


def _card(value: str, label: str) -> str:
    return (f'<div class="card"><div class="v">{_esc(value)}</div>'
            f'<div class="k">{_esc(label)}</div></div>')


def _heat(color: str, alpha: float) -> str:
    """CSS color-mix-free heat: blend *color* towards white by alpha."""
    alpha = max(0.0, min(1.0, alpha))
    r, g, b = (int(color[i:i + 2], 16) for i in (1, 3, 5))
    blend = tuple(int(255 - (255 - c) * alpha) for c in (r, g, b))
    return f"rgb({blend[0]},{blend[1]},{blend[2]})"


def _summary_cards(report: dict) -> str:
    cards = [
        _card(str(report.get("machine", "?")), "machine"),
        _card(f"{report.get('cycles', 0):,}", "cycles"),
        _card(f"{report.get('data_ops', 0):,}", "data ops"),
        _card(f"{report.get('utilization', 0.0):.1%}", "utilization"),
        _card(f"{report.get('occupancy', 0.0):.1%}", "occupancy"),
        _card(f"{report.get('mean_streams', 0.0):.2f}", "mean streams"),
        _card(f"{report.get('sync_done', 0):,}", "DONE signals"),
    ]
    return '<div class="cards">' + "".join(cards) + "</div>"


def _stall_heatmap(report: dict) -> str:
    stall_mix: List[dict] = report.get("stall_mix") or []
    if not any(stall_mix):
        return ("<p>no stall attribution in this report — record the "
                "trace with the current tree to get per-FU cycle "
                "classification.</p>")
    head = "".join(f"<th>{_esc(name)}</th>" for name in FU_CLASS_ORDER)
    rows = []
    for fu, mix in enumerate(stall_mix):
        total = sum(mix.values()) or 1
        cells = []
        for name in FU_CLASS_ORDER:
            count = mix.get(name, 0)
            frac = count / total
            color = _heat(CLASS_COLORS.get(name, "#888888"), frac)
            cells.append(f'<td style="background:{color}">'
                         f"{count:,}<br><small>{frac:.0%}</small></td>")
        useful = mix.get("useful", 0) / total
        rows.append(f'<tr><td class="name">FU{fu}</td>'
                    + "".join(cells)
                    + f"<td>{useful:.1%}</td></tr>")
    legend = "".join(
        f'<span><i style="background:{CLASS_COLORS[name]}"></i>'
        f"{_esc(name)}</span>"
        for name in FU_CLASS_ORDER)
    return (f'<div class="legend">{legend}</div>'
            f'<table><tr><th class="name">FU</th>{head}'
            f"<th>useful&nbsp;%</th></tr>{''.join(rows)}</table>")


def _stall_by_streams(report: dict) -> str:
    by_streams: Dict[str, dict] = report.get("stall_by_streams") or {}
    if not by_streams:
        return ""
    head = "".join(f"<th>{_esc(name)}</th>" for name in FU_CLASS_ORDER)
    rows = []
    for streams in sorted(by_streams, key=lambda s: int(s)):
        mix = by_streams[streams]
        total = sum(mix.values()) or 1
        cells = []
        for name in FU_CLASS_ORDER:
            count = mix.get(name, 0)
            color = _heat(CLASS_COLORS.get(name, "#888888"),
                          count / total)
            cells.append(f'<td style="background:{color}">{count:,}</td>')
        rows.append(f'<tr><td class="name">{_esc(streams)} streams</td>'
                    + "".join(cells) + "</tr>")
    return ("<h2>Attribution by concurrent-stream count</h2>"
            f'<table><tr><th class="name">SSETs</th>{head}</tr>'
            f"{''.join(rows)}</table>")


def _opcode_bars(report: dict, limit: int = 14) -> str:
    histogram: Dict[str, int] = report.get("op_histogram") or {}
    if not histogram:
        return ""
    top = sorted(histogram.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
    peak = top[0][1] or 1
    rows = []
    for mnemonic, count in top:
        width = max(2, int(220 * count / peak))
        rows.append(
            f'<tr><td class="name"><code>{_esc(mnemonic)}</code></td>'
            f'<td class="name"><span class="bar" '
            f'style="width:{width}px;background:#2a9d8f"></span></td>'
            f"<td>{count:,}</td></tr>")
    return ("<h2>Dynamic opcode census</h2><table>"
            + "".join(rows) + "</table>")


def _energy_panel(report: dict, limit: int = 14) -> str:
    """Section-4.3 energy model: headline cards + per-opcode/per-FU
    energy bars (empty string when the report carries no energy data,
    e.g. a schema-version-1 artifact)."""
    energy: Dict[str, object] = report.get("energy") or {}
    if not energy:
        return ""
    cards = [
        _card(f"{energy.get('total_energy_pj', 0.0):,.0f} pJ",
              "total energy"),
        _card(f"{energy.get('energy_per_cycle_pj', 0.0):,.1f} pJ",
              "per cycle"),
        _card(f"{energy.get('energy_per_op_pj', 0.0):,.1f} pJ", "per op"),
    ]
    parts = ["<h2>Energy (section 4.3 cost model)</h2>",
             '<div class="cards">' + "".join(cards) + "</div>"]
    per_opcode: Dict[str, float] = energy.get("per_opcode_pj") or {}
    if per_opcode:
        top = sorted(per_opcode.items(),
                     key=lambda kv: (-kv[1], kv[0]))[:limit]
        peak = top[0][1] or 1.0
        rows = []
        for mnemonic, pj in top:
            width = max(2, int(220 * pj / peak))
            rows.append(
                f'<tr><td class="name"><code>{_esc(mnemonic)}</code></td>'
                f'<td class="name"><span class="bar" '
                f'style="width:{width}px;background:#e9c46a"></span></td>'
                f"<td>{pj:,.0f} pJ</td></tr>")
        parts.append("<h3>By opcode</h3><table>" + "".join(rows)
                     + "</table>")
    per_fu = energy.get("per_fu_pj") or []
    if any(per_fu):
        peak = max(per_fu) or 1.0
        rows = []
        for fu, pj in enumerate(per_fu):
            width = max(2, int(220 * pj / peak))
            rows.append(
                f'<tr><td class="name">FU{fu}</td>'
                f'<td class="name"><span class="bar" '
                f'style="width:{width}px;background:#e76f51"></span></td>'
                f"<td>{pj:,.0f} pJ</td></tr>")
        parts.append("<h3>By functional unit</h3><table>"
                     + "".join(rows) + "</table>")
    return "".join(parts)


def _sync_panel(report: dict) -> str:
    """Wait-matrix heatmap + barrier-skew table (empty string when the
    report carries no sync section — pre-v3 artifacts, or runs with no
    sync activity)."""
    sync: Dict[str, object] = report.get("sync") or {}
    if not sync:
        return ""
    parts = ["<h2>Synchronization: who waited on whom</h2>"]
    matrix: List[List[int]] = sync.get("wait_matrix") or []
    if any(any(row) for row in matrix):
        peak = max(max(row) for row in matrix) or 1
        n = len(matrix)
        head = "".join(f"<th>on FU{j}</th>" for j in range(n))
        rows = []
        for i, row in enumerate(matrix):
            cells = []
            for value in row:
                color = _heat(CLASS_COLORS["sync_wait"], value / peak)
                cells.append(
                    f'<td style="background:{color}">'
                    f"{value:,}</td>" if value else "<td></td>")
            rows.append(f'<tr><td class="name">FU{i} waited</td>'
                        + "".join(cells) + "</tr>")
        blockers = sync.get("top_blockers") or []
        caption = ""
        if blockers:
            top = ", ".join(f"FU{fu} ({count:,} cy)"
                            for fu, count in blockers[:4])
            caption = (f"<p>{sync.get('wait_cycles', 0):,} blocked "
                       f"FU-cycle charges — top blockers: {top}</p>")
        parts.append(caption
                     + f'<table><tr><th class="name"></th>{head}</tr>'
                     + "".join(rows) + "</table>")
    barriers: List[dict] = sync.get("barriers") or []
    if barriers:
        peak_skew = max(row.get("max_skew", 0) for row in barriers) or 1
        rows = []
        for row in barriers:
            width = max(2, int(220 * row.get("max_skew", 0) / peak_skew))
            rows.append(
                f'<tr><td class="name"><code>'
                f"{row.get('pc', 0):#04x}</code></td>"
                f'<td class="name">FU{row.get("fu", "?")}</td>'
                f"<td>{row.get('count', 0):,}</td>"
                f"<td>{row.get('mean_skew', 0.0):.1f}</td>"
                f"<td>{row.get('max_skew', 0):,}</td>"
                f'<td class="name"><span class="bar" '
                f'style="width:{width}px;background:#e9c46a"></span></td>'
                "</tr>")
        parts.append(
            "<h3>Barrier skew (first arrival &rarr; release)</h3>"
            '<table><tr><th class="name">pc</th><th class="name">FU</th>'
            "<th>releases</th><th>mean skew</th><th>max skew</th>"
            '<th class="name">max skew (cy)</th></tr>'
            + "".join(rows) + "</table>")
    return "".join(parts)


def _io_panel(report: dict) -> str:
    """Memory-mapped device census (Fig-12 port polling); empty string
    when the report has no io section."""
    io: Dict[str, object] = report.get("io") or {}
    ports: List[dict] = io.get("ports") or []
    if not ports:
        return ""
    rows = []
    for port in ports:
        if "reads" in port:
            reads = port.get("reads", 0)
            failed = port.get("polls_failed", 0)
            stats = (f"<td>{reads:,}</td><td>{failed:,}</td>"
                     f"<td>{port.get('delivered', 0):,}</td>"
                     f"<td>{failed / reads if reads else 0.0:.0%}</td>")
        else:
            stats = (f"<td colspan=\"3\">{port.get('writes', 0):,} "
                     "writes</td><td></td>")
        rows.append(
            f'<tr><td class="name"><code>{port.get("base", 0):#06x}'
            f"</code></td>"
            f'<td class="name">{_esc(port.get("kind", "?"))}</td>'
            + stats + "</tr>")
    return ("<h2>I/O ports (Fig-12 polling)</h2>"
            '<table><tr><th class="name">base</th>'
            '<th class="name">device</th><th>reads</th>'
            "<th>failed polls</th><th>delivered</th>"
            "<th>miss&nbsp;rate</th></tr>"
            + "".join(rows) + "</table>")


def _faults_panel(report: dict) -> str:
    """Deterministic fault-injection log (empty string when the run
    injected no faults — pre-v4 artifacts included)."""
    faults: List[dict] = report.get("faults") or []
    if not faults:
        return ""
    rows = []
    for record in faults[:40]:
        detail = ", ".join(
            f"{key}={value}" for key, value in record.items()
            if key not in ("cycle", "kind", "masked"))
        masked = record.get("masked", "")
        rows.append(
            f"<tr><td>{record.get('cycle', 0):,}</td>"
            f'<td class="name"><code>{_esc(record.get("kind", "?"))}'
            f"</code></td>"
            f'<td class="name">{_esc(detail)}</td>'
            f'<td class="name">{_esc(masked)}</td></tr>')
    extra = ("" if len(faults) <= 40
             else f"<p>… and {len(faults) - 40:,} more</p>")
    return (f"<h2>Injected faults ({len(faults):,})</h2>"
            '<table><tr><th>cycle</th><th class="name">kind</th>'
            '<th class="name">detail</th><th class="name">masked</th></tr>'
            + "".join(rows) + "</table>" + extra)


def _abort_panel(report: dict) -> str:
    """Structured RunAbort diagnosis (empty string when the run halted
    cleanly)."""
    abort: Dict[str, object] = report.get("abort") or {}
    if not abort:
        return ""
    cards = [
        _card(_esc(str(abort.get("kind", "?"))), "abort kind"),
        _card(f"{abort.get('cycle', 0):,}", "at cycle"),
        _card(f"{abort.get('limit', 0):,}", "cycle limit"),
        _card(f"{abort.get('faults_applied', 0):,}", "faults applied"),
    ]
    parts = ["<h2>Run aborted</h2>",
             '<div class="cards">' + "".join(cards) + "</div>"]
    chain = abort.get("critical_path") or {}
    links = chain.get("links") or []
    if links:
        hops = " &larr; ".join(
            [f"FU{links[0]['waiter']}"]
            + [f"FU{link['blocker']}" for link in links])
        parts.append(f"<p>critical wait chain: {hops} "
                     f"({chain.get('total_cycles', 0):,} blocked "
                     "cycles)</p>")
    blocked: List[dict] = abort.get("blocked") or []
    if blocked:
        rows = []
        for edge in blocked:
            blockers = ", ".join(f"FU{b}" for b in edge["blockers"])
            rows.append(
                f'<tr><td class="name">FU{edge["fu"]}</td>'
                f"<td><code>{edge['pc']:#04x}</code></td>"
                f'<td class="name">{_esc(edge["cond"])}</td>'
                f'<td class="name">{_esc(blockers)}</td></tr>')
        parts.append(
            '<h3>Blocked edges</h3><table><tr><th class="name">waiter'
            '</th><th>pc</th><th class="name">condition</th>'
            '<th class="name">blocked on</th></tr>'
            + "".join(rows) + "</table>")
    barriers: List[dict] = abort.get("open_barriers") or []
    if barriers:
        rows = [
            f'<tr><td class="name">FU{b["fu"]}</td>'
            f"<td><code>{b['pc']:#04x}</code></td>"
            f"<td>{b['since']:,}</td></tr>"
            for b in barriers]
        parts.append(
            '<h3>Open barrier episodes</h3><table><tr><th class="name">'
            "FU</th><th>pc</th><th>waiting since</th></tr>"
            + "".join(rows) + "</table>")
    return "".join(parts)


def _passes_panel(report: dict) -> str:
    """Per-pass IR-size table: ops in/out and the shrink per compiler
    pass, with a bar scaled to the pipeline's largest IR (empty string
    when the report carries no pass telemetry)."""
    passes: List[dict] = report.get("passes") or []
    if not passes:
        return ""
    peak = max((max(p.get("ops_in", 0), p.get("ops_out", 0))
                for p in passes), default=0) or 1
    rows = []
    for entry in passes:
        ops_in = entry.get("ops_in", 0)
        ops_out = entry.get("ops_out", 0)
        delta = ops_out - ops_in
        width = max(2, int(220 * ops_out / peak))
        color = ("#2a9d8f" if delta < 0
                 else "#e76f51" if delta > 0 else "#8d99ae")
        rows.append(
            f'<tr><td class="name"><code>{_esc(entry.get("name", "?"))}'
            f"</code></td><td>{ops_in:,}</td><td>{ops_out:,}</td>"
            f"<td>{delta:+,}</td>"
            f'<td class="name"><span class="bar" '
            f'style="width:{width}px;background:{color}"></span></td>'
            "</tr>")
    return ("<h2>Compiler passes (IR size)</h2>"
            '<table><tr><th class="name">pass</th><th>ops in</th>'
            "<th>ops out</th><th>&Delta;</th>"
            '<th class="name">ops out</th></tr>'
            + "".join(rows) + "</table>")


def _sset_timeline_svg(timeline: Sequence[Tuple[int, int]],
                       width: int = 860, height: int = 120) -> str:
    """Step-line SVG of the concurrent-stream count over cycles."""
    if not timeline:
        return ""
    max_streams = max(n for _, n in timeline) or 1
    last_cycle = max(c for c, _ in timeline) or 1
    pad = 28
    plot_w, plot_h = width - pad - 8, height - 24

    def x(cycle: int) -> float:
        return pad + plot_w * cycle / last_cycle

    def y(streams: int) -> float:
        return 8 + plot_h * (1 - streams / max_streams)

    points = []
    prev_n: Optional[int] = None
    for cycle, n in timeline:
        if prev_n is not None and n != prev_n:
            points.append(f"{x(cycle):.1f},{y(prev_n):.1f}")
        points.append(f"{x(cycle):.1f},{y(n):.1f}")
        prev_n = n
    grid = "".join(
        f'<line x1="{pad}" y1="{y(s):.1f}" x2="{width - 8}" '
        f'y2="{y(s):.1f}" stroke="#e5e7eb"/>'
        f'<text x="2" y="{y(s) + 4:.1f}">{s}</text>'
        for s in range(1, max_streams + 1))
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">{grid}'
        f'<polyline fill="none" stroke="#264653" stroke-width="1.5" '
        f'points="{" ".join(points)}"/>'
        f'<text x="{pad}" y="{height - 4}">cycle 0</text>'
        f'<text x="{width - 80}" y="{height - 4}">'
        f"cycle {last_cycle:,}</text></svg>")


def _sset_histogram_bars(report: dict) -> str:
    histogram: Dict[str, int] = report.get("sset_histogram") or {}
    if not histogram:
        return "<p>no SSET data recorded (run with a tracker).</p>"
    peak = max(histogram.values()) or 1
    rows = []
    for streams in sorted(histogram, key=lambda s: int(s)):
        count = histogram[streams]
        width = max(2, int(220 * count / peak))
        rows.append(
            f'<tr><td class="name">{_esc(streams)} streams</td>'
            f'<td class="name"><span class="bar" '
            f'style="width:{width}px;background:#264653"></span></td>'
            f"<td>{count:,} cy</td></tr>")
    return "<table>" + "".join(rows) + "</table>"


_TREND_COLORS = ("#264653", "#2a9d8f", "#e76f51", "#e9c46a", "#8d99ae",
                 "#6d597a", "#b56576")


def _history_svg(records: Sequence[dict], metric: str = "speedup",
                 width: int = 860, height: int = 220) -> str:
    """Polyline-per-workload trend of *metric* across the ledger."""
    if len(records) < 1:
        return ""
    keys = sorted({
        (section, entry)
        for record in records
        for section, entries in record_sections(record).items()
        if isinstance(entries, dict)
        for entry in entries
    })
    serieses = []
    for section, entry in keys:
        values = history_series(records, section, entry, metric)
        if any(v is not None for v in values):
            serieses.append((f"{entry}", values))
    if not serieses:
        return ""
    all_values = [v for _, values in serieses
                  for v in values if v is not None]
    lo, hi = min(all_values + [0.0]), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    pad, legend_h = 36, 18 * len(serieses)
    plot_w = width - pad - 8
    plot_h = height - 16

    def x(index: int) -> float:
        return pad + (plot_w * index / max(len(records) - 1, 1))

    def y(value: float) -> float:
        return 8 + plot_h * (1 - (value - lo) / (hi - lo))

    parts = [
        f'<line x1="{pad}" y1="{y(lo):.1f}" x2="{width - 8}" '
        f'y2="{y(lo):.1f}" stroke="#e5e7eb"/>',
        f'<text x="2" y="{y(hi) + 4:.1f}">{hi:.3g}</text>',
        f'<text x="2" y="{y(lo) + 4:.1f}">{lo:.3g}</text>',
    ]
    for i, (label, values) in enumerate(serieses):
        color = _TREND_COLORS[i % len(_TREND_COLORS)]
        points = " ".join(f"{x(idx):.1f},{y(v):.1f}"
                          for idx, v in enumerate(values)
                          if v is not None)
        parts.append(f'<polyline fill="none" stroke="{color}" '
                     f'stroke-width="1.5" points="{points}"/>')
        for idx, v in enumerate(values):
            if v is not None:
                parts.append(f'<circle cx="{x(idx):.1f}" '
                             f'cy="{y(v):.1f}" r="2.5" fill="{color}"/>')
    legend = "".join(
        f'<span><i style="background:'
        f'{_TREND_COLORS[i % len(_TREND_COLORS)]}"></i>'
        f"{_esc(label)}</span>"
        for i, (label, _) in enumerate(serieses))
    shas = (f"{records[0].get('git_sha', '?')[:10]} → "
            f"{records[-1].get('git_sha', '?')[:10]}")
    return (
        f'<div class="legend">{legend}</div>'
        f'<svg viewBox="0 0 {width} {height + 8}" width="{width}" '
        f'height="{height + 8}" role="img">{"".join(parts)}'
        f'<text x="{pad}" y="{height + 2}">{_esc(shas)} '
        f"({len(records)} records, {_esc(metric)})</text></svg>")


def render_dashboard(report: dict,
                     timeline: Optional[Sequence[Tuple[int, int]]] = None,
                     history: Optional[Sequence[dict]] = None,
                     title: str = "repro.obs dashboard") -> str:
    """The complete dashboard page as one HTML string."""
    sections = [
        f"<h1>{_esc(title)}</h1>",
        _summary_cards(report),
        "<h2>Per-FU cycle attribution</h2>",
        _stall_heatmap(report),
        _stall_by_streams(report),
        _sync_panel(report),
        _io_panel(report),
        _abort_panel(report),
        _faults_panel(report),
        _opcode_bars(report),
        _energy_panel(report),
        _passes_panel(report),
        "<h2>Concurrent instruction streams</h2>",
    ]
    if timeline:
        sections.append(_sset_timeline_svg(list(timeline)))
    else:
        sections.append(_sset_histogram_bars(report))
    if history:
        sections.append("<h2>Benchmark history</h2>")
        sections.append(_history_svg(list(history)))
        throughput = _history_svg(list(history),
                                  metric="fast_kcycles_per_sec")
        if throughput:
            sections.append(
                "<h2>Host throughput (E14, fast engine, wall clock "
                "— warn-only)</h2>")
            sections.append(throughput)
        codegen = _history_svg(list(history),
                               metric="specialized_over_fast")
        if codegen:
            sections.append(
                "<h2>Specialized-engine speedup over fast (E18, wall "
                "clock — warn-only)</h2>")
            sections.append(codegen)
        ir_trend = _history_svg(list(history), metric="ops_out")
        if ir_trend:
            sections.append(
                "<h2>Compiler-pass IR size across PRs "
                "(ops_out — advisory)</h2>")
            sections.append(ir_trend)
        overhead = _history_svg(list(history),
                                metric="overhead_vs_bare")
        if overhead:
            sections.append(
                "<h2>Observability overhead across PRs (E15 tier cost "
                "over the bare specialized engine — warn-only)</h2>")
            sections.append(overhead)
    sections.append(
        "<footer>generated offline by <code>python -m repro.obs html"
        "</code> — no external resources.</footer>")
    body = "\n".join(part for part in sections if part)
    return ("<!DOCTYPE html>\n<html lang=\"en\"><head>"
            "<meta charset=\"utf-8\">"
            f"<title>{_esc(title)}</title>"
            f"<style>{_CSS}</style></head>\n"
            f"<body>\n{body}\n</body></html>\n")


def write_dashboard(path: Union[str, pathlib.Path], report: dict,
                    timeline: Optional[Sequence[Tuple[int, int]]] = None,
                    history: Optional[Sequence[dict]] = None,
                    title: str = "repro.obs dashboard") -> pathlib.Path:
    """Render and write the dashboard; returns the output path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_dashboard(report, timeline=timeline,
                                     history=history, title=title),
                    encoding="utf-8")
    return path
