"""Crash-safe file writes for benchmark/report artifacts.

Every JSON/JSONL artifact the toolchain produces (benchmark summaries,
history ledgers, tolerance tables, partial result files, run reports)
is consumed by later stages — the perf gate, the trend pipeline, suite
merges.  A run killed mid-write (timeout, OOM, ctrl-C) must never
leave a half-written artifact for those stages to choke on, so all
writers funnel through :func:`atomic_write_text`: write to a temp file
in the destination directory, fsync, then :func:`os.replace` — which
is atomic on POSIX and on Windows — so readers observe either the old
complete file or the new complete file, never a torn one.
"""

from __future__ import annotations

import os
import pathlib
import tempfile
from typing import Union

Pathish = Union[str, "os.PathLike[str]"]


def atomic_write_text(path: Pathish, text: str) -> None:
    """Replace *path*'s contents with *text* atomically.

    The temp file lives in the destination's directory so the final
    ``os.replace`` never crosses a filesystem boundary (a cross-device
    rename is copy+delete, which is not atomic).
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=str(target.parent))
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_append_line(path: Pathish, line: str) -> None:
    """Append *line* (newline added if missing) crash-safely.

    A plain ``open(path, "a")`` can be torn by a crash mid-write,
    corrupting the last ledger record; rewriting the whole file through
    :func:`atomic_write_text` keeps every append all-or-nothing.  The
    ledgers this serves (benchmark history) are small and appended to a
    handful of times per run, so the rewrite cost is noise.
    """
    target = pathlib.Path(path)
    existing = ""
    if target.exists():
        existing = target.read_text()
        if existing and not existing.endswith("\n"):
            existing += "\n"
    if not line.endswith("\n"):
        line += "\n"
    atomic_write_text(target, existing + line)
