"""A small metrics registry: counters, gauges, histograms, timers.

The simulators and the compiler report *how much* and *how long*
through these instruments; the registry renders to a dict (for the JSON
run report) or a fixed-width text table (matching the repo's other
output).  Instruments are created lazily by name, so instrumented code
never has to pre-declare what it measures.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value) -> None:
        self.value = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A distribution of observed values (exact, value -> count).

    The quantities observed here (register-file port counts, SSET
    sizes, rows per pass) are small integers, so an exact histogram is
    both cheaper and more faithful than bucketing.
    """

    __slots__ = ("name", "counts", "total", "_sum")

    def __init__(self, name: str):
        self.name = name
        self.counts: Dict[float, int] = {}
        self.total = 0
        self._sum = 0.0

    def observe(self, value) -> None:
        self.counts[value] = self.counts.get(value, 0) + 1
        self.total += 1
        self._sum += value

    def observe_many(self, value, count: int) -> None:
        """Observe *value* *count* times in one update (the fast
        engine's post-run fold; all observed values here are small
        integers, so the sum stays exact)."""
        if count <= 0:
            return
        self.counts[value] = self.counts.get(value, 0) + count
        self.total += count
        self._sum += value * count

    @property
    def mean(self) -> float:
        return self._sum / self.total if self.total else 0.0

    @property
    def max(self):
        return max(self.counts) if self.counts else 0

    @property
    def min(self):
        return min(self.counts) if self.counts else 0

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "counts": {str(k): v for k, v in sorted(self.counts.items())},
        }


class Timer:
    """Accumulated wall-clock time, usable as context manager/decorator."""

    __slots__ = ("name", "total_seconds", "count", "max_seconds")

    def __init__(self, name: str):
        self.name = name
        self.total_seconds = 0.0
        self.count = 0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self.total_seconds += seconds
        self.count += 1
        self.max_seconds = max(self.max_seconds, seconds)

    @contextmanager
    def time(self):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.observe(time.perf_counter() - start)

    def wrap(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def timed(*args, **kwargs):
            with self.time():
                return fn(*args, **kwargs)
        return timed

    def to_dict(self) -> dict:
        return {
            "type": "timer",
            "count": self.count,
            "total_seconds": self.total_seconds,
            "max_seconds": self.max_seconds,
        }


class MetricsRegistry:
    """Lazily-created named instruments, one flat namespace."""

    def __init__(self):
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def timed(self, name: str) -> Callable:
        """Decorator: accumulate the wrapped function's wall time."""
        def decorate(fn):
            return self.timer(name).wrap(fn)
        return decorate

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def to_dict(self) -> dict:
        return {name: self._instruments[name].to_dict()
                for name in self.names()}

    def render_text(self, title: str = "metrics") -> str:
        lines = [title]
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                detail = f"{instrument.value}"
            elif isinstance(instrument, Gauge):
                detail = f"{instrument.value}"
            elif isinstance(instrument, Histogram):
                detail = (f"n={instrument.total} mean={instrument.mean:.2f} "
                          f"min={instrument.min} max={instrument.max}")
            else:
                detail = (f"n={instrument.count} "
                          f"total={instrument.total_seconds * 1e3:.3f}ms "
                          f"max={instrument.max_seconds * 1e3:.3f}ms")
            lines.append(f"  {name:<32} {detail}")
        return "\n".join(lines)
