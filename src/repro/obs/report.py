"""Run reports: one merged view of a traced execution.

Collapses a recorded event stream (plus, optionally, a metrics
registry) into the numbers the paper's evaluation cares about — cycle
count, FU utilization, the SSET histogram that makes a run "XIMD-like",
the branch/sync mix, hot instruction addresses — as one JSON-able
object with a fixed-width text rendering.  Also replays a stream back
into a Figure-10 :class:`~repro.machine.trace.AddressTrace`, which is
what the ``python -m repro.obs fig10`` command prints.
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .events import (
    FU_CLASS_NAMES,
    FU_CLASS_ORDER,
    BranchEvent,
    CycleEvent,
    Event,
    PartitionChangeEvent,
    PassEvent,
    SyncEdgeEvent,
    SyncEvent,
)
from .ioutil import atomic_write_text
from .metrics import MetricsRegistry
from .schema import SCHEMA_VERSION

#: buckets in the occupancy sparkline (FU activity over run time).
SPARKLINE_BUCKETS = 60
_SPARK_GLYPHS = " ▁▂▃▄▅▆▇█"


def events_to_trace(events: Iterable[Event]):
    """Rebuild a Figure-10 address trace from recorded cycle events."""
    from ..machine.trace import AddressTrace, TraceRecord

    cycles = [e for e in events if isinstance(e, CycleEvent)]
    if not cycles:
        raise ValueError("event stream contains no cycle events")
    n_fus = max(len(e.pcs) for e in cycles)
    trace = AddressTrace(n_fus)
    for event in sorted(cycles, key=lambda e: e.cycle):
        trace.append(TraceRecord(
            cycle=event.cycle,
            pcs=tuple(event.pcs),
            condition_codes=event.cc,
            sync_signals=event.ss,
            partition=event.partition,
        ))
    return trace


def _sync_section(wait_rows: List[List[int]],
                  barrier_rows: List[Dict[str, object]]) -> Dict[str, object]:
    """The ``RunReport.sync`` section from a wait matrix (nested
    per-waiter rows) and barrier-site profile rows; ``{}`` when the run
    had no sync activity at all."""
    total = sum(sum(row) for row in wait_rows)
    if not total and not barrier_rows:
        return {}
    n = len(wait_rows)
    blocked_by = [sum(row) for row in wait_rows]
    blocking = [sum(wait_rows[i][j] for i in range(n)) for j in range(n)]
    top_blockers = [[fu, blocking[fu]] for fu in
                    sorted(range(n), key=lambda f: (-blocking[f], f))
                    if blocking[fu]]
    top_waiters = [[fu, blocked_by[fu]] for fu in
                   sorted(range(n), key=lambda f: (-blocked_by[f], f))
                   if blocked_by[fu]]
    return {
        "wait_matrix": [list(row) for row in wait_rows],
        "wait_cycles": total,
        "top_blockers": top_blockers,
        "top_waiters": top_waiters,
        "barriers": barrier_rows,
    }


def _sync_from_events(events: Iterable[Event],
                      n_fus: int) -> Dict[str, object]:
    """Rebuild the sync section from a (full) typed-event stream,
    mirroring the engines' tier-0 accumulation rules exactly."""
    edges = [e for e in events if isinstance(e, SyncEdgeEvent)]
    syncs = [e for e in events if isinstance(e, SyncEvent)
             and e.what in ("barrier_wait", "barrier")]
    for event in edges:
        n_fus = max(n_fus, event.waiter + 1, event.blocker + 1)
    wait_rows = [[0] * n_fus for _ in range(n_fus)]
    for event in edges:
        wait_rows[event.waiter][event.blocker] += 1
    # replay each FU's barrier episodes (first arrival -> release) in
    # chronological order, the same state machine the engines run
    open_wait: Dict[int, Tuple[Optional[int], int]] = {}
    profiles: Dict[Tuple[int, int], List[int]] = {}
    for event in sorted(syncs, key=lambda e: (e.cycle, e.fu)):
        state = open_wait.get(event.fu)
        if state is not None and state[0] != event.pc:
            state = None
        if event.what == "barrier_wait":
            if state is None:
                open_wait[event.fu] = (event.pc, event.cycle)
        else:  # release
            skew = event.cycle - (state[1] if state is not None
                                  else event.cycle)
            entry = profiles.get((event.pc, event.fu))
            if entry is None:
                profiles[(event.pc, event.fu)] = [1, skew, skew]
            else:
                entry[0] += 1
                entry[1] += skew
                if skew > entry[2]:
                    entry[2] = skew
            open_wait[event.fu] = None
    barrier_rows = []
    for (pc, fu), (count, total, peak) in sorted(profiles.items()):
        barrier_rows.append({
            "pc": pc, "fu": fu, "count": count, "total_skew": total,
            "mean_skew": total / count if count else 0.0,
            "max_skew": peak,
        })
    return _sync_section(wait_rows, barrier_rows)


def _io_section(machine) -> Dict[str, object]:
    """Per-port device census (Fig-12 polling visibility); ``{}`` when
    the machine has no mapped devices."""
    devices = getattr(machine.memory, "devices", None)
    if not devices:
        return {}
    ports = []
    total_reads = total_failed = total_writes = 0
    for base, end, device in devices.ranges():
        entry: Dict[str, object] = {
            "base": base,
            "length": end - base,
            "kind": type(device).__name__,
        }
        reads = getattr(device, "reads", None)
        if reads is not None:
            failed = getattr(device, "polls_failed", 0)
            entry["reads"] = reads
            entry["polls_failed"] = failed
            entry["delivered"] = getattr(device, "delivered", 0)
            total_reads += reads
            total_failed += failed
        writes = getattr(device, "writes", None)
        if isinstance(writes, list):
            entry["writes"] = len(writes)
            total_writes += len(writes)
        ports.append(entry)
    return {
        "ports": ports,
        "reads": total_reads,
        "polls_failed": total_failed,
        "writes": total_writes,
    }


def _sparkline(per_cycle: Sequence[float],
               buckets: int = SPARKLINE_BUCKETS) -> str:
    """Downsample a 0..1 series into a unicode bar sparkline."""
    if not per_cycle:
        return ""
    buckets = min(buckets, len(per_cycle))
    out = []
    n = len(per_cycle)
    for b in range(buckets):
        lo = b * n // buckets
        hi = max(lo + 1, (b + 1) * n // buckets)
        mean = sum(per_cycle[lo:hi]) / (hi - lo)
        index = min(int(mean * (len(_SPARK_GLYPHS) - 1) + 0.5),
                    len(_SPARK_GLYPHS) - 1)
        out.append(_SPARK_GLYPHS[index])
    return "".join(out)


@dataclass
class RunReport:
    """Headline observations from one traced run."""

    machine: str
    n_fus: int
    cycles: int
    data_ops: int
    utilization: float                     #: data_ops / (cycles * n_fus)
    occupancy: float                       #: non-halted FU-cycles fraction
    fu_busy_cycles: List[int]              #: per-FU non-halted cycles
    occupancy_sparkline: str               #: activity over run time
    sset_histogram: Dict[int, int]         #: #SSETs -> cycles
    mean_streams: float
    max_streams: int
    multi_stream_fraction: float
    partition_changes: int
    branch_mix: Dict[str, int]             #: cond / uncond / sync -> count
    branches_taken: int
    sync_done: int
    barriers: int
    hot_pcs: List[Tuple[int, int]]         #: (pc, fetches), descending
    #: per-FU stall attribution: class name -> cycles, one dict per FU.
    stall_mix: List[Dict[str, int]] = field(default_factory=list)
    #: stall attribution grouped by concurrent-stream count:
    #: #SSETs -> {class name -> FU-cycles}.
    stall_by_streams: Dict[int, Dict[str, int]] = field(default_factory=dict)
    #: dynamic opcode census: mnemonic -> executions.
    op_histogram: Dict[str, int] = field(default_factory=dict)
    #: section-4.3 energy model folded over the run (see
    #: :mod:`repro.analysis.cost`); empty when the trace carries
    #: opcodes the cost table does not know.
    energy: Dict[str, object] = field(default_factory=dict)
    #: synchronization observability: the FU×FU wait matrix, top
    #: blockers/waiters, and per-(pc, FU) barrier skew profiles (see
    #: :class:`~repro.machine.telemetry.RunCounters`); empty when the
    #: run had no sync activity.
    sync: Dict[str, object] = field(default_factory=dict)
    #: memory-mapped device census (Fig-12 port polling); empty when no
    #: devices were mapped or the report was built from events alone.
    io: Dict[str, object] = field(default_factory=dict)
    #: deterministic fault-injection log (see :mod:`repro.faults`);
    #: empty when the run injected no faults.
    faults: List[Dict[str, object]] = field(default_factory=list)
    #: structured RunAbort diagnosis of a hung/aborted run (see
    #: :mod:`repro.machine.runtime`); empty when the run halted cleanly.
    abort: Dict[str, object] = field(default_factory=dict)
    passes: List[Dict[str, object]] = field(default_factory=list)
    metrics: Dict[str, dict] = field(default_factory=dict)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[Event],
                    registry: Optional[MetricsRegistry] = None,
                    hot_pc_limit: int = 10) -> "RunReport":
        events = list(events)
        cycles = sorted((e for e in events if isinstance(e, CycleEvent)),
                        key=lambda e: e.cycle)
        machine = cycles[0].machine if cycles else "?"
        n_fus = max((len(e.pcs) for e in cycles), default=0)

        fu_busy = [0] * n_fus
        pc_tally: TallyCounter = TallyCounter()
        sset_histogram: TallyCounter = TallyCounter()
        per_cycle_occupancy: List[float] = []
        stall_mix: List[TallyCounter] = [TallyCounter()
                                         for _ in range(n_fus)]
        stall_by_streams: Dict[int, TallyCounter] = {}
        op_histogram: TallyCounter = TallyCounter()
        per_fu_ops: List[TallyCounter] = [TallyCounter()
                                          for _ in range(n_fus)]
        data_ops = 0
        for event in cycles:
            busy = 0
            for fu, pc in enumerate(event.pcs):
                if pc is not None:
                    fu_busy[fu] += 1
                    pc_tally[pc] += 1
                    busy += 1
            per_cycle_occupancy.append(busy / n_fus if n_fus else 0.0)
            data_ops += event.data_ops
            n_streams = (len(event.partition)
                         if event.partition is not None else None)
            if n_streams is not None:
                sset_histogram[n_streams] += 1
            for fu, char in enumerate(event.fu_class):
                name = FU_CLASS_NAMES.get(char)
                if name is None or fu >= n_fus:
                    continue
                stall_mix[fu][name] += 1
                if n_streams is not None:
                    stall_by_streams.setdefault(
                        n_streams, TallyCounter())[name] += 1
            for fu, mnemonic in enumerate(event.ops):
                if mnemonic is not None:
                    op_histogram[mnemonic] += 1
                    if fu < n_fus:
                        per_fu_ops[fu][mnemonic] += 1

        n_cycles = len(cycles)
        denominator = n_cycles * n_fus
        utilization = data_ops / denominator if denominator else 0.0
        occupancy = (sum(fu_busy) / denominator) if denominator else 0.0

        sset_total = sum(sset_histogram.values())
        if sset_total:
            mean_streams = (sum(k * v for k, v in sset_histogram.items())
                            / sset_total)
            multi = sum(v for k, v in sset_histogram.items() if k > 1)
            multi_fraction = multi / sset_total
            max_streams = max(sset_histogram)
        else:
            mean_streams = 0.0
            multi_fraction = 0.0
            max_streams = 0

        branch_mix = {"cond": 0, "uncond": 0, "sync": 0}
        branches_taken = 0
        for event in events:
            if isinstance(event, BranchEvent):
                branch_mix[event.branch_kind] = (
                    branch_mix.get(event.branch_kind, 0) + 1)
                branches_taken += event.taken

        sync_done = sum(1 for e in events
                        if isinstance(e, SyncEvent) and e.what == "done")
        barriers = sum(1 for e in events
                       if isinstance(e, SyncEvent) and e.what == "barrier")
        partition_changes = sum(
            1 for e in events if isinstance(e, PartitionChangeEvent))

        passes = [
            {"name": e.name, "seconds": e.seconds,
             "ops_in": e.ops_in, "ops_out": e.ops_out}
            for e in events if isinstance(e, PassEvent)
        ]

        # section-4.3 energy model over the dynamic census (lazy import
        # keeps repro.obs importable before repro.analysis finishes
        # initializing — the machines import obs at module level)
        from ..analysis.cost import EnergyReport
        from ..isa.errors import UnknownOpcodeError

        try:
            energy = EnergyReport.from_histogram(
                op_histogram, cycles=n_cycles,
                per_fu_histograms=per_fu_ops).to_dict()
        except UnknownOpcodeError:
            # a trace from a different tree: report it, just uncosted
            energy = {}

        return cls(
            machine=machine,
            n_fus=n_fus,
            cycles=n_cycles,
            data_ops=data_ops,
            utilization=utilization,
            occupancy=occupancy,
            fu_busy_cycles=fu_busy,
            occupancy_sparkline=_sparkline(per_cycle_occupancy),
            sset_histogram=dict(sorted(sset_histogram.items())),
            mean_streams=mean_streams,
            max_streams=max_streams,
            multi_stream_fraction=multi_fraction,
            partition_changes=partition_changes,
            branch_mix=branch_mix,
            branches_taken=branches_taken,
            sync_done=sync_done,
            barriers=barriers,
            hot_pcs=[(pc, count) for pc, count
                     in pc_tally.most_common(hot_pc_limit)],
            stall_mix=[dict(sorted(tally.items())) for tally in stall_mix],
            stall_by_streams={
                streams: dict(sorted(tally.items()))
                for streams, tally in sorted(stall_by_streams.items())},
            op_histogram=dict(sorted(op_histogram.items())),
            energy=energy,
            sync=_sync_from_events(events, n_fus),
            io={},
            faults=[],
            abort={},
            passes=passes,
            metrics=registry.to_dict() if registry is not None else {},
        )

    @classmethod
    def from_machine(cls, machine,
                     registry: Optional[MetricsRegistry] = None,
                     ) -> "RunReport":
        """Build a report from tier-0 counter telemetry alone.

        The counter tier (an enabled observer with no sinks — fast-engine
        native) carries no event stream, so the event-derived extras are
        absent: no occupancy sparkline, hot PCs, SSET histogram,
        stall-by-streams breakdown, compiler passes, or per-FU energy
        split.  Every field both tiers can compute matches
        :meth:`from_events` over a full reference trace exactly.
        """
        counters = machine.counters
        stats = machine.stats
        n_fus = counters.n_fus
        cycles = machine.cycle
        if counters.machine_name == "vliw":
            # one machine-wide PC: every FU is busy until the halt
            fu_busy = [cycles] * n_fus
        else:
            fu_busy = counters.busy_cycles()
        denominator = cycles * n_fus
        occupancy = (sum(fu_busy) / denominator) if denominator else 0.0

        # sync branches are counted inside branches_conditional by the
        # datapath census; the event vocabulary reports them apart
        sync = stats.branches_sync
        branch_mix = {"cond": stats.branches_conditional - sync,
                      "uncond": stats.branches_unconditional,
                      "sync": sync}

        op_histogram = dict(sorted(stats.per_opcode.items()))
        from ..analysis.cost import EnergyReport
        from ..isa.errors import UnknownOpcodeError

        try:
            energy = EnergyReport.from_histogram(
                op_histogram, cycles=cycles).to_dict()
        except UnknownOpcodeError:
            energy = {}

        return cls(
            machine=counters.machine_name,
            n_fus=n_fus,
            cycles=cycles,
            data_ops=stats.data_ops,
            utilization=stats.utilization(n_fus),
            occupancy=occupancy,
            fu_busy_cycles=fu_busy,
            occupancy_sparkline="",
            sset_histogram={},
            mean_streams=0.0,
            max_streams=0,
            multi_stream_fraction=0.0,
            partition_changes=0,
            branch_mix=branch_mix,
            branches_taken=counters.branches_taken,
            sync_done=counters.sync_done,
            barriers=counters.barriers,
            hot_pcs=[],
            stall_mix=counters.class_mix(),
            stall_by_streams={},
            op_histogram=op_histogram,
            energy=energy,
            sync=_sync_section(counters.wait_rows(),
                               counters.barrier_profile_rows()),
            io=_io_section(machine),
            faults=[dict(record) for record
                    in getattr(machine, "fault_log", [])],
            abort=dict(getattr(machine, "last_abort", None) or {}),
            passes=[],
            metrics=registry.to_dict() if registry is not None else {},
        )

    # -- rendering ---------------------------------------------------------

    def to_dict(self, include_timing: bool = True) -> dict:
        """The report as a schema-versioned JSON-ready dict.

        Wall-clock measurements (pass durations, timer metrics) are
        quarantined under a ``timing`` key so that everything *outside*
        it is deterministic across runs; ``include_timing=False`` drops
        the key entirely, which is what :meth:`to_json` does by default
        to keep report files byte-identical between identical runs.
        """
        metrics = {}
        timing_metrics = {}
        for name, payload in self.metrics.items():
            if isinstance(payload, dict) and payload.get("type") == "timer":
                timing_metrics[name] = dict(payload)
            else:
                metrics[name] = payload
        payload = {
            "schema_version": SCHEMA_VERSION,
            "kind": "run_report",
            "machine": self.machine,
            "n_fus": self.n_fus,
            "cycles": self.cycles,
            "data_ops": self.data_ops,
            "utilization": self.utilization,
            "occupancy": self.occupancy,
            "fu_busy_cycles": list(self.fu_busy_cycles),
            "sset_histogram": {str(k): v
                               for k, v in self.sset_histogram.items()},
            "mean_streams": self.mean_streams,
            "max_streams": self.max_streams,
            "multi_stream_fraction": self.multi_stream_fraction,
            "partition_changes": self.partition_changes,
            "branch_mix": dict(self.branch_mix),
            "branches_taken": self.branches_taken,
            "sync_done": self.sync_done,
            "barriers": self.barriers,
            "hot_pcs": [[pc, count] for pc, count in self.hot_pcs],
            "stall_mix": [dict(mix) for mix in self.stall_mix],
            "stall_by_streams": {
                str(streams): dict(mix)
                for streams, mix in self.stall_by_streams.items()},
            "op_histogram": dict(self.op_histogram),
            "energy": dict(self.energy),
            "sync": dict(self.sync),
            "io": dict(self.io),
            "faults": [dict(record) for record in self.faults],
            "abort": dict(self.abort),
            "passes": [{"name": entry["name"],
                        "ops_in": entry["ops_in"],
                        "ops_out": entry["ops_out"]}
                       for entry in self.passes],
            "metrics": metrics,
        }
        if include_timing:
            payload["timing"] = {
                "metrics": timing_metrics,
                "passes": [{"name": entry["name"],
                            "seconds": entry["seconds"]}
                           for entry in self.passes],
            }
        return payload

    def to_json(self, indent: int = 2,
                include_timing: bool = False) -> str:
        """Deterministic JSON: sorted keys, no wall-clock by default."""
        return json.dumps(self.to_dict(include_timing=include_timing),
                          indent=indent, sort_keys=True)

    def write_json(self, path: Union[str, pathlib.Path],
                   include_timing: bool = False) -> pathlib.Path:
        path = pathlib.Path(path)
        atomic_write_text(
            path, self.to_json(include_timing=include_timing) + "\n")
        return path

    def render_text(self) -> str:
        lines = [
            f"run report — {self.machine} machine, {self.n_fus} FUs",
            f"  cycles            : {self.cycles}",
            f"  data ops          : {self.data_ops}",
            f"  utilization       : {self.utilization:.1%} "
            "(non-nop data ops / FU-cycles)",
            f"  occupancy         : {self.occupancy:.1%} "
            "(non-halted FU-cycles)",
            f"  activity timeline : |{self.occupancy_sparkline}|",
        ]
        if self.n_fus:
            busy = "  ".join(
                f"FU{fu}={count}" for fu, count
                in enumerate(self.fu_busy_cycles))
            lines.append(f"  busy cycles/FU    : {busy}")
        if self.sset_histogram:
            bars = ", ".join(f"{k} streams: {v}cy"
                             for k, v in self.sset_histogram.items())
            lines += [
                f"  SSET histogram    : {bars}",
                f"  streams           : mean {self.mean_streams:.2f}, "
                f"max {self.max_streams}, "
                f"{self.multi_stream_fraction:.0%} multi-stream "
                f"({self.partition_changes} forks/joins)",
            ]
        if any(self.stall_mix):
            lines.append("  cycle attribution : (why each FU-cycle "
                         "was spent)")
            for fu, mix in enumerate(self.stall_mix):
                total = sum(mix.values())
                if not total:
                    continue
                parts = "  ".join(
                    f"{name}={mix[name]} ({mix[name] / total:.0%})"
                    for name in FU_CLASS_ORDER if mix.get(name))
                lines.append(f"    FU{fu}: {parts}")
        if self.stall_by_streams:
            lines.append("  attribution/SSETs : (FU-cycles by "
                         "concurrent-stream count)")
            for streams, mix in self.stall_by_streams.items():
                parts = "  ".join(f"{name}={mix[name]}"
                                  for name in FU_CLASS_ORDER
                                  if mix.get(name))
                lines.append(f"    {streams} stream"
                             f"{'s' if streams != 1 else ''}: {parts}")
        if self.op_histogram:
            top = sorted(self.op_histogram.items(),
                         key=lambda kv: (-kv[1], kv[0]))[:8]
            ops = ", ".join(f"{mnemonic}×{count}" for mnemonic, count in top)
            lines.append(f"  hot opcodes       : {ops}")
        if self.energy:
            lines.append(
                f"  energy (4.3 model): "
                f"{self.energy.get('total_energy_pj', 0.0):.1f} pJ total, "
                f"{self.energy.get('energy_per_cycle_pj', 0.0):.2f} pJ/cy, "
                f"{self.energy.get('energy_per_op_pj', 0.0):.2f} pJ/op")
            per_class = self.energy.get("per_class_pj") or {}
            if per_class:
                top = sorted(per_class.items(),
                             key=lambda kv: (-kv[1], kv[0]))[:5]
                parts = ", ".join(f"{name}={pj:.0f}pJ" for name, pj in top)
                lines.append(f"  energy by unit    : {parts}")
        mix = ", ".join(f"{name}={count}"
                        for name, count in self.branch_mix.items() if count)
        lines.append(f"  branches          : {mix or 'none'} "
                     f"({self.branches_taken} taken)")
        lines.append(f"  sync              : {self.sync_done} DONE signals, "
                     f"{self.barriers} barrier passes")
        if self.sync:
            blockers = self.sync.get("top_blockers") or []
            if blockers:
                parts = ", ".join(f"FU{fu}×{count}"
                                  for fu, count in blockers[:4])
                lines.append(
                    f"  sync waits        : "
                    f"{self.sync.get('wait_cycles', 0)} blocked FU-cycle "
                    f"charges (top blockers: {parts})")
            for row in (self.sync.get("barriers") or [])[:6]:
                lines.append(
                    f"  barrier {row['pc']:#04x} / FU{row['fu']} : "
                    f"{row['count']} releases, skew mean "
                    f"{row['mean_skew']:.1f} max {row['max_skew']} cy")
        if self.io:
            for port in self.io.get("ports", []):
                stats = (f"{port['reads']} reads, "
                         f"{port['polls_failed']} failed polls, "
                         f"{port['delivered']} delivered"
                         if "reads" in port
                         else f"{port.get('writes', 0)} writes")
                lines.append(
                    f"  port @{port['base']:#06x}      : "
                    f"{port['kind']}: {stats}")
        if self.faults:
            kinds = TallyCounter(record.get("kind", "?")
                                 for record in self.faults)
            masked = sum(1 for record in self.faults if "masked" in record)
            parts = ", ".join(f"{kind}×{count}" for kind, count
                              in sorted(kinds.items()))
            lines.append(f"  faults injected   : {len(self.faults)} "
                         f"({parts}; {masked} masked)")
        if self.abort:
            lines.append(
                f"  run aborted       : {self.abort.get('kind', '?')} at "
                f"cycle {self.abort.get('cycle', '?')} "
                f"(limit {self.abort.get('limit', '?')})")
            chain = (self.abort.get("critical_path") or {})
            links = chain.get("links") or []
            if links:
                hops = " <- ".join(
                    [f"FU{links[0]['waiter']}"]
                    + [f"FU{link['blocker']}" for link in links])
                lines.append(
                    f"  critical wait     : {hops} "
                    f"({chain.get('total_cycles', 0)} blocked cycles)")
            for edge in (self.abort.get("blocked") or [])[:8]:
                blockers = ",".join(f"FU{b}" for b in edge["blockers"])
                lines.append(
                    f"    FU{edge['fu']} @ {edge['pc']:#04x}: untaken "
                    f"{edge['cond']} wait on {blockers or 'nothing'}")
        if self.hot_pcs:
            hot = ", ".join(f"{pc:#04x}×{count}"
                            for pc, count in self.hot_pcs[:6])
            lines.append(f"  hot PCs           : {hot}")
        if self.passes:
            lines.append("  compiler passes   :")
            for entry in self.passes:
                lines.append(
                    f"    {entry['name']:<20} "
                    f"{entry['seconds'] * 1e3:8.3f} ms   "
                    f"ops {entry['ops_in']} -> {entry['ops_out']}")
        return "\n".join(lines)
