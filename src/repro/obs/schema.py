"""Artifact schema versioning for ``repro.obs`` JSON files.

Every JSON artifact the subsystem writes — run reports, benchmark
results, the repo-root ``BENCH_SUMMARY.json``, and each line of the
``BENCH_HISTORY.jsonl`` ledger — carries a ``schema_version`` field and
a ``kind`` tag.  Readers go through :func:`check_artifact` /
:func:`load_artifact`, which reject unversioned files and unknown
versions with a clean :class:`SchemaError` instead of failing later
with a cryptic ``KeyError`` — format drift breaks replay loudly, not
silently.

Version history:

* **1** — introduced versioning itself, the ``kind`` tag, stall/sync
  attribution fields in run reports, and the ``timing`` quarantine key
  (wall-clock measurements live under ``timing`` and are excluded from
  diff/gate comparisons and from byte-deterministic output).
* **2** — run reports gain an ``energy`` section (the section-4.3
  per-opcode cost model folded over the dynamic opcode census),
  benchmark payloads carry ``*_energy_pj`` metrics next to cycles, and
  the ``tolerance_table`` kind (the perf gate's calibrated per-metric
  tolerance file) is recognized.  Version-1 artifacts remain readable —
  they simply carry no energy leaves.
* **3** — run reports gain ``sync`` (the FU×FU sync-wait matrix, top
  blockers/waiters, and per-(pc, FU) barrier skew profiles) and ``io``
  (per-port device census) sections, the event vocabulary gains
  ``sync_edge`` events and the ``barrier_wait`` sync event, and
  benchmark payloads may carry a ``sync`` section (advisory at the
  gate, like ``passes``).  Older artifacts remain readable — they
  simply carry no sync/io leaves.
* **4** — run reports gain ``faults`` (the deterministic
  fault-injection log of :mod:`repro.faults`) and ``abort`` (the
  structured :class:`~repro.machine.errors.RunAbort` diagnosis:
  watchdog/deadlock/livelock kind, wait matrix, critical wait chain,
  open barriers) sections, and benchmark payloads may carry a
  ``faults`` section (advisory at the gate).  Older artifacts remain
  readable — they simply carry no fault/abort leaves.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional, Union

#: The schema version this tree writes.
SCHEMA_VERSION = 4

#: Versions this tree can read.
SUPPORTED_VERSIONS = frozenset({1, 2, 3, 4})

#: ``kind`` tags this tree knows how to interpret.
KNOWN_KINDS = frozenset({
    "run_report",
    "bench_result",
    "bench_summary",
    "bench_history",
    "tolerance_table",
})


class SchemaError(ValueError):
    """An artifact is unversioned, from the future, or malformed."""


def check_artifact(payload: object, source: str = "artifact") -> dict:
    """Validate *payload* as a versioned obs artifact; return it.

    Raises :class:`SchemaError` when the payload is not a JSON object,
    carries no ``schema_version``, or carries one this tree does not
    support.
    """
    if not isinstance(payload, dict):
        raise SchemaError(
            f"{source}: expected a JSON object, got "
            f"{type(payload).__name__}")
    version = payload.get("schema_version")
    if version is None:
        raise SchemaError(
            f"{source}: no schema_version field — this is an unversioned "
            "(pre-schema) artifact; regenerate it with the current tree")
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in sorted(SUPPORTED_VERSIONS))
        raise SchemaError(
            f"{source}: unsupported schema_version {version!r} "
            f"(this tree supports: {supported})")
    return payload


def artifact_kind(payload: dict) -> Optional[str]:
    """The artifact's ``kind`` tag (None when absent)."""
    kind = payload.get("kind")
    return kind if isinstance(kind, str) else None


def load_artifact(path: Union[str, pathlib.Path],
                  expect_kind: Optional[str] = None) -> dict:
    """Read + validate one versioned JSON artifact from *path*.

    Raises :class:`SchemaError` on malformed JSON, missing/unsupported
    versions, or (when *expect_kind* is given) a mismatched ``kind``;
    raises ``OSError`` when the file cannot be read.
    """
    path = pathlib.Path(path)
    text = path.read_text(encoding="utf-8")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: malformed JSON ({exc})") from None
    payload = check_artifact(payload, source=str(path))
    if expect_kind is not None:
        kind = artifact_kind(payload)
        if kind != expect_kind:
            raise SchemaError(
                f"{path}: expected a {expect_kind!r} artifact, "
                f"found kind={kind!r}")
    return payload


def stamp(payload: dict, kind: str) -> dict:
    """Return *payload* with ``schema_version`` + ``kind`` added."""
    stamped = dict(payload)
    stamped["schema_version"] = SCHEMA_VERSION
    stamped["kind"] = kind
    return stamped
