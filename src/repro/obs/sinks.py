"""Event sinks: where emitted trace events go.

Three implementations, matching three uses:

* :class:`RingBufferSink` — bounded in-memory buffer, for tests and for
  building a run report at the end of an execution;
* :class:`JsonlSink` — one JSON object per line, the durable format the
  ``python -m repro.obs`` CLI replays;
* the *null* sink is the absence of sinks — :class:`~repro.obs.core.NullObserver`
  short-circuits before any event object is even constructed, so the
  disabled path costs one attribute load per guard.
"""

from __future__ import annotations

import io
import json
import pathlib
from collections import deque
from typing import Iterable, Iterator, List, Optional, Union

from .events import Event, event_from_dict, event_to_dict


class Sink:
    """Interface: receives every emitted event."""

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class RingBufferSink(Sink):
    """Keep the last *capacity* events in memory."""

    def __init__(self, capacity: Optional[int] = None):
        self._events: deque = deque(maxlen=capacity)

    def emit(self, event: Event) -> None:
        self._events.append(event)

    @property
    def events(self) -> List[Event]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self._events if e.kind == kind]

    def clear(self) -> None:
        self._events.clear()


class JsonlSink(Sink):
    """Append events to a JSONL file (or any text stream)."""

    def __init__(self, target: Union[str, pathlib.Path, io.TextIOBase]):
        if isinstance(target, (str, pathlib.Path)):
            self.path: Optional[pathlib.Path] = pathlib.Path(target)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.path, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self.path = None
            self._stream = target
            self._owns_stream = False
        self.emitted = 0

    def emit(self, event: Event) -> None:
        json.dump(event_to_dict(event), self._stream,
                  separators=(",", ":"), default=str)
        self._stream.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if self._owns_stream and not self._stream.closed:
            self._stream.close()


def read_jsonl(source: Union[str, pathlib.Path, Iterable[str]]) -> List[Event]:
    """Load a JSONL event stream back into typed events."""
    if isinstance(source, (str, pathlib.Path)):
        with open(source, "r", encoding="utf-8") as stream:
            lines = stream.readlines()
    else:
        lines = list(source)
    events = []
    for line in lines:
        line = line.strip()
        if line:
            events.append(event_from_dict(json.loads(line)))
    return events
