"""Benchmark-suite result merging: partials → ``BENCH_SUMMARY.json``.

The benchmark conftest collects headline numbers per session and, at
session end, folds them into the repo-root ``BENCH_SUMMARY.json`` plus
(when the speedup suite ran) one ``BENCH_HISTORY.jsonl`` record.  The
parallel suite driver (``benchmarks/run_suite.py``) runs each bench
file in its own pytest subprocess instead, so the per-session fold
would race: every worker would read-modify-write the same summary and
each could append its own history record.

This module is the single implementation both paths share:

* workers (conftest with ``$REPRO_BENCH_PARTIAL`` set) write their
  collected sections to a *partial* artifact via :func:`write_partial`
  and touch nothing else;
* the driver loads the partials, combines them with
  :func:`merge_partials` — deterministic regardless of worker
  completion order, duplicate bench ids across files are an error —
  and lands the result with :func:`write_summary`, which is also what
  a plain serial ``pytest benchmarks/`` session uses directly.

The ``timing`` section stays special throughout: wall-clock numbers
are re-stamped rather than merged with a previous summary (stale wall
times from another host are meaningless) and are excluded from the
history dedupe identity.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, Optional, Tuple, Union

from .history import append_record, make_record
from .ioutil import atomic_write_text
from .schema import SCHEMA_VERSION

Pathish = Union[str, pathlib.Path]

#: ``generated_by`` stamp on the merged summary artifact.
GENERATED_BY = "pytest benchmarks/ --benchmark-only"


def load_sections(path: Pathish) -> Dict[str, dict]:
    """Section dicts from an existing summary, or ``{}``.

    Bookkeeping keys (``schema_version`` …) and the run-scoped
    sections — wall-clock ``timing`` and the driver's
    ``suite_health`` — are dropped: both describe one run and are
    re-stamped by the next writer, never merged across runs (a clean
    suite run must clear the previous run's failure report).
    Unreadable or malformed files degrade to an empty baseline rather
    than failing the run.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return {}
    try:
        previous = json.loads(path.read_text())
    except (ValueError, OSError):
        return {}
    if not isinstance(previous, dict):
        return {}
    return {key: dict(value) for key, value in previous.items()
            if isinstance(value, dict)
            and key not in ("timing", "suite_health")}


def merge_collected(
        collected: Dict[str, dict],
        previous_sections: Optional[Dict[str, dict]] = None,
) -> Tuple[Dict[str, dict], Optional[dict]]:
    """Fold freshly collected sections over a previous baseline.

    Returns ``(sections, timing)``: the deterministic sections with
    *collected* entries layered over *previous_sections* (so partial
    runs update their own entries without clobbering the rest), and
    the fresh wall-clock ``timing`` payload (or ``None``).
    """
    fresh = {section: dict(entries)
             for section, entries in collected.items()}
    timing = fresh.pop("timing", None)
    sections = {section: dict(entries)
                for section, entries in (previous_sections or {}).items()}
    for section in sorted(fresh):
        target = sections.setdefault(section, {})
        for name in sorted(fresh[section]):
            target[name] = fresh[section][name]
    return sections, timing


def render_summary(sections: Dict[str, dict],
                   timing: Optional[dict] = None) -> dict:
    """The schema-versioned ``bench_summary`` artifact payload."""
    summary: dict = {section: entries
                     for section, entries in sorted(sections.items())}
    if timing:
        summary["timing"] = timing
    summary["schema_version"] = SCHEMA_VERSION
    summary["kind"] = "bench_summary"
    summary["generated_by"] = GENERATED_BY
    return summary


def write_summary(summary_path: Pathish,
                  collected: Dict[str, dict],
                  history_path: Optional[Pathish] = None,
                  git_sha: str = "local") -> dict:
    """Merge *collected* into the summary file; append history if due.

    A history record is appended only when the ``workloads`` section
    was refreshed (the speedup suite ran) and *history_path* is given
    — mirroring the serial conftest policy, but callable exactly once
    by the parallel driver after all partials merged.
    """
    if not collected:
        return {}
    sections, timing = merge_collected(collected,
                                       load_sections(summary_path))
    summary = render_summary(sections, timing)
    atomic_write_text(
        summary_path,
        json.dumps(summary, indent=2, sort_keys=True, default=str) + "\n")
    if "workloads" in collected and history_path is not None:
        append_record(pathlib.Path(history_path),
                      make_record(sections, git_sha=git_sha,
                                  timing=timing))
    return summary


def write_partial(path: Pathish, collected: Dict[str, dict]) -> None:
    """Write one worker's collected sections as a partial artifact.

    The suite id is the partial file's stem (the driver names partials
    after the bench file they came from), which is all
    :func:`merge_partials` needs to attribute duplicate bench ids.
    """
    path = pathlib.Path(path)
    artifact = {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench_partial",
        "suite": path.stem,
        "sections": {section: {name: payload for name, payload
                               in sorted(entries.items())}
                     for section, entries in sorted(collected.items())},
    }
    atomic_write_text(path, json.dumps(artifact, indent=2, sort_keys=True,
                                       default=str) + "\n")


def load_partial(path: Pathish) -> dict:
    """Read one partial artifact back (raises on malformed files)."""
    artifact = json.loads(pathlib.Path(path).read_text())
    if (not isinstance(artifact, dict)
            or artifact.get("kind") != "bench_partial"
            or not isinstance(artifact.get("sections"), dict)):
        raise ValueError(f"{path}: not a bench_partial artifact")
    return artifact


def merge_partials(partials: Iterable[dict]) -> Dict[str, dict]:
    """Combine per-file partials into one ``collected`` mapping.

    Deterministic by construction: partials are processed in sorted
    suite order and entries in sorted name order, so worker completion
    order cannot change the result.  Two partials claiming the same
    ``(section, bench id)`` is a configuration error (two bench files
    registering the same summary key) and raises ``ValueError`` rather
    than letting scheduling decide the winner.
    """
    collected: Dict[str, dict] = {}
    owners: Dict[Tuple[str, str], str] = {}
    for partial in sorted(partials, key=lambda p: str(p.get("suite", ""))):
        suite = str(partial.get("suite", "?"))
        for section in sorted(partial.get("sections", {})):
            entries = partial["sections"][section]
            target = collected.setdefault(section, {})
            for name in sorted(entries):
                claim = (section, name)
                if claim in owners and owners[claim] != suite:
                    raise ValueError(
                        f"duplicate bench id {name!r} in section "
                        f"{section!r}: claimed by both {owners[claim]} "
                        f"and {suite}")
                owners[claim] = suite
                target[name] = entries[name]
    return collected
