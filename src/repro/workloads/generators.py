"""Synthetic workload generators.

The paper's performance claim (section 4.1) rests on programs whose
control flow limits a single-sequencer machine.  These generators
produce families of such programs — and their VLIW counterparts — with
seeded randomness so every benchmark run is reproducible:

* :func:`random_dag_source` — branch-free expression DAGs (TPROC-like
  scalar code) for testing the schedulers' compaction.
* :func:`branchy_loop_sources` — N independent data-dependent loops
  (BITCOUNT-like): the XIMD version runs one loop per FU group with a
  barrier join; the VLIW version runs them back to back.
* :func:`longrunner_program` / :func:`longrunner_vliw_program` — the
  E14 host-throughput workload: a tight counted loop on every FU that
  keeps the machine busy for hundreds of thousands of cycles with a
  realistic arith/load/store/compare mix, built directly from parcels
  so no compiler pass shapes the timing.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..isa import (
    Condition,
    Const,
    ControlOp,
    DataOp,
    Parcel,
    Reg,
    wrap_int,
)
from ..isa.opcodes import OPCODES

_BINOPS = ("+", "-", "*", "&", "|", "^")


def random_dag_source(n_ops: int, n_vars: int = 6, seed: int = 0,
                      name: str = "dag") -> Tuple[str, "callable"]:
    """A random straight-line function plus its Python oracle.

    Returns (xc_source, oracle) where ``oracle(*args)`` computes the
    function's return value for ``n_vars`` integer arguments.
    """
    rng = random.Random(seed)
    params = [f"v{i}" for i in range(n_vars)]
    lines = [f"func {name}({', '.join(params)}) {{", "  var t;"]
    exprs: List[str] = list(params)
    for _ in range(n_ops):
        op = rng.choice(_BINOPS)
        a, b = rng.choice(exprs), rng.choice(exprs)
        exprs.append(f"({a} {op} {b})")
    result = exprs[-1]
    lines.append(f"  return {result};")
    lines.append("}")
    source = "\n".join(lines)

    def oracle(*args):
        if len(args) != n_vars:
            raise ValueError(f"oracle takes {n_vars} args")
        return _eval_wrapped(result, dict(zip(params, args)))

    return source, oracle


def _eval_wrapped(expr: str, env: Dict[str, int]) -> int:
    """Evaluate an XC expression string with 32-bit wrapping."""
    import ast

    def walk(node):
        if isinstance(node, ast.Expression):
            return walk(node.body)
        if isinstance(node, ast.BinOp):
            a, b = walk(node.left), walk(node.right)
            if isinstance(node.op, ast.Add):
                return wrap_int(a + b)
            if isinstance(node.op, ast.Sub):
                return wrap_int(a - b)
            if isinstance(node.op, ast.Mult):
                return wrap_int(a * b)
            if isinstance(node.op, ast.BitAnd):
                return wrap_int((a & 0xFFFFFFFF) & (b & 0xFFFFFFFF))
            if isinstance(node.op, ast.BitOr):
                return wrap_int((a & 0xFFFFFFFF) | (b & 0xFFFFFFFF))
            if isinstance(node.op, ast.BitXor):
                return wrap_int((a & 0xFFFFFFFF) ^ (b & 0xFFFFFFFF))
            raise ValueError(f"operator {node.op}")
        if isinstance(node, ast.Name):
            return env[node.id]
        if isinstance(node, ast.Constant):
            return node.value
        raise ValueError(f"node {node}")

    return walk(ast.parse(expr, mode="eval"))


#: loop body templates: (xc body using A[], acc, i; python step fn)
_LOOP_BODIES = (
    ("acc = acc + A[i];",
     lambda acc, v: wrap_int(acc + v)),
    ("acc = acc + A[i] * A[i];",
     lambda acc, v: wrap_int(acc + wrap_int(v * v))),
    ("acc = acc ^ (A[i] + 7);",
     lambda acc, v: wrap_int((acc & 0xFFFFFFFF)
                             ^ (wrap_int(v + 7) & 0xFFFFFFFF))),
    ("acc = acc + (A[i] & 255);",
     lambda acc, v: wrap_int(acc + (v & 255))),
)


def branchy_loop_sources(n_threads: int, seed: int = 0,
                         base: int = 0x2000, stride: int = 0x400,
                         ) -> Tuple[List[str], List["callable"], List[int]]:
    """N independent reduction loops over private arrays.

    Returns (per-thread XC sources, per-thread oracles taking
    (values, n), array base addresses).  Thread *i* reduces the array
    at ``base + i*stride``; iteration counts are runtime inputs, so the
    threads' durations differ — the barrier-join workload of
    Example 3.
    """
    rng = random.Random(seed)
    sources: List[str] = []
    oracles = []
    bases: List[int] = []
    for index in range(n_threads):
        body, step = _LOOP_BODIES[rng.randrange(len(_LOOP_BODIES))]
        array_base = base + index * stride
        bases.append(array_base)
        sources.append(f"""
func loop{index}(n) {{
  var i, acc;
  array A @ {array_base};
  i = 1;
  acc = 0;
  while (i <= n) {{
    {body}
    i = i + 1;
  }}
  return acc;
}}
""")

        def oracle(values, n, _step=step):
            acc = 0
            for i in range(1, n + 1):
                acc = _step(acc, values[i])
            return acc

        oracles.append(oracle)
    return sources, oracles, bases


def random_words(count: int, seed: int, bits: int = 32) -> List[int]:
    """1-indexed random word array (slot 0 unused), reproducible."""
    rng = random.Random(seed)
    return [0] + [rng.randrange(0, 1 << bits) for _ in range(count)]


def random_ints(count: int, seed: int, lo: int = -1000,
                hi: int = 1000) -> List[int]:
    """1-indexed random signed ints (slot 0 unused), reproducible."""
    rng = random.Random(seed)
    return [0] + [rng.randrange(lo, hi) for _ in range(count)]


def _longrunner_regs(fu: int) -> Tuple[Reg, Reg, Reg]:
    """(accumulator, limit, scratch) registers for one long-runner FU."""
    return Reg(fu * 3), Reg(fu * 3 + 1), Reg(fu * 3 + 2)


def longrunner_program(n_fus: int = 8, iterations: int = 20_000,
                       mem_base: int = 0):
    """The E14 synthetic long-runner (XIMD form).

    Every FU runs an independent 3-slot counted loop — increment, one
    varied data op (arith / load / store round-robin by FU), compare —
    exiting when its accumulator reaches *iterations*.  The compare's
    result commits at end of cycle, so the exit test observes the
    previous iteration's compare and each FU runs one trailing lap:
    exactly ``3 * (iterations + 1)`` cycles.  All FUs run in lockstep,
    so that is also the machine's cycle count.  Returns ``(program,
    registers)`` where *registers* is the ``regfile.poke``
    initialization mapping.

    This is deliberately built from raw parcels: no compiler pass or
    assembler layout choice can drift and silently change what the
    host-throughput benchmark measures.
    """
    from ..machine.program import Program

    iadd = OPCODES["iadd"]
    ige = OPCODES["ge"]
    load = OPCODES["load"]
    store = OPCODES["store"]
    columns = []
    registers: Dict[int, int] = {}
    for fu in range(n_fus):
        acc, lim, scratch = _longrunner_regs(fu)
        registers[lim.index] = iterations
        style = fu % 3
        if style == 1:
            varied = DataOp(load, Const(mem_base + fu), Const(0), scratch)
        elif style == 2:
            varied = DataOp(store, acc, Const(mem_base + fu))
        else:
            varied = DataOp(iadd, acc, acc, scratch)
        columns.append([
            Parcel(DataOp(iadd, acc, Const(1), acc),
                   ControlOp(Condition.ALWAYS_T1, 1)),
            Parcel(varied, ControlOp(Condition.ALWAYS_T1, 2)),
            # CC commits end-of-cycle: the exit branch sees the previous
            # iteration's compare, costing one extra (harmless) lap.
            Parcel(DataOp(ige, acc, lim),
                   ControlOp(Condition.CC_TRUE, 3, 0, index=fu)),
            None,
        ])
    return Program(columns), registers


def longrunner_vliw_program(n_fus: int = 8, iterations: int = 20_000,
                            mem_base: int = 0):
    """The E14 long-runner in VLIW form (single control stream).

    Same 3-row loop shape and data-op mix as :func:`longrunner_program`,
    but the loop control lives on FU0 alone and the exit compare tests
    FU0's accumulator — the other FUs are pure data-path passengers, as
    VLIW semantics require.  Returns ``(program, registers)``.
    """
    from ..machine.program import Program

    iadd = OPCODES["iadd"]
    ige = OPCODES["ge"]
    load = OPCODES["load"]
    store = OPCODES["store"]
    columns: List[List] = [[] for _ in range(n_fus)]
    registers: Dict[int, int] = {}
    for fu in range(n_fus):
        acc, lim, scratch = _longrunner_regs(fu)
        registers[lim.index] = iterations
        style = fu % 3
        if style == 1:
            varied = DataOp(load, Const(mem_base + fu), Const(0), scratch)
        elif style == 2:
            varied = DataOp(store, acc, Const(mem_base + fu))
        else:
            varied = DataOp(iadd, acc, acc, scratch)
        acc0, lim0, _ = _longrunner_regs(0)
        rows = [
            DataOp(iadd, acc, Const(1), acc),
            varied,
            DataOp(ige, acc0, lim0) if fu == 0 else DataOp(iadd, acc,
                                                           Const(0), acc),
        ]
        controls = [
            ControlOp(Condition.ALWAYS_T1, 1),
            ControlOp(Condition.ALWAYS_T1, 2),
            ControlOp(Condition.CC_TRUE, 3, 0, index=0),
        ]
        for row, data in enumerate(rows):
            columns[fu].append(Parcel(
                data, controls[row] if fu == 0 else None))
        columns[fu].append(None)
    return Program(columns), registers
