"""Synthetic workload generators.

The paper's performance claim (section 4.1) rests on programs whose
control flow limits a single-sequencer machine.  These generators
produce families of such programs — and their VLIW counterparts — with
seeded randomness so every benchmark run is reproducible:

* :func:`random_dag_source` — branch-free expression DAGs (TPROC-like
  scalar code) for testing the schedulers' compaction.
* :func:`branchy_loop_sources` — N independent data-dependent loops
  (BITCOUNT-like): the XIMD version runs one loop per FU group with a
  barrier join; the VLIW version runs them back to back.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..isa import wrap_int

_BINOPS = ("+", "-", "*", "&", "|", "^")


def random_dag_source(n_ops: int, n_vars: int = 6, seed: int = 0,
                      name: str = "dag") -> Tuple[str, "callable"]:
    """A random straight-line function plus its Python oracle.

    Returns (xc_source, oracle) where ``oracle(*args)`` computes the
    function's return value for ``n_vars`` integer arguments.
    """
    rng = random.Random(seed)
    params = [f"v{i}" for i in range(n_vars)]
    lines = [f"func {name}({', '.join(params)}) {{", "  var t;"]
    exprs: List[str] = list(params)
    for _ in range(n_ops):
        op = rng.choice(_BINOPS)
        a, b = rng.choice(exprs), rng.choice(exprs)
        exprs.append(f"({a} {op} {b})")
    result = exprs[-1]
    lines.append(f"  return {result};")
    lines.append("}")
    source = "\n".join(lines)

    def oracle(*args):
        if len(args) != n_vars:
            raise ValueError(f"oracle takes {n_vars} args")
        return _eval_wrapped(result, dict(zip(params, args)))

    return source, oracle


def _eval_wrapped(expr: str, env: Dict[str, int]) -> int:
    """Evaluate an XC expression string with 32-bit wrapping."""
    import ast

    def walk(node):
        if isinstance(node, ast.Expression):
            return walk(node.body)
        if isinstance(node, ast.BinOp):
            a, b = walk(node.left), walk(node.right)
            if isinstance(node.op, ast.Add):
                return wrap_int(a + b)
            if isinstance(node.op, ast.Sub):
                return wrap_int(a - b)
            if isinstance(node.op, ast.Mult):
                return wrap_int(a * b)
            if isinstance(node.op, ast.BitAnd):
                return wrap_int((a & 0xFFFFFFFF) & (b & 0xFFFFFFFF))
            if isinstance(node.op, ast.BitOr):
                return wrap_int((a & 0xFFFFFFFF) | (b & 0xFFFFFFFF))
            if isinstance(node.op, ast.BitXor):
                return wrap_int((a & 0xFFFFFFFF) ^ (b & 0xFFFFFFFF))
            raise ValueError(f"operator {node.op}")
        if isinstance(node, ast.Name):
            return env[node.id]
        if isinstance(node, ast.Constant):
            return node.value
        raise ValueError(f"node {node}")

    return walk(ast.parse(expr, mode="eval"))


#: loop body templates: (xc body using A[], acc, i; python step fn)
_LOOP_BODIES = (
    ("acc = acc + A[i];",
     lambda acc, v: wrap_int(acc + v)),
    ("acc = acc + A[i] * A[i];",
     lambda acc, v: wrap_int(acc + wrap_int(v * v))),
    ("acc = acc ^ (A[i] + 7);",
     lambda acc, v: wrap_int((acc & 0xFFFFFFFF)
                             ^ (wrap_int(v + 7) & 0xFFFFFFFF))),
    ("acc = acc + (A[i] & 255);",
     lambda acc, v: wrap_int(acc + (v & 255))),
)


def branchy_loop_sources(n_threads: int, seed: int = 0,
                         base: int = 0x2000, stride: int = 0x400,
                         ) -> Tuple[List[str], List["callable"], List[int]]:
    """N independent reduction loops over private arrays.

    Returns (per-thread XC sources, per-thread oracles taking
    (values, n), array base addresses).  Thread *i* reduces the array
    at ``base + i*stride``; iteration counts are runtime inputs, so the
    threads' durations differ — the barrier-join workload of
    Example 3.
    """
    rng = random.Random(seed)
    sources: List[str] = []
    oracles = []
    bases: List[int] = []
    for index in range(n_threads):
        body, step = _LOOP_BODIES[rng.randrange(len(_LOOP_BODIES))]
        array_base = base + index * stride
        bases.append(array_base)
        sources.append(f"""
func loop{index}(n) {{
  var i, acc;
  array A @ {array_base};
  i = 1;
  acc = 0;
  while (i <= n) {{
    {body}
    i = i + 1;
  }}
  return acc;
}}
""")

        def oracle(values, n, _step=step):
            acc = 0
            for i in range(1, n + 1):
                acc = _step(acc, values[i])
            return acc

        oracles.append(oracle)
    return sources, oracles, bases


def random_words(count: int, seed: int, bits: int = 32) -> List[int]:
    """1-indexed random word array (slot 0 unused), reproducible."""
    rng = random.Random(seed)
    return [0] + [rng.randrange(0, 1 << bits) for _ in range(count)]


def random_ints(count: int, seed: int, lo: int = -1000,
                hi: int = 1000) -> List[int]:
    """1-indexed random signed ints (slot 0 unused), reproducible."""
    rng = random.Random(seed)
    return [0] + [rng.randrange(lo, hi) for _ in range(count)]
