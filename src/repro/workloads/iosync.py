"""Figure 12: multiple non-blocking synchronizations between two processes.

Two concurrent processes run on one 8-FU XIMD: Process 1 on SSET
{0,1,2,3} and Process 2 on SSET {4,5,6,7}.  Each process polls an input
port until it returns a non-zero value ("reads some data from an I/O
port until the port returns a non-zero, valid value"), hands values to
the other process through shared registers, and writes the values it
receives to its own output port.

The availability of each variable is encoded on one synchronization
bit, exactly as the paper's table::

    a -> SS0    b -> SS1    c -> SS2      (produced by Process 1)
    x -> SS4    y -> SS5    z -> SS6      (produced by Process 2)

Each signal *"is set to DONE and held at that value whenever the
corresponding variable is ready to be used"* — i.e. every parcel a FU
executes after its variable is acquired carries sync DONE, so a
consumer's one-cycle busy-wait sees readiness instantly while the
producer continues unhindered (the non-blocking property).  A standard
8-way barrier closes both processes.

Two implementations are generated:

* :func:`iosync_sync_source` — the paper's sync-bit design;
* :func:`iosync_memory_source` — the baseline it argues against:
  availability signaled through memory flags (producer stores a flag
  word; consumer polls it with a load/compare/branch loop).

Both share port geometry, process structure, and hand-off order, so the
cycle-count difference isolates the synchronization mechanism (the
paper: *"This will result in increased performance."*).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..machine.devices import DeviceMap, InputPort, OutputPort

# --- memory-mapped device addresses ---------------------------------------
IN1_ADDR = 0x10   # Process 1's input port (delivers a, b, c)
IN2_ADDR = 0x11   # Process 2's input port (delivers x, y, z)
OUT1_ADDR = 0x12  # Process 1's output port (receives x, y, z)
OUT2_ADDR = 0x13  # Process 2's output port (receives a, b, c)

#: memory flags used by the baseline variant (one word per variable).
FLAG_BASE = 0x40
FLAG = {name: FLAG_BASE + i
        for i, name in enumerate(("a", "b", "c", "x", "y", "z"))}

#: register bindings shared by both variants.
IOSYNC_REGS = {
    "va": 0, "vb": 1, "vc": 2,   # produced by Process 1
    "vx": 3, "vy": 4, "vz": 5,   # produced by Process 2
    "tf1": 6,                    # Process 1 flag-poll scratch
    "tf2": 7,                    # Process 2 flag-poll scratch
}

_P2_ENTRY = 0x40  # instruction address where Process 2's code starts


class _RowBuilder:
    """Accumulates rows of 8 parcels and renders assembly text."""

    def __init__(self):
        self.rows: List[Tuple[int, List[Optional[Tuple[str, str, str]]]]] = []
        self._next = 0

    def row(self, cols: Dict[int, Tuple[str, str]], done: Sequence[int],
            at: Optional[int] = None) -> int:
        """Append a row.

        Args:
            cols: column -> (control, data); unmentioned columns of the
                owning process get ``(same control, "nop")`` and columns
                of the other process stay empty.
            done: columns whose sync field is DONE this row.
            at: explicit address (default: next sequential).
        Returns the row's address.
        """
        address = self._next if at is None else at
        parcels: List[Optional[Tuple[str, str, str]]] = [None] * 8
        for col, (control, data) in cols.items():
            sync = "done" if col in done else "busy"
            parcels[col] = (control, data, sync)
        self.rows.append((address, parcels))
        self._next = address + 1
        return address

    def render(self, header: str) -> str:
        lines = [header]
        previous = None
        for address, parcels in sorted(self.rows):
            if previous is None or address != previous + 1:
                lines.append(f".org @{address:02x}")
            previous = address
            lines.append("-")
            last = max(i for i, p in enumerate(parcels) if p is not None)
            for parcel in parcels[:last + 1]:
                if parcel is None:
                    lines.append("| empty")
                else:
                    control, data, sync = parcel
                    lines.append(f"| {control} ; {data} ; {sync}")
        return "\n".join(lines) + "\n"


_HEADER = f"""\
.width 8
.reg va r0
.reg vb r1
.reg vc r2
.reg vx r3
.reg vy r4
.reg vz r5
.reg tf1 r6
.reg tf2 r7
.const IN1 {IN1_ADDR}
.const IN2 {IN2_ADDR}
.const OUT1 {OUT1_ADDR}
.const OUT2 {OUT2_ADDR}
.const FA {FLAG['a']}
.const FB {FLAG['b']}
.const FC {FLAG['c']}
.const FX {FLAG['x']}
.const FY {FLAG['y']}
.const FZ {FLAG['z']}
"""


def _process_cols(base: int) -> Tuple[int, int, int, int]:
    return (base, base + 1, base + 2, base + 3)


def _emit_poll(builder: _RowBuilder, cols, poll_fu: int, port: str,
               dest: str, done: Sequence[int]) -> None:
    """Three-row poll loop: load port, test zero, branch back."""
    load_at = builder._next
    row_all = lambda ctl, special=None: {  # noqa: E731 - tiny local helper
        col: (ctl, special[1] if special and special[0] == col else "nop")
        for col in cols
    }
    builder.row(row_all("-> .", (poll_fu, f"load #{port},#0,{dest}")), done)
    builder.row(row_all("-> .", (poll_fu, f"eq {dest},#0")), done)
    branch = f"if cc{poll_fu} @{load_at:02x}, ."
    builder.row(row_all(branch), done)


def _emit_flag_wait(builder: _RowBuilder, cols, poll_fu: int, flag: str,
                    scratch: str, done: Sequence[int]) -> None:
    """Memory-flag wait: load flag, test zero, spin (baseline variant)."""
    load_at = builder._next
    row_all = lambda ctl, special=None: {  # noqa: E731
        col: (ctl, special[1] if special and special[0] == col else "nop")
        for col in cols
    }
    builder.row(row_all("-> .", (poll_fu, f"load #{flag},#0,{scratch}")), done)
    builder.row(row_all("-> .", (poll_fu, f"eq {scratch},#0")), done)
    builder.row(row_all(f"if cc{poll_fu} @{load_at:02x}, ."), done)


def _emit_simple(builder: _RowBuilder, cols, control: str,
                 special: Optional[Tuple[int, str]], done) -> int:
    cells = {col: (control, "nop") for col in cols}
    if special is not None:
        col, data = special
        cells[col] = (control, data)
    return builder.row(cells, done)


def _build(mode: str) -> str:
    """Generate the program for ``mode`` in {"sync", "memory"}."""
    if mode not in ("sync", "memory"):
        raise ValueError(f"unknown iosync mode {mode!r}")
    builder = _RowBuilder()
    p1 = _process_cols(0)
    p2 = _process_cols(4)

    # --- row 0: Process 2's columns jump to their code ------------------
    cells = {col: ("-> .", "nop") for col in p1}
    for col in p2:
        cells[col] = (f"-> @{_P2_ENTRY:02x}", "nop")
    # Row 0 doubles as the first row of Process 1's poll-a loop? No —
    # keep it a pure dispatch row so both processes' code is uniform.
    builder.row(cells, done=())

    uses_flags = mode == "memory"

    # --- Process 1: acquire a, b, c; then write x, y, z -----------------
    # done_p1 holds the P1 columns whose variable is already available
    # (sync mode only; the memory variant keeps every sync BUSY until
    # the closing barrier).
    done_p1: List[int] = []

    def p1_done():
        return tuple(done_p1) if mode == "sync" else ()

    for fu, (var, flag) in enumerate((("va", "FA"), ("vb", "FB"),
                                      ("vc", "FC"))):
        _emit_poll(builder, p1, fu, "IN1", var, p1_done())
        done_p1.append(fu)
        if uses_flags:
            _emit_simple(builder, p1, "-> .",
                         (fu, f"store #1,#{flag}"), p1_done())

    for index, var in ((4, "vx"), (5, "vy"), (6, "vz")):
        if mode == "sync":
            spin = builder._next
            _emit_simple(builder, p1, f"if ss{index} ., @{spin:02x}",
                         None, p1_done())
        else:
            flag = {4: "FX", 5: "FY", 6: "FZ"}[index]
            _emit_flag_wait(builder, p1, 0, flag, "tf1", p1_done())
        _emit_simple(builder, p1, "-> .", (0, f"store {var},#OUT1"),
                     p1_done())

    barrier1 = builder._next
    _emit_simple(builder, p1, f"if all ., @{barrier1:02x}", None,
                 done=tuple(p1))
    _emit_simple(builder, p1, "halt", None, done=tuple(p1))

    # --- Process 2: poll x / write a, poll y / write b, poll z / write c
    builder._next = _P2_ENTRY
    done_p2: List[int] = []

    def p2_done():
        return tuple(done_p2) if mode == "sync" else ()

    pairs = (
        (4, "vx", "FX", 0, "va", "FA"),
        (5, "vy", "FY", 1, "vb", "FB"),
        (6, "vz", "FZ", 2, "vc", "FC"),
    )
    for fu, var, flag, wait_index, wait_var, wait_flag in pairs:
        _emit_poll(builder, p2, fu, "IN2", var, p2_done())
        done_p2.append(fu)
        if uses_flags:
            _emit_simple(builder, p2, "-> .",
                         (fu, f"store #1,#{flag}"), p2_done())
        if mode == "sync":
            spin = builder._next
            _emit_simple(builder, p2, f"if ss{wait_index} ., @{spin:02x}",
                         None, p2_done())
        else:
            _emit_flag_wait(builder, p2, 4, wait_flag, "tf2", p2_done())
        _emit_simple(builder, p2, "-> .", (4, f"store {wait_var},#OUT2"),
                     p2_done())

    barrier2 = builder._next
    _emit_simple(builder, p2, f"if all ., @{barrier2:02x}", None,
                 done=tuple(p2))
    _emit_simple(builder, p2, "halt", None, done=tuple(p2))

    return builder.render(_HEADER)


def iosync_sync_source() -> str:
    """The Figure 12 program using XIMD synchronization bits."""
    return _build("sync")


def iosync_memory_source() -> str:
    """The baseline: identical structure, memory-flag synchronization."""
    return _build("memory")


def make_devices(p1_arrivals: Sequence[Tuple[int, int]],
                 p2_arrivals: Sequence[Tuple[int, int]]):
    """Build the four ports and their device map.

    Args:
        p1_arrivals: (ready_cycle, value) pairs for IN1 (a, b, c).
        p2_arrivals: (ready_cycle, value) pairs for IN2 (x, y, z).

    Returns:
        (device_map, in1, in2, out1, out2)
    """
    in1 = InputPort(list(p1_arrivals))
    in2 = InputPort(list(p2_arrivals))
    out1 = OutputPort()
    out2 = OutputPort()
    devices = DeviceMap()
    devices.map(IN1_ADDR, 1, in1)
    devices.map(IN2_ADDR, 1, in2)
    devices.map(OUT1_ADDR, 1, out1)
    devices.map(OUT2_ADDR, 1, out2)
    return devices, in1, in2, out1, out2
