"""Livermore loop kernels in XC, with pure-Python oracles.

The paper uses Livermore Loop 12 as its vectorizable example (section
3.1); a few sibling kernels from the Livermore Fortran Kernels suite
are included so the speedup benches exercise more than one loop shape:

* LL1  — hydro fragment (scaled stream with offset reuse)
* LL3  — inner product (reduction)
* LL7  — equation-of-state fragment (wide expression tree)
* LL12 — first difference (the paper's example)

Kernels use integer arithmetic (the XIMD-1 data path treats 32-bit
ints and floats symmetrically; integer oracles are exact to compare).
Array bases match :mod:`repro.workloads.paper_examples` conventions:
1-indexed, element *i* of array ``A`` at ``A_base + i``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..isa import wrap_int

#: array base addresses shared by the kernels.
BASES = {"X": 0x800, "Y": 0x400, "Z": 0x1000, "U": 0x1800}


def _arrays(text: str) -> str:
    return "\n".join(f"  array {name} @ {base};"
                     for name, base in BASES.items()
                     if name in text)


LL1_XC = f"""
func ll1(n, q, r, t) {{
  var k;
  array X @ {BASES['X']};
  array Y @ {BASES['Y']};
  array Z @ {BASES['Z']};
  k = 1;
  while (k <= n) {{
    X[k] = q + Y[k] * (r * Z[k + 10] + t * Z[k + 11]);
    k = k + 1;
  }}
}}
"""


def ll1_reference(y: Sequence[int], z: Sequence[int], n: int,
                  q: int, r: int, t: int) -> List[int]:
    x = [0] * (n + 1)
    for k in range(1, n + 1):
        x[k] = wrap_int(q + y[k] * wrap_int(r * z[k + 10] + t * z[k + 11]))
    return x


LL3_XC = f"""
func ll3(n) {{
  var k, q;
  array X @ {BASES['X']};
  array Z @ {BASES['Z']};
  k = 1;
  q = 0;
  while (k <= n) {{
    q = q + Z[k] * X[k];
    k = k + 1;
  }}
  return q;
}}
"""


def ll3_reference(z: Sequence[int], x: Sequence[int], n: int) -> int:
    q = 0
    for k in range(1, n + 1):
        q = wrap_int(q + wrap_int(z[k] * x[k]))
    return q


LL7_XC = f"""
func ll7(n, r, t) {{
  var k;
  array X @ {BASES['X']};
  array Y @ {BASES['Y']};
  array Z @ {BASES['Z']};
  array U @ {BASES['U']};
  k = 1;
  while (k <= n) {{
    X[k] = U[k] + r * (Z[k] + r * Y[k])
         + t * (U[k + 3] + r * (U[k + 2] + r * U[k + 1])
         + t * (U[k + 6] + r * (U[k + 5] + r * U[k + 4])));
    k = k + 1;
  }}
}}
"""


def ll7_reference(u: Sequence[int], y: Sequence[int], z: Sequence[int],
                  n: int, r: int, t: int) -> List[int]:
    w = wrap_int
    x = [0] * (n + 1)
    for k in range(1, n + 1):
        x[k] = w(u[k] + w(r * w(z[k] + w(r * y[k])))
                 + w(t * w(w(u[k + 3] + w(r * w(u[k + 2]
                                              + w(r * u[k + 1]))))
                           + w(t * w(u[k + 6]
                                     + w(r * w(u[k + 5]
                                               + w(r * u[k + 4]))))))))
    return x


LL12_XC = f"""
func ll12(n) {{
  var k;
  array X @ {BASES['X']};
  array Y @ {BASES['Y']};
  k = 1;
  while (k <= n) {{
    X[k] = Y[k + 1] - Y[k];
    k = k + 1;
  }}
}}
"""

#: kernel name -> (XC source, input arrays it reads, scalars it takes)
KERNELS: Dict[str, Tuple[str, Tuple[str, ...], Tuple[str, ...]]] = {
    "ll1": (LL1_XC, ("Y", "Z"), ("n", "q", "r", "t")),
    "ll3": (LL3_XC, ("X", "Z"), ("n",)),
    "ll7": (LL7_XC, ("Y", "Z", "U"), ("n", "r", "t")),
    "ll12": (LL12_XC, ("Y",), ("n",)),
}


def memory_image(arrays: Dict[str, Sequence[int]]) -> Dict[int, int]:
    """Memory init for 1-indexed arrays keyed by name."""
    image: Dict[int, int] = {}
    for name, values in arrays.items():
        base = BASES[name]
        for i in range(1, len(values)):
            image[base + i] = values[i]
    return image
