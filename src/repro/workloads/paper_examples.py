"""The paper's worked example programs, transcribed to assembly.

* :func:`tproc_source` — Example 1, the percolation-scheduled scalar
  procedure (VLIW-mode XIMD code, 4 FUs, 5 instructions).
* :func:`minmax_source` — Example 2, implicit barrier synchronization
  (equal-length fork/join paths), reproducing the Figure 10 trace.
* :func:`bitcount1_source` — Example 3, explicit barrier
  synchronization with four concurrent inner loops.
* :func:`livermore12_source` — Livermore Loop 12, software pipelined
  (section 3.1, "Software Pipelining can be used effectively to
  schedule multiple iterations of this loop in parallel").
* ``*_vliw_source`` — single-instruction-stream versions of the same
  workloads for the ``vsim`` comparison (section 4.1).

Transcription notes (documented deviations from the scanned listing):

1. BITCOUNT1's outer-loop continuation test is printed as ``lt t,4`` in
   the scan, but the entry guard at address 00: is ``le n,#8``: entering
   the 4-wide block requires at least 8 remaining elements (the next
   block's last element is ``k+7``).  For consistency — and to avoid
   reading past the end of ``D[]`` — the loop test is transcribed as
   ``lt t,#8``.  The cleanup code at 30:, which the paper omits
   ("Clean Up Code for less than 8 iterations remaining"), is supplied
   as a straightforward sequential loop.
2. The listing resets the running count ``b`` at each block boundary
   (``iadd #0,#0,b`` at 15:), making ``B[k]`` block-cumulative; the
   prose says "cumulative number of ones".  Both are provided:
   :func:`bitcount1_source` is the faithful transcription and
   :func:`bitcount_total_source` the running-total variant.
3. MINMAX's final address 0a: is not listed in the paper; the Figure 10
   trace shows all FUs executing it at cycle 13, so it must hold real
   parcels.  ``epilogue="loop"`` places an idle self-loop there (for
   exact trace reproduction), ``epilogue="halt"`` a halt row (for
   terminating correctness runs).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

# ---------------------------------------------------------------------------
# memory layout shared by the examples

#: address of IZ(1): element IZ(k) lives at IZ_BASE + k - 1 (Example 2's
#: ``z`` constant; the first load is ``load #z,#0`` and the k-th is
#: ``load #z,k`` with k counting from 1).
IZ_BASE = 0x100
#: address of D[0]: element D[k] lives at D_BASE + k (Example 3).
D_BASE = 0x200
#: address of B[0] (Example 3 output array).
B_BASE = 0x300
#: address of Y[0] for Livermore loop 12 (1-indexed).
Y_BASE = 0x400
#: address of X[0] for Livermore loop 12 (1-indexed).
X_BASE = 0x800
#: harmless scratch word for software-pipelined prologue stores.
SCRATCH = 0xFFF


def minmax_memory(iz) -> Dict[int, int]:
    """Memory image for MINMAX: ``IZ(k)`` at ``IZ_BASE + k - 1``."""
    return {IZ_BASE + i: value for i, value in enumerate(iz)}


def bitcount_memory(d) -> Dict[int, int]:
    """Memory image for BITCOUNT1.

    *d* is the 1-indexed conceptual array: ``d[0]`` is ignored and
    ``d[k]`` lands at ``D_BASE + k`` (the program's ``load #D0,k``).
    """
    return {D_BASE + k: d[k] for k in range(1, len(d))}


def livermore12_memory(y) -> Dict[int, int]:
    """Memory image for Livermore 12: ``Y[i]`` at ``Y_BASE + i``.

    *y* is 1-indexed conceptually (``y[0]`` ignored).
    """
    return {Y_BASE + i: y[i] for i in range(1, len(y))}


# ---------------------------------------------------------------------------
# Example 1: TPROC

#: register bindings used by the TPROC program.
TPROC_REGS = {"a": 0, "b": 1, "c": 2, "d": 3, "e": 4, "f": 5, "g": 6}


def tproc_source() -> str:
    """Example 1's schedule, verbatim (result is left in ``f``)."""
    return """\
.width 4
.reg a r0
.reg b r1
.reg c r2
.reg d r3
.reg e r4
.reg f r5
.reg g r6
// 00:
=> -> .
| iadd a,b,e
| imult c,a,f
| iadd c,b,g
| nop
// 01:
=> -> .
| iadd f,e,f
| isub a,g,g
| iadd e,c,a
| isub d,e,e
// 02:
=> -> .
| iadd a,d,a
| iadd f,g,g
| nop
| nop
// 03:
=> -> .
| iadd a,e,a
| nop
| nop
| nop
// 04:
=> -> .
| iadd a,g,f
| nop
| nop
| nop
// 05:
=> halt
| nop
| nop
| nop
| nop
"""


# ---------------------------------------------------------------------------
# Example 2: MINMAX

#: register bindings used by both MINMAX programs.
MINMAX_REGS = {"k": 0, "n": 1, "tn": 2, "tz": 3, "min": 4, "max": 5}

_MINMAX_HEADER = f"""\
.width 4
.reg k r0
.reg n r1
.reg tn r2
.reg tz r3
.reg min r4
.reg max r5
.const z {IZ_BASE}
"""

_MINMAX_BODY = """\
// 00:
-
| -> . ; load #z,#0,tz
| -> . ; iadd #1,#0,k
| -> . ; lt n,#2
| -> . ; iadd n,#0,tn
// 01:
-
| if cc2 @08, @02 ; lt tz,#maxint
| if cc2 @08, @02 ; gt tz,#minint
| if cc2 @08, @02 ; nop
| if cc2 @08, @02 ; isub tn,#1,tn
// 02:
-
| -> @03 ; nop
| -> @03 ; nop
| if cc0 @04, @03 ; eq k,tn
| if cc1 @04, @03 ; nop
// 03:
-
| -> @05 ; load #z,k,tz
| -> @05 ; iadd #1,k,k
| -> @05 ; nop
| -> @05 ; nop
// 04:
-
| empty
| empty
| -> @05 ; iadd tz,#0,min
| -> @05 ; iadd tz,#0,max
// 05:
-
| if cc2 @08, @02 ; lt tz,min
| if cc2 @08, @02 ; gt tz,max
| if cc2 @08, @02 ; nop
| if cc2 @08, @02 ; nop
// 08:
.org @08
-
| -> @0a ; nop
| -> @0a ; nop
| if cc0 @09, @0a ; nop
| if cc1 @09, @0a ; nop
// 09:
-
| empty
| empty
| -> @0a ; iadd tz,#0,min
| -> @0a ; iadd tz,#0,max
// 0a:
"""

_MINMAX_LOOP_END = """\
-
| -> @0a ; nop
| -> @0a ; nop
| -> @0a ; nop
| -> @0a ; nop
"""

_MINMAX_HALT_END = """\
=> halt
| nop
| nop
| nop
| nop
"""


def minmax_source(epilogue: str = "halt") -> str:
    """Example 2's XIMD MINMAX program.

    Args:
        epilogue: ``"halt"`` ends the program at 0a: (the machine
            stops); ``"loop"`` idles at 0a: forever, matching the
            Figure 10 trace which shows cycle 13 executing address 0a:.
    """
    if epilogue == "halt":
        tail = _MINMAX_HALT_END
    elif epilogue == "loop":
        tail = _MINMAX_LOOP_END
    else:
        raise ValueError(f"unknown epilogue {epilogue!r}")
    return _MINMAX_HEADER + _MINMAX_BODY + tail


def minmax_vliw_source() -> str:
    """A single-instruction-stream MINMAX for the VLIW machine.

    The data path work is identical; the two independent conditional
    updates must be serialized through the single branch unit, which is
    exactly the control-flow bottleneck of section 1.3.
    """
    return _MINMAX_HEADER + """\
// 00:
-
| -> . ; load #z,#0,tz
| -> . ; iadd #1,#0,k
| -> . ; lt n,#2
| -> . ; iadd n,#0,tn
// 01:
-
| if cc2 @0b, @02 ; lt tz,#maxint
| if cc2 @0b, @02 ; gt tz,#minint
| if cc2 @0b, @02 ; nop
| if cc2 @0b, @02 ; isub tn,#1,tn
// 02:  loop: test for last element
-
| -> @03 ; nop
| -> @03 ; nop
| -> @03 ; eq k,tn
| -> @03 ; nop
// 03:  min update?
=> if cc0 @04, @05
| nop
| nop
| nop
| nop
// 04:
-
| -> @05 ; nop
| -> @05 ; nop
| -> @05 ; iadd tz,#0,min
| -> @05 ; nop
// 05:  max update?
=> if cc1 @06, @07
| nop
| nop
| nop
| nop
// 06:
-
| -> @07 ; nop
| -> @07 ; nop
| -> @07 ; nop
| -> @07 ; iadd tz,#0,max
// 07:  advance
-
| -> @08 ; load #z,k,tz
| -> @08 ; iadd #1,k,k
| -> @08 ; nop
| -> @08 ; nop
// 08:  compare and loop
-
| if cc2 @0b, @02 ; lt tz,min
| if cc2 @0b, @02 ; gt tz,max
| if cc2 @0b, @02 ; nop
| if cc2 @0b, @02 ; nop
// 0b:  epilogue: final element's updates
.org @0b
=> if cc0 @0c, @0d
| nop
| nop
| nop
| nop
-
| -> @0d ; nop
| -> @0d ; nop
| -> @0d ; iadd tz,#0,min
| -> @0d ; nop
-
=> if cc1 @0e, @0f
| nop
| nop
| nop
| nop
-
| -> @0f ; nop
| -> @0f ; nop
| -> @0f ; nop
| -> @0f ; iadd tz,#0,max
-
=> halt
| nop
| nop
| nop
| nop
"""


#: Figure 10's expected trace for IZ() = (5, 3, 4, 7): per cycle, the
#: four PCs, the condition codes at the start of the cycle, and the
#: partition.  Transcribed from the paper (the cycle-11 CC column is
#: printed "FITX" in the scan, an artifact for "FTTX").
FIGURE10_EXPECTED: List[Tuple[Tuple[int, int, int, int], str, str]] = [
    ((0x00, 0x00, 0x00, 0x00), "XXXX", "{0,1,2,3}"),
    ((0x01, 0x01, 0x01, 0x01), "XXFX", "{0,1,2,3}"),
    ((0x02, 0x02, 0x02, 0x02), "TTFX", "{0,1,2,3}"),
    ((0x03, 0x03, 0x04, 0x04), "TTFX", "{0,1}{2}{3}"),
    ((0x05, 0x05, 0x05, 0x05), "TTFX", "{0,1,2,3}"),
    ((0x02, 0x02, 0x02, 0x02), "TFFX", "{0,1,2,3}"),
    ((0x03, 0x03, 0x04, 0x03), "TFFX", "{0,1}{2}{3}"),
    ((0x05, 0x05, 0x05, 0x05), "TFFX", "{0,1,2,3}"),
    ((0x02, 0x02, 0x02, 0x02), "FFFX", "{0,1,2,3}"),
    ((0x03, 0x03, 0x03, 0x03), "FFTX", "{0,1}{2}{3}"),
    ((0x05, 0x05, 0x05, 0x05), "FFTX", "{0,1,2,3}"),
    ((0x08, 0x08, 0x08, 0x08), "FTTX", "{0,1,2,3}"),
    ((0x0A, 0x0A, 0x0A, 0x09), "FTTX", "{0,1}{2}{3}"),
    ((0x0A, 0x0A, 0x0A, 0x0A), "FTTX", "{0,1,2,3}"),
]

#: The Figure 10 sample data set.
FIGURE10_DATA = (5, 3, 4, 7)


# ---------------------------------------------------------------------------
# Example 3: BITCOUNT1

#: register bindings used by the BITCOUNT programs.
BITCOUNT_REGS = {
    "k": 0, "n": 1, "a": 2, "b": 3, "t": 4,
    "b0": 5, "b1": 6, "b2": 7, "b3": 8,
    "d0": 9, "d1": 10, "d2": 11, "d3": 12,
    "t0": 13, "t1": 14, "t2": 15, "t3": 16,
}

_BITCOUNT_HEADER = f"""\
.width 4
.reg k r0
.reg n r1
.reg a r2
.reg b r3
.reg t r4
.reg b0 r5
.reg b1 r6
.reg b2 r7
.reg b3 r8
.reg d0 r9
.reg d1 r10
.reg d2 r11
.reg d3 r12
.reg t0 r13
.reg t1 r14
.reg t2 r15
.reg t3 r16
.const D0 {D_BASE}
.const D1 {D_BASE + 1}
.const D2 {D_BASE + 2}
.const D3 {D_BASE + 3}
.const B0 {B_BASE}
.const B1 {B_BASE + 1}
.const B2 {B_BASE + 2}
.const B3 {B_BASE + 3}
"""

_BITCOUNT_CLEANUP = """\
// 30:  cleanup: sequential handling of the final < 8 elements
.org @30
=> -> .
| gt k,n ; done
| nop ; done
| nop ; done
| nop ; done
-
=> if cc0 @3e, @32
| nop ; done
| nop ; done
| nop ; done
| nop ; done
-
=> -> .
| load #D0,k,d0 ; done
| nop ; done
| nop ; done
| nop ; done
-
=> -> .
| iadd #0,#0,b0 ; done
| nop ; done
| nop ; done
| nop ; done
// 34:  inner bit loop
-
=> -> .
| eq d0,#0 ; done
| nop ; done
| nop ; done
| nop ; done
-
=> if cc0 @3a, @36
| nop ; done
| nop ; done
| nop ; done
| nop ; done
-
=> -> .
| and d0,#1,t0 ; done
| nop ; done
| nop ; done
| nop ; done
-
=> -> .
| iadd b0,t0,b0 ; done
| nop ; done
| nop ; done
| nop ; done
-
=> -> @34
| shr d0,#1,d0 ; done
| nop ; done
| nop ; done
| nop ; done
// 3a:  element done: accumulate and store
.org @3a
=> -> .
| iadd b,b0,b ; done
| nop ; done
| nop ; done
| nop ; done
-
=> -> .
| iadd k,#B0,a ; done
| nop ; done
| nop ; done
| nop ; done
-
=> -> .
| store b,a ; done
| nop ; done
| nop ; done
| nop ; done
-
=> -> @30
| iadd k,#1,k ; done
| nop ; done
| nop ; done
| nop ; done
// 3e:  end
.org @3e
=> halt
| nop ; done
| nop ; done
| nop ; done
| nop ; done
"""


def _bitcount_main(reset_blocks: bool) -> str:
    """Addresses 00-15 of Example 3 (the 4-wide main loop)."""
    reset_op = "iadd #0,#0,b" if reset_blocks else "nop"
    return f"""\
// 00:
=> -> .
| le n,#8 ; done
| iadd #1,#0,k ; done
| iadd #0,#0,b ; done
| store #0,#B0 ; done
// 01:
=> if cc0 @30, @02
| nop ; done
| nop ; done
| nop ; done
| nop ; done
// 02:  start a block of four outer iterations
=> -> .
| iadd #0,#0,b0
| iadd #0,#0,b1
| iadd #0,#0,b2
| iadd #0,#0,b3
// 03:
=> -> .
| load #D0,k,d0
| load #D1,k,d1
| load #D2,k,d2
| load #D3,k,d3
// 04:  inner loop head (four independent copies)
=> -> .
| eq d0,#0
| eq d1,#0
| eq d2,#0
| eq d3,#0
// 05:
-
| if cc0 @10, @06 ; and d0,#1,t0
| if cc1 @10, @06 ; and d1,#1,t1
| if cc2 @10, @06 ; and d2,#1,t2
| if cc3 @10, @06 ; and d3,#1,t3
// 06:
=> -> .
| eq #0,t0
| eq #0,t1
| eq #0,t2
| eq #0,t3
// 07:
-
| if cc0 @04, @08 ; shr d0,#1,d0
| if cc1 @04, @08 ; shr d1,#1,d1
| if cc2 @04, @08 ; shr d2,#1,d2
| if cc3 @04, @08 ; shr d3,#1,d3
// 08:
=> -> @04
| iadd b0,#1,b0
| iadd b1,#1,b1
| iadd b2,#1,b2
| iadd b3,#1,b3
// 10:  4-way barrier
.org @10
=> if all @11, @10
| nop ; done
| nop ; done
| nop ; done
| nop ; done
// 11:  software-pipelined stores of the four B[] values
=> -> .
| iadd b,b0,b ; done
| nop ; done
| iadd k,#B0,a ; done
| nop ; done
// 12:
=> -> .
| iadd b,b1,b ; done
| store b,a ; done
| iadd k,#B1,a ; done
| nop ; done
// 13:
=> -> .
| iadd b,b2,b ; done
| store b,a ; done
| iadd k,#B2,a ; done
| isub n,k,t ; done
// 14:
=> -> .
| iadd b,b3,b ; done
| store b,a ; done
| iadd k,#B3,a ; done
| lt t,#8 ; done
// 15:
=> if cc3 @30, @02
| iadd k,#4,k ; done
| store b,a ; done
| {reset_op} ; done
| nop ; done
"""


def bitcount1_source() -> str:
    """Example 3, faithful transcription (block-cumulative ``B[]``)."""
    return _BITCOUNT_HEADER + _bitcount_main(True) + _BITCOUNT_CLEANUP


def bitcount_total_source() -> str:
    """The running-total variant (``B[k]`` = ones in ``D[1..k]``)."""
    return _BITCOUNT_HEADER + _bitcount_main(False) + _BITCOUNT_CLEANUP


def bitcount_vliw_source() -> str:
    """Single-stream BITCOUNT for the VLIW machine.

    One element at a time: the per-element inner loops cannot overlap
    because the machine has a single branch unit, which is the effect
    Example 3 is designed to exhibit.  Produces the running-total
    ``B[]`` (compare with :func:`bitcount_total_source`).
    """
    return _BITCOUNT_HEADER + """\
// 00:
=> -> .
| iadd #1,#0,k
| iadd #0,#0,b
| store #0,#B0
| nop
// 01:  per-element loop head
=> -> .
| gt k,n
| nop
| nop
| nop
// 02:
=> if cc0 @0b, @03
| nop
| nop
| nop
| nop
// 03:
=> -> .
| load #D0,k,d0
| iadd #0,#0,b0
| nop
| nop
// 04:  inner bit loop
=> -> .
| eq d0,#0
| nop
| nop
| nop
// 05:
=> if cc0 @09, @06
| and d0,#1,t0
| nop
| nop
| nop
// 06:
=> -> @04
| iadd b0,t0,b0
| shr d0,#1,d0
| nop
| nop
// 09:  element done
.org @09
=> -> .
| iadd b,b0,b
| iadd k,#B0,a
| nop
| nop
// 0a:
=> -> @01
| store b,a
| iadd k,#1,k
| nop
| nop
// 0b:
.org @0b
=> halt
| nop
| nop
| nop
| nop
"""


# ---------------------------------------------------------------------------
# Livermore Loop 12 (software pipelined, II = 2)

#: register bindings used by the Livermore 12 program.
LL12_REGS = {"k": 0, "n": 1, "tc": 2, "tp": 3, "xv": 4, "xa": 5}


def livermore12_source() -> str:
    """``X(k) = Y(k+1) - Y(k)``, modulo-scheduled at II = 2 on 4 FUs.

    VLIW-mode code (control fields duplicated): one loop iteration is
    in flight across two pipeline stages; the store of iteration *k*
    issues in the same row as the load of iteration *k+1*.  Runs
    identically on the XIMD and VLIW machines (the paper's point: fully
    synchronous code keeps all of VLIW's efficiency on an XIMD).
    """
    return f"""\
.width 4
.reg k r0
.reg n r1
.reg tc r2
.reg tp r3
.reg xv r4
.reg xa r5
.const Y0 {Y_BASE}
.const Y1 {Y_BASE + 1}
.const X0 {X_BASE}
.const scratch {SCRATCH}
// 00:  prologue
=> -> .
| iadd #1,#0,k
| load #Y0,#1,tp
| nop
| nop
// 01:
=> -> .
| iadd #scratch,#0,xa
| iadd #0,#0,xv
| nop
| nop
// 02:  kernel row A: load Y[k+1], store previous X, exit test
=> -> .
| load #Y1,k,tc
| store xv,xa
| eq k,n
| nop
// 03:  kernel row B: compute X[k], rotate, advance
=> if cc2 @04, @02
| isub tc,tp,xv
| iadd tc,#0,tp
| iadd #X0,k,xa
| iadd k,#1,k
// 04:  epilogue: store the final element
=> -> .
| store xv,xa
| nop
| nop
| nop
// 05:
=> halt
| nop
| nop
| nop
| nop
"""
