"""Pure-Python oracles for every workload.

Each simulator experiment is checked against a direct reference
implementation of the source program's semantics, so a simulator bug
cannot silently pass as a "reproduction".
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..isa import MAXINT, MININT, wrap_int


def tproc_reference(a: int, b: int, c: int, d: int) -> int:
    """Example 1's source procedure, straight from the paper's C code."""
    e = wrap_int(a + b)
    f = wrap_int(e + c * a)
    g = wrap_int(a - (b + c))
    e = wrap_int(d - e)
    return wrap_int((a + b + c) + d + e + (f + g))


def minmax_reference(iz: Sequence[int]) -> Tuple[int, int]:
    """Example 2's MINMAX loop: min and max of ``IZ(1..n)``.

    Mirrors the Fortran: ``min`` starts at ``maxint`` and ``max`` at
    ``minint``, each element replaces them independently.
    """
    lo, hi = MAXINT, MININT
    for value in iz:
        if value < lo:
            lo = value
        if value > hi:
            hi = value
    return lo, hi


def popcount32(value: int) -> int:
    """Number of one bits in the 32-bit pattern of *value*."""
    return bin(value & 0xFFFFFFFF).count("1")


def bitcount1_reference(d: Sequence[int], n: int) -> Dict[int, int]:
    """Example 3's BITCOUNT1 output array ``B[]``.

    *d* is 1-indexed conceptually: ``d[0]`` is unused padding and
    ``d[k]`` for ``k in 1..n`` are the input words, matching the
    program's ``load #D0, k`` addressing.

    Semantics follow the paper's listing faithfully, including the
    ``iadd #0,#0,b`` at address 15: that resets the running count at
    each 4-element block boundary: ``B[k]`` holds the number of one
    bits in the elements of *k*'s block up to and including ``D[k]``
    (with ``B[0] = 0`` from the store at address 00:).  The final
    partial block is handled by cleanup code and accumulates from the
    cleanup entry point.
    """
    counts: Dict[int, int] = {0: 0}
    k = 1
    if n >= 9:
        while True:
            b = 0
            for i in range(k, k + 4):
                b += popcount32(d[i])
                counts[i] = b
            more = (n - k) >= 8
            k += 4
            if not more:
                break
    b = 0
    for i in range(k, n + 1):
        b += popcount32(d[i])
        counts[i] = b
    return counts


def bitcount_total_reference(d: Sequence[int], n: int) -> Dict[int, int]:
    """The running-total variant: ``B[k]`` = ones in ``D[1..k]``.

    This matches the paper's prose ("the cumulative number of ones");
    the variant program :func:`~repro.workloads.paper_examples.
    bitcount_total_source` implements it by omitting the block-boundary
    reset.
    """
    counts: Dict[int, int] = {0: 0}
    b = 0
    for i in range(1, n + 1):
        b += popcount32(d[i])
        counts[i] = b
    return counts


def livermore12_reference(y: Sequence[int], n: int) -> List[int]:
    """Livermore Loop 12, first difference: ``X(k) = Y(k+1) - Y(k)``.

    *y* is 1-indexed conceptually (``y[0]`` unused); returns the X
    array, also with a dummy 0th slot.
    """
    x = [0] * (n + 1)
    for k in range(1, n + 1):
        x[k] = wrap_int(y[k + 1] - y[k])
    return x


def iosync_reference(p1_values: Sequence[int],
                     p2_values: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Figure 12's dual-process exchange, functional view.

    Process 1 acquires ``a, b, c`` and writes ``x, y, z``; Process 2
    acquires ``x, y, z`` and writes ``a, b, c``.  The output ports
    therefore see each other's input values, in order.
    """
    out1 = list(p2_values)  # process 1 writes x, y, z
    out2 = list(p1_values)  # process 2 writes a, b, c
    return out1, out2
