"""Tests for the analytical models and metrics (sections 4.3-4.4)."""

import pytest

from repro.analysis import (
    MachineRequirement,
    PartitionStats,
    PrototypeModel,
    RegisterFileChip,
    chip_table,
    chips_in_parallel_for_reads,
    compare_runs,
    minimum_chips,
    render_kv,
    render_table,
    speedup,
    total_transistors,
)


class TestPrototypeModel:
    def test_cycle_time_is_85ns(self):
        assert PrototypeModel().cycle_time_ns == pytest.approx(85.0)

    def test_peak_exceeds_90_mips(self):
        model = PrototypeModel()
        assert model.peak_mips() > 90.0
        assert model.peak_mflops() == model.peak_mips()

    def test_limited_by_control_path(self):
        # the non-pipelined control path is the critical structure
        assert PrototypeModel().limiting_path == "control"

    def test_scaling_with_fus(self):
        assert PrototypeModel(n_fus=4).peak_mips() == \
            pytest.approx(PrototypeModel(n_fus=8).peak_mips() / 2)

    def test_sustained_throughput(self):
        model = PrototypeModel()
        assert model.sustained_mips(0.5) == \
            pytest.approx(model.peak_mips() / 2)
        with pytest.raises(ValueError):
            model.sustained_mips(1.5)

    def test_custom_delays_change_critical_path(self):
        delays = dict(PrototypeModel().delays_ns)
        delays["alu"] = 200.0
        model = PrototypeModel(delays_ns=delays)
        assert model.limiting_path == "execute"
        assert model.cycle_time_ns == 200.0

    def test_describe(self):
        text = PrototypeModel().describe()
        assert "85 ns" in text and "MIPS" in text


class TestRegisterFileChip:
    def test_paper_minimum_is_32_chips(self):
        assert minimum_chips() == 32

    def test_two_chips_in_parallel_for_16_reads(self):
        assert chips_in_parallel_for_reads(MachineRequirement()) == 2

    def test_port_arithmetic(self):
        req = MachineRequirement(n_fus=8)
        assert req.read_ports == 16 and req.write_ports == 8

    def test_four_fus_need_half_the_read_banking(self):
        assert chips_in_parallel_for_reads(
            MachineRequirement(n_fus=4)) == 1
        assert minimum_chips(MachineRequirement(n_fus=4)) == 16

    def test_write_ports_are_the_scaling_wall(self):
        with pytest.raises(ValueError):
            minimum_chips(MachineRequirement(n_fus=16))

    def test_transistor_budget(self):
        assert total_transistors() == 32 * 70_000

    def test_table_renders(self):
        table = chip_table()
        assert "32" in table and "FUs" in table


class TestMetrics:
    def test_speedup(self):
        assert speedup(100, 50) == 2.0
        with pytest.raises(ValueError):
            speedup(10, 0)

    def test_partition_stats(self):
        from repro.machine.trace import AddressTrace, TraceRecord
        trace = AddressTrace(4)
        partitions = [((0, 1, 2, 3),),
                      ((0, 1), (2,), (3,)),
                      ((0, 1), (2,), (3,)),
                      ((0, 1, 2, 3),)]
        for cycle, partition in enumerate(partitions):
            trace.append(TraceRecord(cycle, (0, 0, 0, 0), "XXXX",
                                     "BBBB", partition))
        stats = PartitionStats.from_trace(trace)
        assert stats.cycles == 4
        assert stats.max_streams == 3
        assert stats.stream_histogram == {1: 2, 3: 2}
        assert stats.mean_streams == pytest.approx(2.0)
        assert stats.multi_stream_fraction == pytest.approx(0.5)
        assert "streams" in stats.describe()

    def test_partition_stats_zero_cycle_trace(self):
        # regression: an empty (or untracked) trace must not divide by 0
        from repro.machine.trace import AddressTrace, TraceRecord
        stats = PartitionStats.from_trace(AddressTrace(4))
        assert stats.cycles == 0
        assert stats.stream_histogram == {}
        assert stats.max_streams == 0
        assert stats.mean_streams == 0.0
        assert stats.multi_stream_fraction == 0.0
        # untracked: records exist but carry no partitions
        trace = AddressTrace(2)
        trace.append(TraceRecord(0, (0, 0), "XX", "--", None))
        assert PartitionStats.from_trace(trace).cycles == 0

    def test_utilization_zero_cycle_run(self):
        # regression: zero-cycle stats (and degenerate n_fus) return 0.0
        from repro.machine.datapath import DatapathStats
        stats = DatapathStats()
        assert stats.utilization(4) == 0.0
        assert stats.utilization(0) == 0.0
        stats.cycles = 10
        stats.data_ops = 20
        assert stats.utilization(0) == 0.0
        assert stats.utilization(4) == pytest.approx(0.5)

    def test_compare_runs(self):
        from repro.asm import assemble
        from repro.machine import run_ximd, run_vliw
        source = """
.width 2
=> -> .
| iadd #1,#2,r0
| iadd #3,#4,r1
=> halt
| nop
| nop
"""
        rx = run_ximd(assemble(source))
        rv = run_vliw(assemble(source))
        row = compare_runs(rx, rv, 2)
        assert row["speedup"] == pytest.approx(1.0)


class TestReport:
    def test_table_alignment(self):
        table = render_table(["name", "cycles"],
                             [["minmax", 14], ["bitcount", 634]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "minmax" in table and "634" in table

    def test_float_formatting(self):
        assert "2.50" in render_table(["x"], [[2.5]])

    def test_kv(self):
        text = render_kv("prototype", [("cycle", 85), ("mips", 94.1)])
        assert "cycle" in text and "94.1" in text
