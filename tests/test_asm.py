"""Tests for the assembler: lexer, parser, symbol resolution, layout."""

import pytest

from repro.asm import (
    AsmLayoutError,
    AsmSymbolError,
    AsmSyntaxError,
    TokenKind,
    assemble,
    disassemble,
    format_listing,
    register_index,
    tokenize,
)
from repro.isa import Condition, Const, Reg, SyncValue


class TestLexer:
    def test_register(self):
        tokens = tokenize("r17")
        assert tokens[0].kind is TokenKind.REGISTER
        assert tokens[0].value == 17

    def test_numeric_constants(self):
        assert tokenize("#42")[0].value == 42
        assert tokenize("#-3")[0].value == -3
        assert tokenize("#0x1f")[0].value == 31
        assert tokenize("#1.5")[0].value == 1.5

    def test_symbolic_constant(self):
        token = tokenize("#maxint")[0]
        assert token.kind is TokenKind.CONST_SYM
        assert token.value == "maxint"

    def test_address(self):
        token = tokenize("@0a")[0]
        assert token.kind is TokenKind.ADDRESS
        assert token.value == 10

    def test_arrow_and_dot(self):
        kinds = [t.kind for t in tokenize("-> .")]
        assert kinds[:2] == [TokenKind.ARROW, TokenKind.DOT]

    def test_bad_character(self):
        with pytest.raises(AsmSyntaxError):
            tokenize("iadd a!b")

    def test_malformed_constant(self):
        with pytest.raises(AsmSyntaxError):
            tokenize("# ")


class TestAssembleBasics:
    def test_minimal_program(self):
        program = assemble(".width 1\n-\n| halt ; iadd #1,#2,r0\n")
        assert program.width == 1
        assert program.length == 1
        parcel = program.fetch(0, 0)
        assert parcel.control is None
        assert parcel.data.dest == Reg(0)

    def test_row_control_duplicated(self):
        program = assemble("""
.width 2
=> -> @00
| nop
| nop
""")
        assert program.fetch(0, 0).control == program.fetch(1, 0).control

    def test_sync_field(self):
        program = assemble(
            ".width 1\n-\n| halt ; nop ; done\n")
        assert program.fetch(0, 0).sync is SyncValue.DONE

    def test_labels_resolve(self):
        program = assemble("""
.width 1
start:
| -> end ; nop
end:
| halt ; nop
""")
        assert program.address_of("start") == 0
        assert program.fetch(0, 0).control.target1 == 1

    def test_dot_means_next_address(self):
        program = assemble(".width 1\n-\n| -> . ; nop\n-\n| halt ; nop\n")
        assert program.fetch(0, 0).control.target1 == 1

    def test_org_places_rows(self):
        program = assemble("""
.width 1
-
| -> @10 ; nop
.org @10
-
| halt ; nop
""")
        assert program.length == 17
        assert program.fetch(0, 0x10) is not None
        assert program.fetch(0, 5) is None

    def test_entry_directive(self):
        program = assemble("""
.width 1
.entry main
-
| halt ; nop
main:
| halt ; nop
""")
        assert program.entry == 1

    def test_builtin_constants(self):
        from repro.isa import MAXINT, MININT
        program = assemble(
            ".width 1\n-\n| halt ; iadd #maxint,#minint,r0\n")
        op = program.fetch(0, 0).data
        assert op.srca == Const(MAXINT)
        assert op.srcb == Const(MININT)

    def test_const_directive(self):
        program = assemble(
            ".width 1\n.const z 100\n-\n| halt ; iadd #z,#0,r0\n")
        assert program.fetch(0, 0).data.srca == Const(100)

    def test_conditions(self):
        program = assemble("""
.width 2
-
| if cc1 @00, @01 ; nop
| if all(0,1) @00, @01 ; nop ; done
-
| if ss0 @00, @01 ; nop
| if any @00, @01 ; nop
""")
        assert program.fetch(0, 0).control.condition is Condition.CC_TRUE
        assert program.fetch(0, 0).control.index == 1
        assert program.fetch(1, 0).control.mask == (0, 1)
        assert program.fetch(0, 1).control.condition is Condition.SS_DONE
        assert program.fetch(1, 1).control.condition is \
            Condition.ANY_SS_DONE


class TestSymbolicRegisters:
    def test_explicit_binding(self):
        program = assemble("""
.width 1
.reg counter r9
-
| halt ; iadd counter,#1,counter
""")
        op = program.fetch(0, 0).data
        assert op.srca == Reg(9) and op.dest == Reg(9)
        assert register_index(program, "counter") == 9

    def test_auto_allocation_skips_bound(self):
        program = assemble("""
.width 1
.reg x r0
-
| halt ; iadd x,temp,temp
""")
        assert register_index(program, "temp") == 1

    def test_auto_allocation_deterministic(self):
        source = ".width 1\n-\n| halt ; iadd a,b,c\n"
        one = assemble(source)
        two = assemble(source)
        assert one.register_names == two.register_names

    def test_unknown_symbol_lookup(self):
        program = assemble(".width 1\n-\n| halt ; nop\n")
        with pytest.raises(AsmSymbolError):
            register_index(program, "ghost")


class TestErrors:
    def test_too_many_parcels(self):
        with pytest.raises(AsmLayoutError):
            assemble(".width 1\n-\n| halt ; nop\n| halt ; nop\n")

    def test_duplicate_label(self):
        with pytest.raises(AsmSymbolError):
            assemble(".width 1\nx:\n| halt ; nop\nx:\n| halt ; nop\n")

    def test_undefined_label(self):
        with pytest.raises(AsmSymbolError):
            assemble(".width 1\n-\n| -> ghost ; nop\n")

    def test_address_collision(self):
        with pytest.raises(AsmLayoutError):
            assemble(""".width 1
-
| halt ; nop
.org @00
-
| halt ; nop
""")

    def test_condition_fu_out_of_width(self):
        with pytest.raises(AsmLayoutError):
            assemble(".width 1\n-\n| if cc3 @00, @00 ; nop\n")

    def test_wrong_arity(self):
        with pytest.raises(AsmSyntaxError):
            assemble(".width 1\n-\n| halt ; iadd #1,r0\n")

    def test_unknown_opcode(self):
        with pytest.raises(AsmSyntaxError):
            assemble(".width 1\n-\n| halt ; frob #1,#2,r0\n")

    def test_store_with_dest_rejected(self):
        with pytest.raises(AsmSyntaxError):
            assemble(".width 1\n-\n| halt ; store #1,#2,r0\n")

    def test_parcel_without_control_or_rowctl(self):
        with pytest.raises(AsmSyntaxError):
            assemble(".width 1\n-\n| nop\n")

    def test_duplicate_constant(self):
        with pytest.raises(AsmSymbolError):
            assemble(".width 1\n.const z 1\n.const z 2\n-\n| halt ; nop\n")

    def test_unknown_directive(self):
        with pytest.raises(AsmSyntaxError):
            assemble(".magic 3\n")

    def test_no_rows(self):
        with pytest.raises(AsmLayoutError):
            assemble(".width 4\n")


class TestDisassembler:
    def roundtrip(self, source, registers=None, steps=200):
        """assemble -> disassemble -> reassemble; both must behave
        identically under execution."""
        from repro.machine import run_ximd
        first = assemble(source)
        second = assemble(disassemble(first))
        run1 = run_ximd(first, registers=registers, max_cycles=steps)
        run2 = run_ximd(second, registers=registers, max_cycles=steps)
        assert run1.registers == run2.registers
        assert run1.cycles == run2.cycles

    def test_roundtrip_simple(self):
        self.roundtrip("""
.width 2
-
| -> . ; iadd #1,#2,r0
| -> . ; lt r0,#5
-
| if cc1 @02, @02 ; nop ; done
| if all @02, @02 ; nop
-
=> halt
| nop
| nop
""")

    def test_roundtrip_with_gaps_and_empty(self):
        self.roundtrip("""
.width 2
-
| -> @05 ; iadd #3,#4,r1
| empty
.org @05
-
| halt ; nop
| halt ; iadd r1,#1,r2
""")

    def test_roundtrip_paper_examples(self):
        from repro.workloads import (bitcount1_source, minmax_source,
                                     tproc_source)
        for source in (minmax_source("halt"), tproc_source(),
                       bitcount1_source()):
            first = assemble(source)
            second = assemble(disassemble(first))
            assert first.occupied_slots() == second.occupied_slots()
            assert first.length == second.length

    def test_listing_contains_ops(self):
        program = assemble(
            ".width 1\n.reg k r0\n-\n| halt ; iadd k,#1,k\n")
        listing = format_listing(program)
        assert "iadd k,#1,k" in listing
        assert "halt" in listing
