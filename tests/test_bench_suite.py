"""The benchmark-suite merge layer (``repro.obs.suite``) and driver.

The parallel driver (``benchmarks/run_suite.py``) runs bench files in
separate pytest subprocesses and merges their partial artifacts into
one ``BENCH_SUMMARY.json`` + at most one history record.  These tests
pin the properties the driver relies on: order-independent merges,
loud duplicate detection, timing re-stamping, the
single-history-append policy, crash-safe (atomic) artifact writes,
and the driver's timeout / retry / salvage behavior.
"""

import importlib.util
import itertools
import json
import pathlib

import pytest

from repro.obs.history import make_record, read_history
from repro.obs.ioutil import atomic_append_line, atomic_write_text
from repro.obs.schema import SCHEMA_VERSION
from repro.obs.suite import (
    load_partial,
    load_sections,
    merge_collected,
    merge_partials,
    render_summary,
    write_partial,
    write_summary,
)


def _partial(suite, sections):
    return {"schema_version": SCHEMA_VERSION, "kind": "bench_partial",
            "suite": suite, "sections": sections}


PARTIALS = [
    _partial("bench_speedups", {
        "workloads": {"minmax": {"cycles": 100},
                      "bitcount": {"cycles": 200}},
    }),
    _partial("bench_throughput", {
        "timing": {"host": {"kcycles_per_sec": 320.0}},
    }),
    _partial("bench_registerfile", {
        "models": {"registerfile_chips": {"minimum_chips": 32}},
    }),
    _partial("bench_sync_profile", {
        "sync": {"fig11_bitcount": {"wait_edges": 12}},
        "timing": {"sync overhead": {"overhead_vs_bare": 1.1}},
    }),
]


class TestMergePartials:
    def test_order_independent(self):
        """Worker completion order must not change the merged result."""
        baseline = merge_partials(PARTIALS)
        for ordering in itertools.permutations(PARTIALS):
            assert merge_partials(list(ordering)) == baseline

    def test_sections_combine_across_files(self):
        collected = merge_partials(PARTIALS)
        assert set(collected) == {"workloads", "timing", "models",
                                  "sync"}
        assert set(collected["workloads"]) == {"minmax", "bitcount"}
        # timing entries from different files coexist in one section
        assert set(collected["timing"]) == {"host", "sync overhead"}

    def test_duplicate_bench_id_raises(self):
        clash = PARTIALS + [_partial("bench_rogue", {
            "workloads": {"minmax": {"cycles": 999}},
        })]
        with pytest.raises(ValueError, match="duplicate bench id "
                                             "'minmax'"):
            merge_partials(clash)

    def test_same_suite_reloaded_twice_is_not_a_clash(self):
        """Re-reading one file's partial twice is idempotent, not a
        duplicate claim."""
        twice = [PARTIALS[0], PARTIALS[0]]
        assert merge_partials(twice) == merge_partials([PARTIALS[0]])

    def test_empty(self):
        assert merge_partials([]) == {}


class TestPartialRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "bench_speedups.json"
        write_partial(path, PARTIALS[0]["sections"])
        artifact = load_partial(path)
        assert artifact["kind"] == "bench_partial"
        assert artifact["suite"] == "bench_speedups"
        assert artifact["sections"] == PARTIALS[0]["sections"]

    def test_load_rejects_non_partial(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"kind": "bench_summary"}))
        with pytest.raises(ValueError, match="not a bench_partial"):
            load_partial(path)


class TestWriteSummary:
    def test_merges_over_previous_and_restamps_timing(self, tmp_path):
        summary_path = tmp_path / "BENCH_SUMMARY.json"
        write_summary(summary_path, {
            "workloads": {"minmax": {"cycles": 100}},
            "models": {"chips": {"n": 32}},
            "timing": {"host": {"kcycles_per_sec": 100.0}},
        })
        # a later partial run: refreshes one section, new timing
        write_summary(summary_path, {
            "workloads": {"bitcount": {"cycles": 200}},
            "timing": {"codegen": {"specialized_over_fast": 2.1}},
        })
        summary = json.loads(summary_path.read_text())
        assert summary["kind"] == "bench_summary"
        # untouched section survives, refreshed section merged
        assert summary["models"] == {"chips": {"n": 32}}
        assert set(summary["workloads"]) == {"minmax", "bitcount"}
        # stale wall-clock timing dropped, only the fresh run's kept
        assert set(summary["timing"]) == {"codegen"}

    def test_history_appended_once_and_only_for_workloads(self, tmp_path):
        summary_path = tmp_path / "BENCH_SUMMARY.json"
        history_path = tmp_path / "BENCH_HISTORY.jsonl"
        # no workloads section -> no history record
        write_summary(summary_path, {"models": {"chips": {"n": 32}}},
                      history_path=history_path, git_sha="abc")
        assert not history_path.exists()
        # workloads refreshed -> exactly one record
        write_summary(summary_path,
                      merge_partials(PARTIALS),
                      history_path=history_path, git_sha="abc")
        records = read_history(history_path)
        assert len(records) == 1
        assert records[0]["git_sha"] == "abc"
        assert "minmax" in records[0]["sections"]["workloads"]

    def test_empty_collected_is_a_noop(self, tmp_path):
        summary_path = tmp_path / "BENCH_SUMMARY.json"
        assert write_summary(summary_path, {}) == {}
        assert not summary_path.exists()

    def test_load_sections_drops_bookkeeping(self, tmp_path):
        summary_path = tmp_path / "BENCH_SUMMARY.json"
        write_summary(summary_path, merge_partials(PARTIALS))
        sections = load_sections(summary_path)
        assert "schema_version" not in sections
        assert "timing" not in sections
        assert "workloads" in sections

    def test_merge_collected_layering(self):
        sections, timing = merge_collected(
            {"workloads": {"minmax": {"cycles": 2}},
             "timing": {"host": {"rate": 1.0}}},
            previous_sections={"workloads": {"minmax": {"cycles": 1},
                                             "old": {"cycles": 9}}})
        assert sections["workloads"]["minmax"] == {"cycles": 2}
        assert sections["workloads"]["old"] == {"cycles": 9}
        assert timing == {"host": {"rate": 1.0}}

    def test_render_summary_shape(self):
        summary = render_summary({"workloads": {}},
                                 {"host": {"rate": 1.0}})
        assert summary["schema_version"] == SCHEMA_VERSION
        assert summary["kind"] == "bench_summary"
        assert summary["timing"] == {"host": {"rate": 1.0}}


class TestAtomicWrites:
    def test_write_replaces_and_cleans_temp_files(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, "one\n")
        atomic_write_text(path, "two\n")
        assert path.read_text() == "two\n"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]

    def test_append_line_preserves_existing_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        atomic_append_line(path, "one")
        atomic_append_line(path, "two\n")
        assert path.read_text() == "one\ntwo\n"
        assert [p.name for p in tmp_path.iterdir()] == ["ledger.jsonl"]

    def test_append_heals_a_torn_final_line(self, tmp_path):
        """A ledger whose last line lost its newline (legacy torn
        write) gets the newline restored before the append."""
        path = tmp_path / "ledger.jsonl"
        path.write_text("torn")
        atomic_append_line(path, "fresh")
        assert path.read_text() == "torn\nfresh\n"

    def test_summary_and_history_leave_no_temp_files(self, tmp_path):
        summary_path = tmp_path / "BENCH_SUMMARY.json"
        history_path = tmp_path / "BENCH_HISTORY.jsonl"
        write_summary(summary_path, merge_partials(PARTIALS),
                      history_path=history_path, git_sha="abc")
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "BENCH_HISTORY.jsonl", "BENCH_SUMMARY.json"]

    def test_suite_health_never_enters_history(self, tmp_path):
        """run_suite's health section describes one run's scheduling
        accidents; it lands in the summary for humans but must stay
        out of the deterministic history ledger (and its dedupe)."""
        summary_path = tmp_path / "BENCH_SUMMARY.json"
        history_path = tmp_path / "BENCH_HISTORY.jsonl"
        write_summary(summary_path, {
            "workloads": {"minmax": {"cycles": 100}},
            "suite_health": {"run": {"retried": "bench_x.py"}},
        }, history_path=history_path, git_sha="abc")
        summary = json.loads(summary_path.read_text())
        assert summary["suite_health"] == {
            "run": {"retried": "bench_x.py"}}
        [record] = read_history(history_path)
        assert "suite_health" not in record["sections"]
        # ... and cannot defeat dedupe either
        again = make_record(
            {"workloads": {"minmax": {"cycles": 100}},
             "suite_health": {"run": {"failed": "bench_y.py"}}},
            git_sha="abc")
        assert again["sections"] == record["sections"]

    def test_clean_run_clears_stale_suite_health(self, tmp_path):
        """suite_health is run-scoped: once the failure is fixed, the
        next clean summary write must drop the old report instead of
        inheriting it forever through the section merge."""
        summary_path = tmp_path / "BENCH_SUMMARY.json"
        write_summary(summary_path, {
            "workloads": {"minmax": {"cycles": 100}},
            "suite_health": {"run": {"failed": "bench_x.py"}},
        })
        write_summary(summary_path,
                      {"workloads": {"minmax": {"cycles": 100}}})
        summary = json.loads(summary_path.read_text())
        assert "suite_health" not in summary
        assert summary["workloads"] == {"minmax": {"cycles": 100}}


# ---------------------------------------------------------------------------
# the driver itself: discovery, timeout, retry, salvage, sharding

REPO = pathlib.Path(__file__).parent.parent


def _driver():
    spec = importlib.util.spec_from_file_location(
        "run_suite", REPO / "benchmarks" / "run_suite.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# Fake bench files for driving run_suite end-to-end.  Each writes its
# own partial artifact (what the benchmark conftest would do at
# session end) so the tests need no pytest-benchmark plumbing beyond
# the ``benchmark`` fixture that keeps ``--benchmark-only`` from
# skipping them.
_FAKE_OK = """\
import json, os, pathlib


def _emit(sections):
    path = os.environ.get("REPRO_BENCH_PARTIAL")
    if path:
        from repro.obs.schema import SCHEMA_VERSION
        pathlib.Path(path).write_text(json.dumps({
            "schema_version": SCHEMA_VERSION, "kind": "bench_partial",
            "suite": pathlib.Path(path).stem, "sections": sections}))


def test_ok(benchmark):
    benchmark(lambda: None)
    _emit({"workloads": {"fake_ok": {"cycles": 7}}})
"""

_FAKE_HANG = """\
import time

time.sleep(120)  # hang at collection: the driver must kill us
"""

_FAKE_FLAKY = """\
import pathlib

MARKER = pathlib.Path(__file__).with_suffix(".marker")


def test_flaky(benchmark):
    benchmark(lambda: None)
    if not MARKER.exists():
        MARKER.write_text("seen")
        raise AssertionError("synthetic first-attempt failure")
"""

_FAKE_BROKEN = """\
import json, os, pathlib


def _emit(sections):
    path = os.environ.get("REPRO_BENCH_PARTIAL")
    if path:
        from repro.obs.schema import SCHEMA_VERSION
        pathlib.Path(path).write_text(json.dumps({
            "schema_version": SCHEMA_VERSION, "kind": "bench_partial",
            "suite": pathlib.Path(path).stem, "sections": sections}))


def test_salvageable(benchmark):
    benchmark(lambda: None)
    _emit({"models": {"fake_broken": {"n": 3}}})


def test_always_fails(benchmark):
    benchmark(lambda: None)
    raise AssertionError("synthetic persistent failure")
"""


def _fake(tmp_path, name, body):
    path = tmp_path / name
    path.write_text(body)
    return path


class TestDriverDiscovery:
    def test_discovers_the_suite(self):
        module = _driver()
        names = [path.name for path in module.discover_benchmarks()]
        assert "bench_ex2_minmax.py" in names
        assert "bench_codegen_throughput.py" in names
        assert names == sorted(names)


class TestRunSuiteDriver:
    def test_happy_path_lands_summary_and_history(self, tmp_path):
        module = _driver()
        bench = _fake(tmp_path, "bench_fake_ok.py", _FAKE_OK)
        summary_path = tmp_path / "BENCH_SUMMARY.json"
        history_path = tmp_path / "BENCH_HISTORY.jsonl"
        rc = module.run_suite(benchmarks=[bench], timeout=120,
                              summary_path=summary_path,
                              history_path=history_path)
        assert rc == 0
        summary = json.loads(summary_path.read_text())
        assert summary["workloads"]["fake_ok"] == {"cycles": 7}
        assert "suite_health" not in summary
        assert len(read_history(history_path)) == 1

    def test_timeout_kills_retries_and_names_the_unit(self, tmp_path,
                                                      capsys):
        module = _driver()
        bench = _fake(tmp_path, "bench_fake_hang.py", _FAKE_HANG)
        summary_path = tmp_path / "BENCH_SUMMARY.json"
        history_path = tmp_path / "BENCH_HISTORY.jsonl"
        rc = module.run_suite(benchmarks=[bench], timeout=3,
                              summary_path=summary_path,
                              history_path=history_path)
        assert rc == 1
        out = capsys.readouterr()
        assert "TIMED OUT after 3s (after retry)" in out.out
        assert "bench_fake_hang.py" in out.err
        # the summary still lands, carrying the health section ...
        summary = json.loads(summary_path.read_text())
        health = summary["suite_health"]["run"]
        assert health["failed"] == "bench_fake_hang.py"
        assert health["retried"] == "bench_fake_hang.py"
        # ... but a failed run never appends to the ledger
        assert not history_path.exists()

    def test_transient_failure_recovers_on_retry(self, tmp_path):
        module = _driver()
        ok = _fake(tmp_path, "bench_fake_ok.py", _FAKE_OK)
        flaky = _fake(tmp_path, "bench_fake_flaky.py", _FAKE_FLAKY)
        summary_path = tmp_path / "BENCH_SUMMARY.json"
        history_path = tmp_path / "BENCH_HISTORY.jsonl"
        rc = module.run_suite(benchmarks=[ok, flaky], timeout=120,
                              summary_path=summary_path,
                              history_path=history_path)
        assert rc == 0
        summary = json.loads(summary_path.read_text())
        # the recovered run is still named for the record ...
        assert summary["suite_health"]["run"] == {
            "retried": "bench_fake_flaky.py"}
        # ... and a recovered suite is complete: history appends
        [record] = read_history(history_path)
        assert "suite_health" not in record["sections"]

    def test_persistent_failure_salvages_its_partial(self, tmp_path):
        module = _driver()
        broken = _fake(tmp_path, "bench_fake_broken.py", _FAKE_BROKEN)
        summary_path = tmp_path / "BENCH_SUMMARY.json"
        history_path = tmp_path / "BENCH_HISTORY.jsonl"
        rc = module.run_suite(benchmarks=[broken], timeout=120,
                              summary_path=summary_path,
                              history_path=history_path)
        assert rc == 1
        summary = json.loads(summary_path.read_text())
        # the passing test's numbers survive the file's failure
        assert summary["models"]["fake_broken"] == {"n": 3}
        health = summary["suite_health"]["run"]
        assert health["failed"] == "bench_fake_broken.py"
        assert health["salvaged"] == "bench_fake_broken.py"
        assert not history_path.exists()

    def test_collect_test_shards_round_robin(self, tmp_path):
        module = _driver()
        (tmp_path / "test_fake_shard.py").write_text(
            "def test_a(): pass\n"
            "def test_b(): pass\n"
            "def test_c(): pass\n"
            "def test_d(): pass\n"
            "def test_e(): pass\n")
        shards = module.collect_test_shards(
            2, test_files=["test_fake_shard.py"], repo_root=tmp_path)
        assert [shard["name"] for shard in shards] == [
            "tests-shard-1of2", "tests-shard-2of2"]
        assert all(shard["partial_stem"] is None for shard in shards)
        assert [len(shard["targets"]) for shard in shards] == [3, 2]
        combined = shards[0]["targets"] + shards[1]["targets"]
        assert sorted(combined) == sorted(
            f"test_fake_shard.py::test_{letter}" for letter in "abcde")
        # round-robin deal: consecutive node ids alternate shards
        assert shards[0]["targets"][0].endswith("test_a")
        assert shards[1]["targets"][0].endswith("test_b")

    def test_collect_test_shards_missing_files_degrade(self, tmp_path):
        module = _driver()
        assert module.collect_test_shards(
            4, test_files=["test_nope.py"], repo_root=tmp_path) == []

    def test_with_tests_shards_join_the_pool(self, tmp_path):
        """End-to-end: ``--with-tests`` runs real repo test shards as
        extra pool units alongside the bench files."""
        module = _driver()
        bench = _fake(tmp_path, "bench_fake_ok.py", _FAKE_OK)
        summary_path = tmp_path / "BENCH_SUMMARY.json"
        rc = module.run_suite(
            benchmarks=[bench], timeout=300, with_tests=True,
            test_files=["tests/test_isa_registers.py"],
            summary_path=summary_path,
            history_path=tmp_path / "BENCH_HISTORY.jsonl")
        assert rc == 0
        assert json.loads(summary_path.read_text())[
            "workloads"]["fake_ok"] == {"cycles": 7}
