"""The benchmark-suite merge layer (``repro.obs.suite``).

The parallel driver (``benchmarks/run_suite.py``) runs bench files in
separate pytest subprocesses and merges their partial artifacts into
one ``BENCH_SUMMARY.json`` + at most one history record.  These tests
pin the properties the driver relies on: order-independent merges,
loud duplicate detection, timing re-stamping, and the
single-history-append policy.
"""

import itertools
import json

import pytest

from repro.obs.history import read_history
from repro.obs.schema import SCHEMA_VERSION
from repro.obs.suite import (
    load_partial,
    load_sections,
    merge_collected,
    merge_partials,
    render_summary,
    write_partial,
    write_summary,
)


def _partial(suite, sections):
    return {"schema_version": SCHEMA_VERSION, "kind": "bench_partial",
            "suite": suite, "sections": sections}


PARTIALS = [
    _partial("bench_speedups", {
        "workloads": {"minmax": {"cycles": 100},
                      "bitcount": {"cycles": 200}},
    }),
    _partial("bench_throughput", {
        "timing": {"host": {"kcycles_per_sec": 320.0}},
    }),
    _partial("bench_registerfile", {
        "models": {"registerfile_chips": {"minimum_chips": 32}},
    }),
    _partial("bench_sync_profile", {
        "sync": {"fig11_bitcount": {"wait_edges": 12}},
        "timing": {"sync overhead": {"overhead_vs_bare": 1.1}},
    }),
]


class TestMergePartials:
    def test_order_independent(self):
        """Worker completion order must not change the merged result."""
        baseline = merge_partials(PARTIALS)
        for ordering in itertools.permutations(PARTIALS):
            assert merge_partials(list(ordering)) == baseline

    def test_sections_combine_across_files(self):
        collected = merge_partials(PARTIALS)
        assert set(collected) == {"workloads", "timing", "models",
                                  "sync"}
        assert set(collected["workloads"]) == {"minmax", "bitcount"}
        # timing entries from different files coexist in one section
        assert set(collected["timing"]) == {"host", "sync overhead"}

    def test_duplicate_bench_id_raises(self):
        clash = PARTIALS + [_partial("bench_rogue", {
            "workloads": {"minmax": {"cycles": 999}},
        })]
        with pytest.raises(ValueError, match="duplicate bench id "
                                             "'minmax'"):
            merge_partials(clash)

    def test_same_suite_reloaded_twice_is_not_a_clash(self):
        """Re-reading one file's partial twice is idempotent, not a
        duplicate claim."""
        twice = [PARTIALS[0], PARTIALS[0]]
        assert merge_partials(twice) == merge_partials([PARTIALS[0]])

    def test_empty(self):
        assert merge_partials([]) == {}


class TestPartialRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "bench_speedups.json"
        write_partial(path, PARTIALS[0]["sections"])
        artifact = load_partial(path)
        assert artifact["kind"] == "bench_partial"
        assert artifact["suite"] == "bench_speedups"
        assert artifact["sections"] == PARTIALS[0]["sections"]

    def test_load_rejects_non_partial(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"kind": "bench_summary"}))
        with pytest.raises(ValueError, match="not a bench_partial"):
            load_partial(path)


class TestWriteSummary:
    def test_merges_over_previous_and_restamps_timing(self, tmp_path):
        summary_path = tmp_path / "BENCH_SUMMARY.json"
        write_summary(summary_path, {
            "workloads": {"minmax": {"cycles": 100}},
            "models": {"chips": {"n": 32}},
            "timing": {"host": {"kcycles_per_sec": 100.0}},
        })
        # a later partial run: refreshes one section, new timing
        write_summary(summary_path, {
            "workloads": {"bitcount": {"cycles": 200}},
            "timing": {"codegen": {"specialized_over_fast": 2.1}},
        })
        summary = json.loads(summary_path.read_text())
        assert summary["kind"] == "bench_summary"
        # untouched section survives, refreshed section merged
        assert summary["models"] == {"chips": {"n": 32}}
        assert set(summary["workloads"]) == {"minmax", "bitcount"}
        # stale wall-clock timing dropped, only the fresh run's kept
        assert set(summary["timing"]) == {"codegen"}

    def test_history_appended_once_and_only_for_workloads(self, tmp_path):
        summary_path = tmp_path / "BENCH_SUMMARY.json"
        history_path = tmp_path / "BENCH_HISTORY.jsonl"
        # no workloads section -> no history record
        write_summary(summary_path, {"models": {"chips": {"n": 32}}},
                      history_path=history_path, git_sha="abc")
        assert not history_path.exists()
        # workloads refreshed -> exactly one record
        write_summary(summary_path,
                      merge_partials(PARTIALS),
                      history_path=history_path, git_sha="abc")
        records = read_history(history_path)
        assert len(records) == 1
        assert records[0]["git_sha"] == "abc"
        assert "minmax" in records[0]["sections"]["workloads"]

    def test_empty_collected_is_a_noop(self, tmp_path):
        summary_path = tmp_path / "BENCH_SUMMARY.json"
        assert write_summary(summary_path, {}) == {}
        assert not summary_path.exists()

    def test_load_sections_drops_bookkeeping(self, tmp_path):
        summary_path = tmp_path / "BENCH_SUMMARY.json"
        write_summary(summary_path, merge_partials(PARTIALS))
        sections = load_sections(summary_path)
        assert "schema_version" not in sections
        assert "timing" not in sections
        assert "workloads" in sections

    def test_merge_collected_layering(self):
        sections, timing = merge_collected(
            {"workloads": {"minmax": {"cycles": 2}},
             "timing": {"host": {"rate": 1.0}}},
            previous_sections={"workloads": {"minmax": {"cycles": 1},
                                             "old": {"cycles": 9}}})
        assert sections["workloads"]["minmax"] == {"cycles": 2}
        assert sections["workloads"]["old"] == {"cycles": 9}
        assert timing == {"host": {"rate": 1.0}}

    def test_render_summary_shape(self):
        summary = render_summary({"workloads": {}},
                                 {"host": {"rate": 1.0}})
        assert summary["schema_version"] == SCHEMA_VERSION
        assert summary["kind"] == "bench_summary"
        assert summary["timing"] == {"host": {"rate": 1.0}}


class TestDriverDiscovery:
    def test_discovers_the_suite(self):
        import importlib.util
        import pathlib
        repo = pathlib.Path(__file__).parent.parent
        spec = importlib.util.spec_from_file_location(
            "run_suite", repo / "benchmarks" / "run_suite.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        names = [path.name for path in module.discover_benchmarks()]
        assert "bench_ex2_minmax.py" in names
        assert "bench_codegen_throughput.py" in names
        assert names == sorted(names)
