"""Tests for register allocation and end-to-end code generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import (
    AllocationError,
    CompilerError,
    Function,
    IRConst,
    IROp,
    Jump,
    VReg,
    allocate_registers,
    compile_xc,
    lower_unit,
    parse_xc,
)
from repro.compiler.ir import Halt
from repro.machine import VliwMachine, XimdMachine, run_ximd, run_vliw
from repro.workloads import random_dag_source

i16 = st.integers(min_value=-30_000, max_value=30_000)


class TestRegalloc:
    def _function(self):
        fn = lower_unit(parse_xc(
            "func f(a, b) { var t; t = a + b; return t * 2; }"))["f"]
        return fn

    def test_unique_assignment(self):
        fn = self._function()
        assignment = allocate_registers(fn)
        values = list(assignment.mapping.values())
        assert len(values) == len(set(values))

    def test_pinning_respected(self):
        fn = self._function()
        fn.pinned[VReg("a")] = 42
        assignment = allocate_registers(fn)
        assert assignment.physical(VReg("a")) == 42

    def test_conflicting_pins_rejected(self):
        fn = self._function()
        fn.pinned[VReg("a")] = 1
        fn.pinned[VReg("b")] = 1
        with pytest.raises(AllocationError):
            allocate_registers(fn)

    def test_out_of_registers(self):
        fn = Function("big")
        entry = fn.add_block("entry")
        for i in range(10):
            entry.append(IROp("iadd", IRConst(i), IRConst(i),
                              VReg(f"t{i}")))
        entry.terminator = Halt()
        with pytest.raises(AllocationError):
            allocate_registers(fn, n_registers=4)

    def test_coalescing_reduces_footprint(self):
        source = """
func f(a) {
  var t1, t2, t3, t4;
  t1 = a + 1;
  t2 = t1 + 1;
  t3 = t2 + 1;
  t4 = t3 + 1;
  return t4;
}
"""
        fn = lower_unit(parse_xc(source))["f"]
        unique = allocate_registers(fn, coalesce=False)
        fn2 = lower_unit(parse_xc(source))["f"]
        shared = allocate_registers(fn2, coalesce=True)
        assert shared.used_registers <= unique.used_registers

    def test_coalesced_code_still_correct(self):
        source = """
func f(a) {
  var t1, t2;
  t1 = a + 1;
  t2 = t1 * 3;
  return t2 - a;
}
"""
        for coalesce in (False, True):
            cf = compile_xc(source, width=2, coalesce=coalesce)
            result = run_ximd(cf.program,
                              registers={cf.register("a"): 10})
            assert result.register(cf.register("__ret")) == 23


class TestCompileAndRun:
    def check(self, source, inputs, expected, width=4, **options):
        cf = compile_xc(source, width=width, **options)
        registers = {cf.register(name): value
                     for name, value in inputs.items()}
        result = run_ximd(cf.program, registers=registers,
                          max_cycles=500_000)
        assert result.register(cf.register("__ret")) == expected
        return cf, result

    def test_arithmetic(self):
        self.check("func f(a, b) { return (a + b) * (a - b); }",
                   {"a": 9, "b": 4}, (9 + 4) * (9 - 4))

    def test_division_and_modulo(self):
        self.check("func f(a, b) { return a / b + a % b; }",
                   {"a": 17, "b": 5}, 3 + 2)

    def test_shifts_and_masks(self):
        self.check("func f(a) { return ((a << 3) | 5) & 255; }",
                   {"a": 7}, ((7 << 3) | 5) & 255)

    def test_if_else(self):
        source = """
func f(a, b) {
  var r;
  if (a >= b) { r = a - b; } else { r = b - a; }
  return r;
}
"""
        self.check(source, {"a": 3, "b": 10}, 7)
        self.check(source, {"a": 10, "b": 3}, 7)

    def test_nested_control_flow(self):
        source = """
func f(n) {
  var i, odd, even;
  i = 1; odd = 0; even = 0;
  while (i <= n) {
    if ((i & 1) == 1) { odd = odd + i; } else { even = even + i; }
    i = i + 1;
  }
  return odd * 1000 + even;
}
"""
        n = 10
        odd = sum(i for i in range(1, n + 1) if i % 2)
        even = sum(i for i in range(1, n + 1) if not i % 2)
        self.check(source, {"n": n}, odd * 1000 + even)

    def test_nested_while(self):
        source = """
func f(n) {
  var i, j, acc;
  i = 1; acc = 0;
  while (i <= n) {
    j = 1;
    while (j <= i) { acc = acc + 1; j = j + 1; }
    i = i + 1;
  }
  return acc;
}
"""
        self.check(source, {"n": 6}, 21)

    def test_memory_between_loops(self):
        source = """
func f(n) {
  var i, acc;
  array A @ 512;
  i = 1;
  while (i <= n) { A[i] = i * i; i = i + 1; }
  i = 1; acc = 0;
  while (i <= n) { acc = acc + A[i]; i = i + 1; }
  return acc;
}
"""
        self.check(source, {"n": 7}, sum(i * i for i in range(1, 8)))

    @pytest.mark.parametrize("width", [1, 2, 4, 8])
    def test_every_width_agrees(self, width):
        source = "func f(a, b, c) { return a * b + b * c + c * a; }"
        cf = compile_xc(source, width=width)
        result = run_ximd(cf.program, registers={
            cf.register("a"): 3, cf.register("b"): 5,
            cf.register("c"): 7})
        assert result.register(cf.register("__ret")) == 3*5 + 5*7 + 7*3

    def test_wider_is_never_slower(self):
        source, _ = random_dag_source(24, seed=13)
        cycles = []
        for width in (1, 2, 4, 8):
            cf = compile_xc(source, width=width)
            result = run_ximd(cf.program, registers={
                cf.register(f"v{i}"): i + 1 for i in range(6)})
            cycles.append(result.cycles)
        assert cycles == sorted(cycles, reverse=True) or \
            all(cycles[i] >= cycles[i + 1] for i in range(len(cycles) - 1))

    @given(st.integers(min_value=0, max_value=200), i16, i16)
    @settings(max_examples=25, deadline=None)
    def test_random_dags_match_oracle(self, seed, x, y):
        source, oracle = random_dag_source(15, n_vars=4, seed=seed)
        cf = compile_xc(source, width=4)
        args = (x, y, x ^ y, x - y)
        from repro.isa import wrap_int
        args = tuple(wrap_int(a) for a in args)
        result = run_ximd(cf.program, registers={
            cf.register(f"v{i}"): a for i, a in enumerate(args)})
        assert result.register(cf.register("__ret")) == oracle(*args)

    def test_compiled_code_is_vliw_compatible(self):
        """VLIW-mode output: identical behavior on both machines."""
        source = """
func f(n) {
  var i, acc;
  i = 0; acc = 1;
  while (i < n) { acc = acc * 2 + 1; i = i + 1; }
  return acc;
}
"""
        cf = compile_xc(source, width=4)
        registers = {cf.register("n"): 9}
        rx = run_ximd(cf.program, registers=registers)
        rv = run_vliw(cf.program, registers=registers)
        assert rx.cycles == rv.cycles
        assert rx.registers == rv.registers

    def test_prototype_write_latency_respected(self):
        """Compiling with write_latency=2 must schedule around the
        prototype's exposed delay slot."""
        from repro.machine import prototype_config
        source = "func f(a, b) { return (a + b) * (a - b) + a; }"
        cf = compile_xc(source, width=4, write_latency=2)
        config = prototype_config(4, memory_words=1 << 12)
        result = run_ximd(cf.program, config=config, registers={
            cf.register("a"): 11, cf.register("b"): 5})
        assert result.register(cf.register("__ret")) == \
            (11 + 5) * (11 - 5) + 11

    def test_unknown_function_name(self):
        with pytest.raises(CompilerError):
            compile_xc("func f() { return 1; }", name="g")

    def test_multi_function_unit_needs_name(self):
        source = "func a() { return 1; } func b() { return 2; }"
        with pytest.raises(CompilerError):
            compile_xc(source)
        cf = compile_xc(source, width=1, name="b")
        result = run_ximd(cf.program)
        assert result.register(cf.register("__ret")) == 2
