"""Tests for dataflow, DDG, simplify, percolation, and the schedulers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import (
    BasicBlock,
    Branch,
    DepEdge,
    Function,
    Halt,
    IRConst,
    IROp,
    Jump,
    VReg,
    build_block_ddg,
    is_compare_slot,
    liveness,
    loop_carried_edges,
    lower_unit,
    merge_all_chains,
    parse_xc,
    percolate_function,
    schedule_block,
    simplify_function,
)
from repro.compiler.ddg import _may_alias
from repro.compiler.lowering import RETURN_VREG


def v(name):
    return VReg(name)


def c(value):
    return IRConst(value)


def block_of(*ops, terminator=None):
    block = BasicBlock("b", list(ops), terminator or Halt())
    return block


class TestDDG:
    def test_flow_dependence(self):
        block = block_of(
            IROp("iadd", c(1), c(2), v("x")),
            IROp("iadd", v("x"), c(1), v("y")),
        )
        ddg = build_block_ddg(block)
        assert any(e.kind == "flow" and e.src == 0 and e.dst == 1
                   and e.latency == 1 for e in ddg.edges)

    def test_anti_dependence_zero_latency(self):
        block = block_of(
            IROp("iadd", v("x"), c(1), v("y")),   # reads x
            IROp("iadd", c(0), c(0), v("x")),     # writes x
        )
        ddg = build_block_ddg(block)
        anti = [e for e in ddg.edges if e.kind == "anti"]
        assert anti and anti[0].latency == 0

    def test_output_dependence(self):
        block = block_of(
            IROp("iadd", c(1), c(1), v("x")),
            IROp("iadd", c(2), c(2), v("x")),
        )
        ddg = build_block_ddg(block)
        assert any(e.kind == "output" and e.latency == 1
                   for e in ddg.edges)

    def test_store_load_ordering(self):
        block = block_of(
            IROp("store", v("a"), v("p")),
            IROp("load", v("p"), c(0), v("b")),
        )
        ddg = build_block_ddg(block)
        mem = [e for e in ddg.edges if e.kind == "mem"]
        assert mem and mem[0].latency == 1

    def test_loads_commute(self):
        block = block_of(
            IROp("load", c(10), c(0), v("a")),
            IROp("load", c(20), c(0), v("b")),
        )
        ddg = build_block_ddg(block)
        assert not [e for e in ddg.edges if e.kind == "mem"]

    def test_constant_address_disambiguation(self):
        block = block_of(
            IROp("store", v("a"), c(10)),
            IROp("store", v("b"), c(11)),
        )
        ddg = build_block_ddg(block)
        assert not [e for e in ddg.edges if e.kind == "mem"]

    def test_same_base_different_offset_disambiguation(self):
        load1 = IROp("load", c(100), v("k"), v("a"))
        load2 = IROp("load", c(101), v("k"), v("b"))
        store = IROp("store", v("a"), c(100))
        assert not _may_alias(load1, load2)
        assert _may_alias(load1, store)  # conservative: unknown k

    def test_compare_node_and_heights(self):
        block = BasicBlock("b", [IROp("iadd", c(1), c(2), v("x"))],
                           Branch("lt", v("x"), c(5), "t", "f"))
        ddg = build_block_ddg(block)
        assert ddg.compare_node == 1
        heights = ddg.critical_heights()
        assert heights[0] > heights[1]

    def test_write_latency_scales_flow(self):
        block = block_of(
            IROp("iadd", c(1), c(2), v("x")),
            IROp("iadd", v("x"), c(1), v("y")),
        )
        ddg = build_block_ddg(block, write_latency=2)
        flow = [e for e in ddg.edges if e.kind == "flow"]
        assert flow[0].latency == 2

    def test_loop_carried_flow(self):
        block = BasicBlock(
            "L", [IROp("iadd", v("k"), c(1), v("k"))],
            Branch("le", v("k"), v("n"), "L", "exit"))
        carried = loop_carried_edges(block)
        assert any(e.kind == "flow" and e.distance == 1 for e in carried)


class TestListScheduler:
    def test_independent_ops_share_a_cycle(self):
        block = block_of(
            IROp("iadd", c(1), c(2), v("a")),
            IROp("iadd", c(3), c(4), v("b")),
        )
        schedule = schedule_block(block, width=2)
        assert schedule.n_rows == 1

    def test_dependent_ops_serialize(self):
        block = block_of(
            IROp("iadd", c(1), c(2), v("a")),
            IROp("iadd", v("a"), c(1), v("b")),
        )
        schedule = schedule_block(block, width=4)
        assert schedule.n_rows == 2

    def test_width_one_is_sequential(self):
        ops = [IROp("iadd", c(i), c(i), v(f"t{i}")) for i in range(5)]
        schedule = schedule_block(block_of(*ops), width=1)
        assert schedule.n_rows == 5

    def test_compare_placed_before_branch_row(self):
        block = BasicBlock("b", [], Branch("lt", c(1), c(2), "t", "f"))
        schedule = schedule_block(block, width=4)
        assert schedule.compare_cycle is not None
        assert schedule.compare_cycle < schedule.branch_row
        found = [slot for row in schedule.rows for slot in row
                 if is_compare_slot(slot)]
        assert len(found) == 1

    def test_schedule_respects_all_dependences(self):
        source = """
func f(a, b, c, d) {
  var e, f, g;
  e = a + b;
  f = e + c * a;
  g = a - (b + c);
  e = d - e;
  return (a + b + c) + d + e + (f + g);
}
"""
        fn = lower_unit(parse_xc(source))["f"]
        simplify_function(fn)
        block = fn.blocks["entry"]
        ddg = build_block_ddg(block)
        schedule = schedule_block(block, width=4, ddg=ddg)
        placement = schedule.node_placement
        for edge in ddg.edges:
            assert placement[edge.dst][0] >= \
                placement[edge.src][0] + edge.latency, edge

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_random_chains_never_violate_dependences(self, width, seed):
        import random
        rng = random.Random(seed)
        names = [f"t{i}" for i in range(12)]
        ops = []
        defined = ["a", "b"]
        for name in names:
            x, y = rng.choice(defined), rng.choice(defined)
            ops.append(IROp("iadd", v(x), v(y), v(name)))
            defined.append(name)
        block = block_of(*ops)
        ddg = build_block_ddg(block)
        schedule = schedule_block(block, width, ddg=ddg)
        placement = schedule.node_placement
        for edge in ddg.edges:
            assert placement[edge.dst][0] >= \
                placement[edge.src][0] + edge.latency
        per_row = {}
        for node, (row, fu) in placement.items():
            assert (row, fu) not in per_row
            per_row[(row, fu)] = node
            assert fu < width


class TestSimplify:
    def test_coalesce_induction_pattern(self):
        source = """
func f(n) { var k; k = 0; while (k < n) { k = k + 1; } return k; }
"""
        fn = lower_unit(parse_xc(source))["f"]
        simplify_function(fn)
        found = [op for block in fn.blocks.values() for op in block.ops
                 if op.opcode == "iadd" and op.dest == v("k")
                 and op.a == v("k")]
        assert found, "k = k + 1 should survive as a single op"

    def test_dead_temp_removed(self):
        fn = lower_unit(parse_xc(
            "func f(a) { var x; x = a + 1; return a; }"))["f"]
        before = sum(len(b.ops) for b in fn.blocks.values())
        simplify_function(fn)
        after = sum(len(b.ops) for b in fn.blocks.values())
        assert after <= before
        # user variable x must survive even though unused
        assert any(op.dest == v("x") for b in fn.blocks.values()
                   for op in b.ops)

    def test_copy_propagation_reaches_terminator(self):
        fn = lower_unit(parse_xc(
            "func f(a, b) { var t; t = a; if (t < b) { } return 0; }"
        ))["f"]
        simplify_function(fn)
        branches = [b.terminator for b in fn.blocks.values()
                    if isinstance(b.terminator, Branch)]
        assert branches[0].a == v("a")


class TestPercolation:
    def test_chain_merging(self):
        fn = lower_unit(parse_xc(
            "func f(a) { var x; x = a + 1; return x + 2; }"))["f"]
        merged = merge_all_chains(fn)
        fn.validate()
        assert merged >= 1

    def test_speculative_hoist_moves_safe_op(self):
        source = """
func f(a, b) {
  var r;
  r = 0;
  if (a < b) { r = a * 2; } else { r = b * 3; }
  return r;
}
"""
        fn = lower_unit(parse_xc(source))["f"]
        simplify_function(fn)
        moved = percolate_function(fn)
        fn.validate()
        assert moved >= 1

    def test_hoist_preserves_semantics(self):
        from repro.compiler import compile_xc
        from repro.machine import run_ximd
        source = """
func f(a, b) {
  var r;
  r = 0;
  if (a < b) { r = a * 2 + 1; } else { r = b * 3 - 1; }
  return r;
}
"""
        for a, b in ((1, 2), (5, 2), (3, 3), (-4, -9)):
            for percolate in (False, True):
                cf = compile_xc(source, width=4, percolate=percolate)
                result = run_ximd(cf.program, registers={
                    cf.register("a"): a, cf.register("b"): b})
                expected = a * 2 + 1 if a < b else b * 3 - 1
                assert result.register(cf.register("__ret")) == expected

    def test_stores_never_hoisted(self):
        source = """
func f(a, flag) {
  array A @ 256;
  if (flag > 0) { A[0] = a; }
  return 0;
}
"""
        from repro.compiler import compile_xc
        from repro.machine import XimdMachine
        cf = compile_xc(source, width=4)
        machine = XimdMachine(cf.program)
        machine.regfile.poke(cf.register("a"), 99)
        machine.regfile.poke(cf.register("flag"), 0)
        machine.run(1000)
        assert machine.memory.peek(256) == 0  # store must not leak
