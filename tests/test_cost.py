"""Tests for the section-4.3 per-opcode cost model (repro.analysis.cost).

The load-bearing guarantees: the table covers every defined opcode (an
uncosted opcode cannot ship), folds are byte-deterministic, unknown
mnemonics fail loudly, and the RunReport energy section agrees with a
direct fold over the same census.
"""

import json

import pytest

from repro.analysis import (
    COMPONENT_ENERGY_PJ,
    EnergyReport,
    OP_COSTS,
    cost_of,
    cost_table,
    energy_report,
)
from repro.analysis.cost import _OP_UNIT, _UNIT_LATENCY, _UNITS
from repro.asm import assemble
from repro.isa import OPCODES
from repro.isa.errors import UnknownOpcodeError
from repro.isa.opcodes import OpKind
from repro.machine import XimdMachine
from repro.obs import RunReport, recording_observer
from repro.workloads import (
    FIGURE10_DATA,
    MINMAX_REGS,
    minmax_memory,
    minmax_source,
)


class TestCoverage:
    def test_every_opcode_is_costed(self):
        """A new opcode cannot ship without a cost entry."""
        assert set(OP_COSTS) == set(OPCODES)

    def test_unit_map_covers_exactly_the_isa(self):
        assert set(_OP_UNIT) == set(OPCODES)
        assert set(_OP_UNIT.values()) <= set(_UNITS)
        assert set(_UNIT_LATENCY) == set(_UNITS)

    def test_cost_entries_are_well_formed(self):
        for mnemonic, cost in OP_COSTS.items():
            assert cost.mnemonic == mnemonic
            assert cost.energy_pj > 0          # fetch energy at minimum
            assert cost.rel_area >= 0
            assert cost.latency_class in ("short", "long", "memory")

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(UnknownOpcodeError):
            cost_of("frobnicate")


class TestComponentDecomposition:
    def test_iadd_energy_is_the_component_sum(self):
        e = COMPONENT_ENERGY_PJ
        expected = (e["instruction_fetch"] + 2 * e["register_read"]
                    + _UNITS["alu_int"][0] + e["register_write"])
        assert cost_of("iadd").energy_pj == expected

    def test_memory_ops_carry_the_access_energy(self):
        e = COMPONENT_ENERGY_PJ
        assert cost_of("load").energy_pj - e["memory_read"] == \
            pytest.approx(e["instruction_fetch"]
                          + OPCODES["load"].num_sources * e["register_read"]
                          + e["register_write"])
        assert cost_of("store").energy_pj - e["memory_write"] == \
            pytest.approx(e["instruction_fetch"] + 2 * e["register_read"])

    def test_nop_costs_only_the_fetch(self):
        assert cost_of("nop").energy_pj == \
            COMPONENT_ENERGY_PJ["instruction_fetch"]
        assert cost_of("nop").rel_area == 0.0

    def test_compares_write_cc_not_registers(self):
        e = COMPONENT_ENERGY_PJ
        assert cost_of("lt").energy_pj == (
            e["instruction_fetch"] + 2 * e["register_read"]
            + _UNITS["alu_compare"][0] + e["cc_write"])

    def test_iterative_units_are_long_latency(self):
        for mnemonic in ("imult", "idiv", "fadd", "fmult", "fdiv"):
            assert cost_of(mnemonic).latency_class == "long"
        assert cost_of("load").latency_class == "memory"
        assert cost_of("iadd").latency_class == "short"

    def test_table_renders_every_opcode(self):
        table = cost_table()
        for mnemonic in OPCODES:
            assert mnemonic in table


class TestEnergyReport:
    HIST = {"iadd": 10, "lt": 5, "load": 3, "store": 2}

    def test_fold_totals(self):
        report = EnergyReport.from_histogram(self.HIST, cycles=20)
        expected = sum(cost_of(m).energy_pj * c
                       for m, c in self.HIST.items())
        assert report.total_energy_pj == pytest.approx(expected)
        assert report.ops == 20
        assert report.energy_per_cycle_pj == \
            pytest.approx(expected / 20)
        assert report.energy_per_op_pj == pytest.approx(expected / 20)

    def test_per_class_breakdown_partitions_the_total(self):
        report = EnergyReport.from_histogram(self.HIST, cycles=20)
        assert sum(report.per_class_pj.values()) == \
            pytest.approx(report.total_energy_pj)
        assert set(report.per_class_pj) == {"alu_int", "alu_compare",
                                            "memory_port"}

    def test_zero_and_negative_counts_are_skipped(self):
        report = EnergyReport.from_histogram(
            {"iadd": 0, "isub": -1, "lt": 2}, cycles=4)
        assert set(report.per_opcode_pj) == {"lt"}
        assert report.ops == 2

    def test_zero_cycles_guard(self):
        report = EnergyReport.from_histogram({}, cycles=0)
        assert report.total_energy_pj == 0.0
        assert report.energy_per_cycle_pj == 0.0
        assert report.energy_per_op_pj == 0.0

    def test_unknown_mnemonic_fails_loudly(self):
        with pytest.raises(UnknownOpcodeError):
            EnergyReport.from_histogram({"bogus": 1}, cycles=1)

    def test_per_fu_breakdown(self):
        per_fu = [{"iadd": 2}, {"load": 1}, {}, {"nop": 0}]
        report = EnergyReport.from_histogram(
            {"iadd": 2, "load": 1}, cycles=5, per_fu_histograms=per_fu)
        assert len(report.per_fu_pj) == 4
        assert report.per_fu_pj[0] == \
            pytest.approx(2 * cost_of("iadd").energy_pj)
        assert report.per_fu_pj[1] == \
            pytest.approx(cost_of("load").energy_pj)
        assert report.per_fu_pj[2] == 0.0 and report.per_fu_pj[3] == 0.0
        assert sum(report.per_fu_pj) == \
            pytest.approx(report.total_energy_pj)

    def test_fold_is_byte_deterministic(self):
        """Equal censuses (even differently ordered) -> identical JSON."""
        forward = dict(self.HIST)
        backward = dict(reversed(list(self.HIST.items())))
        a = json.dumps(EnergyReport.from_histogram(forward, 20).to_dict(),
                       sort_keys=True)
        b = json.dumps(EnergyReport.from_histogram(backward, 20).to_dict(),
                       sort_keys=True)
        assert a == b

    def test_alias_matches_classmethod(self):
        direct = EnergyReport.from_histogram(self.HIST, 20).to_dict()
        alias = energy_report(self.HIST, 20).to_dict()
        assert direct == alias


class TestRunReportEnergy:
    def run_report(self):
        obs = recording_observer()
        machine = XimdMachine(assemble(minmax_source("halt")), obs=obs)
        machine.regfile.poke(MINMAX_REGS["n"], len(FIGURE10_DATA))
        for address, value in minmax_memory(FIGURE10_DATA).items():
            machine.memory.poke(address, value)
        machine.run(10_000)
        return RunReport.from_events(list(obs.sinks[0].events))

    def test_report_energy_matches_direct_fold(self):
        report = self.run_report()
        assert report.energy, "RunReport must carry an energy section"
        direct = EnergyReport.from_histogram(
            report.op_histogram, cycles=report.cycles).to_dict()
        for key in ("total_energy_pj", "energy_per_cycle_pj",
                    "per_opcode_pj", "per_class_pj"):
            assert report.energy[key] == direct[key]

    def test_per_fu_energy_sums_to_total(self):
        energy = self.run_report().energy
        assert energy["per_fu_pj"], "per-FU breakdown expected from events"
        assert sum(energy["per_fu_pj"]) == \
            pytest.approx(energy["total_energy_pj"], abs=1e-4)

    def test_energy_survives_json_round_trip(self):
        report = self.run_report()
        payload = json.loads(report.to_json())
        assert payload["energy"] == report.to_dict()["energy"]
        assert "total_energy_pj" in payload["energy"]

    def test_render_text_mentions_energy(self):
        text = self.run_report().render_text()
        assert "energy" in text
        assert "pJ" in text


class TestModelShape:
    def test_float_costs_exceed_integer_counterparts(self):
        assert cost_of("fadd").energy_pj > cost_of("iadd").energy_pj
        assert cost_of("fmult").energy_pj > cost_of("imult").energy_pj
        assert cost_of("fdiv").energy_pj > cost_of("idiv").energy_pj

    def test_fdiv_is_the_priciest_op(self):
        priciest = max(OP_COSTS.values(), key=lambda c: c.energy_pj)
        assert priciest.mnemonic == "fdiv"

    def test_store_kind_consistency(self):
        """The writeback rule keys off OpKind; spot-check the kinds."""
        assert OPCODES["load"].kind is OpKind.LOAD
        assert OPCODES["store"].kind is OpKind.STORE
        assert OPCODES["lt"].kind is OpKind.COMPARE
